//! Umbrella crate for the scalable commutativity rule reproduction.
//!
//! This crate re-exports the workspace's public crates under one name so the
//! examples and integration tests can use a single dependency. See the
//! individual crates for the substance:
//!
//! * [`spec`] — the §3 formalism (actions, histories, SIM commutativity, the
//!   constructive proof machines).
//! * [`symbolic`] — the symbolic execution engine and model finder.
//! * [`model`] — the symbolic POSIX model (18 system calls).
//! * [`mtrace`] — the simulated cache-coherent machine and scalability model.
//! * [`scalable`] — Refcache, per-core allocators, radix arrays and other
//!   scalable building blocks.
//! * [`kernel`] — the sv6-style kernel, the Linux-like baseline and the mail
//!   server application.
//! * [`commuter`] — ANALYZER, TESTGEN and the MTRACE driver.

pub use scr_core as commuter;
pub use scr_kernel as kernel;
pub use scr_model as model;
pub use scr_mtrace as mtrace;
pub use scr_scalable as scalable;
pub use scr_spec as spec;
pub use scr_symbolic as symbolic;
