//! Umbrella crate for the scalable commutativity rule reproduction.
//!
//! This crate re-exports the workspace's public crates under one name so the
//! examples and integration tests can use a single dependency. See the
//! individual crates for the substance:
//!
//! * [`spec`] — the §3 formalism (actions, histories, SIM commutativity, the
//!   constructive proof machines).
//! * [`symbolic`] — the symbolic execution engine and model finder.
//! * [`model`] — the symbolic POSIX model (18 system calls).
//! * [`mtrace`] — the simulated cache-coherent machine and scalability model.
//! * [`scalable`] — Refcache, per-core allocators, radix arrays and other
//!   scalable building blocks.
//! * [`kernel`] — the sv6-style kernel, the Linux-like baseline and the mail
//!   server application.
//! * [`commuter`] — ANALYZER, TESTGEN and the MTRACE driver.
//! * [`host`] — the real-threads execution backend: a thread-safe
//!   `HostKernel`, the wall-clock load harness, and the differential runner
//!   that cross-checks generated tests between simulation and real threads.
//! * [`hostmtrace`] — the real-threads sharing monitor: per-thread access
//!   logs, probes mirroring the simulated structures' footprints, and the
//!   conflict reports behind the host-side Figure 6 heatmap.
//! * [`bench`] — the Figure 6/7 workload drivers (simulated and host).
//! * [`obs`] — the commutativity-aware telemetry layer: per-core metrics,
//!   pipeline trace spans, conflict-heat reports and stamped JSON
//!   snapshots.
//! * [`loadgen`] — the open-loop mail load observatory: arrival-rate
//!   schedules, zipfian mailbox popularity, coordinated-omission-safe
//!   latency, and the `BENCH_mail.json` sweep.
//! * [`chaos`] — deterministic fault injection at the syscall boundary:
//!   seeded errno storms, bounded delivery delay, qman crash schedules,
//!   and the retry layer that rides out exactly the injected faults.

pub use scr_bench as bench;
pub use scr_chaos as chaos;
pub use scr_core as commuter;
pub use scr_host as host;
pub use scr_hostmtrace as hostmtrace;
pub use scr_kernel as kernel;
pub use scr_loadgen as loadgen;
pub use scr_model as model;
pub use scr_mtrace as mtrace;
pub use scr_obs as obs;
pub use scr_scalable as scalable;
pub use scr_spec as spec;
pub use scr_symbolic as symbolic;
