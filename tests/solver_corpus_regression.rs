//! Corpus regression: the indexed solver must reproduce the naive engine's
//! corpora byte-for-byte.
//!
//! TESTGEN's generated tests are a deterministic function of the solution
//! *sequence* the solver enumerates (dedup by isomorphism signature keeps
//! the first representative of each class; materialisation is pure). The
//! rewrite of `scr_symbolic::solver` — compiled DAG arena, watch index,
//! forward checking, conflict-directed backjumping — therefore guarantees
//! unchanged corpora exactly when its enumeration matches the retired
//! naive backtracker's on the real analyzer conditions. These tests assert
//! that on live `analyze_pair` output, including a reduced-bounds
//! `lseek ∥ write` (the offset-arithmetic-heavy hot spot; at full bounds
//! the naive engine needs minutes, which is the reason the indexed engine
//! exists).

use scalable_commutativity::commuter::{
    analyze_pair, enumerate_shapes, generate_tests, solver_cache_clear,
};
use scalable_commutativity::model::{CallKind, ModelConfig};
use scalable_commutativity::symbolic::solver::naive;
use scalable_commutativity::symbolic::{CaseSolver, Domains};

fn solver_domains() -> Domains {
    // Mirrors `scr_core::analyzer::default_domains`.
    Domains::new(vec![0, 1, 2, 3, 4])
}

/// Asserts both engines enumerate identical solution sequences for every
/// commutative case of every shape of the pair.
fn assert_pair_sequences_match(a: CallKind, b: CallKind, cfg: &ModelConfig, limit: usize) {
    let domains = solver_domains();
    let mut cases_checked = 0usize;
    for shape in enumerate_shapes(a, b, cfg) {
        for case in analyze_pair(&shape, cfg).cases {
            let fast = CaseSolver::new(&case.condition).all_solutions(&domains, limit);
            let slow = naive::all_solutions(&case.condition, &domains, limit);
            assert_eq!(
                fast,
                slow,
                "solution sequence diverged for {} ∥ {} shape {}",
                a.name(),
                b.name(),
                shape.tag
            );
            assert!(!fast.is_empty(), "commutative case must be satisfiable");
            cases_checked += 1;
        }
    }
    assert!(
        cases_checked > 0,
        "no cases for {} ∥ {}",
        a.name(),
        b.name()
    );
}

#[test]
fn name_and_descriptor_pairs_enumerate_identically() {
    let cfg = ModelConfig {
        names: 4,
        inodes: 2,
        procs: 1,
        fds_per_proc: 2,
        file_pages: 2,
        vm_pages: 2,
        sockets: 0,
        queue_cap: 0,
        children: 0,
    };
    assert_pair_sequences_match(CallKind::Stat, CallKind::Unlink, &cfg, 48);
    assert_pair_sequences_match(CallKind::Fstat, CallKind::Close, &cfg, 48);
}

#[test]
fn offset_arithmetic_pairs_enumerate_identically() {
    // Reduced bounds keep the naive oracle tractable; the arithmetic
    // structure (offsets through `ite` chains into state equality) is the
    // same one that blows the tree-walking evaluator up at full bounds.
    let cfg = ModelConfig {
        names: 2,
        inodes: 2,
        procs: 1,
        fds_per_proc: 2,
        file_pages: 2,
        vm_pages: 1,
        sockets: 0,
        queue_cap: 0,
        children: 0,
    };
    assert_pair_sequences_match(CallKind::Lseek, CallKind::Write, &cfg, 32);
    assert_pair_sequences_match(CallKind::Lseek, CallKind::Lseek, &cfg, 32);
}

#[test]
fn generated_corpus_is_deterministic_across_cache_states() {
    // The memoization layer must be transparent: a generation served from
    // a cold solver and one served from the warm caches yield the same
    // corpus, test for test.
    let cfg = ModelConfig {
        names: 4,
        inodes: 2,
        procs: 1,
        fds_per_proc: 2,
        file_pages: 2,
        vm_pages: 2,
        sockets: 0,
        queue_cap: 0,
        children: 0,
    };
    let names: Vec<String> = (0..4).map(|i| format!("f{i}")).collect();
    let mut all_runs = Vec::new();
    for round in 0..2 {
        if round == 0 {
            solver_cache_clear();
        }
        let mut fingerprints = Vec::new();
        for shape in enumerate_shapes(CallKind::Lseek, CallKind::Write, &cfg) {
            let analysis = analyze_pair(&shape, &cfg);
            let generated = generate_tests(&shape, &analysis.cases, &cfg, &names, 48);
            for test in &generated.tests {
                fingerprints.push(format!(
                    "{} {:?} {:?} {:?}",
                    test.id, test.setup, test.op_a, test.op_b
                ));
            }
            fingerprints.push(format!("skips {:?}", generated.skip_reasons));
        }
        all_runs.push(fingerprints);
    }
    assert_eq!(
        all_runs[0], all_runs[1],
        "warm-cache corpus must equal the cold corpus"
    );
}
