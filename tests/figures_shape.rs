//! Shape checks for the Figure 7 reproductions, run with reduced parameters
//! so they finish quickly under `cargo test`. The full sweeps are produced
//! by the benches in `crates/bench/benches/`.

use scr_bench::{check_shape, mailbench, openbench, statbench};

#[test]
fn figure7a_statbench_shape_holds() {
    let cores = [1usize, 8, 16];
    let series = statbench::sweep(&cores, 30);
    // Series order: fstatx, fstat (shared), fstat (Refcache).
    let fstatx = &series[0];
    let shared = &series[1];
    let refcache = &series[2];
    check_shape(fstatx, refcache, 0.6).expect("fstatx must stay flat while fstat collapses");
    // The shared-count variant is better for the writers but still cannot
    // scale the fstat side: it must stay clearly below fstatx at 16 cores.
    assert!(
        shared.points.last().unwrap().ops_per_sec_per_core
            < 0.8 * fstatx.points.last().unwrap().ops_per_sec_per_core
    );
}

#[test]
fn figure7b_openbench_shape_holds() {
    let cores = [1usize, 8, 16];
    let series = openbench::sweep(&cores, 30);
    check_shape(&series[0], &series[1], 0.6)
        .expect("O_ANYFD must stay flat while lowest-FD collapses");
}

#[test]
fn figure7c_mailserver_shape_holds() {
    let cores = [1usize, 8, 16];
    let series = mailbench::sweep(&cores, 8);
    let commutative = &series[0];
    let regular = &series[1];
    let c_last = commutative.points.last().unwrap().ops_per_sec_per_core;
    let r_last = regular.points.last().unwrap().ops_per_sec_per_core;
    assert!(
        c_last > r_last,
        "commutative APIs must outperform regular APIs at 16 cores"
    );
    // And the commutative configuration scales: total throughput at 16 cores
    // must be several times the single-core throughput.
    let c_first = &commutative.points[0];
    let speedup = (c_last * 16.0) / (c_first.ops_per_sec_per_core * 1.0);
    assert!(
        speedup > 4.0,
        "commutative mail server must show real speedup, got {speedup:.1}x"
    );
}
