//! Baseline gate for the triple-commutativity sweep.
//!
//! Sweeps both coupled call families (`fd`: open/close/read/write/pipe,
//! `offset`: lseek/read/write) as every unordered triple, renders the
//! per-triple counts and compares them line-for-line against the
//! committed baseline `tests/triple_commutativity_baseline.txt`. The
//! sweep is deterministic by construction (in-order aggregation over
//! claiming workers plus a transparent solver cache), so the rendering is
//! byte-identical for every thread count — any diff is a semantic change
//! to the analyzer, the shape enumeration or the materialiser, and must
//! be reviewed by regenerating the baseline with
//! `SCR_TRIPLE_BASELINE_WRITE=1 cargo test --test triple_commutativity`.
//!
//! A replay budget (`tests-run`) of generated triples also executes on
//! the simulated sv6 kernel in three linearisations each, pinning the
//! SIM-commutativity claim the sweep makes: a commutative triple's
//! results must not depend on the order.

use scalable_commutativity::commuter::{
    run_triple_order, run_triple_test, triple_config, triple_family_sweep, Sv6Factory,
    TripleFamilyReport, TRIPLE_FAMILIES,
};

const REPLAY_BUDGET: usize = 24;

fn baseline_path() -> std::path::PathBuf {
    std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/triple_commutativity_baseline.txt")
}

fn sweep_families() -> Vec<TripleFamilyReport> {
    let cfg = triple_config();
    let names: Vec<String> = (0..4).map(|i| format!("f{i}")).collect();
    TRIPLE_FAMILIES
        .iter()
        .map(|family| triple_family_sweep(family, &cfg, &names, 2, 0))
        .collect()
}

fn render_all(reports: &[TripleFamilyReport]) -> String {
    let mut out = String::from(
        "# triple-commutativity baseline (regenerate with SCR_TRIPLE_BASELINE_WRITE=1)\n",
    );
    out.push_str(&format!("tests-run {REPLAY_BUDGET}\n"));
    for report in reports {
        out.push_str(&report.render());
    }
    out
}

#[test]
fn triple_sweep_matches_the_committed_baseline() {
    let reports = sweep_families();
    let rendered = render_all(&reports);

    if std::env::var_os("SCR_TRIPLE_BASELINE_WRITE").is_some() {
        std::fs::write(baseline_path(), &rendered).expect("write baseline");
        eprintln!("baseline regenerated at {:?}", baseline_path());
        return;
    }

    // Substance before bytes: both families must find commutative
    // triples and materialise tests, so the byte-compare below cannot
    // pass vacuously on a collapsed sweep.
    for report in &reports {
        assert!(
            report.commutative_triples() > 0,
            "family {} found no commutative triples",
            report.family
        );
        assert!(
            report.total_tests() > 0,
            "family {} materialised no tests",
            report.family
        );
    }

    let committed = std::fs::read_to_string(baseline_path())
        .expect("committed baseline missing; regenerate with SCR_TRIPLE_BASELINE_WRITE=1");
    assert_eq!(
        committed, rendered,
        "triple sweep diverged from tests/triple_commutativity_baseline.txt; \
         review the diff and regenerate with SCR_TRIPLE_BASELINE_WRITE=1"
    );

    // Replay a budget of generated triples on the simulated kernel in
    // three linearisations: SIM-commutative results are order-independent.
    let factory = Sv6Factory { cores: 3 };
    let mut replayed = 0;
    'outer: for report in &reports {
        for row in &report.rows {
            for test in &row.tests {
                if replayed >= REPLAY_BUDGET {
                    break 'outer;
                }
                let base = run_triple_test(&factory, test);
                assert!(base.setup_ok, "setup must replay cleanly: {}", test.id);
                for order in [[2, 1, 0], [1, 2, 0]] {
                    let other = run_triple_order(&factory, test, order);
                    assert_eq!(
                        base.results, other.results,
                        "order-dependent results for {}",
                        test.id
                    );
                }
                replayed += 1;
            }
        }
    }
    assert_eq!(replayed, REPLAY_BUDGET, "replay budget not met");
}
