//! Differential tests: the sv6 kernel and the Linux-like baseline must
//! agree on the *observable semantics* of the POSIX-like interface (they
//! differ only in sharing, and therefore scalability), and both must agree
//! with the symbolic model's view of the interface where the mapping is
//! direct.

use scalable_commutativity::kernel::api::{
    Errno, KernelApi, MmapBacking, OpenFlags, Prot, Whence, PAGE_SIZE,
};
use scalable_commutativity::kernel::{LinuxLikeKernel, Sv6Kernel};

fn kernels() -> Vec<(&'static str, Box<dyn KernelApi>)> {
    vec![
        ("sv6", Box::new(Sv6Kernel::new(4)) as Box<dyn KernelApi>),
        (
            "linux",
            Box::new(LinuxLikeKernel::new(4)) as Box<dyn KernelApi>,
        ),
    ]
}

#[test]
fn file_lifecycle_matches_across_kernels() {
    for (name, k) in kernels() {
        let pid = k.new_process();
        let fd = k.open(0, pid, "story", OpenFlags::create()).unwrap();
        assert_eq!(k.write(0, pid, fd, b"chapter one").unwrap(), 11, "{name}");
        assert_eq!(k.lseek(0, pid, fd, 0, Whence::Set).unwrap(), 0, "{name}");
        assert_eq!(k.read(0, pid, fd, 11).unwrap(), b"chapter one", "{name}");
        k.link(0, pid, "story", "backup").unwrap();
        assert_eq!(k.stat(0, pid, "backup").unwrap().nlink, 2, "{name}");
        k.unlink(0, pid, "story").unwrap();
        assert_eq!(
            k.stat(0, pid, "story").unwrap_err(),
            Errno::ENOENT,
            "{name}"
        );
        assert_eq!(k.stat(0, pid, "backup").unwrap().nlink, 1, "{name}");
        k.rename(0, pid, "backup", "final").unwrap();
        assert!(k.stat(0, pid, "final").is_ok(), "{name}");
        k.close(0, pid, fd).unwrap();
        assert_eq!(k.fstat(0, pid, fd).unwrap_err(), Errno::EBADF, "{name}");
    }
}

#[test]
fn open_error_cases_match_across_kernels() {
    for (name, k) in kernels() {
        let pid = k.new_process();
        assert_eq!(
            k.open(0, pid, "missing", OpenFlags::plain()).unwrap_err(),
            Errno::ENOENT,
            "{name}"
        );
        k.open(0, pid, "exists", OpenFlags::create()).unwrap();
        assert_eq!(
            k.open(0, pid, "exists", OpenFlags::create_excl())
                .unwrap_err(),
            Errno::EEXIST,
            "{name}"
        );
        assert_eq!(
            k.rename(0, pid, "missing", "anything").unwrap_err(),
            Errno::ENOENT,
            "{name}"
        );
        assert_eq!(
            k.unlink(0, pid, "missing").unwrap_err(),
            Errno::ENOENT,
            "{name}"
        );
        assert_eq!(
            k.link(0, pid, "exists", "exists").unwrap_err(),
            Errno::EEXIST,
            "{name}"
        );
    }
}

#[test]
fn pread_pwrite_and_truncate_match_across_kernels() {
    for (name, k) in kernels() {
        let pid = k.new_process();
        let fd = k.open(0, pid, "data", OpenFlags::create()).unwrap();
        k.pwrite(0, pid, fd, b"abc", PAGE_SIZE).unwrap();
        assert_eq!(k.pread(0, pid, fd, 3, PAGE_SIZE).unwrap(), b"abc", "{name}");
        assert!(k.fstat(0, pid, fd).unwrap().size >= PAGE_SIZE + 3, "{name}");
        // O_TRUNC resets the size.
        let fd2 = k
            .open(
                0,
                pid,
                "data",
                OpenFlags {
                    truncate: true,
                    ..OpenFlags::plain()
                },
            )
            .unwrap();
        assert_eq!(k.fstat(0, pid, fd2).unwrap().size, 0, "{name}");
        assert_eq!(
            k.pread(0, pid, fd2, 3, PAGE_SIZE).unwrap(),
            Vec::<u8>::new(),
            "{name}"
        );
    }
}

#[test]
fn pipes_match_across_kernels() {
    for (name, k) in kernels() {
        let pid = k.new_process();
        let (r, w) = k.pipe(0, pid).unwrap();
        assert_eq!(k.write(0, pid, w, b"ping").unwrap(), 4, "{name}");
        assert_eq!(k.read(0, pid, r, 16).unwrap(), b"ping", "{name}");
        assert_eq!(k.read(0, pid, r, 1).unwrap_err(), Errno::EAGAIN, "{name}");
        k.close(0, pid, r).unwrap();
        assert_eq!(
            k.write(0, pid, w, b"x").unwrap_err(),
            Errno::EPIPE,
            "{name}"
        );
        assert_eq!(
            k.lseek(0, pid, w, 0, Whence::Set).unwrap_err(),
            Errno::ESPIPE,
            "{name}"
        );
    }
}

#[test]
fn virtual_memory_matches_across_kernels() {
    for (name, k) in kernels() {
        let pid = k.new_process();
        let addr = k
            .mmap(
                0,
                pid,
                Some(128 * PAGE_SIZE),
                2,
                Prot::rw(),
                MmapBacking::Anon,
            )
            .unwrap();
        assert_eq!(addr, 128 * PAGE_SIZE, "{name}");
        k.memwrite(0, pid, addr + PAGE_SIZE, 42).unwrap();
        assert_eq!(k.memread(0, pid, addr + PAGE_SIZE).unwrap(), 42, "{name}");
        k.mprotect(0, pid, addr, 2, Prot::ro()).unwrap();
        assert_eq!(
            k.memwrite(0, pid, addr, 1).unwrap_err(),
            Errno::EFAULT,
            "{name}"
        );
        k.munmap(0, pid, addr, 2).unwrap();
        assert_eq!(
            k.memread(0, pid, addr).unwrap_err(),
            Errno::EFAULT,
            "{name}"
        );
        // File-backed mappings read through to the file.
        let fd = k.open(0, pid, "mapped", OpenFlags::create()).unwrap();
        k.pwrite(0, pid, fd, b"Z", 0).unwrap();
        let m = k
            .mmap(
                0,
                pid,
                Some(200 * PAGE_SIZE),
                1,
                Prot::rw(),
                MmapBacking::File(fd),
            )
            .unwrap();
        assert_eq!(k.memread(0, pid, m).unwrap(), b'Z', "{name}");
    }
}

#[test]
fn spawn_and_fork_match_across_kernels() {
    for (name, k) in kernels() {
        let pid = k.new_process();
        let fd = k.open(0, pid, "inherit", OpenFlags::create()).unwrap();
        let forked = k.fork(0, pid).unwrap();
        assert!(k.fstat(0, forked, fd).is_ok(), "{name}");
        let spawned = k.posix_spawn(0, pid, &[]).unwrap();
        assert_eq!(k.fstat(0, spawned, fd).unwrap_err(), Errno::EBADF, "{name}");
        let spawned_with = k.posix_spawn(0, pid, &[fd]).unwrap();
        assert!(k.fstat(0, spawned_with, fd).is_ok(), "{name}");
    }
}

#[test]
fn scalability_differs_even_when_semantics_agree() {
    // The point of the whole exercise: identical observable behaviour,
    // different sharing. Two processes creating different files (the §1
    // motivating example) is conflict-free on sv6 and conflicts on the
    // baseline. (One process would not even commute: POSIX lowest-FD
    // allocation makes the returned descriptors order-dependent.)
    let sv6 = Sv6Kernel::new(4);
    let linux = LinuxLikeKernel::new(4);
    let outcomes: Vec<bool> = [&sv6 as &dyn KernelApi, &linux as &dyn KernelApi]
        .iter()
        .map(|k| {
            let pid_a = k.new_process();
            let pid_b = k.new_process();
            let m = k.machine().clone();
            m.start_tracing();
            m.on_core(0, || {
                k.open(0, pid_a, "left", OpenFlags::create()).unwrap();
            });
            m.on_core(1, || {
                k.open(1, pid_b, "right", OpenFlags::create()).unwrap();
            });
            m.stop_tracing();
            m.conflict_report().is_conflict_free()
        })
        .collect();
    assert!(outcomes[0], "sv6 must be conflict-free");
    assert!(!outcomes[1], "the baseline must conflict");
}

#[test]
fn duplicated_pipe_endpoints_survive_child_reaping() {
    // pipe → fork → wait(child): the child's copies of the pipe
    // descriptors are reaped, but the parent's ends must stay live —
    // duplication takes a reference on the endpoint counts, reaping only
    // drops the child's. (Regression: an unbalanced fork once made the
    // parent's write fail EPIPE and its read report a spurious EOF.)
    for (name, k) in kernels() {
        let pid = k.new_process();
        let (r, w) = k.pipe(0, pid).unwrap();
        let child = k.fork(0, pid).unwrap();
        k.wait(0, pid, child).unwrap();
        assert_eq!(k.write(0, pid, w, b"x").unwrap(), 1, "{name}");
        assert_eq!(k.read(0, pid, r, 4).unwrap(), b"x", "{name}");
        assert_eq!(
            k.read(0, pid, r, 1).unwrap_err(),
            Errno::EAGAIN,
            "{name}: writer still open, empty pipe must be EAGAIN not EOF"
        );
        // The child's copy alone keeps an end alive: close the parent's
        // write end while a fork child still holds one.
        let child2 = k.fork(0, pid).unwrap();
        k.close(0, pid, w).unwrap();
        assert_eq!(
            k.read(0, pid, r, 1).unwrap_err(),
            Errno::EAGAIN,
            "{name}: the child's write end keeps the pipe writable"
        );
        k.wait(0, pid, child2).unwrap();
        assert_eq!(
            k.read(0, pid, r, 1).unwrap(),
            Vec::<u8>::new(),
            "{name}: after the last writer is reaped, EOF"
        );
        // posix_spawn's explicit dup list takes the same reference.
        let (r2, w2) = k.pipe(0, pid).unwrap();
        let spawned = k.posix_spawn(0, pid, &[w2]).unwrap();
        k.wait(0, pid, spawned).unwrap();
        assert_eq!(k.write(0, pid, w2, b"y").unwrap(), 1, "{name}");
        assert_eq!(k.read(0, pid, r2, 4).unwrap(), b"y", "{name}");
    }
}

#[test]
fn failed_posix_spawn_leaves_no_trace() {
    // A bad descriptor in the dup list fails the spawn before any pipe
    // endpoint reference is taken or a child process exists (regression:
    // the error path once left the endpoint counts permanently skewed,
    // turning EOF into an endless EAGAIN).
    for (name, k) in kernels() {
        let pid = k.new_process();
        let (r, w) = k.pipe(0, pid).unwrap();
        assert_eq!(
            k.posix_spawn(0, pid, &[w, 99]).unwrap_err(),
            Errno::EBADF,
            "{name}"
        );
        let child = k.posix_spawn(0, pid, &[w]).unwrap();
        assert_eq!(
            child, 1,
            "{name}: the failed spawn must not have allocated a pid"
        );
        k.wait(0, pid, child).unwrap();
        k.close(0, pid, w).unwrap();
        assert_eq!(
            k.read(0, pid, r, 1).unwrap(),
            Vec::<u8>::new(),
            "{name}: all writers closed must read as EOF, not EAGAIN"
        );
        // A repeated fd in the dup list collapses into one child slot and
        // must take exactly one endpoint reference.
        let (r2, w2) = k.pipe(0, pid).unwrap();
        let child = k.posix_spawn(0, pid, &[w2, w2]).unwrap();
        k.wait(0, pid, child).unwrap();
        k.close(0, pid, w2).unwrap();
        assert_eq!(
            k.read(0, pid, r2, 1).unwrap(),
            Vec::<u8>::new(),
            "{name}: a doubled dup entry must not leak a writer reference"
        );
    }
}
