//! End-to-end integration tests of the COMMUTER pipeline: model → ANALYZER →
//! TESTGEN → MTRACE driver → Figure 6 aggregation, run against both kernels.

use scalable_commutativity::commuter::{
    run_commuter, CommuterConfig, LinuxLikeFactory, Sv6Factory,
};
use scalable_commutativity::kernel::api::SysOp;
use scalable_commutativity::model::CallKind;

fn factories() -> (Sv6Factory, LinuxLikeFactory) {
    (Sv6Factory { cores: 4 }, LinuxLikeFactory { cores: 4 })
}

#[test]
fn name_operations_pipeline_matches_the_paper_qualitatively() {
    // The headline claims on a subset of the name-handling calls: sv6 is
    // conflict-free for (nearly) all generated commutative tests, the
    // Linux-like baseline for noticeably fewer.
    //
    // The threshold concedes a few points to constructible-completion
    // selection: the corpus now includes the previously-skipped same-process
    // double-`open` cases, which SIM-commute (equal results, equivalent
    // states) but contend on the lowest-FD descriptor slot — the paper's §1
    // example of a commutative POSIX operation whose *unmodified* contract
    // defeats scalability, fixed there by O_ANYFD (which these generated
    // tests deliberately do not use).
    let config = CommuterConfig::quick(&[
        CallKind::Open,
        CallKind::Link,
        CallKind::Unlink,
        CallKind::Stat,
    ]);
    let (sv6, linux) = factories();
    let results = run_commuter(&config, &[&sv6, &linux]);
    assert!(
        results.tests.len() >= 50,
        "expected a meaningful corpus, got {}",
        results.tests.len()
    );
    let sv6_report = results.report_for("sv6").unwrap();
    let linux_report = results.report_for("Linux").unwrap();
    assert!(
        sv6_report.overall_fraction() >= 0.93,
        "sv6 must scale for nearly all commutative tests, got {:.2} ({} of {})",
        sv6_report.overall_fraction(),
        sv6_report.total_conflict_free(),
        sv6_report.total_tests()
    );
    assert!(
        linux_report.overall_fraction() < sv6_report.overall_fraction(),
        "the baseline must scale for fewer tests than sv6"
    );
}

#[test]
fn generated_tests_exercise_the_calls_they_claim_to() {
    let config = CommuterConfig::quick(&[CallKind::Rename, CallKind::Stat]);
    let (sv6, _) = factories();
    let results = run_commuter(&config, &[&sv6]);
    assert!(!results.tests.is_empty());
    for test in &results.tests {
        let kind_of = |op: &SysOp| op.call_name();
        assert_eq!(kind_of(&test.op_a), test.calls.0.name());
        assert_eq!(kind_of(&test.op_b), test.calls.1.name());
    }
}

#[test]
fn vm_operations_show_the_baseline_address_space_bottleneck() {
    // mmap/munmap/memread/memwrite in the same process: commutative cases
    // exist (different pages), sv6's radix address space keeps them
    // conflict-free, the baseline's mmap_sem + shared VMA table does not.
    let config = CommuterConfig::quick(&[CallKind::Mmap, CallKind::Memwrite]);
    let (sv6, linux) = factories();
    let results = run_commuter(&config, &[&sv6, &linux]);
    assert!(!results.tests.is_empty());
    let sv6_report = results.report_for("sv6").unwrap();
    let linux_report = results.report_for("Linux").unwrap();
    assert!(sv6_report.total_conflict_free() > linux_report.total_conflict_free());
}

#[test]
fn fd_operations_show_the_baseline_refcount_bottleneck() {
    // Two descriptor reads (fstat/lseek family) of the same descriptor
    // commute; sv6 keeps them read-only while the baseline's fget/fput
    // reference count makes them conflict.
    let config = CommuterConfig::quick(&[CallKind::Fstat, CallKind::Pread]);
    let (sv6, linux) = factories();
    let results = run_commuter(&config, &[&sv6, &linux]);
    let sv6_report = results.report_for("sv6").unwrap();
    let linux_report = results.report_for("Linux").unwrap();
    assert!(sv6_report.overall_fraction() > linux_report.overall_fraction());
    assert!(linux_report.total_tests() > 0);
}

#[test]
fn skipped_assignments_stay_a_small_fraction() {
    let config = CommuterConfig::quick(&[CallKind::Open, CallKind::Close, CallKind::Lseek]);
    let (sv6, _) = factories();
    let results = run_commuter(&config, &[&sv6]);
    let produced = results.tests.len();
    assert!(produced > 0);
    // The materialiser skips assignments it cannot build through the API
    // (resource-exhaustion paths, dup2-style descriptor layouts); those must
    // not dwarf the constructible corpus.
    assert!(
        results.skipped <= produced * 5,
        "too many skipped assignments: {} skipped vs {} produced",
        results.skipped,
        produced
    );
    // Every skip is accounted for by a structured reason, both in the flat
    // results and in the per-kernel report.
    assert_eq!(
        results.skip_reasons.values().sum::<usize>(),
        results.skipped
    );
    let report = results.report_for("sv6").unwrap();
    assert_eq!(report.total_skipped(), results.skipped);
}

#[test]
fn pipe_read_cases_materialize_across_the_pipeline() {
    // End-to-end check of the representative-selection fix: the pipeline's
    // Read∥Read pairs must now produce pipe-backed tests (half-closed and
    // both-ends-open representatives), with some rescued by re-solving.
    let config = CommuterConfig::quick(&[CallKind::Read]);
    let (sv6, _) = factories();
    let results = run_commuter(&config, &[&sv6]);
    let pipe_backed = results
        .tests
        .iter()
        .filter(|t| {
            t.setup
                .iter()
                .any(|(_, op)| matches!(op, SysOp::Pipe { .. }))
        })
        .count();
    assert!(
        pipe_backed > 0,
        "Read∥Read pipe-backed representatives must materialize"
    );
    assert!(results.resolved > 0, "re-solve must rescue representatives");
}
