//! Property-based differential testing: random sequences of system calls
//! must produce identical observable results on the sv6 kernel and the
//! Linux-like baseline. The two implementations differ (by design) only in
//! their memory-sharing behaviour, never in semantics.

use proptest::prelude::*;
use scalable_commutativity::kernel::api::{OpenFlags, SyscallApi, Whence, PAGE_SIZE};
use scalable_commutativity::kernel::{LinuxLikeKernel, Sv6Kernel};

/// A randomly generated call. File names and descriptors are drawn from
/// small pools so sequences regularly hit both success and error paths.
#[derive(Clone, Debug)]
enum Op {
    Open {
        name: u8,
        create: bool,
        excl: bool,
        trunc: bool,
    },
    Close {
        fd: u8,
    },
    Link {
        old: u8,
        new: u8,
    },
    Unlink {
        name: u8,
    },
    Rename {
        src: u8,
        dst: u8,
    },
    Stat {
        name: u8,
    },
    Fstat {
        fd: u8,
    },
    Lseek {
        fd: u8,
        page: u8,
        from_end: bool,
    },
    Read {
        fd: u8,
    },
    Write {
        fd: u8,
        byte: u8,
    },
    Pread {
        fd: u8,
        page: u8,
    },
    Pwrite {
        fd: u8,
        page: u8,
        byte: u8,
    },
    Pipe,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..4, any::<bool>(), any::<bool>(), any::<bool>()).prop_map(
            |(name, create, excl, trunc)| Op::Open {
                name,
                create,
                excl,
                trunc
            }
        ),
        (0u8..6).prop_map(|fd| Op::Close { fd }),
        (0u8..4, 0u8..4).prop_map(|(old, new)| Op::Link { old, new }),
        (0u8..4).prop_map(|name| Op::Unlink { name }),
        (0u8..4, 0u8..4).prop_map(|(src, dst)| Op::Rename { src, dst }),
        (0u8..4).prop_map(|name| Op::Stat { name }),
        (0u8..6).prop_map(|fd| Op::Fstat { fd }),
        (0u8..6, 0u8..3, any::<bool>()).prop_map(|(fd, page, from_end)| Op::Lseek {
            fd,
            page,
            from_end
        }),
        (0u8..6).prop_map(|fd| Op::Read { fd }),
        (0u8..6, any::<u8>()).prop_map(|(fd, byte)| Op::Write { fd, byte }),
        (0u8..6, 0u8..3).prop_map(|(fd, page)| Op::Pread { fd, page }),
        (0u8..6, 0u8..3, any::<u8>()).prop_map(|(fd, page, byte)| Op::Pwrite { fd, page, byte }),
        Just(Op::Pipe),
    ]
}

/// Renders a stat result for comparison. Inode numbers are implementation
/// artefacts (sv6 never reuses them and encodes the allocating core; the
/// baseline hands them out sequentially), so they are excluded — POSIX only
/// promises uniqueness, which other assertions cover.
fn show_stat(
    result: Result<
        scalable_commutativity::kernel::api::Stat,
        scalable_commutativity::kernel::api::Errno,
    >,
) -> String {
    match result {
        Ok(stat) => format!(
            "size={} nlink={} pipe={}",
            stat.size, stat.nlink, stat.is_pipe
        ),
        Err(e) => format!("{e:?}"),
    }
}

/// Applies one op and renders its observable outcome as a comparable string.
fn apply(k: &dyn SyscallApi, pid: usize, op: &Op) -> String {
    let name = |n: u8| format!("file-{n}");
    match op {
        Op::Open {
            name: n,
            create,
            excl,
            trunc,
        } => format!(
            "{:?}",
            k.open(
                0,
                pid,
                &name(*n),
                OpenFlags {
                    create: *create,
                    excl: *excl,
                    truncate: *trunc,
                    anyfd: false
                }
            )
        ),
        Op::Close { fd } => format!("{:?}", k.close(0, pid, *fd as u32)),
        Op::Link { old, new } => format!("{:?}", k.link(0, pid, &name(*old), &name(*new))),
        Op::Unlink { name: n } => format!("{:?}", k.unlink(0, pid, &name(*n))),
        Op::Rename { src, dst } => format!("{:?}", k.rename(0, pid, &name(*src), &name(*dst))),
        Op::Stat { name: n } => show_stat(k.stat(0, pid, &name(*n))),
        Op::Fstat { fd } => show_stat(k.fstat(0, pid, *fd as u32)),
        Op::Lseek { fd, page, from_end } => format!(
            "{:?}",
            k.lseek(
                0,
                pid,
                *fd as u32,
                *page as i64 * PAGE_SIZE as i64,
                if *from_end { Whence::End } else { Whence::Set }
            )
        ),
        // Writes are whole pages so the two kernels' size accounting (byte
        // granular in the baseline, page granular in sv6/ScaleFS, as in the
        // paper's model) reports the same lengths.
        Op::Read { fd } => format!("{:?}", k.read(0, pid, *fd as u32, 8)),
        Op::Write { fd, byte } => format!(
            "{:?}",
            k.write(0, pid, *fd as u32, &vec![*byte; PAGE_SIZE as usize])
        ),
        Op::Pread { fd, page } => {
            format!(
                "{:?}",
                k.pread(0, pid, *fd as u32, 8, *page as u64 * PAGE_SIZE)
            )
        }
        Op::Pwrite { fd, page, byte } => format!(
            "{:?}",
            k.pwrite(
                0,
                pid,
                *fd as u32,
                &vec![*byte; PAGE_SIZE as usize],
                *page as u64 * PAGE_SIZE
            )
        ),
        Op::Pipe => format!("{:?}", k.pipe(0, pid)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sv6_and_the_baseline_agree_on_observable_results(ops in proptest::collection::vec(op_strategy(), 1..30)) {
        let sv6 = Sv6Kernel::new(2);
        let linux = LinuxLikeKernel::new(2);
        let sv6_pid = sv6.new_process();
        let linux_pid = linux.new_process();
        for (step, op) in ops.iter().enumerate() {
            let a = apply(&sv6, sv6_pid, op);
            let b = apply(&linux, linux_pid, op);
            prop_assert_eq!(a, b, "divergence at step {} on {:?}", step, op);
        }
    }
}
