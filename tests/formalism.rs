//! Integration tests for the §3 formalism: the statement of the scalable
//! commutativity rule is exercised end to end — a SIM-commutative region is
//! identified against a reference model, the constructive implementation is
//! built for it, and its steps in that region are checked conflict-free,
//! while the non-scalable construction is checked to conflict.

use scalable_commutativity::spec::commutativity::{op_level_reorderings, Granularity};
use scalable_commutativity::spec::conflict::find_conflicts;
use scalable_commutativity::spec::construction::{
    replay_history, steps_for_range, NonScalable, ReplayOutcome, Scalable,
};
use scalable_commutativity::spec::implementation::StepImplementation;
use scalable_commutativity::spec::model::{
    Det, FdAllocModel, FdOp, FdPolicy, FdResp, PutMaxModel, PutMaxOp, PutMaxResp, RegisterModel,
    RegisterOp, RegisterResp,
};
use scalable_commutativity::spec::{
    si_commutes, sim_commutes, Action, History, RefSpec, Specification,
};

fn seq<I: Clone, R: Clone>(ops: &[(usize, I, R)]) -> History<I, R> {
    let mut h = History::new();
    for (tag, (t, i, r)) in ops.iter().enumerate() {
        h.push(Action::invoke(*t, tag as u64, i.clone()));
        h.push(Action::respond(*t, tag as u64, r.clone()));
    }
    h
}

#[test]
fn the_rule_holds_for_a_commutative_putmax_region() {
    // X = put(5); Y = two puts of 2 on different threads.
    let x = seq(&[(0, PutMaxOp::Put(5), PutMaxResp::Ok)]);
    let y = seq(&[
        (0, PutMaxOp::Put(2), PutMaxResp::Ok),
        (1, PutMaxOp::Put(2), PutMaxResp::Ok),
    ]);
    // 1. The region SIM-commutes.
    assert!(sim_commutes(&Det(PutMaxModel), &x, &y).commutes);
    // 2. Therefore a conflict-free implementation exists — the constructive
    //    proof's machine demonstrates it.
    let machine = Scalable::new(PutMaxModel, x.clone(), y.clone(), 2);
    for y_prime in op_level_reorderings(&y) {
        let (outcome, runner) = replay_history(&machine, &x.concat(&y_prime));
        assert_eq!(outcome, ReplayOutcome::Matched);
        let steps = steps_for_range(runner.log(), x.len()..x.len() + y_prime.len());
        assert!(find_conflicts(&steps, |c| machine.component_label(c)).is_conflict_free());
    }
    // 3. The warm-up construction (single shared replay log) is correct but
    //    not conflict-free, as the paper notes.
    let mns = NonScalable::new(PutMaxModel, x.concat(&y));
    let (outcome, runner) = replay_history(&mns, &x.concat(&y));
    assert_eq!(outcome, ReplayOutcome::Matched);
    let steps = steps_for_range(runner.log(), x.len()..x.len() + y.len());
    assert!(!find_conflicts(&steps, |c| mns.component_label(c)).is_conflict_free());
}

#[test]
fn non_commutative_regions_are_detected() {
    // put(3) and max() from the initial state do not commute: max() observes
    // the order.
    let y = seq(&[
        (0, PutMaxOp::Put(3), PutMaxResp::Ok),
        (1, PutMaxOp::Max, PutMaxResp::Max(3)),
    ]);
    assert!(!si_commutes(&Det(PutMaxModel), &History::new(), &y).commutes);
}

#[test]
fn state_dependence_mirrors_the_open_excl_discussion() {
    // Two put(1)s commute only once the recorded maximum is at least 1 —
    // the put/max analogue of two open(O_CREAT|O_EXCL) calls commuting when
    // the file already exists.
    let y = seq(&[
        (0, PutMaxOp::Put(1), PutMaxResp::Ok),
        (1, PutMaxOp::Max, PutMaxResp::Max(1)),
    ]);
    let x_low = History::new();
    assert!(!si_commutes(&Det(PutMaxModel), &x_low, &y).commutes);
    let x_high = seq(&[(0, PutMaxOp::Put(4), PutMaxResp::Ok)]);
    let y_high = seq(&[
        (0, PutMaxOp::Put(1), PutMaxResp::Ok),
        (1, PutMaxOp::Max, PutMaxResp::Max(4)),
    ]);
    assert!(si_commutes(&Det(PutMaxModel), &x_high, &y_high).commutes);
}

#[test]
fn specification_nondeterminism_enables_commutativity() {
    // The FD-allocation example of §4: two allocations commute under the
    // "any fd" specification but not under "lowest fd".
    let lowest = FdAllocModel {
        policy: FdPolicy::Lowest,
        capacity: 4,
    };
    let any = FdAllocModel {
        policy: FdPolicy::Any,
        capacity: 4,
    };
    let y_lowest = seq(&[
        (0, FdOp::Alloc, FdResp::Fd(0)),
        (1, FdOp::Alloc, FdResp::Fd(1)),
    ]);
    assert!(!sim_commutes(&lowest, &History::new(), &y_lowest).commutes);
    let y_any = seq(&[
        (0, FdOp::Alloc, FdResp::Fd(3)),
        (1, FdOp::Alloc, FdResp::Fd(1)),
    ]);
    assert!(sim_commutes(&any, &History::new(), &y_any).commutes);
}

#[test]
fn bounded_and_state_based_checks_agree_on_the_register_interface() {
    let spec = RefSpec::new(Det(RegisterModel));
    let model = Det(RegisterModel);
    let x = seq(&[(0, RegisterOp::Set(2), RegisterResp::Ok)]);
    let futures: Vec<History<RegisterOp, RegisterResp>> = (0..4)
        .map(|v| seq(&[(2, RegisterOp::Get, RegisterResp::Value(v))]))
        .collect();
    let cases = vec![
        // Two reads commute.
        seq(&[
            (0, RegisterOp::Get, RegisterResp::Value(2)),
            (1, RegisterOp::Get, RegisterResp::Value(2)),
        ]),
        // A read and a write do not.
        seq(&[
            (0, RegisterOp::Get, RegisterResp::Value(2)),
            (1, RegisterOp::Set(7), RegisterResp::Ok),
        ]),
        // Two identical writes commute.
        seq(&[
            (0, RegisterOp::Set(9), RegisterResp::Ok),
            (1, RegisterOp::Set(9), RegisterResp::Ok),
        ]),
    ];
    for y in cases {
        let state_based = si_commutes(&model, &x, &y).commutes;
        let bounded = scalable_commutativity::spec::commutativity::si_commutes_bounded(
            &spec,
            &x,
            &y,
            &futures,
            Granularity::Operation,
        )
        .commutes;
        assert_eq!(state_based, bounded, "checks disagree on {y:?}");
    }
}

#[test]
fn specification_membership_is_prefix_closed() {
    let spec = RefSpec::new(Det(RegisterModel));
    let h = seq(&[
        (0, RegisterOp::Set(1), RegisterResp::Ok),
        (1, RegisterOp::Get, RegisterResp::Value(1)),
        (0, RegisterOp::Set(2), RegisterResp::Ok),
        (1, RegisterOp::Get, RegisterResp::Value(2)),
    ]);
    assert!(spec.contains(&h));
    for prefix in h.prefixes() {
        assert!(spec.contains(&prefix));
    }
}
