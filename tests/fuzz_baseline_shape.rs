//! Shape check for the differential-fuzz skip baseline.
//!
//! `tests/differential_fuzz_baseline.txt` is the committed skip-reason
//! histogram for the fixed-seed gate (`examples/differential_fuzz.rs`,
//! seed `0xC0DE_D1FF`, 13-call alphabet: the seven file-system calls plus
//! the six §4 extension calls). The gate fails when a reason's count rises
//! above the baseline — previously-constructible representatives being
//! skipped again. This test pins the baseline's *shape* so a regeneration
//! that silently drops a reason class (or resurrects one that should be
//! impossible) is caught at `cargo test` time, and documents why each
//! committed count is what it is:
//!
//! * `tests-run 120` — the campaign's replay budget, spread round-robin
//!   over all 91 unordered pairs; a lower bound, so the gate cannot pass
//!   vacuously if generation collapses.
//! * `fd-table-full 145` — TESTGEN cases where the traced call must
//!   allocate a descriptor but the model's 2-slot-per-process table is
//!   full (the model's EMFILE paths; the concrete kernels' tables are
//!   larger, so these states are deliberately unconstructible).
//! * `pipe-layout 584` / `pipe-endpoints 521` / `cross-process-pipe 234`
//!   — pipe-descriptor geometries a single `pipe()` call cannot produce
//!   without `dup2` or fork-style inheritance: write end below read end,
//!   multiple writers, endpoints split across processes. Large because
//!   `pipe`, `read`, `write` and `close` pairs dominate the fs half of
//!   the alphabet.
//! * `socket-table-full 65` — a `socket` under test with both model
//!   socket slots occupied (the model's ENOSPC paths; the host kernels
//!   have no fixed socket pool to exhaust).
//! * `child-table-full 346` — `fork`/`posix_spawn` under test with both
//!   model child slots occupied (the model's EAGAIN paths; the concrete
//!   process tables are unbounded). The biggest extension class because
//!   every fork/spawn/wait pairing enumerates full-table shapes.
//! * `child-fd-orphan 26` — a spawned child holding pipe endpoints at
//!   descriptor numbers the single `pipe()`-derived layout cannot place
//!   there at spawn time.
//!
//! Absent by design: `unreachable-inode` and `unnamed-mapping` need
//! `open`/`link`/`mmap`-family calls that are not in the gate's alphabet,
//! and `value-out-of-domain` is defensive (a solver regression, never an
//! expected skip).

use scalable_commutativity::commuter::SkipReason;
use std::collections::BTreeMap;

fn read_baseline() -> (usize, BTreeMap<SkipReason, usize>) {
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/differential_fuzz_baseline.txt");
    let text = std::fs::read_to_string(&path).expect("read committed baseline");
    let mut tests_run = 0usize;
    let mut histogram = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let key = parts.next().expect("baseline key");
        let count: usize = parts
            .next()
            .and_then(|c| c.parse().ok())
            .unwrap_or_else(|| panic!("malformed baseline line: {line}"));
        if key == "tests-run" {
            tests_run = count;
        } else {
            let reason = SkipReason::parse(key)
                .unwrap_or_else(|| panic!("unknown skip reason in baseline: {line}"));
            assert!(
                histogram.insert(reason, count).is_none(),
                "duplicate baseline entry: {key}"
            );
        }
    }
    (tests_run, histogram)
}

#[test]
fn baseline_covers_exactly_the_reachable_skip_classes() {
    let (tests_run, histogram) = read_baseline();
    assert!(
        tests_run >= 120,
        "replay floor collapsed: baseline requires only {tests_run} tests"
    );
    let expected = [
        SkipReason::FdTableFull,
        SkipReason::PipeLayout,
        SkipReason::PipeEndpoints,
        SkipReason::CrossProcessPipe,
        SkipReason::SocketTableFull,
        SkipReason::ChildTableFull,
        SkipReason::ChildFdOrphan,
    ];
    for reason in expected {
        let count = histogram.get(&reason).copied().unwrap_or(0);
        assert!(
            count > 0,
            "{reason} vanished from the baseline: either coverage genuinely \
             improved (update this test's comment) or the alphabet shrank"
        );
    }
    for reason in [
        SkipReason::UnreachableInode,
        SkipReason::UnnamedMapping,
        SkipReason::ValueOutOfDomain,
    ] {
        assert!(
            !histogram.contains_key(&reason),
            "{reason} appeared in the baseline: the gate alphabet has no \
             call that can reach it (see this test's module comment)"
        );
    }
    assert_eq!(
        histogram.len(),
        expected.len(),
        "baseline lists an unexpected skip class: {histogram:?}"
    );
}
