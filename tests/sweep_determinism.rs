//! Determinism pin for the parallel sweep engine.
//!
//! The sweep's contract is that worker count changes wall-clock only:
//! the generated corpus and the rendered Figure 6 reports must be
//! byte-identical across 1, 2 and 4 claiming workers. The contract is
//! what lets CI diff a multi-thread leg's `corpus_fingerprint` against
//! the single-thread leg's, and what makes the committed triple baseline
//! reproducible on any runner.
//!
//! The multi-thread sweeps are exercised regardless of the hardware
//! (claiming workers are plain OS threads), but on a single-core runner
//! they only prove code paths, not scheduling races — so the test
//! self-skips below 2 hardware threads unless `SCR_SWEEP_FORCE=1`.

use scalable_commutativity::commuter::{
    run_commuter, CommuterConfig, LinuxLikeFactory, Sv6Factory,
};
use scalable_commutativity::model::CallKind;

fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[test]
fn corpus_and_reports_are_byte_identical_across_worker_counts() {
    if available_threads() < 2 && std::env::var_os("SCR_SWEEP_FORCE").is_none() {
        eprintln!(
            "skipping sweep-determinism pin: {} hardware thread(s) < 2 (set SCR_SWEEP_FORCE=1 to run)",
            available_threads()
        );
        return;
    }
    let calls = [
        CallKind::Open,
        CallKind::Stat,
        CallKind::Unlink,
        CallKind::Close,
    ];
    let sv6 = Sv6Factory { cores: 4 };
    let linux = LinuxLikeFactory { cores: 4 };
    let sweep = |threads: usize| {
        let config = CommuterConfig {
            threads,
            max_assignments_per_case: 12,
            ..CommuterConfig::quick(&calls)
        };
        run_commuter(&config, &[&linux, &sv6])
    };
    let baseline = sweep(1);
    assert!(
        !baseline.tests.is_empty(),
        "the pinned call set must generate a corpus"
    );
    let baseline_corpus: Vec<String> = baseline.tests.iter().map(|t| format!("{t:?}")).collect();
    let baseline_reports: Vec<String> = baseline.reports.iter().map(|r| r.render()).collect();
    for threads in [2, 4] {
        let parallel = sweep(threads);
        let corpus: Vec<String> = parallel.tests.iter().map(|t| format!("{t:?}")).collect();
        assert_eq!(
            baseline_corpus, corpus,
            "corpus diverged at {threads} workers"
        );
        assert_eq!(
            baseline.corpus_fingerprint(),
            parallel.corpus_fingerprint(),
            "corpus fingerprint diverged at {threads} workers"
        );
        let reports: Vec<String> = parallel.reports.iter().map(|r| r.render()).collect();
        assert_eq!(
            baseline_reports, reports,
            "Figure 6 renderings diverged at {threads} workers"
        );
        assert_eq!(baseline.skipped, parallel.skipped);
        assert_eq!(baseline.skip_reasons, parallel.skip_reasons);
        assert_eq!(baseline.resolved, parallel.resolved);
        assert_eq!(baseline.shapes_analyzed, parallel.shapes_analyzed);
    }
}
