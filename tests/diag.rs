//! Diagnostic helper (run explicitly with `--ignored --nocapture`): prints
//! which generated tests are not conflict-free on sv6 and which cache lines
//! they share, grouped by call pair. Useful when tuning the kernel or the
//! test generator.

use scalable_commutativity::commuter::{analyze_pair, enumerate_shapes, generate_tests};
use scalable_commutativity::commuter::{run_test, CommuterConfig, Sv6Factory};
use scalable_commutativity::model::CallKind;
use std::collections::BTreeMap;

#[test]
#[ignore = "diagnostic output only; run with --ignored --nocapture"]
fn print_sv6_conflicts_for_name_calls() {
    let config = CommuterConfig::quick(&[
        CallKind::Open,
        CallKind::Link,
        CallKind::Unlink,
        CallKind::Stat,
    ]);
    let sv6 = Sv6Factory { cores: 4 };
    let mut by_pair: BTreeMap<String, (usize, usize, BTreeMap<String, usize>)> = BTreeMap::new();
    for (i, &a) in config.calls.iter().enumerate() {
        for &b in config.calls.iter().skip(i) {
            for shape in enumerate_shapes(a, b, &config.model) {
                let analysis = analyze_pair(&shape, &config.model);
                let generated = generate_tests(
                    &shape,
                    &analysis.cases,
                    &config.model,
                    &config.names,
                    config.max_assignments_per_case,
                );
                for test in &generated.tests {
                    let outcome = run_test(&sv6, test);
                    let entry = by_pair
                        .entry(format!("{}-{}", a.name(), b.name()))
                        .or_default();
                    entry.0 += 1;
                    if !outcome.conflict_free {
                        entry.1 += 1;
                        for label in outcome.shared_labels {
                            *entry.2.entry(label).or_default() += 1;
                        }
                        if entry.1 <= 2 {
                            println!(
                                "  example failing test: {} setup={:?}",
                                test.id,
                                test.setup.len()
                            );
                            println!("    op_a={:?}", test.op_a);
                            println!("    op_b={:?}", test.op_b);
                        }
                    }
                }
            }
        }
    }
    for (pair, (total, failing, labels)) in by_pair {
        if failing > 0 {
            println!("{pair}: {failing}/{total} not conflict-free; shared lines: {labels:?}");
        } else {
            println!("{pair}: {total} tests, all conflict-free");
        }
    }
}
