//! Figure 7(c): mail server throughput, regular versus commutative APIs.
//!
//! Regenerates the two curves of Figure 7(c): the qmail-style mail server
//! using the regular POSIX APIs (lowest FD, ordered notification socket,
//! `fork`) collapses at a small number of cores, while the configuration
//! built on the commutative APIs of §4 (`O_ANYFD`, unordered datagram
//! socket, `posix_spawn`) keeps scaling.
//!
//! Run with `cargo bench -p scr-bench --bench fig7c_mailserver`. Set
//! `SCR_BENCH_QUICK=1` for a reduced sweep.

use scr_bench::{core_counts, mailbench, quick_core_counts, render_table};

fn main() {
    let quick = std::env::var("SCR_BENCH_QUICK").is_ok();
    let cores = if quick {
        quick_core_counts()
    } else {
        core_counts()
    };
    let rounds = if quick { 8 } else { 20 };
    let series = mailbench::sweep(&cores, rounds);
    println!(
        "{}",
        render_table(
            "Figure 7(c) — mail server throughput (emails/sec/core)",
            &series
        )
    );
    let commutative = &series[0];
    let regular = &series[1];
    let c_last = commutative
        .points
        .last()
        .map(|p| p.ops_per_sec_per_core)
        .unwrap_or(0.0);
    let r_last = regular
        .points
        .last()
        .map(|p| p.ops_per_sec_per_core)
        .unwrap_or(0.0);
    if c_last > r_last {
        println!(
            "shape OK: commutative APIs sustain {:.0} emails/s/core vs {:.0} for regular APIs at {} cores",
            c_last,
            r_last,
            commutative.points.last().map(|p| p.cores).unwrap_or(0)
        );
    } else {
        println!("shape MISMATCH: regular APIs did not collapse relative to commutative APIs");
    }
}
