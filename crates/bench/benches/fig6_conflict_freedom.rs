//! Figure 6: conflict-freedom of commutative system call pairs.
//!
//! Runs the full COMMUTER pipeline — ANALYZER over the 18-call POSIX model,
//! TESTGEN, and the MTRACE driver — against both kernels and prints the two
//! halves of Figure 6: the Linux-like baseline on the left, sv6/ScaleFS on
//! the right, each as a lower-triangular table of *non-conflict-free* test
//! counts per call pair, plus the headline "N of M cases scale".
//!
//! Run with `cargo bench -p scr-bench --bench fig6_conflict_freedom`.
//! Set `SCR_BENCH_QUICK=1` to restrict the sweep to a representative subset
//! of calls (file-name and descriptor operations), which finishes in well
//! under a minute.

use scr_core::{run_commuter, CommuterConfig, LinuxLikeFactory, Sv6Factory};
use scr_model::CallKind;

fn main() {
    let quick = std::env::var("SCR_BENCH_QUICK").is_ok();
    let config = if quick {
        CommuterConfig::quick(&[
            CallKind::Open,
            CallKind::Link,
            CallKind::Unlink,
            CallKind::Rename,
            CallKind::Stat,
            CallKind::Fstat,
            CallKind::Lseek,
            CallKind::Close,
        ])
    } else {
        CommuterConfig::default()
    };
    let sv6 = Sv6Factory { cores: 4 };
    let linux = LinuxLikeFactory { cores: 4 };
    let started = std::time::Instant::now();
    let results = run_commuter(&config, &[&linux, &sv6]);
    let elapsed = started.elapsed();

    println!(
        "analyzed {} pair shapes, generated {} test cases ({} rescued by re-solve, {} skipped) in {:.1?}",
        results.shapes_analyzed,
        results.tests.len(),
        results.resolved,
        results.skipped,
        elapsed
    );
    if !results.skip_reasons.is_empty() {
        println!("skip reasons: {:?}", results.skip_reasons);
    }
    println!();
    for report in &results.reports {
        println!("{report}");
        println!();
    }
    if let (Some(linux), Some(sv6)) = (results.report_for("Linux"), results.report_for("sv6")) {
        println!(
            "summary: Linux-like scales for {:.0}% of cases, sv6 for {:.0}% (paper: 68% and 99%)",
            100.0 * linux.overall_fraction(),
            100.0 * sv6.overall_fraction()
        );
    }
}
