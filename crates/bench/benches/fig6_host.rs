//! Figure 6 on real threads: the host-side conflict heatmap.
//!
//! Runs the host Figure 6 pipeline — TESTGEN's tests replayed on the
//! real-threads `HostKernel` with a `scr-hostmtrace` tracing window around
//! the concurrent pair — and prints the `sv6-host` and `linux-host`
//! heatmaps next to their simulated counterparts, plus the SIM↔host
//! cross-check (every simulated-conflict-free test must be host-conflict-
//! free, lowest-FD contention excepted and listed explicitly).
//!
//! Run with `cargo bench -p scr-bench --bench fig6_host`. Set
//! `SCR_BENCH_QUICK=1` to restrict the sweep to the representative call
//! subset the quick pipeline uses.

use scr_core::CommuterConfig;
use scr_host::{run_host_fig6, HostFig6Config};
use scr_model::ALL_CALLS;

fn main() {
    let quick = std::env::var("SCR_BENCH_QUICK").is_ok();
    let config = if quick {
        HostFig6Config::quick(&CommuterConfig::quick_call_set())
    } else {
        HostFig6Config {
            max_assignments_per_case: 96,
            ..HostFig6Config::quick(ALL_CALLS.as_ref())
        }
    };
    println!(
        "host figure 6: {} calls, {} hardware threads available, {} schedules per test",
        config.calls.len(),
        scr_host::available_threads(),
        config.schedules_per_test
    );
    let started = std::time::Instant::now();
    let results = run_host_fig6(&config);
    println!(
        "ran {} tests on 4 kernels in {:.1?} ({} dropped accesses)\n",
        results.tests_run,
        started.elapsed(),
        results.dropped
    );
    for report in [
        &results.sim_linux,
        &results.host_linux,
        &results.sim_sv6,
        &results.host_sv6,
    ] {
        println!("{report}");
        println!();
    }
    println!(
        "cross-check: {} divergences ({} explained by {}, {} unexplained)",
        results.divergences.len(),
        results.explained_divergences().len(),
        scr_host::LOWEST_FD_EXCEPTION,
        results.unexplained_divergences().len()
    );
    if !results.divergences.is_empty() {
        println!("{}", results.describe_divergences());
    }
    if let Err(err) = results.assert_linux_collapses() {
        println!("WARNING: {err}");
    }
    assert!(
        results.unexplained_divergences().is_empty(),
        "unexplained SIM↔host divergences"
    );
}
