//! Figure 7(b): openbench throughput, lowest FD versus `O_ANYFD`.
//!
//! Regenerates the two curves of Figure 7(b): descriptor allocation under
//! POSIX's lowest-FD rule collapses as cores are added, while the `O_ANYFD`
//! relaxation (per-core descriptor partitions) scales linearly.
//!
//! Run with `cargo bench -p scr-bench --bench fig7b_openbench`. Set
//! `SCR_BENCH_QUICK=1` for a reduced sweep.

use scr_bench::{check_shape, core_counts, openbench, quick_core_counts, render_table};

fn main() {
    let quick = std::env::var("SCR_BENCH_QUICK").is_ok();
    let cores = if quick {
        quick_core_counts()
    } else {
        core_counts()
    };
    let rounds = if quick { 30 } else { 60 };
    let series = openbench::sweep(&cores, rounds);
    println!(
        "{}",
        render_table(
            "Figure 7(b) — openbench throughput (opens/sec/core)",
            &series
        )
    );
    match check_shape(&series[0], &series[1], 0.6) {
        Ok(()) => println!(
            "shape OK: {} stays flat while {} collapses",
            series[0].name, series[1].name
        ),
        Err(e) => println!("shape MISMATCH: {e}"),
    }
}
