//! Figure 7 on real hardware: the statbench / openbench / mailbench
//! workloads executed by OS threads against the `scr-host` kernel, printed
//! as the same tables as the simulated sweeps.
//!
//! Run with `cargo bench -p scr-bench --bench fig7_host`. Set
//! `SCR_BENCH_QUICK=1` for a fast low-iteration pass.

use scr_bench::hostbench::{
    host_thread_counts, mailbench_host, mailbench_host_latency, openbench_host,
    render_latency_table, statbench_host,
};
use scr_bench::render_table;

fn main() {
    let quick = std::env::var("SCR_BENCH_QUICK").is_ok();
    let (fs_ops, mail_ops) = if quick { (2_000, 500) } else { (20_000, 4_000) };
    let threads = host_thread_counts();
    println!(
        "host parallelism: {} hardware threads; sweeping {threads:?}\n",
        scr_host::available_threads()
    );
    println!(
        "{}",
        render_table(
            "statbench (host threads, ops/sec/core)",
            &statbench_host(&threads, fs_ops),
        )
    );
    println!(
        "{}",
        render_table(
            "openbench (host threads, ops/sec/core)",
            &openbench_host(&threads, fs_ops),
        )
    );
    println!(
        "{}",
        render_table(
            "mailbench (host threads, messages/sec/core)",
            &mailbench_host(&threads, mail_ops),
        )
    );
    println!(
        "{}",
        render_latency_table(
            "mailbench closed-loop latency (ns per message)",
            &mailbench_host_latency(&threads, mail_ops),
        )
    );
}
