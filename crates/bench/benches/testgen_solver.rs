//! TESTGEN solver benchmarks over the offset-arithmetic-heavy call pairs.
//!
//! `lseek ∥ write` composes `ite(whence_end, len + off, off)` through the
//! final-state equality obligations, producing deeply shared expression
//! DAGs that made the previous tree-walking solver take *minutes* for this
//! one pair (every other pair of the same call sets finished in well under
//! a second). The indexed engine (compiled DAG arena, watch index, forward
//! checking — see `scr_symbolic::solver`) generates the same corpus
//! byte-for-byte in fractions of a second; these benchmarks record that
//! trajectory so future solver changes are measured against it.
//!
//! Three views per pair:
//!
//! * `analyze:<pair>` — ANALYZER cost (path exploration + satisfiability
//!   checks, the MRV-ordered decision procedure).
//! * `generate:<pair>` — TESTGEN cost with the solution caches cleared
//!   every iteration (cold solver: enumeration + solve-and-repair).
//! * `generate-cached:<pair>` — the same corpus served from the
//!   memoization layer, the regime the host Figure 6 pipeline and
//!   differential campaigns run in after their first sweep.
//!
//! Run with `cargo bench -p scr-bench --bench testgen_solver`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use scr_core::pipeline::CommuterConfig;
use scr_core::testgen::solver_cache_clear;
use scr_core::{analyze_pair, enumerate_shapes, generate_tests, CommutativeCase, PairShape};
use scr_model::CallKind;

/// The arithmetic-heavy pairs: file offsets flow through `ite` chains and
/// additions into the state-equality obligations.
const PAIRS: [(CallKind, CallKind); 4] = [
    (CallKind::Lseek, CallKind::Write),
    (CallKind::Lseek, CallKind::Lseek),
    (CallKind::Read, CallKind::Write),
    (CallKind::Pwrite, CallKind::Pwrite),
];

fn bench_pair(c: &mut Criterion, config: &CommuterConfig, a: CallKind, b: CallKind) {
    let tag = format!("{}-{}", a.name(), b.name());
    let shapes: Vec<PairShape> = enumerate_shapes(a, b, &config.model);
    c.bench_function(&format!("analyze:{tag}"), |bench| {
        bench.iter(|| {
            let mut cases = 0usize;
            for shape in &shapes {
                cases += analyze_pair(shape, &config.model).cases.len();
            }
            black_box(cases)
        })
    });
    let analysed: Vec<(&PairShape, Vec<CommutativeCase>)> = shapes
        .iter()
        .map(|shape| (shape, analyze_pair(shape, &config.model).cases))
        .collect();
    let generate = |clear: bool| {
        if clear {
            solver_cache_clear();
        }
        let mut tests = 0usize;
        for (shape, cases) in &analysed {
            tests += generate_tests(
                shape,
                cases,
                &config.model,
                &config.names,
                config.max_assignments_per_case,
            )
            .tests
            .len();
        }
        tests
    };
    c.bench_function(&format!("generate:{tag}"), |bench| {
        bench.iter(|| black_box(generate(true)))
    });
    // Warm the caches once, then measure the memoized regime.
    let _ = generate(true);
    c.bench_function(&format!("generate-cached:{tag}"), |bench| {
        bench.iter(|| black_box(generate(false)))
    });
}

fn solver_benches(c: &mut Criterion) {
    let config = CommuterConfig::default();
    for (a, b) in PAIRS {
        bench_pair(c, &config, a, b);
    }
}

criterion_group!(benches, solver_benches);
criterion_main!(benches);
