//! Criterion micro-benchmarks of the scalable primitives on the host
//! machine.
//!
//! These benchmarks complement the simulator-based figures with real-thread
//! measurements of the §7.2 single-core observations: a shared atomic
//! counter versus a per-core (cache-line padded) counter, and the cost of a
//! Refcache-style exact read (which must sum every per-core delta) versus a
//! plain read — the reason `fstat` with `st_nlink` is several times more
//! expensive than `fstatx` without it.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use scr_scalable::percore_alloc::FdMode;
use scr_scalable::real::{HostFdAllocator, PerCoreCounter, PerCoreRefcount, SharedCounter};
use std::sync::Arc;
use std::thread;

fn counter_increment(c: &mut Criterion) {
    let mut group = c.benchmark_group("counter_increment_4_threads");
    let threads = 4;
    group.bench_function("shared_atomic", |b| {
        b.iter_batched(
            || Arc::new(SharedCounter::new()),
            |counter| {
                let handles: Vec<_> = (0..threads)
                    .map(|_| {
                        let counter = Arc::clone(&counter);
                        thread::spawn(move || {
                            for _ in 0..5_000 {
                                counter.add(1);
                            }
                        })
                    })
                    .collect();
                for h in handles {
                    h.join().unwrap();
                }
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("per_core_padded", |b| {
        b.iter_batched(
            || Arc::new(PerCoreCounter::new(threads)),
            |counter| {
                let handles: Vec<_> = (0..threads)
                    .map(|t| {
                        let counter = Arc::clone(&counter);
                        thread::spawn(move || {
                            for _ in 0..5_000 {
                                counter.add(t, 1);
                            }
                        })
                    })
                    .collect();
                for h in handles {
                    h.join().unwrap();
                }
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn refcount_reads(c: &mut Criterion) {
    let mut group = c.benchmark_group("refcount_read");
    let rc = PerCoreRefcount::new(80, 1);
    for core in 0..80 {
        rc.inc(core);
    }
    group.bench_function("exact_read_sums_80_deltas", |b| {
        b.iter(|| std::hint::black_box(rc.read_exact()))
    });
    group.bench_function("reconciled_read_single_line", |b| {
        b.iter(|| std::hint::black_box(rc.read_reconciled()))
    });
    group.finish();
}

fn fd_allocation(c: &mut Criterion) {
    // The openbench observation at primitive level: POSIX lowest-FD
    // allocation funnels every thread through one bitmap lock, while the
    // O_ANYFD per-core partitions keep allocations core-local.
    let mut group = c.benchmark_group("fd_alloc_free_4_threads");
    let threads = 4;
    for (name, mode) in [
        ("lowest_shared_bitmap", FdMode::Lowest),
        ("anyfd_per_core", FdMode::Any),
    ] {
        group.bench_function(name, |b| {
            b.iter_batched(
                || Arc::new(HostFdAllocator::new(threads, 64, mode)),
                |fds| {
                    let handles: Vec<_> = (0..threads)
                        .map(|t| {
                            let fds = Arc::clone(&fds);
                            thread::spawn(move || {
                                for _ in 0..2_000 {
                                    let fd = fds.alloc(t).expect("fd");
                                    fds.free(fd);
                                }
                            })
                        })
                        .collect();
                    for h in handles {
                        h.join().unwrap();
                    }
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, counter_increment, refcount_reads, fd_allocation);
criterion_main!(benches);
