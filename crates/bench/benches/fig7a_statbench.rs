//! Figure 7(a): statbench throughput, fstat versus fstatx.
//!
//! Regenerates the three curves of Figure 7(a) — `fstatx` without
//! `st_nlink`, `fstat` with a single shared link count, and `fstat` with a
//! Refcache link count — as operations per second per core over the paper's
//! core-count axis (1, 10, 20, …, 80). Absolute numbers come from the
//! simulator's cost model; the claim being reproduced is the *shape*: the
//! commutative `fstatx` stays flat while both `fstat` variants collapse.
//!
//! Run with `cargo bench -p scr-bench --bench fig7a_statbench`. Set
//! `SCR_BENCH_QUICK=1` for a reduced sweep.

use scr_bench::{check_shape, core_counts, quick_core_counts, render_table, statbench};

fn main() {
    let quick = std::env::var("SCR_BENCH_QUICK").is_ok();
    let cores = if quick {
        quick_core_counts()
    } else {
        core_counts()
    };
    let rounds = if quick { 30 } else { 60 };
    let series = statbench::sweep(&cores, rounds);
    println!(
        "{}",
        render_table(
            "Figure 7(a) — statbench throughput (fstats/sec/core)",
            &series
        )
    );
    let fstatx = &series[0];
    let refcache = &series[2];
    match check_shape(fstatx, refcache, 0.6) {
        Ok(()) => println!(
            "shape OK: {} stays flat while {} collapses",
            fstatx.name, refcache.name
        ),
        Err(e) => println!("shape MISMATCH: {e}"),
    }
}
