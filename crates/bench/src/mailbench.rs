//! Mail server benchmark — Figure 7(c).
//!
//! The qmail-style mail server of §7.3 (`scr_kernel::mail`) is driven end to
//! end: every core continuously delivers a message (enqueue, notify, queue
//! manager, delivery, cleanup). The benchmark compares the regular-API
//! configuration (lowest FD, ordered notification socket, `fork`) with the
//! commutative-API configuration (`O_ANYFD`, unordered socket,
//! `posix_spawn`).

use crate::Series;
use scr_kernel::api::{KernelApi, SyscallApi};
use scr_kernel::mail::{MailConfig, MailServer};
use scr_kernel::Sv6Kernel;
use scr_mtrace::{ScalingParams, ThroughputModel};

/// Legend label for a configuration.
pub fn label(config: MailConfig) -> &'static str {
    match config {
        MailConfig::RegularApis => "Regular APIs",
        MailConfig::CommutativeApis => "Commutative APIs",
    }
}

/// Runs the mail workload for one configuration and core count.
pub fn run_mode(config: MailConfig, cores: usize, rounds: usize) -> scr_mtrace::ScalingPoint {
    let kernel = Sv6Kernel::new(cores.max(2));
    let machine = kernel.machine().clone();
    let client = kernel.new_process();
    let qman = kernel.new_process();
    let server = MailServer::new(&kernel, config, cores.max(1)).expect("mail server");

    machine.clear_trace();
    machine.start_tracing();
    for round in 0..rounds {
        for core in 0..cores {
            machine.on_core(core, || {
                let mailbox = format!("user{core}");
                let body = format!("message {round} from core {core}");
                server
                    .deliver_one(core, client, qman, &mailbox, body.as_bytes())
                    .expect("mail delivery");
            });
        }
    }
    machine.stop_tracing();
    let model = ThroughputModel::new(ScalingParams::default());
    model.evaluate(&machine.accesses(), cores, rounds as u64)
}

/// Runs the full mail-server sweep.
pub fn sweep(core_counts: &[usize], rounds: usize) -> Vec<Series> {
    [MailConfig::CommutativeApis, MailConfig::RegularApis]
        .into_iter()
        .map(|config| Series {
            name: label(config).to_string(),
            points: core_counts
                .iter()
                .map(|&cores| run_mode(config, cores, rounds))
                .collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commutative_apis_outperform_regular_apis_at_scale() {
        let cores = [1usize, 8, 16];
        let series = sweep(&cores, 12);
        let commutative = &series[0];
        let regular = &series[1];
        let c_last = commutative.points.last().unwrap().ops_per_sec_per_core;
        let r_last = regular.points.last().unwrap().ops_per_sec_per_core;
        assert!(
            c_last > r_last,
            "commutative APIs must outperform regular APIs at 16 cores ({c_last:.0} vs {r_last:.0})"
        );
        // And the commutative configuration must retain most of its
        // single-core per-core throughput.
        let c_first = commutative.points.first().unwrap().ops_per_sec_per_core;
        assert!(c_last > 0.5 * c_first);
    }

    #[test]
    fn labels_are_distinct() {
        assert_ne!(
            label(MailConfig::RegularApis),
            label(MailConfig::CommutativeApis)
        );
    }
}
