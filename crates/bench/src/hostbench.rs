//! Host-backed variants of the Figure-7 benchmarks: the same workload
//! shapes as [`crate::statbench`], [`crate::openbench`] and
//! [`crate::mailbench`], but executed by real OS threads against
//! `scr_host::HostKernel` instead of replayed through the simulator's
//! throughput model.
//!
//! Thread counts are clamped to the host's available parallelism — a
//! measured point beyond the physical core count would show scheduler
//! artefacts, not cache-coherence behaviour.

use crate::Series;
use scr_host::workloads::{self, HostStatMode, MailTelemetry};
use scr_host::{available_threads, HostMode};
use scr_kernel::mail::MailConfig;
use scr_obs::{HistogramSnapshot, DEFAULT_QUANTILES};

/// Thread counts for a host sweep: 1, 2, 4, … up to the hardware limit
/// (always at least two points so shape comparisons are possible).
pub fn host_thread_counts() -> Vec<usize> {
    let max = available_threads();
    let mut counts = vec![1];
    let mut n = 2;
    while n <= max {
        counts.push(n);
        n *= 2;
    }
    if counts.len() < 2 {
        counts.push(2);
    }
    counts
}

/// statbench on real threads: the sv6-like kernel in all three stat modes.
pub fn statbench_host(threads: &[usize], ops_per_thread: u64) -> Vec<Series> {
    [
        HostStatMode::FstatxNoNlink,
        HostStatMode::FstatSharedCount,
        HostStatMode::FstatRefcache,
    ]
    .into_iter()
    .map(|stat_mode| Series {
        name: stat_mode.label().to_string(),
        points: threads
            .iter()
            .map(|&n| workloads::statbench(HostMode::Sv6, stat_mode, n, ops_per_thread))
            .collect(),
    })
    .collect()
}

/// openbench on real threads: sv6-like `O_ANYFD` against the linuxlike
/// globally-locked kernel with lowest-FD allocation.
pub fn openbench_host(threads: &[usize], ops_per_thread: u64) -> Vec<Series> {
    [
        (HostMode::Sv6, true, "sv6-like, O_ANYFD"),
        (HostMode::Linuxlike, false, "linuxlike, lowest FD"),
    ]
    .into_iter()
    .map(|(mode, anyfd, name)| Series {
        name: name.to_string(),
        points: threads
            .iter()
            .map(|&n| workloads::openbench(mode, anyfd, n, ops_per_thread))
            .collect(),
    })
    .collect()
}

/// The §7.3 mail pipeline on real threads (enqueue → notification socket →
/// qman → spawn/wait → deliver): commutative APIs on the sv6-like kernel
/// against regular APIs on the linuxlike kernel — the paper's Figure 7
/// mail-server comparison.
pub fn mailbench_host(threads: &[usize], ops_per_thread: u64) -> Vec<Series> {
    mail_columns()
        .into_iter()
        .map(|(mode, config, name)| Series {
            name: name.to_string(),
            points: threads
                .iter()
                .map(|&n| workloads::mailbench(mode, config, n, ops_per_thread))
                .collect(),
        })
        .collect()
}

/// The two mailbench columns, shared by the throughput and latency sweeps.
fn mail_columns() -> [(HostMode, MailConfig, &'static str); 2] {
    [
        (
            HostMode::Sv6,
            MailConfig::CommutativeApis,
            "sv6-like, commutative APIs",
        ),
        (
            HostMode::Linuxlike,
            MailConfig::RegularApis,
            "linuxlike, regular APIs",
        ),
    ]
}

/// One row of the closed-loop mail latency table: a configuration at a
/// thread count, with its merged `mail.latency_ns` distribution.
pub struct MailLatencyRow {
    /// Configuration label (same legend as [`mailbench_host`]).
    pub name: String,
    /// Worker threads in the run.
    pub threads: usize,
    /// Per-operation (enqueue → delivered) latency, ns.
    pub latency: HistogramSnapshot,
}

/// mailbench with per-operation latency recording: each cell re-runs the
/// workload with a [`MailTelemetry`] attached, so the same
/// `mail.latency_ns` histogram the open-loop observatory records is filled
/// by the closed-loop path — these are the service-time-ish numbers the
/// open-loop sweep's intended-arrival latencies should be compared against.
pub fn mailbench_host_latency(threads: &[usize], ops_per_thread: u64) -> Vec<MailLatencyRow> {
    let mut rows = Vec::new();
    for (mode, config, name) in mail_columns() {
        for &n in threads {
            let telemetry = MailTelemetry::new(n);
            workloads::mailbench_observed(mode, config, n, ops_per_thread, Some(&telemetry));
            rows.push(MailLatencyRow {
                name: name.to_string(),
                threads: n,
                latency: telemetry.latency.merged(),
            });
        }
    }
    rows
}

/// Render the closed-loop latency rows with the default quantile columns
/// (p50 / p90 / p99 / p99.9).
pub fn render_latency_table(title: &str, rows: &[MailLatencyRow]) -> String {
    let mut out = format!("{title}\n{:<30} {:>8}", "configuration", "threads");
    for (label, _) in DEFAULT_QUANTILES {
        let label = if label == "p999" { "p99.9" } else { label };
        out.push_str(&format!(" {label:>10}"));
    }
    out.push('\n');
    for row in rows {
        out.push_str(&format!("{:<30} {:>8}", row.name, row.threads));
        for (_, q) in DEFAULT_QUANTILES {
            out.push_str(&format!(" {:>10.0}", row.latency.quantile(q)));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_thread_counts_start_at_one_and_grow() {
        let counts = host_thread_counts();
        assert_eq!(counts[0], 1);
        assert!(counts.len() >= 2);
        assert!(counts.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn host_sweeps_produce_points_for_every_thread_count() {
        let threads = [1usize, 2];
        for series in [
            statbench_host(&threads, 40),
            openbench_host(&threads, 40),
            mailbench_host(&threads, 10),
        ] {
            assert!(!series.is_empty());
            for s in &series {
                assert_eq!(s.points.len(), threads.len());
                assert!(s.points.iter().all(|p| p.ops_per_sec_per_core > 0.0));
            }
        }
    }

    #[test]
    fn latency_sweep_fills_a_distribution_per_cell() {
        let threads = [1usize, 2];
        let rows = mailbench_host_latency(&threads, 10);
        assert_eq!(rows.len(), 2 * threads.len());
        for row in &rows {
            assert_eq!(row.latency.count, 10 * row.threads as u64);
            assert!(row.latency.p50() <= row.latency.p999());
        }
        let table = render_latency_table("mail latency (ns)", &rows);
        assert!(table.contains("p99.9"));
        assert!(table.contains("sv6-like, commutative APIs"));
    }
}
