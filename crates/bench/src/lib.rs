//! # scr-bench — workload generators for the evaluation harness
//!
//! The benchmark binaries under `benches/` regenerate the paper's tables and
//! figures; the reusable workload drivers live here so that integration
//! tests and examples can exercise the same code paths with smaller
//! parameters.
//!
//! * [`statbench`] — Figure 7(a): n/2 cores `fstat` one file while n/2 cores
//!   `link`/`unlink` it, in three modes (plain `fstat` with a Refcache link
//!   count, plain `fstat` with a single shared link count, and `fstatx`
//!   without `st_nlink`).
//! * [`openbench`] — Figure 7(b): every core opens and closes a per-core
//!   file, with lowest-FD versus `O_ANYFD` allocation.
//! * [`mailbench`] — Figure 7(c): the qmail-style mail server in its
//!   regular-API and commutative-API configurations.
//!
//! Each driver runs the workload on the simulated machine for a given core
//! count, then feeds the recorded access trace to
//! [`scr_mtrace::ThroughputModel`] to obtain operations per second per core.
//! [`hostbench`] mirrors the same three workloads on real OS threads
//! against `scr_host::HostKernel`, measuring wall-clock ops/sec/core.

pub mod hostbench;
pub mod mailbench;
pub mod openbench;
pub mod statbench;

use scr_mtrace::ScalingPoint;

/// The core counts swept by the Figure 7 benchmarks (the paper's x-axis:
/// 1 core, then whole sockets of 10 up to 80).
pub fn core_counts() -> Vec<usize> {
    vec![1, 10, 20, 30, 40, 50, 60, 70, 80]
}

/// A reduced sweep for tests and quick runs.
pub fn quick_core_counts() -> Vec<usize> {
    vec![1, 4, 8, 16]
}

/// One benchmark series: a labelled curve of scaling points.
#[derive(Clone, Debug)]
pub struct Series {
    /// Label (e.g. "fstatx", "Lowest FD").
    pub name: String,
    /// One point per core count.
    pub points: Vec<ScalingPoint>,
}

/// Formats a set of series as the text table printed by the benchmark
/// binaries.
pub fn render_table(title: &str, series: &[Series]) -> String {
    let pairs: Vec<(String, Vec<ScalingPoint>)> = series
        .iter()
        .map(|s| (s.name.clone(), s.points.clone()))
        .collect();
    scr_mtrace::scaling::format_series(title, &pairs)
}

/// Asserts the qualitative "shape" claims the paper makes about a pair of
/// series:
///
/// * the scalable variant keeps at least `flat_ratio` of its single-core
///   per-core throughput at the largest core count (the flat curve of
///   Figure 7), and
/// * the non-scalable variant loses at least half of **its own** single-core
///   per-core throughput at the largest core count (the collapsing curve),
///   and ends up below the scalable variant.
///
/// Returns an error string describing the first violated condition (used by
/// integration tests and the benchmark binaries).
pub fn check_shape(scalable: &Series, collapsing: &Series, flat_ratio: f64) -> Result<(), String> {
    let first = scalable
        .points
        .first()
        .ok_or_else(|| "empty series".to_string())?;
    let last = scalable
        .points
        .last()
        .ok_or_else(|| "empty series".to_string())?;
    let ratio = last.ops_per_sec_per_core / first.ops_per_sec_per_core;
    if ratio < flat_ratio {
        return Err(format!(
            "{} lost too much per-core throughput: {:.2} of single-core",
            scalable.name, ratio
        ));
    }
    let collapsing_first = collapsing
        .points
        .first()
        .ok_or_else(|| "empty series".to_string())?;
    let collapsing_last = collapsing
        .points
        .last()
        .ok_or_else(|| "empty series".to_string())?;
    let collapsing_ratio =
        collapsing_last.ops_per_sec_per_core / collapsing_first.ops_per_sec_per_core;
    if collapsing_ratio > 0.5 {
        return Err(format!(
            "{} did not collapse: it kept {:.2} of its single-core per-core throughput",
            collapsing.name, collapsing_ratio
        ));
    }
    if collapsing_last.ops_per_sec_per_core >= last.ops_per_sec_per_core {
        return Err(format!(
            "{} did not end up below {} ({:.0} vs {:.0} ops/s/core)",
            collapsing.name,
            scalable.name,
            collapsing_last.ops_per_sec_per_core,
            last.ops_per_sec_per_core
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_point(cores: usize, ops: f64) -> ScalingPoint {
        ScalingPoint {
            cores,
            total_ops: 100,
            ops_per_sec_per_core: ops,
            remote_transfers: 0,
            elapsed_seconds: 1.0,
        }
    }

    #[test]
    fn shape_check_accepts_flat_vs_collapse() {
        let flat = Series {
            name: "scalable".into(),
            points: vec![fake_point(1, 1000.0), fake_point(80, 950.0)],
        };
        let collapse = Series {
            name: "contended".into(),
            points: vec![fake_point(1, 1000.0), fake_point(80, 50.0)],
        };
        assert!(check_shape(&flat, &collapse, 0.7).is_ok());
    }

    #[test]
    fn shape_check_rejects_flat_that_collapses() {
        let not_flat = Series {
            name: "supposedly-scalable".into(),
            points: vec![fake_point(1, 1000.0), fake_point(80, 100.0)],
        };
        let collapse = Series {
            name: "contended".into(),
            points: vec![fake_point(1, 1000.0), fake_point(80, 50.0)],
        };
        assert!(check_shape(&not_flat, &collapse, 0.7).is_err());
    }

    #[test]
    fn render_table_includes_labels() {
        let series = vec![Series {
            name: "anyfd".into(),
            points: vec![fake_point(1, 10.0)],
        }];
        let table = render_table("openbench", &series);
        assert!(table.contains("openbench"));
        assert!(table.contains("anyfd"));
    }

    #[test]
    fn core_counts_match_the_paper_axis() {
        assert_eq!(core_counts().first(), Some(&1));
        assert_eq!(core_counts().last(), Some(&80));
        assert!(quick_core_counts().len() < core_counts().len());
    }
}
