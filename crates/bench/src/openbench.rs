//! openbench — Figure 7(b).
//!
//! `n` threads of one process concurrently open and close per-thread files.
//! Under POSIX's "lowest available FD" rule the opens do not commute (the
//! returned descriptor depends on execution order) and the descriptor
//! allocator is a process-wide shared structure; with `O_ANYFD` the opens
//! commute and sv6 allocates from per-core partitions, so the benchmark
//! scales linearly.

use crate::Series;
use scr_kernel::api::{KernelApi, OpenFlags, SyscallApi};
use scr_kernel::Sv6Kernel;
use scr_mtrace::{ScalingParams, ThroughputModel};

/// Descriptor-allocation policy under test.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpenMode {
    /// POSIX lowest-FD allocation.
    LowestFd,
    /// The `O_ANYFD` relaxation (§4).
    AnyFd,
}

impl OpenMode {
    /// Legend label.
    pub fn label(&self) -> &'static str {
        match self {
            OpenMode::LowestFd => "Lowest FD",
            OpenMode::AnyFd => "Any FD (O_ANYFD)",
        }
    }
}

/// Runs openbench for one mode and core count.
pub fn run_mode(mode: OpenMode, cores: usize, rounds: usize) -> scr_mtrace::ScalingPoint {
    let kernel = Sv6Kernel::new(cores.max(2));
    let machine = kernel.machine().clone();
    let pid = kernel.new_process();
    // Pre-create the per-core files so the measured loop exercises only
    // descriptor allocation.
    for core in 0..cores {
        let fd = kernel
            .open(core, pid, &format!("openbench-{core}"), OpenFlags::create())
            .expect("create per-core file");
        kernel.close(core, pid, fd).expect("close");
    }

    machine.clear_trace();
    machine.start_tracing();
    for _ in 0..rounds {
        for core in 0..cores {
            machine.on_core(core, || {
                let flags = match mode {
                    OpenMode::LowestFd => OpenFlags::plain(),
                    OpenMode::AnyFd => OpenFlags::plain().with_anyfd(),
                };
                let fd = kernel
                    .open(core, pid, &format!("openbench-{core}"), flags)
                    .expect("open");
                kernel.close(core, pid, fd).expect("close");
            });
        }
    }
    machine.stop_tracing();
    let model = ThroughputModel::new(ScalingParams::default());
    model.evaluate(&machine.accesses(), cores, rounds as u64)
}

/// Runs the full openbench sweep.
pub fn sweep(core_counts: &[usize], rounds: usize) -> Vec<Series> {
    [OpenMode::AnyFd, OpenMode::LowestFd]
        .into_iter()
        .map(|mode| Series {
            name: mode.label().to_string(),
            points: core_counts
                .iter()
                .map(|&cores| run_mode(mode, cores, rounds))
                .collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_shape;

    #[test]
    fn anyfd_scales_and_lowest_fd_collapses() {
        let cores = [1usize, 8, 16];
        let series = sweep(&cores, 40);
        let anyfd = &series[0];
        let lowest = &series[1];
        assert!(check_shape(anyfd, lowest, 0.6).is_ok(), "{series:?}");
    }

    #[test]
    fn labels_are_distinct() {
        assert_ne!(OpenMode::LowestFd.label(), OpenMode::AnyFd.label());
    }
}
