//! statbench — Figure 7(a).
//!
//! One file is created; `n/2` cores repeatedly `fstat` it while the other
//! `n/2` cores repeatedly `link` it to a fresh name and `unlink` that name.
//! `fstat` does not commute with `link`/`unlink` because it returns
//! `st_nlink`, so its implementation must observe the link count; the
//! benchmark isolates the cost of that non-commutativity by comparing:
//!
//! * **fstat / Refcache** — the scalable link counter makes `link`/`unlink`
//!   conflict-free but `fstat` must reconcile every per-core delta;
//! * **fstat / shared count** — one shared cache line, the minimum possible
//!   sharing for the non-commutative interface;
//! * **fstatx (no st_nlink)** — the commutative interface of §4, which never
//!   touches the link count and scales flat.

use crate::Series;
use scr_kernel::api::{KernelApi, OpenFlags, StatMask, SyscallApi};
use scr_kernel::{Sv6Kernel, Sv6Options};
use scr_mtrace::{ScalingParams, ThroughputModel};

/// Which statbench variant to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StatMode {
    /// `fstat` with Refcache link counts ("With Refcache st_nlink").
    FstatRefcache,
    /// `fstat` with a single shared link count ("With shared st_nlink").
    FstatSharedCount,
    /// `fstatx` requesting everything except the link count
    /// ("Without st_nlink").
    FstatxNoNlink,
}

impl StatMode {
    /// The label used in the Figure 7(a) legend.
    pub fn label(&self) -> &'static str {
        match self {
            StatMode::FstatRefcache => "fstat (Refcache st_nlink)",
            StatMode::FstatSharedCount => "fstat (shared st_nlink)",
            StatMode::FstatxNoNlink => "fstatx (without st_nlink)",
        }
    }
}

/// Runs one statbench configuration for one core count and returns the
/// recorded access trace length and scaling point.
pub fn run_mode(mode: StatMode, cores: usize, rounds: usize) -> scr_mtrace::ScalingPoint {
    let options = Sv6Options {
        shared_link_counts: matches!(mode, StatMode::FstatSharedCount),
    };
    let kernel = Sv6Kernel::with_options(cores.max(2), options);
    let machine = kernel.machine().clone();
    let pid = kernel.new_process();
    let fd = kernel
        .open(0, pid, "statfile", OpenFlags::create())
        .expect("create statfile");

    machine.clear_trace();
    machine.start_tracing();
    let stat_cores = (cores / 2).max(1);
    for round in 0..rounds {
        for core in 0..cores {
            machine.on_core(core, || {
                if core < stat_cores {
                    match mode {
                        StatMode::FstatxNoNlink => {
                            kernel
                                .fstatx(core, pid, fd, StatMask::all_but_nlink())
                                .expect("fstatx");
                        }
                        _ => {
                            kernel.fstat(core, pid, fd).expect("fstat");
                        }
                    }
                } else {
                    let scratch = format!("statlink-{core}-{round}");
                    kernel.link(core, pid, "statfile", &scratch).expect("link");
                    kernel.unlink(core, pid, &scratch).expect("unlink");
                }
            });
        }
    }
    machine.stop_tracing();
    let model = ThroughputModel::new(ScalingParams::default());
    model.evaluate(&machine.accesses(), cores, rounds as u64)
}

/// Runs the full statbench sweep: one series per mode over `core_counts`.
pub fn sweep(core_counts: &[usize], rounds: usize) -> Vec<Series> {
    [
        StatMode::FstatxNoNlink,
        StatMode::FstatSharedCount,
        StatMode::FstatRefcache,
    ]
    .into_iter()
    .map(|mode| Series {
        name: mode.label().to_string(),
        points: core_counts
            .iter()
            .map(|&cores| run_mode(mode, cores, rounds))
            .collect(),
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_shape;

    #[test]
    fn fstatx_scales_and_fstat_collapses() {
        let cores = [1usize, 8, 16];
        let rounds = 40;
        let series = sweep(&cores, rounds);
        let fstatx = &series[0];
        let shared = &series[1];
        let refcache = &series[2];
        assert!(check_shape(fstatx, refcache, 0.6).is_ok(), "{series:?}");
        // Even a single shared cache line prevents scaling (§7.2).
        assert!(
            shared.points.last().unwrap().ops_per_sec_per_core
                < 0.8 * fstatx.points.last().unwrap().ops_per_sec_per_core
        );
    }

    #[test]
    fn mode_labels_are_distinct() {
        let labels: std::collections::BTreeSet<_> = [
            StatMode::FstatRefcache,
            StatMode::FstatSharedCount,
            StatMode::FstatxNoNlink,
        ]
        .iter()
        .map(|m| m.label())
        .collect();
        assert_eq!(labels.len(), 3);
    }
}
