//! A traced spin lock.
//!
//! On the simulated machine there is no real concurrency, so the lock never
//! actually spins; what matters is its *memory footprint*: acquiring and
//! releasing the lock reads and writes the lock word's cache line, exactly
//! like a real spinlock's `lock cmpxchg`. Two cores taking the same lock
//! therefore conflict on that line — this is how the Linux-like baseline's
//! coarse locks show up in the Figure 6 results.

use scr_mtrace::{SimMachine, TracedCell};

/// A spin lock whose lock word lives on its own traced cache line.
#[derive(Clone, Debug)]
pub struct TracedLock {
    word: TracedCell<bool>,
}

impl TracedLock {
    /// Allocates a lock on a fresh line with the given label.
    pub fn new(machine: &SimMachine, label: impl Into<String>) -> Self {
        TracedLock {
            word: machine.cell(label, false),
        }
    }

    /// Acquires the lock (read-modify-write of the lock word).
    pub fn lock(&self) {
        // A real spinlock would loop; on the simulated machine the lock is
        // always available, but the acquisition still costs an exclusive
        // access to the line.
        self.word.update(|held| {
            debug_assert!(!*held, "simulated lock is not re-entrant");
            *held = true;
        });
    }

    /// Releases the lock (write of the lock word).
    pub fn unlock(&self) {
        self.word.set(false);
    }

    /// Runs a closure with the lock held.
    pub fn with<R>(&self, f: impl FnOnce() -> R) -> R {
        self.lock();
        let out = f();
        self.unlock();
        out
    }

    /// Is the lock currently held? (Untraced; for assertions.)
    pub fn is_locked(&self) -> bool {
        self.word.peek(|h| *h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_unlock_roundtrip() {
        let m = SimMachine::new();
        let lock = TracedLock::new(&m, "dir.lock");
        assert!(!lock.is_locked());
        lock.lock();
        assert!(lock.is_locked());
        lock.unlock();
        assert!(!lock.is_locked());
    }

    #[test]
    fn with_releases_on_exit() {
        let m = SimMachine::new();
        let lock = TracedLock::new(&m, "l");
        let out = lock.with(|| 42);
        assert_eq!(out, 42);
        assert!(!lock.is_locked());
    }

    #[test]
    fn contended_lock_is_a_conflict() {
        let m = SimMachine::new();
        let lock = TracedLock::new(&m, "parent_dir.lock");
        m.start_tracing();
        m.on_core(0, || lock.with(|| ()));
        m.on_core(1, || lock.with(|| ()));
        let report = m.conflict_report();
        assert!(!report.is_conflict_free());
        assert_eq!(
            report.conflicting_labels(),
            vec!["parent_dir.lock".to_string()]
        );
    }

    #[test]
    fn distinct_locks_do_not_conflict() {
        let m = SimMachine::new();
        let a = TracedLock::new(&m, "bucket[0].lock");
        let b = TracedLock::new(&m, "bucket[1].lock");
        m.start_tracing();
        m.on_core(0, || a.with(|| ()));
        m.on_core(1, || b.with(|| ()));
        assert!(m.conflict_report().is_conflict_free());
    }
}
