//! Host-hardware twins of the scalable primitives.
//!
//! The traced primitives in the rest of this crate run on the *simulated*
//! machine so that conflicts are observable. The types here are small real
//! implementations using atomics and cache-line padding; the Criterion
//! benchmark `primitives` drives them from actual threads to confirm, on the
//! host machine, the qualitative behaviour the simulator predicts: per-core
//! counters scale where a single shared counter does not (the §7.2
//! observation that even one contended cache line wrecks scalability).

use crate::percore_alloc::FdMode;
use crossbeam::utils::CachePadded;
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A single shared atomic counter — the non-scalable baseline.
#[derive(Debug, Default)]
pub struct SharedCounter {
    value: CachePadded<AtomicI64>,
}

impl SharedCounter {
    /// A counter starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` (contended RMW on one cache line).
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current value.
    pub fn read(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A per-core sharded atomic counter — the scalable variant.
#[derive(Debug)]
pub struct PerCoreCounter {
    shards: Vec<CachePadded<AtomicI64>>,
}

impl PerCoreCounter {
    /// A counter with `shards` cache-line-padded shards.
    pub fn new(shards: usize) -> Self {
        PerCoreCounter {
            shards: (0..shards.max(1))
                .map(|_| CachePadded::new(AtomicI64::new(0)))
                .collect(),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Adds `delta` on behalf of `core` (uncontended RMW on that core's
    /// line).
    pub fn add(&self, core: usize, delta: i64) {
        self.shards[core % self.shards.len()].fetch_add(delta, Ordering::Relaxed);
    }

    /// Sums every shard (the expensive exact read).
    pub fn read(&self) -> i64 {
        self.shards.iter().map(|s| s.load(Ordering::Relaxed)).sum()
    }
}

/// A Refcache-style reference counter over real atomics: per-core deltas
/// plus a reconciled global value.
#[derive(Debug)]
pub struct PerCoreRefcount {
    global: CachePadded<AtomicI64>,
    deltas: Vec<CachePadded<AtomicI64>>,
}

impl PerCoreRefcount {
    /// A counter with the given initial value and one delta per core.
    pub fn new(cores: usize, initial: i64) -> Self {
        PerCoreRefcount {
            global: CachePadded::new(AtomicI64::new(initial)),
            deltas: (0..cores.max(1))
                .map(|_| CachePadded::new(AtomicI64::new(0)))
                .collect(),
        }
    }

    /// Increments on behalf of `core`.
    pub fn inc(&self, core: usize) {
        self.deltas[core % self.deltas.len()].fetch_add(1, Ordering::Relaxed);
    }

    /// Decrements on behalf of `core`.
    pub fn dec(&self, core: usize) {
        self.deltas[core % self.deltas.len()].fetch_sub(1, Ordering::Relaxed);
    }

    /// Folds every delta into the global count and returns it.
    pub fn flush(&self) -> i64 {
        let mut sum = 0;
        for delta in &self.deltas {
            sum += delta.swap(0, Ordering::Relaxed);
        }
        self.global.fetch_add(sum, Ordering::Relaxed) + sum
    }

    /// Exact value (global plus pending deltas).
    pub fn read_exact(&self) -> i64 {
        self.global.load(Ordering::Relaxed)
            + self
                .deltas
                .iter()
                .map(|d| d.load(Ordering::Relaxed))
                .sum::<i64>()
    }

    /// Reconciled value only (cheap, possibly stale).
    pub fn read_reconciled(&self) -> i64 {
        self.global.load(Ordering::Relaxed)
    }
}

/// Host twin of [`crate::InodeAllocator`]: never-reused inode numbers from
/// per-core atomic counters, with the **same numbering scheme**
/// (`(counter << 8) | core`) so a host kernel and the simulated kernel hand
/// out identical inode numbers for identical per-core allocation sequences —
/// which is what lets the differential runner compare `stat` results
/// bit-for-bit.
#[derive(Debug)]
pub struct HostInodeAllocator {
    counters: Vec<CachePadded<AtomicU64>>,
}

impl HostInodeAllocator {
    /// Allocator with one counter per core.
    pub fn new(cores: usize) -> Self {
        HostInodeAllocator {
            counters: (0..cores.max(1))
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
        }
    }

    /// Allocates a fresh inode number on `core`: `(counter << 8) | core`.
    /// The counter is pre-incremented, matching the traced allocator (whose
    /// `fetch_update` returns the updated value), so the first number on
    /// core 0 is `1 << 8`.
    pub fn alloc(&self, core: usize) -> u64 {
        let cores = self.counters.len() as u64;
        let core = core as u64 % cores;
        let count = self.counters[core as usize].fetch_add(1, Ordering::Relaxed) + 1;
        (count << 8) | core
    }
}

/// Host twin of [`crate::FdAllocator`]: a descriptor bitmap in either the
/// POSIX lowest-FD mode (one shared bitmap behind one lock — every
/// allocation serialises) or the `O_ANYFD` mode (per-core cache-padded
/// partitions — allocations from different cores never touch the same
/// line).
#[derive(Debug)]
pub struct HostFdAllocator {
    mode: FdMode,
    shared: Mutex<Vec<bool>>,
    per_core: Vec<CachePadded<Mutex<Vec<bool>>>>,
    partition: usize,
}

impl HostFdAllocator {
    /// Builds a table with `cores * partition` descriptors.
    pub fn new(cores: usize, partition: usize, mode: FdMode) -> Self {
        let cores = cores.max(1);
        HostFdAllocator {
            mode,
            shared: Mutex::new(vec![false; cores * partition]),
            per_core: (0..cores)
                .map(|_| CachePadded::new(Mutex::new(vec![false; partition])))
                .collect(),
            partition,
        }
    }

    /// The allocation policy in force.
    pub fn mode(&self) -> FdMode {
        self.mode
    }

    /// Total descriptor capacity.
    pub fn capacity(&self) -> usize {
        self.per_core.len() * self.partition
    }

    /// Allocates a descriptor on behalf of `core`. Returns `None` when the
    /// table (or, in `Any` mode, the core's partition) is exhausted.
    pub fn alloc(&self, core: usize) -> Option<u32> {
        match self.mode {
            FdMode::Lowest => {
                let mut bitmap = self.shared.lock();
                let slot = bitmap.iter().position(|used| !used)?;
                bitmap[slot] = true;
                Some(slot as u32)
            }
            FdMode::Any => {
                let core = core % self.per_core.len();
                let mut bitmap = self.per_core[core].lock();
                let slot = bitmap.iter().position(|used| !used)?;
                bitmap[slot] = true;
                Some((core * self.partition + slot) as u32)
            }
        }
    }

    /// Releases a descriptor. Returns `false` if it was not allocated.
    pub fn free(&self, fd: u32) -> bool {
        let fd = fd as usize;
        if fd >= self.capacity() {
            return false;
        }
        match self.mode {
            FdMode::Lowest => {
                let mut bitmap = self.shared.lock();
                let was = bitmap[fd];
                bitmap[fd] = false;
                was
            }
            FdMode::Any => {
                let mut bitmap = self.per_core[fd / self.partition].lock();
                let slot = fd % self.partition;
                let was = bitmap[slot];
                bitmap[slot] = false;
                was
            }
        }
    }

    /// Number of allocated descriptors.
    pub fn allocated(&self) -> usize {
        match self.mode {
            FdMode::Lowest => self.shared.lock().iter().filter(|u| **u).count(),
            FdMode::Any => self
                .per_core
                .iter()
                .map(|c| c.lock().iter().filter(|u| **u).count())
                .sum(),
        }
    }
}

/// Host twin of [`crate::HashDir`]: a string-keyed hash map with one
/// reader-writer lock per cache-padded stripe, using the **same FNV-1a
/// hash** as the traced directory so bucket placement (and therefore the
/// "barring hash collisions" caveat) is identical between the simulated and
/// host kernels.
#[derive(Debug)]
pub struct StripedHashDir<V> {
    stripes: Vec<Stripe<V>>,
}

/// One cache-padded, independently locked stripe of entries.
type Stripe<V> = CachePadded<RwLock<Vec<(String, V)>>>;

impl<V: Clone> StripedHashDir<V> {
    /// Allocates a directory with `stripes` lock stripes.
    pub fn new(stripes: usize) -> Self {
        assert!(stripes > 0, "need at least one stripe");
        StripedHashDir {
            stripes: (0..stripes)
                .map(|_| CachePadded::new(RwLock::new(Vec::new())))
                .collect(),
        }
    }

    /// Number of stripes.
    pub fn stripe_count(&self) -> usize {
        self.stripes.len()
    }

    /// The stripe index a key maps to — the same FNV-1a hash as the traced
    /// [`crate::HashDir`], so bucket placement (and the "barring hash
    /// collisions" caveat) is identical between the simulated and host
    /// kernels.
    pub fn stripe_of(&self, key: &str) -> usize {
        (crate::hash_dir::fnv1a(key) % self.stripes.len() as u64) as usize
    }

    /// Looks up a key (shared lock on the key's stripe only).
    pub fn get(&self, key: &str) -> Option<V> {
        let entries = self.stripes[self.stripe_of(key)].read();
        entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.clone())
    }

    /// Does the key exist?
    pub fn contains(&self, key: &str) -> bool {
        let entries = self.stripes[self.stripe_of(key)].read();
        entries.iter().any(|(k, _)| k == key)
    }

    /// Inserts a key if absent. Returns `true` if inserted, `false` if the
    /// key already existed.
    pub fn insert_if_absent(&self, key: &str, value: V) -> bool {
        let stripe = &self.stripes[self.stripe_of(key)];
        // Optimistic read-only probe before the exclusive lock ("precede
        // pessimism with optimism"), as in the traced variant.
        if stripe.read().iter().any(|(k, _)| k == key) {
            return false;
        }
        let mut entries = stripe.write();
        if entries.iter().any(|(k, _)| k == key) {
            false
        } else {
            entries.push((key.to_string(), value));
            true
        }
    }

    /// Unconditionally inserts or replaces a key's value.
    pub fn upsert(&self, key: &str, value: V) {
        let mut entries = self.stripes[self.stripe_of(key)].write();
        if let Some(entry) = entries.iter_mut().find(|(k, _)| k == key) {
            entry.1 = value;
        } else {
            entries.push((key.to_string(), value));
        }
    }

    /// Removes a key, returning its value if it was present.
    pub fn remove(&self, key: &str) -> Option<V> {
        let stripe = &self.stripes[self.stripe_of(key)];
        if !stripe.read().iter().any(|(k, _)| k == key) {
            return None;
        }
        let mut entries = stripe.write();
        let pos = entries.iter().position(|(k, _)| k == key)?;
        Some(entries.remove(pos).1)
    }

    /// Number of entries across all stripes.
    pub fn len(&self) -> usize {
        self.stripes.iter().map(|s| s.read().len()).sum()
    }

    /// True when the directory holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Runs `f` with the stripes of `key_a` and `key_b` exclusively locked
    /// (in canonical index order, so concurrent callers cannot deadlock;
    /// one lock when both keys share a stripe). The view routes operations
    /// on either key — and only those keys — to the right stripe, giving
    /// atomic multi-key updates such as rename.
    pub fn with_pair_locked<R>(
        &self,
        key_a: &str,
        key_b: &str,
        f: impl FnOnce(&mut LockedPair<'_, V>) -> R,
    ) -> R {
        let ia = self.stripe_of(key_a);
        let ib = self.stripe_of(key_b);
        let (lo, hi) = (ia.min(ib), ia.max(ib));
        let first = self.stripes[lo].write();
        let second = if hi != lo {
            Some(self.stripes[hi].write())
        } else {
            None
        };
        let mut pair = LockedPair {
            lo,
            hi,
            first,
            second,
        };
        f(&mut pair)
    }
}

/// Exclusive access to one or two stripes of a [`StripedHashDir`], handed
/// to [`StripedHashDir::with_pair_locked`] callbacks.
pub struct LockedPair<'a, V> {
    lo: usize,
    hi: usize,
    first: parking_lot::RwLockWriteGuard<'a, Vec<(String, V)>>,
    second: Option<parking_lot::RwLockWriteGuard<'a, Vec<(String, V)>>>,
}

impl<V: Clone> LockedPair<'_, V> {
    fn entries_for(&mut self, stripe: usize) -> &mut Vec<(String, V)> {
        if stripe == self.lo {
            &mut self.first
        } else {
            assert_eq!(stripe, self.hi, "key outside the locked stripes");
            self.second
                .as_mut()
                .expect("two distinct stripes were locked")
        }
    }

    /// Looks up a key in the locked stripes.
    pub fn get(&mut self, key: &str, stripe: usize) -> Option<V> {
        self.entries_for(stripe)
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.clone())
    }

    /// Inserts or replaces a key in the locked stripes.
    pub fn upsert(&mut self, key: &str, stripe: usize, value: V) {
        let entries = self.entries_for(stripe);
        if let Some(entry) = entries.iter_mut().find(|(k, _)| k == key) {
            entry.1 = value;
        } else {
            entries.push((key.to_string(), value));
        }
    }

    /// Removes a key from the locked stripes.
    pub fn remove(&mut self, key: &str, stripe: usize) -> Option<V> {
        let entries = self.entries_for(stripe);
        let pos = entries.iter().position(|(k, _)| k == key)?;
        Some(entries.remove(pos).1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn shared_counter_counts() {
        let c = SharedCounter::new();
        c.add(3);
        c.add(-1);
        assert_eq!(c.read(), 2);
    }

    #[test]
    fn per_core_counter_sums_across_shards() {
        let c = PerCoreCounter::new(4);
        for core in 0..4 {
            c.add(core, (core as i64) + 1);
        }
        assert_eq!(c.read(), 10);
        assert_eq!(c.shards(), 4);
    }

    #[test]
    fn per_core_refcount_reconciles() {
        let rc = PerCoreRefcount::new(4, 1);
        rc.inc(0);
        rc.inc(1);
        rc.dec(3);
        assert_eq!(rc.read_exact(), 2);
        assert_eq!(rc.flush(), 2);
        assert_eq!(rc.read_reconciled(), 2);
    }

    #[test]
    fn host_inode_allocator_matches_the_traced_numbering() {
        use crate::percore_alloc::InodeAllocator;
        use scr_mtrace::SimMachine;
        let m = SimMachine::new();
        let traced = InodeAllocator::new(&m, "t", 4);
        let host = HostInodeAllocator::new(4);
        for core in [0usize, 1, 0, 2, 3, 1, 0] {
            assert_eq!(traced.alloc(core), host.alloc(core));
        }
    }

    #[test]
    fn host_fd_allocator_lowest_and_any_modes() {
        let lowest = HostFdAllocator::new(2, 8, FdMode::Lowest);
        assert_eq!(lowest.alloc(0), Some(0));
        assert_eq!(lowest.alloc(1), Some(1));
        assert!(lowest.free(0));
        assert_eq!(lowest.alloc(1), Some(0), "lowest free fd must be reused");
        let any = HostFdAllocator::new(4, 8, FdMode::Any);
        let fd = any.alloc(2).unwrap();
        assert_eq!(fd as usize / 8, 2, "fd must come from core 2's partition");
        assert_eq!(any.allocated(), 1);
        assert!(any.free(fd));
        assert!(!any.free(99));
    }

    #[test]
    fn striped_dir_matches_traced_hash_and_semantics() {
        use crate::hash_dir::HashDir;
        use scr_mtrace::SimMachine;
        let m = SimMachine::new();
        let traced: HashDir<u64> = HashDir::new(&m, "d", 64);
        let host: StripedHashDir<u64> = StripedHashDir::new(64);
        for i in 0..32 {
            let key = format!("file-{i}");
            assert_eq!(traced.bucket_of(&key), host.stripe_of(&key));
        }
        assert!(host.insert_if_absent("a", 1));
        assert!(!host.insert_if_absent("a", 2));
        assert_eq!(host.get("a"), Some(1));
        assert!(host.contains("a"));
        host.upsert("a", 3);
        assert_eq!(host.get("a"), Some(3));
        assert_eq!(host.remove("a"), Some(3));
        assert_eq!(host.remove("a"), None);
        assert!(host.is_empty());
    }

    #[test]
    fn striped_dir_is_thread_safe() {
        let dir: Arc<StripedHashDir<u64>> = Arc::new(StripedHashDir::new(64));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let dir = Arc::clone(&dir);
                s.spawn(move || {
                    for i in 0..100u64 {
                        let key = format!("t{t}-k{i}");
                        assert!(dir.insert_if_absent(&key, t * 1000 + i));
                        assert_eq!(dir.get(&key), Some(t * 1000 + i));
                    }
                });
            }
        });
        assert_eq!(dir.len(), 400);
    }

    #[test]
    fn counters_are_thread_safe() {
        let shared = Arc::new(SharedCounter::new());
        let percore = Arc::new(PerCoreCounter::new(4));
        let mut handles = Vec::new();
        for t in 0..4 {
            let shared = Arc::clone(&shared);
            let percore = Arc::clone(&percore);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    shared.add(1);
                    percore.add(t, 1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(shared.read(), 4000);
        assert_eq!(percore.read(), 4000);
    }
}
