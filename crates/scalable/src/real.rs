//! Host-hardware twins of the scalable primitives.
//!
//! The traced primitives in the rest of this crate run on the *simulated*
//! machine so that conflicts are observable. The types here are small real
//! implementations using atomics and cache-line padding; the Criterion
//! benchmark `primitives` drives them from actual threads to confirm, on the
//! host machine, the qualitative behaviour the simulator predicts: per-core
//! counters scale where a single shared counter does not (the §7.2
//! observation that even one contended cache line wrecks scalability).

use crossbeam::utils::CachePadded;
use std::sync::atomic::{AtomicI64, Ordering};

/// A single shared atomic counter — the non-scalable baseline.
#[derive(Debug, Default)]
pub struct SharedCounter {
    value: CachePadded<AtomicI64>,
}

impl SharedCounter {
    /// A counter starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` (contended RMW on one cache line).
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current value.
    pub fn read(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A per-core sharded atomic counter — the scalable variant.
#[derive(Debug)]
pub struct PerCoreCounter {
    shards: Vec<CachePadded<AtomicI64>>,
}

impl PerCoreCounter {
    /// A counter with `shards` cache-line-padded shards.
    pub fn new(shards: usize) -> Self {
        PerCoreCounter {
            shards: (0..shards.max(1)).map(|_| CachePadded::new(AtomicI64::new(0))).collect(),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Adds `delta` on behalf of `core` (uncontended RMW on that core's
    /// line).
    pub fn add(&self, core: usize, delta: i64) {
        self.shards[core % self.shards.len()].fetch_add(delta, Ordering::Relaxed);
    }

    /// Sums every shard (the expensive exact read).
    pub fn read(&self) -> i64 {
        self.shards.iter().map(|s| s.load(Ordering::Relaxed)).sum()
    }
}

/// A Refcache-style reference counter over real atomics: per-core deltas
/// plus a reconciled global value.
#[derive(Debug)]
pub struct PerCoreRefcount {
    global: CachePadded<AtomicI64>,
    deltas: Vec<CachePadded<AtomicI64>>,
}

impl PerCoreRefcount {
    /// A counter with the given initial value and one delta per core.
    pub fn new(cores: usize, initial: i64) -> Self {
        PerCoreRefcount {
            global: CachePadded::new(AtomicI64::new(initial)),
            deltas: (0..cores.max(1)).map(|_| CachePadded::new(AtomicI64::new(0))).collect(),
        }
    }

    /// Increments on behalf of `core`.
    pub fn inc(&self, core: usize) {
        self.deltas[core % self.deltas.len()].fetch_add(1, Ordering::Relaxed);
    }

    /// Decrements on behalf of `core`.
    pub fn dec(&self, core: usize) {
        self.deltas[core % self.deltas.len()].fetch_sub(1, Ordering::Relaxed);
    }

    /// Folds every delta into the global count and returns it.
    pub fn flush(&self) -> i64 {
        let mut sum = 0;
        for delta in &self.deltas {
            sum += delta.swap(0, Ordering::Relaxed);
        }
        self.global.fetch_add(sum, Ordering::Relaxed) + sum
    }

    /// Exact value (global plus pending deltas).
    pub fn read_exact(&self) -> i64 {
        self.global.load(Ordering::Relaxed)
            + self
                .deltas
                .iter()
                .map(|d| d.load(Ordering::Relaxed))
                .sum::<i64>()
    }

    /// Reconciled value only (cheap, possibly stale).
    pub fn read_reconciled(&self) -> i64 {
        self.global.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn shared_counter_counts() {
        let c = SharedCounter::new();
        c.add(3);
        c.add(-1);
        assert_eq!(c.read(), 2);
    }

    #[test]
    fn per_core_counter_sums_across_shards() {
        let c = PerCoreCounter::new(4);
        for core in 0..4 {
            c.add(core, (core as i64) + 1);
        }
        assert_eq!(c.read(), 10);
        assert_eq!(c.shards(), 4);
    }

    #[test]
    fn per_core_refcount_reconciles() {
        let rc = PerCoreRefcount::new(4, 1);
        rc.inc(0);
        rc.inc(1);
        rc.dec(3);
        assert_eq!(rc.read_exact(), 2);
        assert_eq!(rc.flush(), 2);
        assert_eq!(rc.read_reconciled(), 2);
    }

    #[test]
    fn counters_are_thread_safe() {
        let shared = Arc::new(SharedCounter::new());
        let percore = Arc::new(PerCoreCounter::new(4));
        let mut handles = Vec::new();
        for t in 0..4 {
            let shared = Arc::clone(&shared);
            let percore = Arc::clone(&percore);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    shared.add(1);
                    percore.add(t, 1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(shared.read(), 4000);
        assert_eq!(percore.read(), 4000);
    }
}
