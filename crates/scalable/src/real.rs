//! Host-hardware twins of the scalable primitives.
//!
//! The traced primitives in the rest of this crate run on the *simulated*
//! machine so that conflicts are observable. The types here are small real
//! implementations using atomics and cache-line padding; the Criterion
//! benchmark `primitives` drives them from actual threads to confirm, on the
//! host machine, the qualitative behaviour the simulator predicts: per-core
//! counters scale where a single shared counter does not (the §7.2
//! observation that even one contended cache line wrecks scalability).
//!
//! Each twin can optionally carry `scr-hostmtrace` probes (the
//! `instrumented` constructors): while a tracing window is open, the twin
//! records the **same line footprint its simulated counterpart would** —
//! one logical line per bucket / per-core shard / lock word, with the same
//! labels and the same read/write multiset per operation. That mirroring is
//! what lets the host-side Figure 6 pipeline cross-check its conflict
//! reports against the simulated heatmap. Uninstrumented twins record
//! nothing and pay only an `Option` check.

use crate::percore_alloc::FdMode;
use crossbeam::utils::CachePadded;
use parking_lot::{Mutex, RwLock};
use scr_hostmtrace::{HostTraceSink, LockProbe, Probe};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// A single shared atomic counter — the non-scalable baseline.
#[derive(Debug, Default)]
pub struct SharedCounter {
    value: CachePadded<AtomicI64>,
    probe: Option<Probe>,
}

impl SharedCounter {
    /// A counter starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// A counter that records its accesses against `label`'s line.
    pub fn instrumented(sink: &Arc<HostTraceSink>, label: impl Into<String>) -> Self {
        SharedCounter {
            value: CachePadded::new(AtomicI64::new(0)),
            probe: Some(sink.probe(label)),
        }
    }

    /// Adds `delta` (contended RMW on one cache line).
    pub fn add(&self, delta: i64) {
        if let Some(p) = &self.probe {
            p.rmw();
        }
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current value.
    pub fn read(&self) -> i64 {
        if let Some(p) = &self.probe {
            p.read();
        }
        self.value.load(Ordering::Relaxed)
    }
}

/// A per-core sharded atomic counter — the scalable variant.
#[derive(Debug)]
pub struct PerCoreCounter {
    shards: Vec<CachePadded<AtomicI64>>,
}

impl PerCoreCounter {
    /// A counter with `shards` cache-line-padded shards.
    pub fn new(shards: usize) -> Self {
        PerCoreCounter {
            shards: (0..shards.max(1))
                .map(|_| CachePadded::new(AtomicI64::new(0)))
                .collect(),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Adds `delta` on behalf of `core` (uncontended RMW on that core's
    /// line).
    pub fn add(&self, core: usize, delta: i64) {
        self.shards[core % self.shards.len()].fetch_add(delta, Ordering::Relaxed);
    }

    /// Sums every shard (the expensive exact read).
    pub fn read(&self) -> i64 {
        self.shards.iter().map(|s| s.load(Ordering::Relaxed)).sum()
    }
}

/// Probe lines of an instrumented [`PerCoreRefcount`], mirroring the
/// simulated `Refcache`'s layout: one global line, one delta line per core,
/// one epoch line.
#[derive(Debug)]
struct RefcountProbes {
    global: Probe,
    deltas: Vec<Probe>,
    epoch: Probe,
}

/// A Refcache-style reference counter over real atomics: per-core deltas
/// plus a reconciled global value.
#[derive(Debug)]
pub struct PerCoreRefcount {
    global: CachePadded<AtomicI64>,
    deltas: Vec<CachePadded<AtomicI64>>,
    probes: Option<RefcountProbes>,
}

impl PerCoreRefcount {
    /// A counter with the given initial value and one delta per core.
    pub fn new(cores: usize, initial: i64) -> Self {
        PerCoreRefcount {
            global: CachePadded::new(AtomicI64::new(initial)),
            deltas: (0..cores.max(1))
                .map(|_| CachePadded::new(AtomicI64::new(0)))
                .collect(),
            probes: None,
        }
    }

    /// A counter that records the simulated `Refcache`'s footprint under
    /// `label` (lines `{label}.global`, `{label}.delta[c]`, `{label}.epoch`).
    pub fn instrumented(
        cores: usize,
        initial: i64,
        sink: &Arc<HostTraceSink>,
        label: &str,
    ) -> Self {
        let cores = cores.max(1);
        PerCoreRefcount {
            probes: Some(RefcountProbes {
                global: sink.probe(format!("{label}.global")),
                deltas: (0..cores)
                    .map(|c| sink.probe(format!("{label}.delta[{c}]")))
                    .collect(),
                epoch: sink.probe(format!("{label}.epoch")),
            }),
            ..Self::new(cores, initial)
        }
    }

    /// Increments on behalf of `core`.
    pub fn inc(&self, core: usize) {
        let shard = core % self.deltas.len();
        if let Some(p) = &self.probes {
            p.deltas[shard].rmw();
        }
        self.deltas[shard].fetch_add(1, Ordering::Relaxed);
    }

    /// Decrements on behalf of `core`.
    pub fn dec(&self, core: usize) {
        let shard = core % self.deltas.len();
        if let Some(p) = &self.probes {
            p.deltas[shard].rmw();
        }
        self.deltas[shard].fetch_sub(1, Ordering::Relaxed);
    }

    /// Folds every delta into the global count and returns it. The
    /// footprint mirrors `Refcache::flush_epoch`: every delta line is read
    /// and written back only when non-zero, then the epoch and global lines
    /// are read-modify-written.
    pub fn flush(&self) -> i64 {
        let mut sum = 0;
        for (shard, delta) in self.deltas.iter().enumerate() {
            let d = delta.swap(0, Ordering::Relaxed);
            if let Some(p) = &self.probes {
                p.deltas[shard].read();
                if d != 0 {
                    p.deltas[shard].write();
                }
            }
            sum += d;
        }
        if let Some(p) = &self.probes {
            p.epoch.rmw();
            p.global.rmw();
        }
        self.global.fetch_add(sum, Ordering::Relaxed) + sum
    }

    /// Exact value (global plus pending deltas). Touches every delta line —
    /// the expensive `st_nlink` reconciliation path of §7.2.
    pub fn read_exact(&self) -> i64 {
        if let Some(p) = &self.probes {
            for delta in &p.deltas {
                delta.read();
            }
            p.global.read();
        }
        self.global.load(Ordering::Relaxed)
            + self
                .deltas
                .iter()
                .map(|d| d.load(Ordering::Relaxed))
                .sum::<i64>()
    }

    /// Reconciled value only (cheap, possibly stale).
    pub fn read_reconciled(&self) -> i64 {
        if let Some(p) = &self.probes {
            p.global.read();
        }
        self.global.load(Ordering::Relaxed)
    }
}

/// Host twin of [`crate::InodeAllocator`]: never-reused inode numbers from
/// per-core atomic counters, with the **same numbering scheme**
/// (`(counter << 8) | core`) so a host kernel and the simulated kernel hand
/// out identical inode numbers for identical per-core allocation sequences —
/// which is what lets the differential runner compare `stat` results
/// bit-for-bit.
#[derive(Debug)]
pub struct HostInodeAllocator {
    counters: Vec<CachePadded<AtomicU64>>,
    probes: Option<Vec<Probe>>,
}

impl HostInodeAllocator {
    /// Allocator with one counter per core.
    pub fn new(cores: usize) -> Self {
        HostInodeAllocator {
            counters: (0..cores.max(1))
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
            probes: None,
        }
    }

    /// An allocator recording the traced `InodeAllocator`'s footprint
    /// (lines `{label}.next_ino[c]`).
    pub fn instrumented(cores: usize, sink: &Arc<HostTraceSink>, label: &str) -> Self {
        let cores = cores.max(1);
        HostInodeAllocator {
            probes: Some(
                (0..cores)
                    .map(|c| sink.probe(format!("{label}.next_ino[{c}]")))
                    .collect(),
            ),
            ..Self::new(cores)
        }
    }

    /// Allocates a fresh inode number on `core`: `(counter << 8) | core`.
    /// The counter is pre-incremented, matching the traced allocator (whose
    /// `fetch_update` returns the updated value), so the first number on
    /// core 0 is `1 << 8`.
    pub fn alloc(&self, core: usize) -> u64 {
        let cores = self.counters.len() as u64;
        let core = core as u64 % cores;
        if let Some(p) = &self.probes {
            p[core as usize].rmw();
        }
        let count = self.counters[core as usize].fetch_add(1, Ordering::Relaxed) + 1;
        (count << 8) | core
    }
}

/// Host twin of [`crate::FdAllocator`]: a descriptor bitmap in either the
/// POSIX lowest-FD mode (one shared bitmap behind one lock — every
/// allocation serialises) or the `O_ANYFD` mode (per-core cache-padded
/// partitions — allocations from different cores never touch the same
/// line).
/// Probe lines of an instrumented [`HostFdAllocator`], mirroring the traced
/// `FdAllocator`: one line for the shared lowest-FD bitmap, one per
/// `O_ANYFD` partition.
#[derive(Debug)]
struct FdProbes {
    shared: Probe,
    per_core: Vec<Probe>,
}

#[derive(Debug)]
pub struct HostFdAllocator {
    mode: FdMode,
    shared: Mutex<Vec<bool>>,
    per_core: Vec<CachePadded<Mutex<Vec<bool>>>>,
    partition: usize,
    probes: Option<FdProbes>,
}

impl HostFdAllocator {
    /// Builds a table with `cores * partition` descriptors.
    pub fn new(cores: usize, partition: usize, mode: FdMode) -> Self {
        let cores = cores.max(1);
        HostFdAllocator {
            mode,
            shared: Mutex::new(vec![false; cores * partition]),
            per_core: (0..cores)
                .map(|_| CachePadded::new(Mutex::new(vec![false; partition])))
                .collect(),
            partition,
            probes: None,
        }
    }

    /// A table recording the traced `FdAllocator`'s footprint (lines
    /// `{label}.fd_bitmap` and `{label}.fd_partition[c]`) — the §1 example's
    /// contention, observable on real threads.
    pub fn instrumented(
        cores: usize,
        partition: usize,
        mode: FdMode,
        sink: &Arc<HostTraceSink>,
        label: &str,
    ) -> Self {
        let cores = cores.max(1);
        HostFdAllocator {
            probes: Some(FdProbes {
                shared: sink.probe(format!("{label}.fd_bitmap")),
                per_core: (0..cores)
                    .map(|c| sink.probe(format!("{label}.fd_partition[{c}]")))
                    .collect(),
            }),
            ..Self::new(cores, partition, mode)
        }
    }

    /// The allocation policy in force.
    pub fn mode(&self) -> FdMode {
        self.mode
    }

    /// Total descriptor capacity.
    pub fn capacity(&self) -> usize {
        self.per_core.len() * self.partition
    }

    /// Allocates a descriptor on behalf of `core`. Returns `None` when the
    /// table (or, in `Any` mode, the core's partition) is exhausted.
    pub fn alloc(&self, core: usize) -> Option<u32> {
        match self.mode {
            FdMode::Lowest => {
                if let Some(p) = &self.probes {
                    p.shared.rmw();
                }
                let mut bitmap = self.shared.lock();
                let slot = bitmap.iter().position(|used| !used)?;
                bitmap[slot] = true;
                Some(slot as u32)
            }
            FdMode::Any => {
                let core = core % self.per_core.len();
                if let Some(p) = &self.probes {
                    p.per_core[core].rmw();
                }
                let mut bitmap = self.per_core[core].lock();
                let slot = bitmap.iter().position(|used| !used)?;
                bitmap[slot] = true;
                Some((core * self.partition + slot) as u32)
            }
        }
    }

    /// Releases a descriptor. Returns `false` if it was not allocated.
    pub fn free(&self, fd: u32) -> bool {
        let fd = fd as usize;
        if fd >= self.capacity() {
            return false;
        }
        match self.mode {
            FdMode::Lowest => {
                if let Some(p) = &self.probes {
                    p.shared.rmw();
                }
                let mut bitmap = self.shared.lock();
                let was = bitmap[fd];
                bitmap[fd] = false;
                was
            }
            FdMode::Any => {
                let core = fd / self.partition;
                if let Some(p) = &self.probes {
                    p.per_core[core].rmw();
                }
                let mut bitmap = self.per_core[core].lock();
                let slot = fd % self.partition;
                let was = bitmap[slot];
                bitmap[slot] = false;
                was
            }
        }
    }

    /// Number of allocated descriptors.
    pub fn allocated(&self) -> usize {
        match self.mode {
            FdMode::Lowest => self.shared.lock().iter().filter(|u| **u).count(),
            FdMode::Any => self
                .per_core
                .iter()
                .map(|c| c.lock().iter().filter(|u| **u).count())
                .sum(),
        }
    }
}

/// Host twin of [`crate::HashDir`]: a string-keyed hash map with one
/// reader-writer lock per cache-padded stripe, using the **same FNV-1a
/// hash** as the traced directory so bucket placement (and therefore the
/// "barring hash collisions" caveat) is identical between the simulated and
/// host kernels.
#[derive(Debug)]
pub struct StripedHashDir<V> {
    stripes: Vec<Stripe<V>>,
    probes: Option<DirProbes>,
}

/// One cache-padded, independently locked stripe of entries.
type Stripe<V> = CachePadded<RwLock<Vec<(String, V)>>>;

/// Probe lines of an instrumented [`StripedHashDir`], mirroring the traced
/// `HashDir`'s layout: one lock-word line and one entries line per bucket.
#[derive(Debug)]
pub struct DirProbes {
    stripes: Vec<DirStripeProbes>,
}

#[derive(Debug)]
struct DirStripeProbes {
    lock: LockProbe,
    entries: Probe,
}

impl DirProbes {
    fn new(sink: &Arc<HostTraceSink>, label: &str, stripes: usize) -> Self {
        DirProbes {
            stripes: (0..stripes)
                .map(|b| DirStripeProbes {
                    lock: LockProbe::new(sink, format!("{label}.bucket[{b}].lock")),
                    entries: sink.probe(format!("{label}.bucket[{b}].entries")),
                })
                .collect(),
        }
    }
}

impl<V: Clone> StripedHashDir<V> {
    /// Allocates a directory with `stripes` lock stripes.
    pub fn new(stripes: usize) -> Self {
        assert!(stripes > 0, "need at least one stripe");
        StripedHashDir {
            stripes: (0..stripes)
                .map(|_| CachePadded::new(RwLock::new(Vec::new())))
                .collect(),
            probes: None,
        }
    }

    /// A directory recording the traced `HashDir`'s footprint (lines
    /// `{label}.bucket[b].lock` and `{label}.bucket[b].entries`).
    pub fn instrumented(stripes: usize, sink: &Arc<HostTraceSink>, label: &str) -> Self {
        StripedHashDir {
            probes: Some(DirProbes::new(sink, label, stripes)),
            ..Self::new(stripes)
        }
    }

    fn stripe_probes(&self, stripe: usize) -> Option<&DirStripeProbes> {
        self.probes.as_ref().map(|p| &p.stripes[stripe])
    }

    /// Number of stripes.
    pub fn stripe_count(&self) -> usize {
        self.stripes.len()
    }

    /// The stripe index a key maps to — the same FNV-1a hash as the traced
    /// [`crate::HashDir`], so bucket placement (and the "barring hash
    /// collisions" caveat) is identical between the simulated and host
    /// kernels.
    pub fn stripe_of(&self, key: &str) -> usize {
        (crate::hash_dir::fnv1a(key) % self.stripes.len() as u64) as usize
    }

    /// Looks up a key (shared lock on the key's stripe only; the footprint
    /// is one read of the bucket's entries line, as in `HashDir::get`).
    pub fn get(&self, key: &str) -> Option<V> {
        let si = self.stripe_of(key);
        if let Some(p) = self.stripe_probes(si) {
            p.entries.read();
        }
        let entries = self.stripes[si].read();
        entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.clone())
    }

    /// Does the key exist?
    pub fn contains(&self, key: &str) -> bool {
        let si = self.stripe_of(key);
        if let Some(p) = self.stripe_probes(si) {
            p.entries.read();
        }
        let entries = self.stripes[si].read();
        entries.iter().any(|(k, _)| k == key)
    }

    /// Inserts a key if absent. Returns `true` if inserted, `false` if the
    /// key already existed.
    pub fn insert_if_absent(&self, key: &str, value: V) -> bool {
        let si = self.stripe_of(key);
        let probes = self.stripe_probes(si);
        let stripe = &self.stripes[si];
        // Optimistic read-only probe before the exclusive lock ("precede
        // pessimism with optimism"), as in the traced variant: a failed
        // insert of an existing name stays read-only.
        if let Some(p) = probes {
            p.entries.read();
        }
        if stripe.read().iter().any(|(k, _)| k == key) {
            return false;
        }
        if let Some(p) = probes {
            p.lock.acquire();
            p.entries.read();
        }
        let mut entries = stripe.write();
        let inserted = if entries.iter().any(|(k, _)| k == key) {
            false
        } else {
            if let Some(p) = probes {
                p.entries.rmw();
            }
            entries.push((key.to_string(), value));
            true
        };
        if let Some(p) = probes {
            p.lock.release();
        }
        inserted
    }

    /// [`Self::insert_if_absent`] without the optimistic read-only stage —
    /// for callers that already performed their own existence check (e.g.
    /// `link`'s read-only EEXIST path, which must precede its counter
    /// increment): the caller's check plus this call together record
    /// exactly the traced `HashDir::insert_if_absent` footprint.
    pub fn insert_if_absent_pessimistic(&self, key: &str, value: V) -> bool {
        let si = self.stripe_of(key);
        let probes = self.stripe_probes(si);
        if let Some(p) = probes {
            p.lock.acquire();
            p.entries.read();
        }
        let mut entries = self.stripes[si].write();
        let inserted = if entries.iter().any(|(k, _)| k == key) {
            false
        } else {
            if let Some(p) = probes {
                p.entries.rmw();
            }
            entries.push((key.to_string(), value));
            true
        };
        drop(entries);
        if let Some(p) = probes {
            p.lock.release();
        }
        inserted
    }

    /// Unconditionally inserts or replaces a key's value.
    pub fn upsert(&self, key: &str, value: V) {
        let si = self.stripe_of(key);
        if let Some(p) = self.stripe_probes(si) {
            p.lock.acquire();
            p.entries.rmw();
        }
        let mut entries = self.stripes[si].write();
        if let Some(entry) = entries.iter_mut().find(|(k, _)| k == key) {
            entry.1 = value;
        } else {
            entries.push((key.to_string(), value));
        }
        drop(entries);
        if let Some(p) = self.stripe_probes(si) {
            p.lock.release();
        }
    }

    /// Removes a key, returning its value if it was present (nothing is
    /// written when the key is absent — optimistic check first).
    pub fn remove(&self, key: &str) -> Option<V> {
        let si = self.stripe_of(key);
        let probes = self.stripe_probes(si);
        let stripe = &self.stripes[si];
        if let Some(p) = probes {
            p.entries.read();
        }
        if !stripe.read().iter().any(|(k, _)| k == key) {
            return None;
        }
        if let Some(p) = probes {
            p.lock.acquire();
            p.entries.rmw();
        }
        let mut entries = stripe.write();
        let out = entries
            .iter()
            .position(|(k, _)| k == key)
            .map(|pos| entries.remove(pos).1);
        drop(entries);
        if let Some(p) = probes {
            p.lock.release();
        }
        out
    }

    /// Number of entries across all stripes.
    pub fn len(&self) -> usize {
        self.stripes.iter().map(|s| s.read().len()).sum()
    }

    /// True when the directory holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Runs `f` with the stripes of `key_a` and `key_b` exclusively locked
    /// (in canonical index order, so concurrent callers cannot deadlock;
    /// one lock when both keys share a stripe). The view routes operations
    /// on either key — and only those keys — to the right stripe, giving
    /// atomic multi-key updates such as rename.
    pub fn with_pair_locked<R>(
        &self,
        key_a: &str,
        key_b: &str,
        f: impl FnOnce(&mut LockedPair<'_, V>) -> R,
    ) -> R {
        let ia = self.stripe_of(key_a);
        let ib = self.stripe_of(key_b);
        let (lo, hi) = (ia.min(ib), ia.max(ib));
        let first = self.stripes[lo].write();
        let second = if hi != lo {
            Some(self.stripes[hi].write())
        } else {
            None
        };
        let mut pair = LockedPair {
            lo,
            hi,
            first,
            second,
            probes: self.probes.as_ref(),
        };
        f(&mut pair)
    }
}

/// Exclusive access to one or two stripes of a [`StripedHashDir`], handed
/// to [`StripedHashDir::with_pair_locked`] callbacks.
///
/// The recorded footprint mirrors what the traced `HashDir` records for the
/// equivalent *unlocked* call sequence (`get`/`upsert`/`remove`), because
/// that is what the single-threaded simulated kernel executes: the pairwise
/// locking is a host-only concurrency-correctness measure, not a sharing
/// difference.
pub struct LockedPair<'a, V> {
    lo: usize,
    hi: usize,
    first: parking_lot::RwLockWriteGuard<'a, Vec<(String, V)>>,
    second: Option<parking_lot::RwLockWriteGuard<'a, Vec<(String, V)>>>,
    probes: Option<&'a DirProbes>,
}

impl<V: Clone> LockedPair<'_, V> {
    fn entries_for(&mut self, stripe: usize) -> &mut Vec<(String, V)> {
        if stripe == self.lo {
            &mut self.first
        } else {
            assert_eq!(stripe, self.hi, "key outside the locked stripes");
            self.second
                .as_mut()
                .expect("two distinct stripes were locked")
        }
    }

    fn probes_for(&self, stripe: usize) -> Option<&DirStripeProbes> {
        self.probes.map(|p| &p.stripes[stripe])
    }

    /// Looks up a key in the locked stripes.
    pub fn get(&mut self, key: &str, stripe: usize) -> Option<V> {
        if let Some(p) = self.probes_for(stripe) {
            p.entries.read();
        }
        self.entries_for(stripe)
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.clone())
    }

    /// Inserts or replaces a key in the locked stripes.
    pub fn upsert(&mut self, key: &str, stripe: usize, value: V) {
        if let Some(p) = self.probes_for(stripe) {
            p.lock.acquire();
            p.entries.rmw();
            p.lock.release();
        }
        let entries = self.entries_for(stripe);
        if let Some(entry) = entries.iter_mut().find(|(k, _)| k == key) {
            entry.1 = value;
        } else {
            entries.push((key.to_string(), value));
        }
    }

    /// Removes a key from the locked stripes (read-only when absent, like
    /// `HashDir::remove`'s optimistic check).
    pub fn remove(&mut self, key: &str, stripe: usize) -> Option<V> {
        if let Some(p) = self.probes_for(stripe) {
            p.entries.read();
        }
        let pos = self
            .entries_for(stripe)
            .iter()
            .position(|(k, _)| k == key)?;
        if let Some(p) = self.probes_for(stripe) {
            p.lock.acquire();
            p.entries.rmw();
            p.lock.release();
        }
        Some(self.entries_for(stripe).remove(pos).1)
    }
}

/// Delivery discipline of a [`HostSocketTable`] socket — the host twin of
/// `scr_kernel::api::SocketOrder`, redeclared here to keep the dependency
/// direction (the kernel crate builds on this one).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueueOrder {
    /// One FIFO queue shared by every core.
    Ordered,
    /// Per-core queues with receiver stealing; no delivery order promised.
    Unordered,
}

/// Errors of the host socket table, mapped onto errnos by the host kernel
/// exactly as the simulated `SocketTable` reports them (`EBADF`, `EAGAIN`).
/// The queues are unbounded, as in the simulated twin, so `send` has no
/// overflow error to report.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SocketError {
    /// The socket id does not name a socket.
    BadSocket,
    /// No message is available on any queue the receiver may take from.
    Empty,
}

/// One datagram socket over real locks.
enum HostSocket {
    /// A single FIFO queue shared by all cores.
    Ordered {
        queue: Mutex<VecDeque<Vec<u8>>>,
        probe: Option<Probe>,
    },
    /// Per-core queues; receivers drain their own queue first and then
    /// steal from others.
    Unordered {
        queues: Vec<CachePadded<Mutex<VecDeque<Vec<u8>>>>>,
        probes: Option<Vec<Probe>>,
    },
}

/// Host twin of `scr_kernel::socket::SocketTable`: Unix-domain datagram
/// sockets in ordered (one shared queue) and unordered (per-core queues
/// with receiver stealing) flavours, over real mutexes (§4 "permit weak
/// ordering", §7.3).
///
/// Socket ids are dense from zero, like the simulated twin's, so an
/// instrumented table's probe labels (`socket[s].queue`,
/// `socket[s].queue[c]`) line up with the simulated cells without any
/// normalisation. The unordered `recv` holds a queue's lock across its
/// emptiness check and the pop, so a message observed pending cannot be
/// lost to a racing receiver — every datagram is delivered exactly once.
pub struct HostSocketTable {
    cores: usize,
    sink: Option<Arc<HostTraceSink>>,
    sockets: RwLock<Vec<Arc<HostSocket>>>,
}

impl HostSocketTable {
    /// An empty socket table for `cores` participating threads.
    pub fn new(cores: usize) -> Self {
        HostSocketTable {
            cores: cores.max(1),
            sink: None,
            sockets: RwLock::new(Vec::new()),
        }
    }

    /// A table recording the simulated `SocketTable`'s footprint: one
    /// `socket[s].queue` line per ordered socket, `socket[s].queue[c]`
    /// lines per unordered one.
    pub fn instrumented(cores: usize, sink: &Arc<HostTraceSink>) -> Self {
        HostSocketTable {
            sink: Some(Arc::clone(sink)),
            ..Self::new(cores)
        }
    }

    /// Creates a socket with the requested delivery discipline, returning
    /// its dense id. Creation touches no traced lines, like the simulated
    /// twin (whose cells are allocated, not accessed, here).
    pub fn create(&self, order: QueueOrder) -> usize {
        let mut sockets = self.sockets.write();
        let id = sockets.len();
        let socket = match order {
            QueueOrder::Ordered => HostSocket::Ordered {
                queue: Mutex::new(VecDeque::new()),
                probe: self
                    .sink
                    .as_ref()
                    .map(|sink| sink.probe(format!("socket[{id}].queue"))),
            },
            QueueOrder::Unordered => HostSocket::Unordered {
                queues: (0..self.cores)
                    .map(|_| CachePadded::new(Mutex::new(VecDeque::new())))
                    .collect(),
                probes: self.sink.as_ref().map(|sink| {
                    (0..self.cores)
                        .map(|c| sink.probe(format!("socket[{id}].queue[{c}]")))
                        .collect()
                }),
            },
        };
        sockets.push(Arc::new(socket));
        id
    }

    fn socket(&self, sock: usize) -> Result<Arc<HostSocket>, SocketError> {
        self.sockets
            .read()
            .get(sock)
            .cloned()
            .ok_or(SocketError::BadSocket)
    }

    /// Sends a datagram on `sock` from `core` (never blocks; the queues
    /// are unbounded, as in the simulated twin).
    pub fn send(&self, core: usize, sock: usize, msg: &[u8]) -> Result<(), SocketError> {
        match &*self.socket(sock)? {
            HostSocket::Ordered { queue, probe } => {
                if let Some(p) = probe {
                    p.rmw();
                }
                queue.lock().push_back(msg.to_vec());
            }
            HostSocket::Unordered { queues, probes } => {
                let local = core % queues.len();
                if let Some(p) = probes {
                    p[local].rmw();
                }
                queues[local].lock().push_back(msg.to_vec());
            }
        }
        Ok(())
    }

    /// Receives a datagram from `sock` on `core`: the local queue first
    /// (conflict-free in the common case), then stealing from other cores.
    /// Returns [`SocketError::Empty`] only when every queue was observed
    /// empty — a receiver never starves while any core's queue holds a
    /// message it could see.
    pub fn recv(&self, core: usize, sock: usize) -> Result<Vec<u8>, SocketError> {
        match &*self.socket(sock)? {
            HostSocket::Ordered { queue, probe } => {
                // The simulated twin drains through `update`, recording a
                // read-modify-write even when the queue is empty.
                if let Some(p) = probe {
                    p.rmw();
                }
                queue.lock().pop_front().ok_or(SocketError::Empty)
            }
            HostSocket::Unordered { queues, probes } => {
                let local = core % queues.len();
                if let Some(p) = probes {
                    p[local].rmw();
                }
                if let Some(msg) = queues[local].lock().pop_front() {
                    return Ok(msg);
                }
                for (i, queue) in queues.iter().enumerate() {
                    if i == local {
                        continue;
                    }
                    // The emptiness check is recorded as a read (the
                    // simulated twin's optimistic probe); the lock is held
                    // across check and pop so an observed message cannot
                    // escape to a racing receiver.
                    let mut q = queue.lock();
                    if let Some(p) = probes {
                        p[i].read();
                    }
                    if let Some(msg) = q.pop_front() {
                        if let Some(p) = probes {
                            p[i].rmw();
                        }
                        return Ok(msg);
                    }
                }
                Err(SocketError::Empty)
            }
        }
    }

    /// Total queued messages on a socket (untraced; for tests).
    pub fn pending_untraced(&self, sock: usize) -> usize {
        match &*self.socket(sock).expect("socket exists") {
            HostSocket::Ordered { queue, .. } => queue.lock().len(),
            HostSocket::Unordered { queues, .. } => queues.iter().map(|q| q.lock().len()).sum(),
        }
    }

    /// Removes and returns every queued message (untraced; used by the
    /// conservation checks of the differential tests).
    pub fn drain_untraced(&self, sock: usize) -> Vec<Vec<u8>> {
        match &*self.socket(sock).expect("socket exists") {
            HostSocket::Ordered { queue, .. } => queue.lock().drain(..).collect(),
            HostSocket::Unordered { queues, .. } => queues
                .iter()
                .flat_map(|q| q.lock().drain(..).collect::<Vec<_>>())
                .collect(),
        }
    }
}

/// Segment size of a [`HostProcTable`] (slots per lazily allocated chunk).
const PROC_SEG_SIZE: usize = 512;
/// Maximum number of segments, bounding the table at 2 097 152 processes.
/// The mail workload spawns one short-lived helper per delivered message
/// and pids are never reused (matching the simulated kernels), so the
/// bound must absorb a full wide benchmark sweep; exceeding it is a
/// panic, not UB.
const PROC_SEGMENTS: usize = 4096;

/// Host twin of the kernels' process tables: a lock-free, append-only
/// indexable table.
///
/// The simulated kernels keep processes in an untraced `RefCell<Vec<…>>`;
/// the paper's point about `posix_spawn` is that process creation should
/// commute with everything that does not observe the new pid, so the host
/// table must not reintroduce a writer lock that every concurrent syscall's
/// pid lookup would bounce on. Lookups are wait-free reads of a lazily
/// allocated segment; `push_with` claims a dense pid with one `fetch_add`
/// and publishes the entry with a release store. Entries are never removed
/// ("zombie-reaped" processes keep their pid, with an emptied descriptor
/// table), matching the simulated kernels.
/// One lazily allocated chunk of a [`HostProcTable`].
type ProcSegment<T> = Box<[OnceLock<T>]>;

#[derive(Debug)]
pub struct HostProcTable<T> {
    segments: Box<[OnceLock<ProcSegment<T>>]>,
    next: AtomicUsize,
}

impl<T> Default for HostProcTable<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> HostProcTable<T> {
    /// An empty table. No segment is allocated until first use.
    pub fn new() -> Self {
        HostProcTable {
            segments: (0..PROC_SEGMENTS)
                .map(|_| OnceLock::new())
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            next: AtomicUsize::new(0),
        }
    }

    /// Claims the next dense index, builds the entry with it (probe labels
    /// need the pid before construction), and publishes it. A concurrent
    /// `get` of the claimed index returns `None` until the entry is
    /// published — callers cannot observe the pid before `push_with`
    /// returns it, so only a guessed pid ever sees the gap.
    pub fn push_with(&self, build: impl FnOnce(usize) -> T) -> usize {
        let idx = self.next.fetch_add(1, Ordering::Relaxed);
        assert!(
            idx < PROC_SEG_SIZE * PROC_SEGMENTS,
            "host process table exhausted"
        );
        let segment = self.segments[idx / PROC_SEG_SIZE].get_or_init(|| {
            (0..PROC_SEG_SIZE)
                .map(|_| OnceLock::new())
                .collect::<Vec<_>>()
                .into_boxed_slice()
        });
        if segment[idx % PROC_SEG_SIZE].set(build(idx)).is_err() {
            unreachable!("index {idx} claimed twice");
        }
        idx
    }

    /// Number of claimed indices (entries mid-construction included).
    pub fn len(&self) -> usize {
        self.next.load(Ordering::Acquire)
    }

    /// True when nothing has been pushed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T: Clone> HostProcTable<T> {
    /// Looks up an entry by index, wait-free.
    pub fn get(&self, idx: usize) -> Option<T> {
        self.segments
            .get(idx / PROC_SEG_SIZE)?
            .get()?
            .get(idx % PROC_SEG_SIZE)?
            .get()
            .cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn shared_counter_counts() {
        let c = SharedCounter::new();
        c.add(3);
        c.add(-1);
        assert_eq!(c.read(), 2);
    }

    #[test]
    fn per_core_counter_sums_across_shards() {
        let c = PerCoreCounter::new(4);
        for core in 0..4 {
            c.add(core, (core as i64) + 1);
        }
        assert_eq!(c.read(), 10);
        assert_eq!(c.shards(), 4);
    }

    #[test]
    fn per_core_refcount_reconciles() {
        let rc = PerCoreRefcount::new(4, 1);
        rc.inc(0);
        rc.inc(1);
        rc.dec(3);
        assert_eq!(rc.read_exact(), 2);
        assert_eq!(rc.flush(), 2);
        assert_eq!(rc.read_reconciled(), 2);
    }

    #[test]
    fn host_inode_allocator_matches_the_traced_numbering() {
        use crate::percore_alloc::InodeAllocator;
        use scr_mtrace::SimMachine;
        let m = SimMachine::new();
        let traced = InodeAllocator::new(&m, "t", 4);
        let host = HostInodeAllocator::new(4);
        for core in [0usize, 1, 0, 2, 3, 1, 0] {
            assert_eq!(traced.alloc(core), host.alloc(core));
        }
    }

    #[test]
    fn host_fd_allocator_lowest_and_any_modes() {
        let lowest = HostFdAllocator::new(2, 8, FdMode::Lowest);
        assert_eq!(lowest.alloc(0), Some(0));
        assert_eq!(lowest.alloc(1), Some(1));
        assert!(lowest.free(0));
        assert_eq!(lowest.alloc(1), Some(0), "lowest free fd must be reused");
        let any = HostFdAllocator::new(4, 8, FdMode::Any);
        let fd = any.alloc(2).unwrap();
        assert_eq!(fd as usize / 8, 2, "fd must come from core 2's partition");
        assert_eq!(any.allocated(), 1);
        assert!(any.free(fd));
        assert!(!any.free(99));
    }

    #[test]
    fn striped_dir_matches_traced_hash_and_semantics() {
        use crate::hash_dir::HashDir;
        use scr_mtrace::SimMachine;
        let m = SimMachine::new();
        let traced: HashDir<u64> = HashDir::new(&m, "d", 64);
        let host: StripedHashDir<u64> = StripedHashDir::new(64);
        for i in 0..32 {
            let key = format!("file-{i}");
            assert_eq!(traced.bucket_of(&key), host.stripe_of(&key));
        }
        assert!(host.insert_if_absent("a", 1));
        assert!(!host.insert_if_absent("a", 2));
        assert_eq!(host.get("a"), Some(1));
        assert!(host.contains("a"));
        host.upsert("a", 3);
        assert_eq!(host.get("a"), Some(3));
        assert_eq!(host.remove("a"), Some(3));
        assert_eq!(host.remove("a"), None);
        assert!(host.is_empty());
    }

    #[test]
    fn striped_dir_is_thread_safe() {
        let dir: Arc<StripedHashDir<u64>> = Arc::new(StripedHashDir::new(64));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let dir = Arc::clone(&dir);
                s.spawn(move || {
                    for i in 0..100u64 {
                        let key = format!("t{t}-k{i}");
                        assert!(dir.insert_if_absent(&key, t * 1000 + i));
                        assert_eq!(dir.get(&key), Some(t * 1000 + i));
                    }
                });
            }
        });
        assert_eq!(dir.len(), 400);
    }

    use scr_hostmtrace::{on_core, HostTraceSink};
    use scr_mtrace::{AccessKind, SimMachine};

    /// The (label, kind) sequence a closure records on the simulated
    /// machine.
    fn sim_footprint(m: &SimMachine, f: impl FnOnce()) -> Vec<(String, AccessKind)> {
        m.clear_trace();
        m.start_tracing();
        f();
        m.stop_tracing();
        m.accesses()
            .iter()
            .map(|a| (m.label_of(a.line), a.kind))
            .collect()
    }

    /// The (label, kind) sequence a closure records through host probes.
    fn host_footprint(sink: &Arc<HostTraceSink>, f: impl FnOnce()) -> Vec<(String, AccessKind)> {
        sink.begin_window();
        f();
        let report = sink.end_window();
        assert_eq!(report.dropped, 0);
        report
            .accesses
            .iter()
            .map(|a| (sink.label_of(a.line), a.kind))
            .collect()
    }

    /// Asserts a host twin records exactly the footprint its simulated
    /// counterpart records for the same operation.
    macro_rules! assert_mirrors {
        ($m:expr, $sink:expr, $sim:expr, $host:expr, $what:expr) => {
            assert_eq!(
                host_footprint($sink, $host),
                sim_footprint($m, $sim),
                "footprint mismatch for {}",
                $what
            );
        };
    }

    #[test]
    fn striped_dir_mirrors_the_traced_hash_dir_footprint() {
        use crate::hash_dir::HashDir;
        let m = SimMachine::new();
        let sink = HostTraceSink::new(2);
        let traced: HashDir<u64> = HashDir::new(&m, "d", 8);
        let host: StripedHashDir<u64> = StripedHashDir::instrumented(8, &sink, "d");
        traced.insert_if_absent("seed", 1);
        host.insert_if_absent("seed", 1);
        assert_mirrors!(
            &m,
            &sink,
            || {
                traced.get("seed");
            },
            || {
                host.get("seed");
            },
            "get hit"
        );
        assert_mirrors!(
            &m,
            &sink,
            || {
                traced.get("nope");
            },
            || {
                host.get("nope");
            },
            "get miss"
        );
        assert_mirrors!(
            &m,
            &sink,
            || {
                traced.contains("seed");
            },
            || {
                host.contains("seed");
            },
            "contains"
        );
        assert_mirrors!(
            &m,
            &sink,
            || {
                traced.insert_if_absent("fresh", 2);
            },
            || {
                host.insert_if_absent("fresh", 2);
            },
            "insert of a fresh key"
        );
        assert_mirrors!(
            &m,
            &sink,
            || {
                traced.insert_if_absent("seed", 9);
            },
            || {
                host.insert_if_absent("seed", 9);
            },
            "failed insert (must stay read-only)"
        );
        assert_mirrors!(
            &m,
            &sink,
            || traced.upsert("seed", 3),
            || host.upsert("seed", 3),
            "upsert existing"
        );
        assert_mirrors!(
            &m,
            &sink,
            || {
                traced.remove("seed");
            },
            || {
                host.remove("seed");
            },
            "remove existing"
        );
        assert_mirrors!(
            &m,
            &sink,
            || {
                traced.remove("seed");
            },
            || {
                host.remove("seed");
            },
            "remove missing (must stay read-only)"
        );
    }

    #[test]
    fn locked_pair_mirrors_the_unlocked_traced_sequence() {
        use crate::hash_dir::HashDir;
        let m = SimMachine::new();
        let sink = HostTraceSink::new(2);
        let traced: HashDir<u64> = HashDir::new(&m, "d", 8);
        let host: StripedHashDir<u64> = StripedHashDir::instrumented(8, &sink, "d");
        for dir_op in [("a", 1u64), ("b", 2u64)] {
            traced.insert_if_absent(dir_op.0, dir_op.1);
            host.insert_if_absent(dir_op.0, dir_op.1);
        }
        let sa = host.stripe_of("a");
        let sb = host.stripe_of("b");
        assert_mirrors!(
            &m,
            &sink,
            || {
                traced.get("a");
                traced.upsert("b", 7);
                traced.remove("a");
            },
            || {
                host.with_pair_locked("a", "b", |pair| {
                    pair.get("a", sa);
                    pair.upsert("b", sb, 7);
                    pair.remove("a", sa);
                });
            },
            "rename-style pairwise sequence"
        );
    }

    #[test]
    fn refcount_mirrors_the_refcache_footprint() {
        use crate::refcache::Refcache;
        let m = SimMachine::new();
        let sink = HostTraceSink::new(4);
        let traced = Refcache::new(&m, "inode[7].nlink", 4, 1);
        let host = PerCoreRefcount::instrumented(4, 1, &sink, "inode[7].nlink");
        assert_mirrors!(&m, &sink, || traced.inc(2), || host.inc(2), "inc");
        assert_mirrors!(&m, &sink, || traced.dec(3), || host.dec(3), "dec");
        assert_mirrors!(
            &m,
            &sink,
            || {
                traced.read_exact();
            },
            || {
                host.read_exact();
            },
            "read_exact"
        );
        assert_mirrors!(
            &m,
            &sink,
            || {
                traced.flush_epoch();
            },
            || {
                host.flush();
            },
            "flush"
        );
        // After the flush both values agree and a second flush writes no
        // delta lines (they are all zero).
        assert_eq!(traced.peek(), host.read_exact());
        assert_mirrors!(
            &m,
            &sink,
            || {
                traced.flush_epoch();
            },
            || {
                host.flush();
            },
            "flush with zero deltas"
        );
    }

    #[test]
    fn inode_allocator_mirrors_the_traced_footprint() {
        use crate::percore_alloc::InodeAllocator;
        let m = SimMachine::new();
        let sink = HostTraceSink::new(4);
        let traced = InodeAllocator::new(&m, "scalefs", 4);
        let host = HostInodeAllocator::instrumented(4, &sink, "scalefs");
        for core in [0usize, 1, 3] {
            assert_mirrors!(
                &m,
                &sink,
                || {
                    traced.alloc(core);
                },
                || {
                    host.alloc(core);
                },
                "inode alloc"
            );
        }
    }

    #[test]
    fn fd_allocator_mirrors_the_traced_footprint_in_both_modes() {
        use crate::percore_alloc::FdAllocator;
        let m = SimMachine::new();
        let sink = HostTraceSink::new(4);
        for mode in [FdMode::Lowest, FdMode::Any] {
            let traced = FdAllocator::new(&m, "p", 4, 8, mode);
            let host = HostFdAllocator::instrumented(4, 8, mode, &sink, "p");
            let (t_fd, h_fd) = (traced.alloc(2).unwrap(), host.alloc(2).unwrap());
            assert_eq!(t_fd, h_fd);
            assert_mirrors!(
                &m,
                &sink,
                || {
                    traced.alloc(1);
                },
                || {
                    host.alloc(1);
                },
                "fd alloc"
            );
            assert_mirrors!(
                &m,
                &sink,
                || {
                    traced.free(t_fd);
                },
                || {
                    host.free(h_fd);
                },
                "fd free"
            );
        }
    }

    #[test]
    fn lowest_fd_contention_is_observable_on_real_threads() {
        // The paper's §1 example, reproduced on the host monitor: two
        // threads allocating descriptors conflict on the shared lowest-FD
        // bitmap, and O_ANYFD partitions make the same workload
        // conflict-free.
        let sink = HostTraceSink::new(2);
        let lowest = HostFdAllocator::instrumented(2, 8, FdMode::Lowest, &sink, "proc0");
        let any = HostFdAllocator::instrumented(2, 8, FdMode::Any, &sink, "proc0-anyfd");
        let run = |alloc: &HostFdAllocator| {
            sink.begin_window();
            std::thread::scope(|s| {
                for core in 0..2 {
                    s.spawn(move || on_core(core, || alloc.alloc(core)));
                }
            });
            sink.end_window()
        };
        let contended = run(&lowest);
        assert!(!contended.is_conflict_free());
        assert_eq!(
            contended.conflicting_labels(),
            vec!["proc0.fd_bitmap".to_string()]
        );
        let scalable = run(&any);
        assert!(scalable.is_conflict_free(), "{scalable}");
    }

    #[test]
    fn probe_radix_fanout_matches_the_traced_radix_array() {
        assert_eq!(
            scr_hostmtrace::ProbeRadix::CAPACITY,
            crate::radix_array::RadixArray::<u8>::CAPACITY
        );
    }

    #[test]
    fn counters_are_thread_safe() {
        let shared = Arc::new(SharedCounter::new());
        let percore = Arc::new(PerCoreCounter::new(4));
        let mut handles = Vec::new();
        for t in 0..4 {
            let shared = Arc::clone(&shared);
            let percore = Arc::clone(&percore);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    shared.add(1);
                    percore.add(t, 1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(shared.read(), 4000);
        assert_eq!(percore.read(), 4000);
    }

    /// xorshift64* — the same tiny deterministic generator the campaign
    /// uses; seeds are printed in assertions so failures reproduce.
    fn xorshift(state: &mut u64) -> u64 {
        let mut x = *state | 1;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    #[test]
    fn socket_table_basic_semantics_match_the_simulated_twin() {
        let table = HostSocketTable::new(4);
        let ordered = table.create(QueueOrder::Ordered);
        table.send(0, ordered, b"a").unwrap();
        table.send(1, ordered, b"b").unwrap();
        assert_eq!(table.recv(2, ordered).unwrap(), b"a", "FIFO preserved");
        assert_eq!(table.recv(2, ordered).unwrap(), b"b");
        assert_eq!(table.recv(2, ordered), Err(SocketError::Empty));
        let unordered = table.create(QueueOrder::Unordered);
        table.send(0, unordered, b"only").unwrap();
        assert_eq!(
            table.recv(1, unordered).unwrap(),
            b"only",
            "receiver must steal from core 0's queue"
        );
        assert_eq!(table.pending_untraced(unordered), 0);
        // Bad ids fail like the simulated twin's EBADF paths; the queues
        // are unbounded so send never reports overflow, as in the model.
        assert_eq!(table.send(0, 7, b"x"), Err(SocketError::BadSocket));
        assert_eq!(table.recv(0, 7), Err(SocketError::BadSocket));
    }

    #[test]
    fn unordered_sockets_deliver_exactly_once_under_seeded_contention() {
        // Seeded rounds of real-thread churn: senders pick target cores
        // from the seed, receivers race to drain. Every message must be
        // received exactly once — no loss, no duplication.
        for seed in [0x5ca1ab1eu64, 0xdecafbad, 7] {
            let cores = 4;
            let table = Arc::new(HostSocketTable::new(cores));
            let sock = table.create(QueueOrder::Unordered);
            let per_sender = 200u64;
            let total = cores as u64 * per_sender;
            let received = Arc::new(std::sync::Mutex::new(Vec::new()));
            let taken = Arc::new(AtomicU64::new(0));
            std::thread::scope(|s| {
                for t in 0..cores {
                    let table = Arc::clone(&table);
                    s.spawn(move || {
                        let mut state = seed ^ (t as u64).wrapping_mul(0x9E37);
                        for i in 0..per_sender {
                            let core = (xorshift(&mut state) % cores as u64) as usize;
                            let msg = format!("{t}-{i}");
                            table.send(core, sock, msg.as_bytes()).unwrap();
                        }
                    });
                }
                for r in 0..cores {
                    let table = Arc::clone(&table);
                    let received = Arc::clone(&received);
                    let taken = Arc::clone(&taken);
                    s.spawn(move || loop {
                        if taken.load(Ordering::Acquire) >= total {
                            break;
                        }
                        match table.recv(r, sock) {
                            Ok(msg) => {
                                taken.fetch_add(1, Ordering::AcqRel);
                                received.lock().unwrap().push(msg);
                            }
                            Err(SocketError::Empty) => std::thread::yield_now(),
                            Err(e) => panic!("seed {seed:#x}: unexpected {e:?}"),
                        }
                    });
                }
            });
            let mut got = Arc::try_unwrap(received).unwrap().into_inner().unwrap();
            got.sort();
            let mut want: Vec<Vec<u8>> = (0..cores)
                .flat_map(|t| (0..per_sender).map(move |i| format!("{t}-{i}").into_bytes()))
                .collect();
            want.sort();
            assert_eq!(
                got.len() as u64,
                total,
                "seed {seed:#x}: lost or duplicated"
            );
            assert_eq!(got, want, "seed {seed:#x}: corpus mismatch");
            assert_eq!(table.pending_untraced(sock), 0);
        }
    }

    #[test]
    fn no_receiver_starves_while_another_cores_queue_is_nonempty() {
        // Every message lands in core 0's queue; receivers run only on
        // cores 1..4. If stealing ever skipped a non-empty remote queue,
        // this would spin forever (the test would time out) or lose
        // messages.
        let cores = 4;
        let table = Arc::new(HostSocketTable::new(cores));
        let sock = table.create(QueueOrder::Unordered);
        let total = 300u64;
        for i in 0..total {
            table.send(0, sock, format!("m{i}").as_bytes()).unwrap();
        }
        let taken = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for r in 1..cores {
                let table = Arc::clone(&table);
                let taken = Arc::clone(&taken);
                s.spawn(move || loop {
                    if taken.load(Ordering::Acquire) >= total {
                        break;
                    }
                    match table.recv(r, sock) {
                        Ok(_) => {
                            taken.fetch_add(1, Ordering::AcqRel);
                        }
                        Err(SocketError::Empty) => {
                            // Empty may only be reported when the queues
                            // really are empty — i.e. everything was taken.
                            assert!(
                                taken.load(Ordering::Acquire) + (cores as u64) >= total,
                                "starved with messages pending"
                            );
                            std::thread::yield_now();
                        }
                        Err(e) => panic!("unexpected {e:?}"),
                    }
                });
            }
        });
        assert_eq!(taken.load(Ordering::Acquire), total);
        assert_eq!(table.pending_untraced(sock), 0);
    }

    #[test]
    fn proc_table_is_dense_and_wait_free_to_read() {
        let table: HostProcTable<Arc<String>> = HostProcTable::new();
        assert!(table.is_empty());
        let a = table.push_with(|pid| Arc::new(format!("proc-{pid}")));
        let b = table.push_with(|pid| Arc::new(format!("proc-{pid}")));
        assert_eq!((a, b), (0, 1));
        assert_eq!(table.get(0).unwrap().as_str(), "proc-0");
        assert_eq!(table.get(1).unwrap().as_str(), "proc-1");
        assert_eq!(table.get(2), None);
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn proc_table_concurrent_pushes_assign_unique_dense_pids() {
        let table: Arc<HostProcTable<Arc<usize>>> = Arc::new(HostProcTable::new());
        let threads = 4;
        let per_thread = 200;
        let pids = std::sync::Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for _ in 0..threads {
                let table = Arc::clone(&table);
                let pids = &pids;
                s.spawn(move || {
                    let mut mine = Vec::new();
                    for _ in 0..per_thread {
                        mine.push(table.push_with(Arc::new));
                    }
                    pids.lock().unwrap().extend(mine);
                });
            }
        });
        let mut pids = pids.into_inner().unwrap();
        pids.sort_unstable();
        assert_eq!(pids, (0..threads * per_thread).collect::<Vec<_>>());
        for pid in pids {
            assert_eq!(*table.get(pid).unwrap(), pid, "entry stores its own pid");
        }
    }
}
