//! Seqlocks (§6.3, citing Lameter's Linux/NUMA synchronisation survey).
//!
//! A seqlock protects a small piece of metadata with a sequence counter:
//! writers bump the counter to an odd value, update the data, then bump it
//! to the next even value; readers read the counter, read the data, and
//! retry if the counter changed or was odd. Readers never write shared
//! memory, so concurrent readers are conflict-free; a reader concurrent
//! with a writer conflicts (as it must — they don't commute).

use scr_mtrace::{SimMachine, TracedCell};

/// Seqlock-protected value.
#[derive(Clone, Debug)]
pub struct SeqLock<T: Clone + 'static> {
    seq: TracedCell<u64>,
    data: TracedCell<T>,
}

impl<T: Clone + 'static> SeqLock<T> {
    /// Allocates a seqlock with the given initial value.
    pub fn new(machine: &SimMachine, label: &str, value: T) -> Self {
        SeqLock {
            seq: machine.cell(format!("{label}.seq"), 0u64),
            data: machine.cell(format!("{label}.data"), value),
        }
    }

    /// Reads the protected value using the read protocol (reads only).
    pub fn read(&self) -> T {
        loop {
            let before = self.seq.get();
            if before % 2 == 1 {
                // Writer in progress; on the simulated machine this cannot
                // actually happen concurrently, but keep the protocol shape.
                continue;
            }
            let value = self.data.get();
            let after = self.seq.get();
            if before == after {
                return value;
            }
        }
    }

    /// Updates the protected value using the write protocol.
    pub fn write(&self, f: impl FnOnce(&mut T)) {
        self.seq.update(|s| *s += 1);
        self.data.update(f);
        self.seq.update(|s| *s += 1);
    }

    /// Untraced read for assertions.
    pub fn peek(&self) -> T {
        self.data.peek(|v| v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_returns_latest_write() {
        let m = SimMachine::new();
        let sl = SeqLock::new(&m, "inode.meta", 7u64);
        assert_eq!(sl.read(), 7);
        sl.write(|v| *v = 9);
        assert_eq!(sl.read(), 9);
        assert_eq!(sl.peek(), 9);
    }

    #[test]
    fn concurrent_readers_are_conflict_free() {
        let m = SimMachine::new();
        let sl = SeqLock::new(&m, "inode.meta", 1u64);
        m.start_tracing();
        m.on_core(0, || {
            let _ = sl.read();
        });
        m.on_core(1, || {
            let _ = sl.read();
        });
        assert!(m.conflict_report().is_conflict_free());
    }

    #[test]
    fn reader_conflicts_with_writer() {
        let m = SimMachine::new();
        let sl = SeqLock::new(&m, "inode.meta", 1u64);
        m.start_tracing();
        m.on_core(0, || sl.write(|v| *v = 2));
        m.on_core(1, || {
            let _ = sl.read();
        });
        assert!(!m.conflict_report().is_conflict_free());
    }
}
