//! A hash table with per-bucket locks — the directory representation §1 and
//! §6.3 use to make creation of differently-named files conflict-free.
//!
//! Each bucket is a separate traced cell holding a small association list,
//! guarded by its own [`TracedLock`]. Operations on names that hash to
//! different buckets touch disjoint cache lines; operations on the same name
//! (or colliding names) share a bucket and conflict, which mirrors the
//! "barring hash collisions" caveat in the paper.

use crate::spinlock::TracedLock;
use scr_mtrace::{SimMachine, TracedCell};

/// Deterministic string hash (FNV-1a), stable across runs so test cases
/// are reproducible. Shared by the traced [`HashDir`] and the host twin
/// [`crate::real::StripedHashDir`], whose bucket placement must agree.
pub fn fnv1a(key: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in key.as_bytes() {
        h ^= *byte as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A string-keyed hash map with one lock and one storage line per bucket.
#[derive(Clone, Debug)]
pub struct HashDir<V: Clone + 'static> {
    buckets: Vec<Bucket<V>>,
}

#[derive(Clone, Debug)]
struct Bucket<V: Clone + 'static> {
    lock: TracedLock,
    entries: TracedCell<Vec<(String, V)>>,
}

impl<V: Clone + 'static> HashDir<V> {
    /// Allocates a directory with `buckets` buckets.
    pub fn new(machine: &SimMachine, label: &str, buckets: usize) -> Self {
        assert!(buckets > 0, "need at least one bucket");
        let buckets = (0..buckets)
            .map(|b| Bucket {
                lock: TracedLock::new(machine, format!("{label}.bucket[{b}].lock")),
                entries: machine.cell(format!("{label}.bucket[{b}].entries"), Vec::new()),
            })
            .collect();
        HashDir { buckets }
    }

    /// Number of buckets.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// The bucket index a key maps to.
    pub fn bucket_of(&self, key: &str) -> usize {
        (fnv1a(key) % self.buckets.len() as u64) as usize
    }

    /// Looks up a key (read-only; touches only the key's bucket).
    pub fn get(&self, key: &str) -> Option<V> {
        let bucket = &self.buckets[self.bucket_of(key)];
        bucket.entries.with(|entries| {
            entries
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.clone())
        })
    }

    /// Does the key exist? (Read-only, like ScaleFS's existence-only lookup
    /// used by `access(F_OK)`.)
    pub fn contains(&self, key: &str) -> bool {
        let bucket = &self.buckets[self.bucket_of(key)];
        bucket
            .entries
            .with(|entries| entries.iter().any(|(k, _)| k == key))
    }

    /// Inserts a key if absent. Returns `true` if inserted, `false` if the
    /// key already existed (in which case nothing is written).
    pub fn insert_if_absent(&self, key: &str, value: V) -> bool {
        let bucket = &self.buckets[self.bucket_of(key)];
        // Optimistic existence check before taking the lock ("precede
        // pessimism with optimism").
        let exists = bucket
            .entries
            .with(|entries| entries.iter().any(|(k, _)| k == key));
        if exists {
            return false;
        }
        bucket.lock.with(|| {
            let exists = bucket
                .entries
                .with(|entries| entries.iter().any(|(k, _)| k == key));
            if exists {
                false
            } else {
                bucket.entries.update(|entries| {
                    entries.push((key.to_string(), value.clone()));
                });
                true
            }
        })
    }

    /// Unconditionally inserts or replaces a key's value.
    pub fn upsert(&self, key: &str, value: V) {
        let bucket = &self.buckets[self.bucket_of(key)];
        bucket.lock.with(|| {
            bucket.entries.update(|entries| {
                if let Some(entry) = entries.iter_mut().find(|(k, _)| k == key) {
                    entry.1 = value.clone();
                } else {
                    entries.push((key.to_string(), value.clone()));
                }
            });
        });
    }

    /// Removes a key, returning its value if it was present. When the key is
    /// absent nothing is written (optimistic check first).
    pub fn remove(&self, key: &str) -> Option<V> {
        let bucket = &self.buckets[self.bucket_of(key)];
        let exists = bucket
            .entries
            .with(|entries| entries.iter().any(|(k, _)| k == key));
        if !exists {
            return None;
        }
        bucket.lock.with(|| {
            bucket.entries.update(|entries| {
                let pos = entries.iter().position(|(k, _)| k == key)?;
                Some(entries.remove(pos).1)
            })
        })
    }

    /// Every (key, value) pair, in unspecified order (untraced; for tests
    /// and for directory listing in examples).
    pub fn entries_untraced(&self) -> Vec<(String, V)> {
        let mut out = Vec::new();
        for bucket in &self.buckets {
            bucket.entries.peek(|entries| out.extend(entries.clone()));
        }
        out
    }

    /// Number of entries (untraced).
    pub fn len_untraced(&self) -> usize {
        self.buckets
            .iter()
            .map(|b| b.entries.peek(|e| e.len()))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let m = SimMachine::new();
        let dir: HashDir<u64> = HashDir::new(&m, "root", 16);
        assert!(dir.insert_if_absent("a", 1));
        assert!(!dir.insert_if_absent("a", 2));
        assert_eq!(dir.get("a"), Some(1));
        assert!(dir.contains("a"));
        assert_eq!(dir.remove("a"), Some(1));
        assert_eq!(dir.remove("a"), None);
        assert_eq!(dir.len_untraced(), 0);
    }

    #[test]
    fn upsert_replaces_existing_value() {
        let m = SimMachine::new();
        let dir: HashDir<u64> = HashDir::new(&m, "root", 16);
        dir.upsert("f", 1);
        dir.upsert("f", 2);
        assert_eq!(dir.get("f"), Some(2));
        assert_eq!(dir.len_untraced(), 1);
    }

    #[test]
    fn creates_of_different_names_are_conflict_free() {
        // The motivating example of §1: creating differently-named files in
        // the same directory commutes and has a conflict-free implementation.
        let m = SimMachine::new();
        let dir: HashDir<u64> = HashDir::new(&m, "shared_dir", 64);
        // Pick two names in different buckets.
        let (a, b) = two_names_in_distinct_buckets(&dir);
        m.start_tracing();
        m.on_core(0, || {
            dir.insert_if_absent(&a, 1);
        });
        m.on_core(1, || {
            dir.insert_if_absent(&b, 2);
        });
        assert!(m.conflict_report().is_conflict_free());
    }

    #[test]
    fn creates_of_same_name_conflict() {
        let m = SimMachine::new();
        let dir: HashDir<u64> = HashDir::new(&m, "shared_dir", 64);
        m.start_tracing();
        m.on_core(0, || {
            dir.insert_if_absent("same", 1);
        });
        m.on_core(1, || {
            dir.insert_if_absent("same", 2);
        });
        assert!(!m.conflict_report().is_conflict_free());
    }

    #[test]
    fn lookups_of_existing_names_do_not_conflict_with_each_other() {
        let m = SimMachine::new();
        let dir: HashDir<u64> = HashDir::new(&m, "d", 64);
        dir.insert_if_absent("x", 1);
        dir.insert_if_absent("y", 2);
        m.start_tracing();
        m.on_core(0, || {
            let _ = dir.get("x");
        });
        m.on_core(1, || {
            let _ = dir.get("x");
        });
        assert!(m.conflict_report().is_conflict_free());
    }

    #[test]
    fn failed_insert_of_existing_name_is_read_only() {
        let m = SimMachine::new();
        let dir: HashDir<u64> = HashDir::new(&m, "d", 64);
        dir.insert_if_absent("exists", 1);
        m.start_tracing();
        m.on_core(0, || {
            assert!(!dir.insert_if_absent("exists", 9));
        });
        m.on_core(1, || {
            assert!(!dir.insert_if_absent("exists", 9));
        });
        // Both creations fail with EEXIST — they commute, and the optimistic
        // existence check keeps them conflict-free.
        assert!(m.conflict_report().is_conflict_free());
    }

    fn two_names_in_distinct_buckets(dir: &HashDir<u64>) -> (String, String) {
        let a = "file-a".to_string();
        for i in 0..10_000 {
            let candidate = format!("file-{i}");
            if dir.bucket_of(&candidate) != dir.bucket_of(&a) {
                return (a, candidate);
            }
        }
        panic!("could not find names in distinct buckets");
    }
}
