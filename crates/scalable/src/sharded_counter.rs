//! Per-core sharded counters.
//!
//! A sharded counter keeps one cache line per core; increments and
//! decrements touch only the invoking core's shard, so commutative updates
//! from different cores are conflict-free. Reading the exact value requires
//! summing every shard and therefore conflicts with concurrent updates —
//! which is fine, because an exact read does not commute with updates
//! anyway.

use scr_mtrace::{CoreId, SimMachine, TracedCell};

/// A counter sharded across cores (one traced cache line per shard).
#[derive(Clone, Debug)]
pub struct ShardedCounter {
    shards: Vec<TracedCell<i64>>,
}

impl ShardedCounter {
    /// Allocates a counter with `cores` shards.
    pub fn new(machine: &SimMachine, label: &str, cores: usize) -> Self {
        let shards = (0..cores)
            .map(|c| machine.cell(format!("{label}.shard[{c}]"), 0i64))
            .collect();
        ShardedCounter { shards }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Adds `delta` on behalf of `core` (touches only that core's shard).
    pub fn add(&self, core: CoreId, delta: i64) {
        self.shards[core % self.shards.len()].update(|v| *v += delta);
    }

    /// Reads the exact value by summing every shard (touches every shard).
    pub fn read(&self) -> i64 {
        self.shards.iter().map(|s| s.get()).sum()
    }

    /// Reads the exact value without recording accesses (for assertions).
    pub fn peek(&self) -> i64 {
        self.shards.iter().map(|s| s.peek(|v| *v)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adds_from_all_cores_sum_correctly() {
        let m = SimMachine::new();
        let ctr = ShardedCounter::new(&m, "nlink", 4);
        for core in 0..4 {
            ctr.add(core, (core + 1) as i64);
        }
        assert_eq!(ctr.read(), 1 + 2 + 3 + 4);
    }

    #[test]
    fn concurrent_adds_are_conflict_free() {
        let m = SimMachine::new();
        let ctr = ShardedCounter::new(&m, "nlink", 8);
        m.start_tracing();
        for core in 0..8 {
            m.on_core(core, || ctr.add(core, 1));
        }
        assert!(m.conflict_report().is_conflict_free());
    }

    #[test]
    fn exact_read_conflicts_with_updates() {
        let m = SimMachine::new();
        let ctr = ShardedCounter::new(&m, "nlink", 4);
        m.start_tracing();
        m.on_core(0, || ctr.add(0, 1));
        m.on_core(1, || {
            let _ = ctr.read();
        });
        assert!(!m.conflict_report().is_conflict_free());
    }

    #[test]
    fn shard_count_wraps_core_ids() {
        let m = SimMachine::new();
        let ctr = ShardedCounter::new(&m, "c", 2);
        ctr.add(5, 10); // core 5 maps to shard 1
        assert_eq!(ctr.peek(), 10);
        assert_eq!(ctr.shards(), 2);
    }
}
