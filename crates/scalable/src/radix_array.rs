//! Radix arrays (§6.3 "layer scalability", and the core structure of
//! RadixVM).
//!
//! A radix array maps small integer indices (page numbers, virtual page
//! numbers) to values. Unlike a balanced tree, the location of an entry
//! depends only on its index, so operations on *different* indices touch
//! disjoint cache lines and are conflict-free — even when other operations
//! are concurrently extending or truncating the array. Interior node slots
//! are individually allocated cells, so populating two different subtrees
//! does not conflict either.

use scr_mtrace::{SimMachine, TracedCell};
use std::cell::RefCell;
use std::rc::Rc;

/// Fan-out of each radix level.
const FANOUT: usize = 64;

/// A two-level radix array: capacity `FANOUT * FANOUT` (4096) entries.
///
/// Each leaf slot and each interior slot is its own traced cell, so accesses
/// to different indices are conflict-free.
#[derive(Clone)]
pub struct RadixArray<T: Clone + 'static> {
    machine: SimMachine,
    label: String,
    /// Interior slots: each holds `Some(leaf-table index)` once populated.
    interior: Vec<TracedCell<Option<usize>>>,
    /// Leaf tables, allocated on demand; each leaf table is a vector of
    /// per-slot cells.
    #[allow(clippy::type_complexity)]
    leaves: Rc<RefCell<Vec<Vec<TracedCell<Option<T>>>>>>,
}

impl<T: Clone + 'static> RadixArray<T> {
    /// Maximum index representable by the array.
    pub const CAPACITY: usize = FANOUT * FANOUT;

    /// Allocates an empty radix array.
    pub fn new(machine: &SimMachine, label: &str) -> Self {
        let interior = (0..FANOUT)
            .map(|i| machine.cell(format!("{label}.interior[{i}]"), None))
            .collect();
        RadixArray {
            machine: machine.clone(),
            label: label.to_string(),
            interior,
            leaves: Rc::new(RefCell::new(Vec::new())),
        }
    }

    fn split(index: usize) -> (usize, usize) {
        assert!(index < Self::CAPACITY, "radix index out of range");
        (index / FANOUT, index % FANOUT)
    }

    /// Ensures the leaf table for `hi` exists and returns its index.
    fn ensure_leaf(&self, hi: usize) -> usize {
        if let Some(leaf_idx) = self.interior[hi].get() {
            return leaf_idx;
        }
        // Populate: allocate a leaf table and publish it in the interior
        // slot. Only this interior slot's line is written.
        let mut leaves = self.leaves.borrow_mut();
        let leaf_idx = leaves.len();
        let table = (0..FANOUT)
            .map(|lo| {
                self.machine
                    .cell(format!("{}.leaf[{hi}][{lo}]", self.label), None)
            })
            .collect();
        leaves.push(table);
        drop(leaves);
        self.interior[hi].set(Some(leaf_idx));
        leaf_idx
    }

    /// Stores `value` at `index`.
    pub fn set(&self, index: usize, value: T) {
        let (hi, lo) = Self::split(index);
        let leaf_idx = self.ensure_leaf(hi);
        self.leaves.borrow()[leaf_idx][lo].set(Some(value));
    }

    /// Removes and returns the value at `index`.
    pub fn take(&self, index: usize) -> Option<T> {
        let (hi, lo) = Self::split(index);
        let leaf_idx = self.interior[hi].get()?;
        let leaves = self.leaves.borrow();
        let cell = &leaves[leaf_idx][lo];
        let old = cell.get();
        if old.is_some() {
            cell.set(None);
        }
        old
    }

    /// Reads the value at `index`.
    pub fn get(&self, index: usize) -> Option<T> {
        let (hi, lo) = Self::split(index);
        let leaf_idx = self.interior[hi].get()?;
        self.leaves.borrow()[leaf_idx][lo].get()
    }

    /// True when `index` is populated (reads only the slot, not the value —
    /// used by ScaleFS to test file bounds without conflicting with writes
    /// to other pages).
    pub fn contains(&self, index: usize) -> bool {
        self.get(index).is_some()
    }

    /// Number of populated entries (untraced; for assertions and tests).
    pub fn len_untraced(&self) -> usize {
        let leaves = self.leaves.borrow();
        let mut count = 0;
        for table in leaves.iter() {
            for cell in table {
                if cell.peek(|v| v.is_some()) {
                    count += 1;
                }
            }
        }
        count
    }

    /// Indices of populated entries, in ascending order (untraced).
    pub fn indices_untraced(&self) -> Vec<usize> {
        let mut out = Vec::new();
        for hi in 0..FANOUT {
            if let Some(leaf_idx) = self.interior[hi].peek(|v| *v) {
                let leaves = self.leaves.borrow();
                for (lo, cell) in leaves[leaf_idx].iter().enumerate() {
                    if cell.peek(|v| v.is_some()) {
                        out.push(hi * FANOUT + lo);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_take_roundtrip() {
        let m = SimMachine::new();
        let arr: RadixArray<u64> = RadixArray::new(&m, "pages");
        assert_eq!(arr.get(5), None);
        arr.set(5, 500);
        arr.set(70, 700);
        assert_eq!(arr.get(5), Some(500));
        assert_eq!(arr.get(70), Some(700));
        assert_eq!(arr.take(5), Some(500));
        assert_eq!(arr.get(5), None);
        assert_eq!(arr.len_untraced(), 1);
        assert_eq!(arr.indices_untraced(), vec![70]);
    }

    #[test]
    fn writes_to_distinct_indices_are_conflict_free() {
        let m = SimMachine::new();
        let arr: RadixArray<u64> = RadixArray::new(&m, "pages");
        // Pre-populate the leaf tables so the test measures steady state.
        arr.set(3, 0);
        arr.set(200, 0);
        m.start_tracing();
        m.on_core(0, || arr.set(3, 33));
        m.on_core(1, || arr.set(200, 44));
        assert!(m.conflict_report().is_conflict_free());
    }

    #[test]
    fn writes_to_distinct_indices_in_same_leaf_are_conflict_free() {
        let m = SimMachine::new();
        let arr: RadixArray<u64> = RadixArray::new(&m, "pages");
        arr.set(10, 0);
        arr.set(11, 0);
        m.start_tracing();
        m.on_core(0, || arr.set(10, 1));
        m.on_core(1, || arr.set(11, 2));
        assert!(m.conflict_report().is_conflict_free());
    }

    #[test]
    fn writes_to_same_index_conflict() {
        let m = SimMachine::new();
        let arr: RadixArray<u64> = RadixArray::new(&m, "pages");
        arr.set(10, 0);
        m.start_tracing();
        m.on_core(0, || arr.set(10, 1));
        m.on_core(1, || arr.set(10, 2));
        assert!(!m.conflict_report().is_conflict_free());
    }

    #[test]
    fn reads_do_not_conflict_with_writes_to_other_indices() {
        let m = SimMachine::new();
        let arr: RadixArray<u64> = RadixArray::new(&m, "file.pages");
        arr.set(1, 10);
        arr.set(2, 20);
        m.start_tracing();
        m.on_core(0, || {
            let _ = arr.get(1);
        });
        m.on_core(1, || arr.set(2, 21));
        assert!(m.conflict_report().is_conflict_free());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_index_panics() {
        let m = SimMachine::new();
        let arr: RadixArray<u64> = RadixArray::new(&m, "pages");
        arr.set(RadixArray::<u64>::CAPACITY, 1);
    }
}
