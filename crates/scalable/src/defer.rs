//! Deferred resource reclamation (§6.3 "defer work").
//!
//! Kernels often must free a resource when its last reference disappears,
//! but releasing it *immediately* requires eagerly tracking references and
//! makes otherwise-commutative operations conflict. ScaleFS instead defers
//! reclamation: each core appends condemned resources to its own queue, and
//! a periodic pass (an epoch boundary) reclaims everything whose reference
//! count reconciled to zero.
//!
//! [`DeferQueue`] is the per-core queue plus the epoch pass. It is generic
//! over the resource identifier; the kernel uses it for inode numbers and
//! pipe buffers.

use scr_mtrace::{CoreId, SimMachine, TracedCell};

/// Per-core queues of deferred reclamation work.
#[derive(Clone, Debug)]
pub struct DeferQueue<T: Clone + 'static> {
    queues: Vec<TracedCell<Vec<T>>>,
    reclaimed: TracedCell<Vec<T>>,
}

impl<T: Clone + 'static> DeferQueue<T> {
    /// Allocates queues for `cores` cores.
    pub fn new(machine: &SimMachine, label: &str, cores: usize) -> Self {
        DeferQueue {
            queues: (0..cores)
                .map(|c| machine.cell(format!("{label}.defer[{c}]"), Vec::new()))
                .collect(),
            reclaimed: machine.cell(format!("{label}.reclaimed"), Vec::new()),
        }
    }

    /// Defers reclamation of `item` on behalf of `core` (touches only that
    /// core's queue line).
    pub fn defer(&self, core: CoreId, item: T) {
        self.queues[core % self.queues.len()].update(|q| q.push(item.clone()));
    }

    /// Runs an epoch pass: drains every core's queue, passing each item to
    /// `reclaim` and recording it. Returns the number of items reclaimed.
    pub fn epoch(&self, mut reclaim: impl FnMut(&T)) -> usize {
        let mut count = 0;
        for queue in &self.queues {
            let drained = queue.update(std::mem::take);
            for item in drained {
                reclaim(&item);
                self.reclaimed.update(|r| r.push(item.clone()));
                count += 1;
            }
        }
        count
    }

    /// Number of items waiting to be reclaimed (untraced).
    pub fn pending_untraced(&self) -> usize {
        self.queues.iter().map(|q| q.peek(|v| v.len())).sum()
    }

    /// Items reclaimed so far (untraced).
    pub fn reclaimed_untraced(&self) -> Vec<T> {
        self.reclaimed.peek(|r| r.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defer_then_epoch_reclaims_everything() {
        let m = SimMachine::new();
        let dq: DeferQueue<u64> = DeferQueue::new(&m, "inodes", 4);
        dq.defer(0, 100);
        dq.defer(1, 200);
        dq.defer(1, 201);
        assert_eq!(dq.pending_untraced(), 3);
        let mut seen = Vec::new();
        let n = dq.epoch(|item| seen.push(*item));
        assert_eq!(n, 3);
        seen.sort_unstable();
        assert_eq!(seen, vec![100, 200, 201]);
        assert_eq!(dq.pending_untraced(), 0);
        assert_eq!(dq.reclaimed_untraced().len(), 3);
    }

    #[test]
    fn defers_from_different_cores_are_conflict_free() {
        let m = SimMachine::new();
        let dq: DeferQueue<u64> = DeferQueue::new(&m, "inodes", 4);
        m.start_tracing();
        for core in 0..4 {
            m.on_core(core, || dq.defer(core, core as u64));
        }
        assert!(m.conflict_report().is_conflict_free());
    }

    #[test]
    fn second_epoch_is_a_no_op() {
        let m = SimMachine::new();
        let dq: DeferQueue<u64> = DeferQueue::new(&m, "x", 2);
        dq.defer(0, 1);
        assert_eq!(dq.epoch(|_| {}), 1);
        assert_eq!(dq.epoch(|_| {}), 0);
    }
}
