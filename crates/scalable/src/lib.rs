//! # scr-scalable — building blocks for conflict-free implementations
//!
//! §6.3 of the paper lists the techniques ScaleFS and RadixVM use to make
//! commutative operations conflict-free: per-core resource allocation,
//! Refcache scalable reference counts, radix arrays, hash tables with
//! per-bucket locks, seqlocks, deferred (batched) resource reclamation, and
//! optimistic check-then-update protocols.
//!
//! This crate implements those building blocks twice:
//!
//! * **Traced variants** (the default, in the top-level modules) are built
//!   on [`scr_mtrace::TracedCell`], so every read and write they perform is
//!   visible to the conflict detector and the MESI model. These are the
//!   versions the sv6-style kernel (`scr-kernel`) is assembled from.
//! * **Host variants** (in [`real`]) use actual atomics
//!   (`crossbeam_utils::CachePadded`, `parking_lot`) and are exercised by the
//!   Criterion micro-benchmarks on the host machine, providing a sanity
//!   check that the simulated behaviour matches real hardware trends.

pub mod defer;
pub mod hash_dir;
pub mod percore_alloc;
pub mod radix_array;
pub mod real;
pub mod refcache;
pub mod seqlock;
pub mod sharded_counter;
pub mod spinlock;

pub use defer::DeferQueue;
pub use hash_dir::HashDir;
pub use percore_alloc::{FdAllocator, FdMode, InodeAllocator};
pub use radix_array::RadixArray;
pub use real::{HostFdAllocator, HostInodeAllocator, StripedHashDir};
pub use refcache::Refcache;
pub use seqlock::SeqLock;
pub use sharded_counter::ShardedCounter;
pub use spinlock::TracedLock;
