//! Per-core resource allocators (§6.3 "defer work" and §4/§7.2 `O_ANYFD`).
//!
//! Two allocators live here:
//!
//! * [`InodeAllocator`] hands out inode numbers from a per-core
//!   monotonically increasing counter concatenated with the core number, so
//!   inode numbers are never reused and allocation never touches another
//!   core's cache line.
//! * [`FdAllocator`] manages a process's file-descriptor table in one of two
//!   modes. [`FdMode::Lowest`] implements POSIX's "lowest available FD" rule
//!   with a single shared bitmap (every allocation conflicts).
//!   [`FdMode::Any`] implements the `O_ANYFD` relaxation with per-core
//!   partitions of the descriptor space, so concurrent allocations from
//!   different cores are conflict-free.

use scr_mtrace::{CoreId, SimMachine, TracedCell};

/// Allocates never-reused inode numbers from per-core counters.
#[derive(Clone, Debug)]
pub struct InodeAllocator {
    counters: Vec<TracedCell<u64>>,
}

impl InodeAllocator {
    /// Allocator with one counter per core.
    pub fn new(machine: &SimMachine, label: &str, cores: usize) -> Self {
        InodeAllocator {
            counters: (0..cores)
                .map(|c| machine.cell(format!("{label}.next_ino[{c}]"), 0u64))
                .collect(),
        }
    }

    /// Allocates a fresh inode number on `core`: `(counter << 8) | core`.
    pub fn alloc(&self, core: CoreId) -> u64 {
        let cores = self.counters.len() as u64;
        let core = core as u64 % cores;
        let count = self.counters[core as usize].fetch_update(|c| c + 1);
        (count << 8) | core
    }
}

/// Descriptor-allocation policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FdMode {
    /// POSIX: return the lowest unused descriptor (single shared bitmap).
    Lowest,
    /// `O_ANYFD`: return any unused descriptor (per-core partitions).
    Any,
}

/// A file-descriptor table supporting both allocation policies.
#[derive(Clone, Debug)]
pub struct FdAllocator {
    mode: FdMode,
    /// `Lowest` mode: one shared bitmap of used descriptors.
    shared: TracedCell<Vec<bool>>,
    /// `Any` mode: per-core bitmaps; descriptor = core * partition + slot.
    per_core: Vec<TracedCell<Vec<bool>>>,
    partition: usize,
}

impl FdAllocator {
    /// Builds a table with `cores * partition` descriptors.
    pub fn new(
        machine: &SimMachine,
        label: &str,
        cores: usize,
        partition: usize,
        mode: FdMode,
    ) -> Self {
        FdAllocator {
            mode,
            shared: machine.cell(format!("{label}.fd_bitmap"), vec![false; cores * partition]),
            per_core: (0..cores)
                .map(|c| machine.cell(format!("{label}.fd_partition[{c}]"), vec![false; partition]))
                .collect(),
            partition,
        }
    }

    /// The allocation policy in force.
    pub fn mode(&self) -> FdMode {
        self.mode
    }

    /// Total descriptor capacity.
    pub fn capacity(&self) -> usize {
        self.per_core.len() * self.partition
    }

    /// Allocates a descriptor on behalf of `core`. Returns `None` when the
    /// table (or, in `Any` mode, the core's partition) is exhausted.
    pub fn alloc(&self, core: CoreId) -> Option<u32> {
        match self.mode {
            FdMode::Lowest => self.shared.update(|bitmap| {
                let slot = bitmap.iter().position(|used| !used)?;
                bitmap[slot] = true;
                Some(slot as u32)
            }),
            FdMode::Any => {
                let core = core % self.per_core.len();
                self.per_core[core].update(|bitmap| {
                    let slot = bitmap.iter().position(|used| !used)?;
                    bitmap[slot] = true;
                    Some((core * self.partition + slot) as u32)
                })
            }
        }
    }

    /// Releases a descriptor. Returns `false` if it was not allocated.
    pub fn free(&self, fd: u32) -> bool {
        let fd = fd as usize;
        if fd >= self.capacity() {
            return false;
        }
        match self.mode {
            FdMode::Lowest => self.shared.update(|bitmap| {
                let was = bitmap[fd];
                bitmap[fd] = false;
                was
            }),
            FdMode::Any => {
                let core = fd / self.partition;
                let slot = fd % self.partition;
                self.per_core[core].update(|bitmap| {
                    let was = bitmap[slot];
                    bitmap[slot] = false;
                    was
                })
            }
        }
    }

    /// Is the descriptor currently allocated? (Traced read.)
    pub fn is_allocated(&self, fd: u32) -> bool {
        let fd = fd as usize;
        if fd >= self.capacity() {
            return false;
        }
        match self.mode {
            FdMode::Lowest => self.shared.with(|bitmap| bitmap[fd]),
            FdMode::Any => {
                let core = fd / self.partition;
                let slot = fd % self.partition;
                self.per_core[core].with(|bitmap| bitmap[slot])
            }
        }
    }

    /// Number of allocated descriptors (untraced; for assertions).
    pub fn allocated_untraced(&self) -> usize {
        match self.mode {
            FdMode::Lowest => self.shared.peek(|b| b.iter().filter(|u| **u).count()),
            FdMode::Any => self
                .per_core
                .iter()
                .map(|c| c.peek(|b| b.iter().filter(|u| **u).count()))
                .sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inode_numbers_are_unique_across_cores() {
        let m = SimMachine::new();
        let alloc = InodeAllocator::new(&m, "scalefs", 4);
        let mut seen = std::collections::BTreeSet::new();
        for core in 0..4 {
            for _ in 0..10 {
                assert!(seen.insert(alloc.alloc(core)));
            }
        }
        assert_eq!(seen.len(), 40);
    }

    #[test]
    fn inode_allocation_is_conflict_free_across_cores() {
        let m = SimMachine::new();
        let alloc = InodeAllocator::new(&m, "scalefs", 8);
        m.start_tracing();
        for core in 0..8 {
            m.on_core(core, || {
                alloc.alloc(core);
            });
        }
        assert!(m.conflict_report().is_conflict_free());
    }

    #[test]
    fn lowest_mode_returns_lowest_and_conflicts() {
        let m = SimMachine::new();
        let fds = FdAllocator::new(&m, "proc0", 2, 8, FdMode::Lowest);
        assert_eq!(fds.alloc(0), Some(0));
        assert_eq!(fds.alloc(1), Some(1));
        assert!(fds.free(0));
        assert_eq!(fds.alloc(1), Some(0), "lowest free fd must be reused");
        m.start_tracing();
        m.on_core(0, || {
            fds.alloc(0);
        });
        m.on_core(1, || {
            fds.alloc(1);
        });
        assert!(!m.conflict_report().is_conflict_free());
    }

    #[test]
    fn any_mode_is_conflict_free_across_cores() {
        let m = SimMachine::new();
        let fds = FdAllocator::new(&m, "proc0", 4, 8, FdMode::Any);
        m.start_tracing();
        for core in 0..4 {
            m.on_core(core, || {
                let fd = fds.alloc(core).expect("fd");
                assert!(fds.free(fd));
            });
        }
        assert!(m.conflict_report().is_conflict_free());
        assert_eq!(fds.allocated_untraced(), 0);
    }

    #[test]
    fn any_mode_descriptors_map_back_to_their_partition() {
        let m = SimMachine::new();
        let fds = FdAllocator::new(&m, "p", 4, 8, FdMode::Any);
        let fd = fds.alloc(2).unwrap();
        assert_eq!(fd as usize / 8, 2);
        assert!(fds.is_allocated(fd));
        assert!(fds.free(fd));
        assert!(!fds.is_allocated(fd));
    }

    #[test]
    fn exhausted_partition_returns_none() {
        let m = SimMachine::new();
        let fds = FdAllocator::new(&m, "p", 1, 2, FdMode::Any);
        assert!(fds.alloc(0).is_some());
        assert!(fds.alloc(0).is_some());
        assert_eq!(fds.alloc(0), None);
    }

    #[test]
    fn freeing_out_of_range_fd_is_rejected() {
        let m = SimMachine::new();
        let fds = FdAllocator::new(&m, "p", 1, 2, FdMode::Lowest);
        assert!(!fds.free(99));
        assert!(!fds.is_allocated(99));
    }
}
