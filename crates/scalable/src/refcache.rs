//! Refcache-style scalable reference counting (§6.3, citing Clements et
//! al., EuroSys 2013).
//!
//! A Refcache counter keeps the true count in a global cell plus a per-core
//! *delta* cache. `inc` and `dec` touch only the invoking core's delta line,
//! so commutative reference count changes from different cores are
//! conflict-free. Periodically (at an "epoch" boundary) each core's delta is
//! flushed into the global count; an object is only freed when the global
//! count is zero **and** a full epoch has passed with no new deltas, which is
//! what makes deferred zero-detection safe.
//!
//! The simulation keeps the epoch machinery explicit but synchronous: the
//! kernel calls [`Refcache::flush_epoch`] when it wants reconciliation (the
//! paper's kernel does this from a per-core timer tick). Reading the exact
//! value (as `fstat` must, to return `st_nlink`) reconciles on the spot and
//! therefore touches every core's delta line — the cost §7.2 measures at
//! about 3.9× a plain read.

use scr_mtrace::{CoreId, SimMachine, TracedCell};

/// A scalable reference counter with per-core delta caches.
#[derive(Clone, Debug)]
pub struct Refcache {
    /// The reconciled ("true as of the last epoch") count.
    global: TracedCell<i64>,
    /// Per-core pending deltas.
    deltas: Vec<TracedCell<i64>>,
    /// Epoch number, bumped on every flush.
    epoch: TracedCell<u64>,
}

impl Refcache {
    /// Allocates a counter with the given initial value and one delta line
    /// per core.
    pub fn new(machine: &SimMachine, label: &str, cores: usize, initial: i64) -> Self {
        Refcache {
            global: machine.cell(format!("{label}.global"), initial),
            deltas: (0..cores)
                .map(|c| machine.cell(format!("{label}.delta[{c}]"), 0i64))
                .collect(),
            epoch: machine.cell(format!("{label}.epoch"), 0u64),
        }
    }

    /// Number of per-core delta caches.
    pub fn cores(&self) -> usize {
        self.deltas.len()
    }

    /// Increments the count on behalf of `core` (conflict-free with other
    /// cores' increments and decrements).
    pub fn inc(&self, core: CoreId) {
        self.deltas[core % self.deltas.len()].update(|d| *d += 1);
    }

    /// Decrements the count on behalf of `core`.
    pub fn dec(&self, core: CoreId) {
        self.deltas[core % self.deltas.len()].update(|d| *d -= 1);
    }

    /// Flushes every core's delta into the global count (an epoch boundary).
    /// Returns the reconciled value.
    pub fn flush_epoch(&self) -> i64 {
        let mut sum = 0;
        for delta in &self.deltas {
            let d = delta.get();
            if d != 0 {
                delta.set(0);
            }
            sum += d;
        }
        self.epoch.update(|e| *e += 1);
        self.global.fetch_update(|g| g + sum)
    }

    /// Reads the exact current value by reconciling on the spot. This
    /// touches every delta line (it is the expensive path `fstat` takes when
    /// it must return `st_nlink`).
    pub fn read_exact(&self) -> i64 {
        let pending: i64 = self.deltas.iter().map(|d| d.get()).sum();
        self.global.get() + pending
    }

    /// Reads only the reconciled global value (may lag behind by the pending
    /// deltas). Conflict-free with respect to `inc`/`dec` on other cores.
    pub fn read_reconciled(&self) -> i64 {
        self.global.get()
    }

    /// True when, after a flush, the count is zero — the object can be
    /// reclaimed (deferred zero detection).
    pub fn is_zero_after_flush(&self) -> bool {
        self.flush_epoch() == 0
    }

    /// Untraced exact read for assertions.
    pub fn peek(&self) -> i64 {
        self.global.peek(|g| *g) + self.deltas.iter().map(|d| d.peek(|v| *v)).sum::<i64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inc_dec_and_flush_reconcile() {
        let m = SimMachine::new();
        let rc = Refcache::new(&m, "inode.nlink", 4, 1);
        rc.inc(0);
        rc.inc(1);
        rc.dec(2);
        assert_eq!(rc.peek(), 2);
        assert_eq!(rc.flush_epoch(), 2);
        assert_eq!(rc.read_reconciled(), 2);
    }

    #[test]
    fn concurrent_inc_dec_are_conflict_free() {
        let m = SimMachine::new();
        let rc = Refcache::new(&m, "inode.nlink", 8, 1);
        m.start_tracing();
        for core in 0..8 {
            m.on_core(core, || {
                rc.inc(core);
                rc.dec(core);
            });
        }
        assert!(m.conflict_report().is_conflict_free());
    }

    #[test]
    fn exact_read_conflicts_with_updates() {
        let m = SimMachine::new();
        let rc = Refcache::new(&m, "inode.nlink", 4, 1);
        m.start_tracing();
        m.on_core(0, || rc.inc(0));
        m.on_core(1, || {
            let _ = rc.read_exact();
        });
        assert!(!m.conflict_report().is_conflict_free());
    }

    #[test]
    fn reconciled_read_is_conflict_free_with_updates() {
        let m = SimMachine::new();
        let rc = Refcache::new(&m, "inode.nlink", 4, 1);
        m.start_tracing();
        m.on_core(0, || rc.inc(0));
        m.on_core(1, || {
            let _ = rc.read_reconciled();
        });
        assert!(m.conflict_report().is_conflict_free());
    }

    #[test]
    fn zero_detection_after_flush() {
        let m = SimMachine::new();
        let rc = Refcache::new(&m, "file.refs", 2, 1);
        rc.dec(1);
        assert!(rc.is_zero_after_flush());
        let rc2 = Refcache::new(&m, "file.refs2", 2, 2);
        rc2.dec(0);
        assert!(!rc2.is_zero_after_flush());
    }

    #[test]
    fn read_exact_matches_peek() {
        let m = SimMachine::new();
        let rc = Refcache::new(&m, "x", 3, 5);
        rc.inc(0);
        rc.inc(1);
        rc.dec(2);
        rc.dec(2);
        assert_eq!(rc.read_exact(), rc.peek());
        assert_eq!(rc.read_exact(), 5);
    }
}
