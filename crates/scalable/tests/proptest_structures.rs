//! Property-based tests: the scalable data structures must behave exactly
//! like their obvious sequential counterparts (their whole point is to
//! change the *sharing*, not the semantics).

use proptest::prelude::*;
use scr_mtrace::SimMachine;
use scr_scalable::{HashDir, RadixArray, Refcache, ShardedCounter};
use std::collections::BTreeMap;

#[derive(Clone, Debug)]
enum DirOp {
    Insert(u8, u64),
    Upsert(u8, u64),
    Remove(u8),
    Get(u8),
}

fn dir_op() -> impl Strategy<Value = DirOp> {
    prop_oneof![
        (0u8..12, any::<u64>()).prop_map(|(k, v)| DirOp::Insert(k, v)),
        (0u8..12, any::<u64>()).prop_map(|(k, v)| DirOp::Upsert(k, v)),
        (0u8..12).prop_map(DirOp::Remove),
        (0u8..12).prop_map(DirOp::Get),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hash_dir_matches_a_plain_map(ops in proptest::collection::vec(dir_op(), 1..60)) {
        let machine = SimMachine::new();
        let dir: HashDir<u64> = HashDir::new(&machine, "dir", 16);
        let mut reference: BTreeMap<String, u64> = BTreeMap::new();
        for op in ops {
            match op {
                DirOp::Insert(k, v) => {
                    let key = format!("k{k}");
                    let inserted = dir.insert_if_absent(&key, v);
                    let expected = !reference.contains_key(&key);
                    prop_assert_eq!(inserted, expected);
                    reference.entry(key).or_insert(v);
                }
                DirOp::Upsert(k, v) => {
                    let key = format!("k{k}");
                    dir.upsert(&key, v);
                    reference.insert(key, v);
                }
                DirOp::Remove(k) => {
                    let key = format!("k{k}");
                    prop_assert_eq!(dir.remove(&key), reference.remove(&key));
                }
                DirOp::Get(k) => {
                    let key = format!("k{k}");
                    prop_assert_eq!(dir.get(&key), reference.get(&key).copied());
                }
            }
            prop_assert_eq!(dir.len_untraced(), reference.len());
        }
    }

    #[test]
    fn radix_array_matches_a_plain_map(
        ops in proptest::collection::vec((0usize..300, any::<Option<u32>>()), 1..80)
    ) {
        let machine = SimMachine::new();
        let array: RadixArray<u32> = RadixArray::new(&machine, "pages");
        let mut reference: BTreeMap<usize, u32> = BTreeMap::new();
        for (index, value) in ops {
            match value {
                Some(v) => {
                    array.set(index, v);
                    reference.insert(index, v);
                }
                None => {
                    prop_assert_eq!(array.take(index), reference.remove(&index));
                }
            }
            prop_assert_eq!(array.get(index), reference.get(&index).copied());
        }
        let mut expected: Vec<usize> = reference.keys().copied().collect();
        expected.sort_unstable();
        prop_assert_eq!(array.indices_untraced(), expected);
    }

    #[test]
    fn refcache_matches_an_integer(
        deltas in proptest::collection::vec((0usize..8, -3i64..4), 1..60),
        initial in 0i64..10
    ) {
        let machine = SimMachine::new();
        let rc = Refcache::new(&machine, "count", 8, initial);
        let mut reference = initial;
        for (core, delta) in deltas {
            for _ in 0..delta.abs() {
                if delta > 0 {
                    rc.inc(core);
                } else {
                    rc.dec(core);
                }
            }
            reference += delta;
            prop_assert_eq!(rc.read_exact(), reference);
        }
        prop_assert_eq!(rc.flush_epoch(), reference);
        prop_assert_eq!(rc.read_reconciled(), reference);
    }

    #[test]
    fn sharded_counter_matches_an_integer(
        adds in proptest::collection::vec((0usize..6, -10i64..10), 1..60)
    ) {
        let machine = SimMachine::new();
        let counter = ShardedCounter::new(&machine, "ctr", 6);
        let mut reference = 0i64;
        for (core, delta) in adds {
            counter.add(core, delta);
            reference += delta;
        }
        prop_assert_eq!(counter.read(), reference);
    }

    #[test]
    fn per_core_updates_never_conflict(
        updates in proptest::collection::vec((0usize..4, 1i64..5), 1..40)
    ) {
        // Whatever sequence of per-core increments and decrements happens,
        // the Refcache delta lines stay core-private: the trace must be
        // conflict-free.
        let machine = SimMachine::new();
        let rc = Refcache::new(&machine, "count", 4, 0);
        machine.start_tracing();
        for (core, delta) in updates {
            machine.on_core(core, || {
                for _ in 0..delta {
                    rc.inc(core);
                }
            });
        }
        machine.stop_tracing();
        prop_assert!(machine.conflict_report().is_conflict_free());
    }
}
