//! Span-based tracing with a Chrome trace-event exporter.
//!
//! Spans follow the same sharding discipline as the metrics: each core
//! appends finished spans to its own `CachePadded` buffer, so tracing the
//! mail pipeline does not serialize its stages on a shared log. Span names
//! are interned up front (registration takes a lock once); the hot path is
//! one relaxed load (the enabled gate), two `Instant` reads, and a push to
//! the core-local buffer.
//!
//! [`TraceLog::to_chrome_json`] renders the buffers in the Chrome
//! trace-event format — complete (`"ph":"X"`) events with microsecond
//! timestamps, one `tid` per core — which loads directly into Perfetto or
//! `chrome://tracing`.

use crate::json::escape_into;
use crossbeam::utils::CachePadded;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// An interned span name. Obtain with [`TraceLog::intern`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanName(u32);

#[derive(Debug, Clone, Copy)]
struct SpanEvent {
    name: u32,
    start_ns: u64,
    dur_ns: u64,
}

/// A per-core buffer of completed spans.
pub struct TraceLog {
    epoch: Instant,
    enabled: AtomicBool,
    names: Mutex<Vec<String>>,
    cores: Box<[CachePadded<Mutex<Vec<SpanEvent>>>]>,
}

impl TraceLog {
    pub fn new(cores: usize) -> Arc<TraceLog> {
        Arc::new(TraceLog {
            epoch: Instant::now(),
            enabled: AtomicBool::new(true),
            names: Mutex::new(Vec::new()),
            cores: (0..cores.max(1))
                .map(|_| CachePadded::new(Mutex::new(Vec::new())))
                .collect(),
        })
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Intern `name`, returning a copyable id for the record path. Interning
    /// the same string twice returns the same id.
    pub fn intern(&self, name: &str) -> SpanName {
        let mut names = self.names.lock().unwrap();
        if let Some(pos) = names.iter().position(|n| n == name) {
            return SpanName(pos as u32);
        }
        names.push(name.to_string());
        SpanName((names.len() - 1) as u32)
    }

    /// The log's epoch; span starts are measured from here.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Record a completed span on `core` from `started` to `ended`.
    #[inline]
    pub fn record(&self, core: usize, name: SpanName, started: Instant, ended: Instant) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        let start_ns = started.saturating_duration_since(self.epoch).as_nanos() as u64;
        let dur_ns = ended.saturating_duration_since(started).as_nanos() as u64;
        let slot = &self.cores[core % self.cores.len()];
        slot.lock().unwrap().push(SpanEvent {
            name: name.0,
            start_ns,
            dur_ns,
        });
    }

    /// Start a span now; it records itself on drop (or on [`SpanGuard::end`]).
    #[inline]
    pub fn span(&self, core: usize, name: SpanName) -> SpanGuard<'_> {
        SpanGuard {
            log: self,
            core,
            name,
            started: Instant::now(),
            armed: self.is_enabled(),
        }
    }

    /// Total spans recorded so far across all cores.
    pub fn len(&self) -> usize {
        self.cores
            .iter()
            .map(|slot| slot.lock().unwrap().len())
            .sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Count of spans recorded under `name`.
    pub fn count_of(&self, name: SpanName) -> usize {
        self.cores
            .iter()
            .map(|slot| {
                slot.lock()
                    .unwrap()
                    .iter()
                    .filter(|event| event.name == name.0)
                    .count()
            })
            .sum()
    }

    /// Render the Chrome trace-event JSON document (`ts`/`dur` in µs,
    /// `tid` = core). Loads into Perfetto / `chrome://tracing` as-is.
    pub fn to_chrome_json(&self) -> String {
        let names = self.names.lock().unwrap();
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        for (core, slot) in self.cores.iter().enumerate() {
            for event in slot.lock().unwrap().iter() {
                if !first {
                    out.push(',');
                }
                first = false;
                let name = names
                    .get(event.name as usize)
                    .map(String::as_str)
                    .unwrap_or("?");
                out.push_str("{\"name\":");
                escape_into(name, &mut out);
                let _ = write!(
                    out,
                    ",\"cat\":\"scr\",\"ph\":\"X\",\"ts\":{}.{:03},\"dur\":{}.{:03},\"pid\":0,\"tid\":{}}}",
                    event.start_ns / 1_000,
                    event.start_ns % 1_000,
                    event.dur_ns / 1_000,
                    event.dur_ns % 1_000,
                    core
                );
            }
        }
        out.push_str("],\"displayTimeUnit\":\"ns\"}");
        out
    }

    /// Write the Chrome trace to `path`.
    pub fn write_chrome(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_chrome_json())
    }
}

/// RAII span: created by [`TraceLog::span`], records on drop.
pub struct SpanGuard<'a> {
    log: &'a TraceLog,
    core: usize,
    name: SpanName,
    started: Instant,
    armed: bool,
}

impl SpanGuard<'_> {
    /// Finish the span now instead of at end of scope.
    pub fn end(mut self) {
        self.finish();
    }

    fn finish(&mut self) {
        if self.armed {
            self.armed = false;
            self.log
                .record(self.core, self.name, self.started, Instant::now());
        }
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn spans_land_on_their_core_buffers() {
        let log = TraceLog::new(2);
        let deliver = log.intern("deliver");
        let enqueue = log.intern("enqueue");
        assert_eq!(log.intern("deliver"), deliver);
        let t0 = log.epoch();
        log.record(0, deliver, t0, t0 + Duration::from_micros(5));
        log.record(1, enqueue, t0, t0 + Duration::from_micros(2));
        assert_eq!(log.len(), 2);
        assert_eq!(log.count_of(deliver), 1);
        let json = log.to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"deliver\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"tid\":1"));
        assert!(json.ends_with("}"));
    }

    #[test]
    fn disabled_log_records_nothing() {
        let log = TraceLog::new(1);
        log.set_enabled(false);
        let name = log.intern("x");
        {
            let _guard = log.span(0, name);
        }
        log.record(0, name, Instant::now(), Instant::now());
        assert!(log.is_empty());
    }

    #[test]
    fn guard_records_once() {
        let log = TraceLog::new(1);
        let name = log.intern("stage");
        let guard = log.span(0, name);
        guard.end();
        assert_eq!(log.count_of(name), 1);
    }
}
