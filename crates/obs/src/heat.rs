//! Conflict-heat accumulation over `hostmtrace` probe streams.
//!
//! Each traced replay window yields a set of labelled line accesses and the
//! subset of lines that actually conflicted (written by one thread, touched
//! by another). [`HeatMap::fold_window`] folds one window into per-label
//! running totals; [`HeatMap::top_n`] and [`HeatMap::render_top`] turn the
//! totals into the "hottest lines" table printed beside each Figure 6
//! heatmap. Folding happens between windows, not inside them, so the heat
//! map adds no footprint to the traced region (see the probe-parity test in
//! `crates/host/tests/host_obs.rs`).

use crate::json::Json;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Running totals for one labelled cache line.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HeatEntry {
    /// Read accesses summed over all folded windows.
    pub reads: u64,
    /// Write accesses summed over all folded windows.
    pub writes: u64,
    /// Windows in which the line was touched at all.
    pub windows: u64,
    /// Windows in which the line was part of a cross-thread conflict.
    pub conflict_windows: u64,
}

impl HeatEntry {
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }
}

/// Per-label access/conflict totals accumulated across traced windows.
///
/// Interior-mutable so replay loops can fold into a shared map; the lock is
/// only taken between traced windows.
#[derive(Debug, Default)]
pub struct HeatMap {
    entries: Mutex<BTreeMap<String, HeatEntry>>,
}

impl Clone for HeatMap {
    fn clone(&self) -> HeatMap {
        HeatMap {
            entries: Mutex::new(self.entries.lock().unwrap().clone()),
        }
    }
}

impl HeatMap {
    pub fn new() -> HeatMap {
        HeatMap::default()
    }

    /// Fold one traced window: `accesses` is the per-line (label, is_write,
    /// count) breakdown; `conflicting` lists the labels that conflicted in
    /// this window.
    pub fn fold_window<I>(&self, accesses: I, conflicting: &[String])
    where
        I: IntoIterator<Item = (String, bool, u64)>,
    {
        let mut entries = self.entries.lock().unwrap();
        let mut touched: Vec<String> = Vec::new();
        for (label, is_write, count) in accesses {
            let entry = entries.entry(label.clone()).or_default();
            if is_write {
                entry.writes += count;
            } else {
                entry.reads += count;
            }
            if !touched.contains(&label) {
                entry.windows += 1;
                touched.push(label);
            }
        }
        for label in conflicting {
            let entry = entries.entry(label.clone()).or_default();
            entry.conflict_windows += 1;
        }
    }

    /// Folds one traced window straight from a
    /// [`HostConflictReport`](scr_hostmtrace::HostConflictReport):
    /// `label_of` maps each [`LineId`](scr_mtrace::LineId) to the label to
    /// accumulate under (typically the sink's `label_of`, composed with a
    /// normalizer). Runs after the window has ended, so it adds nothing to
    /// the traced footprint.
    pub fn fold_report(
        &self,
        report: &scr_hostmtrace::HostConflictReport,
        label_of: impl Fn(scr_mtrace::LineId) -> String,
    ) {
        let digest = report.window_heat(label_of);
        self.fold_window(digest.accesses, &digest.conflicting);
    }

    /// Number of distinct labels seen.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Totals for one label, if seen.
    pub fn entry(&self, label: &str) -> Option<HeatEntry> {
        self.entries.lock().unwrap().get(label).cloned()
    }

    /// Sum of conflict windows over all labels.
    pub fn total_conflict_windows(&self) -> u64 {
        self.entries
            .lock()
            .unwrap()
            .values()
            .map(|e| e.conflict_windows)
            .sum()
    }

    /// The `n` hottest labels, ordered by conflict windows, then total
    /// accesses, then label (for deterministic output).
    pub fn top_n(&self, n: usize) -> Vec<(String, HeatEntry)> {
        let entries = self.entries.lock().unwrap();
        let mut rows: Vec<(String, HeatEntry)> = entries
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        rows.sort_by(|a, b| {
            b.1.conflict_windows
                .cmp(&a.1.conflict_windows)
                .then(b.1.accesses().cmp(&a.1.accesses()))
                .then(a.0.cmp(&b.0))
        });
        rows.truncate(n);
        rows
    }

    /// Render the top-`n` hottest-lines table.
    pub fn render_top(&self, title: &str, n: usize) -> String {
        let rows = self.top_n(n);
        let mut out = format!("{title}: {} line label(s) touched\n", self.len());
        if rows.is_empty() {
            out.push_str("  (no traced accesses)\n");
            return out;
        }
        out.push_str(&format!(
            "  {:<44} {:>9} {:>9} {:>8} {:>10}\n",
            "line", "reads", "writes", "windows", "conflicts"
        ));
        for (label, entry) in rows {
            out.push_str(&format!(
                "  {:<44} {:>9} {:>9} {:>8} {:>10}\n",
                label, entry.reads, entry.writes, entry.windows, entry.conflict_windows
            ));
        }
        out
    }

    /// Export all labels as a JSON object section.
    pub fn to_json(&self) -> Json {
        let entries = self.entries.lock().unwrap();
        Json::Obj(
            entries
                .iter()
                .map(|(label, e)| {
                    (
                        label.clone(),
                        Json::obj(vec![
                            ("reads", e.reads.into()),
                            ("writes", e.writes.into()),
                            ("windows", e.windows.into()),
                            ("conflict_windows", e.conflict_windows.into()),
                        ]),
                    )
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folds_windows_and_ranks_by_conflicts() {
        let heat = HeatMap::new();
        heat.fold_window(
            vec![
                ("fd-bitmap[0]".to_string(), true, 3),
                ("inode[1].len".to_string(), false, 2),
            ],
            &["fd-bitmap[0]".to_string()],
        );
        heat.fold_window(vec![("inode[1].len".to_string(), false, 5)], &[]);
        assert_eq!(heat.len(), 2);
        let fd = heat.entry("fd-bitmap[0]").unwrap();
        assert_eq!(fd.writes, 3);
        assert_eq!(fd.windows, 1);
        assert_eq!(fd.conflict_windows, 1);
        let inode = heat.entry("inode[1].len").unwrap();
        assert_eq!(inode.reads, 7);
        assert_eq!(inode.windows, 2);
        assert_eq!(inode.conflict_windows, 0);
        // Conflicts outrank raw access volume.
        let top = heat.top_n(2);
        assert_eq!(top[0].0, "fd-bitmap[0]");
        assert_eq!(top[1].0, "inode[1].len");
        let table = heat.render_top("sv6-host hottest lines", 10);
        assert!(table.contains("fd-bitmap[0]"));
        assert!(table.contains("conflicts"));
        assert_eq!(heat.total_conflict_windows(), 1);
    }

    #[test]
    fn fold_report_bridges_a_traced_window() {
        use scr_hostmtrace::{on_core, HostTraceSink};
        let sink = HostTraceSink::new(2);
        let probe = sink.probe("fd-bitmap");
        sink.begin_window();
        std::thread::scope(|s| {
            for core in 0..2 {
                let probe = probe.clone();
                s.spawn(move || on_core(core, || probe.rmw()));
            }
        });
        let report = sink.end_window();
        let heat = HeatMap::new();
        heat.fold_report(&report, |line| sink.label_of(line));
        let entry = heat.entry("fd-bitmap").unwrap();
        assert_eq!(entry.reads, 2);
        assert_eq!(entry.writes, 2);
        assert_eq!(entry.windows, 1);
        assert_eq!(entry.conflict_windows, 1);
    }

    #[test]
    fn empty_map_renders_placeholder() {
        let heat = HeatMap::new();
        assert!(heat.render_top("t", 5).contains("no traced accesses"));
        assert!(heat.is_empty());
    }
}
