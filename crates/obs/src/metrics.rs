//! Per-core, cache-padded metrics that obey the commutativity rule.
//!
//! The discipline: a metric update from core *c* touches exactly one cache
//! line — core *c*'s own padded slot — with a relaxed RMW. Updates from
//! different cores are write-commutative and conflict-free, so instrumenting
//! a workload can never introduce the shared line whose absence the workload
//! is trying to demonstrate. Reads (snapshots, totals, quantiles) walk all
//! slots and merge; they are expected to run outside the measured window.
//!
//! When the registry is disabled, every handle's hot path is a single relaxed
//! load and a predictable branch — cheap enough to leave compiled into
//! `perform`-level dispatch (see the `obs_overhead` example, which gates this
//! in CI).

use crate::json::Json;
use crate::meta::RunMeta;
use crossbeam::utils::CachePadded;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of log₂ buckets in a [`Histogram`]. Bucket 0 holds zeros; bucket
/// `b ≥ 1` holds values in `[2^(b-1), 2^b)`; the last bucket also absorbs
/// everything above its floor. 65 buckets cover the full `u64` range.
pub const HIST_BUCKETS: usize = 65;

fn bucket_of(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

fn bucket_bounds(bucket: usize) -> (u64, u64) {
    if bucket == 0 {
        (0, 1)
    } else if bucket >= 64 {
        (1u64 << 63, u64::MAX)
    } else {
        (1u64 << (bucket - 1), 1u64 << bucket)
    }
}

struct CounterCells {
    slots: Box<[CachePadded<AtomicU64>]>,
}

impl CounterCells {
    fn new(cores: usize) -> CounterCells {
        CounterCells {
            slots: (0..cores.max(1))
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
        }
    }
}

struct HistSlot {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl HistSlot {
    fn new() -> HistSlot {
        HistSlot {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

struct HistCells {
    slots: Box<[CachePadded<HistSlot>]>,
}

impl HistCells {
    fn new(cores: usize) -> HistCells {
        HistCells {
            slots: (0..cores.max(1))
                .map(|_| CachePadded::new(HistSlot::new()))
                .collect(),
        }
    }
}

/// A named registry of per-core counters and histograms.
///
/// Handles ([`Counter`], [`Histogram`]) are registered once — registration
/// takes a lock — and then updated lock-free from any core. The shared
/// `enabled` gate turns every handle of the registry on or off at once;
/// handles pre-resolve everything else, so the disabled hot path never
/// touches the registry again.
pub struct MetricsRegistry {
    cores: usize,
    enabled: Arc<AtomicBool>,
    counters: Mutex<BTreeMap<String, Arc<CounterCells>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistCells>>>,
}

impl MetricsRegistry {
    /// A registry with one padded slot per core, enabled.
    pub fn new(cores: usize) -> Arc<MetricsRegistry> {
        Arc::new(MetricsRegistry {
            cores: cores.max(1),
            enabled: Arc::new(AtomicBool::new(true)),
            counters: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
        })
    }

    /// A registry whose handles all start disabled (a single relaxed load
    /// per update attempt). Useful for overhead measurement.
    pub fn disabled(cores: usize) -> Arc<MetricsRegistry> {
        let registry = MetricsRegistry::new(cores);
        registry.set_enabled(false);
        registry
    }

    pub fn cores(&self) -> usize {
        self.cores
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Flip every handle of this registry on or off.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Register (or re-resolve) the counter `name`. Handles with the same
    /// name share cells, so a re-registration observes prior counts.
    pub fn counter(&self, name: &str) -> Counter {
        let cells = {
            let mut map = self.counters.lock().unwrap();
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(CounterCells::new(self.cores)))
                .clone()
        };
        Counter {
            enabled: self.enabled.clone(),
            cells,
        }
    }

    /// Register (or re-resolve) the histogram `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let cells = {
            let mut map = self.histograms.lock().unwrap();
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(HistCells::new(self.cores)))
                .clone()
        };
        Histogram {
            enabled: self.enabled.clone(),
            cells,
        }
    }

    /// Merge every metric across cores into an immutable snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters = BTreeMap::new();
        for (name, cells) in self.counters.lock().unwrap().iter() {
            let per_core: Vec<u64> = cells
                .slots
                .iter()
                .map(|slot| slot.load(Ordering::Relaxed))
                .collect();
            let total = per_core.iter().sum();
            counters.insert(name.clone(), CounterSnapshot { total, per_core });
        }
        let mut histograms = BTreeMap::new();
        for (name, cells) in self.histograms.lock().unwrap().iter() {
            histograms.insert(name.clone(), merge_hist(cells));
        }
        MetricsSnapshot {
            meta: RunMeta::default(),
            counters,
            histograms,
            extras: Vec::new(),
            events: Vec::new(),
        }
    }
}

/// A per-core counter handle. Cloning shares the cells.
#[derive(Clone)]
pub struct Counter {
    enabled: Arc<AtomicBool>,
    cells: Arc<CounterCells>,
}

impl Counter {
    /// Add `n` from `core`. One relaxed load when disabled; one relaxed
    /// `fetch_add` on the core's own padded line when enabled.
    #[inline]
    pub fn add(&self, core: usize, n: u64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        let slots = &self.cells.slots;
        slots[core % slots.len()].fetch_add(n, Ordering::Relaxed);
    }

    /// Add 1 from `core`.
    #[inline]
    pub fn inc(&self, core: usize) {
        self.add(core, 1);
    }

    /// Sum across all cores (a read-side merge; runs outside hot windows).
    pub fn total(&self) -> u64 {
        self.cells
            .slots
            .iter()
            .map(|slot| slot.load(Ordering::Relaxed))
            .sum()
    }

    /// The per-core shard values.
    pub fn per_core(&self) -> Vec<u64> {
        self.cells
            .slots
            .iter()
            .map(|slot| slot.load(Ordering::Relaxed))
            .collect()
    }
}

/// A per-core log-bucketed histogram handle. Cloning shares the cells.
#[derive(Clone)]
pub struct Histogram {
    enabled: Arc<AtomicBool>,
    cells: Arc<HistCells>,
}

impl Histogram {
    /// Record one sample from `core`: four relaxed RMWs, all on the core's
    /// own padded slot. One relaxed load when disabled.
    #[inline]
    pub fn record(&self, core: usize, value: u64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        let slots = &self.cells.slots;
        let slot = &slots[core % slots.len()];
        slot.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        slot.count.fetch_add(1, Ordering::Relaxed);
        slot.sum.fetch_add(value, Ordering::Relaxed);
        slot.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Merge all cores into one distribution.
    pub fn merged(&self) -> HistogramSnapshot {
        merge_hist(&self.cells)
    }
}

fn merge_hist(cells: &HistCells) -> HistogramSnapshot {
    let mut buckets = vec![0u64; HIST_BUCKETS];
    let mut count = 0u64;
    let mut sum = 0u64;
    let mut max = 0u64;
    for slot in cells.slots.iter() {
        for (merged, bucket) in buckets.iter_mut().zip(slot.buckets.iter()) {
            *merged += bucket.load(Ordering::Relaxed);
        }
        count += slot.count.load(Ordering::Relaxed);
        sum = sum.saturating_add(slot.sum.load(Ordering::Relaxed));
        max = max.max(slot.max.load(Ordering::Relaxed));
    }
    HistogramSnapshot {
        count,
        sum,
        max,
        buckets,
    }
}

/// A merged counter: the cross-core total plus the per-core shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSnapshot {
    pub total: u64,
    pub per_core: Vec<u64>,
}

/// A merged histogram distribution with quantile estimation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub max: u64,
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimate the `q`-quantile (`0.0 ..= 1.0`) by walking the cumulative
    /// bucket counts and interpolating linearly inside the crossed bucket.
    /// Exact for values that fall on bucket boundaries; otherwise accurate
    /// to within the 2× bucket width, which is all a log histogram promises.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (bucket, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if cumulative + n >= target {
                let (lo, hi) = bucket_bounds(bucket);
                let hi = hi.min(self.max.max(lo + 1));
                let within = (target - cumulative) as f64 / n as f64;
                return lo as f64 + within * (hi - lo) as f64;
            }
            cumulative += n;
        }
        self.max as f64
    }

    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    pub fn p90(&self) -> f64 {
        self.quantile(0.90)
    }

    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    pub fn p999(&self) -> f64 {
        self.quantile(0.999)
    }

    /// Evaluate a configurable quantile list in one pass over the snapshot.
    /// Labels come back with the values so renderers stay in sync with the
    /// list they were handed.
    pub fn quantiles(&self, list: &[(&str, f64)]) -> Vec<(String, f64)> {
        list.iter()
            .map(|&(label, q)| (label.to_string(), self.quantile(q)))
            .collect()
    }
}

/// The quantile list every table and JSON export renders by default. The
/// tail entry (p99.9) is what the open-loop load generator's
/// coordinated-omission-safe latency curves key on.
pub const DEFAULT_QUANTILES: [(&str, f64); 4] =
    [("p50", 0.50), ("p90", 0.90), ("p99", 0.99), ("p999", 0.999)];

/// A single timestamped event (see [`crate::events::EventLog`]).
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// Nanoseconds since the owning log's epoch.
    pub at_ns: u64,
    /// Event kind, e.g. `"soak-round"` or `"pair-done"`.
    pub kind: String,
    /// Kind-specific payload, kept ordered for stable JSON.
    pub fields: Vec<(String, Json)>,
}

/// Everything one run exports: metadata, merged metrics, free-form extras
/// and the event stream. Shares its JSON schema with the `BENCH_*.json`
/// artifacts (a top-level `meta` object plus named sections).
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    pub meta: RunMeta,
    pub counters: BTreeMap<String, CounterSnapshot>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Example-specific extra sections, appended to the document root.
    pub extras: Vec<(String, Json)>,
    pub events: Vec<EventRecord>,
}

impl MetricsSnapshot {
    /// Render the snapshot as a JSON document.
    pub fn to_json(&self) -> String {
        let mut root: Vec<(String, Json)> = vec![("meta".to_string(), self.meta.to_json())];
        let counters: Vec<(String, Json)> = self
            .counters
            .iter()
            .map(|(name, c)| {
                (
                    name.clone(),
                    Json::obj(vec![
                        ("total", c.total.into()),
                        (
                            "per_core",
                            Json::Arr(c.per_core.iter().map(|&n| n.into()).collect()),
                        ),
                    ]),
                )
            })
            .collect();
        root.push(("counters".to_string(), Json::Obj(counters)));
        let histograms: Vec<(String, Json)> = self
            .histograms
            .iter()
            .map(|(name, h)| {
                let buckets: Vec<Json> = h
                    .buckets
                    .iter()
                    .enumerate()
                    .filter(|(_, &n)| n > 0)
                    .map(|(bucket, &n)| {
                        Json::obj(vec![
                            ("floor", bucket_bounds(bucket).0.into()),
                            ("count", n.into()),
                        ])
                    })
                    .collect();
                let mut pairs = vec![
                    ("count", Json::from(h.count)),
                    ("sum", h.sum.into()),
                    ("max", h.max.into()),
                    ("mean", h.mean().into()),
                ];
                for (label, q) in DEFAULT_QUANTILES {
                    pairs.push((label, h.quantile(q).into()));
                }
                pairs.push(("buckets", Json::Arr(buckets)));
                (name.clone(), Json::obj(pairs))
            })
            .collect();
        root.push(("histograms".to_string(), Json::Obj(histograms)));
        for (name, value) in &self.extras {
            root.push((name.clone(), value.clone()));
        }
        let events: Vec<Json> = self
            .events
            .iter()
            .map(|event| {
                let mut pairs: Vec<(String, Json)> = vec![
                    ("at_ns".to_string(), event.at_ns.into()),
                    ("kind".to_string(), Json::Str(event.kind.clone())),
                ];
                pairs.extend(event.fields.iter().cloned());
                Json::Obj(pairs)
            })
            .collect();
        root.push(("events".to_string(), Json::Arr(events)));
        Json::Obj(root).render()
    }

    /// Render a human-readable summary table.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("run: {}\n", self.meta.describe()));
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, c) in &self.counters {
                let shards: Vec<String> = c.per_core.iter().map(|n| n.to_string()).collect();
                out.push_str(&format!(
                    "  {:<40} {:>10}  [{}]\n",
                    name,
                    c.total,
                    shards.join(" ")
                ));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms (ns unless noted):\n");
            let mut header = format!("  {:<40} {:>8}", "name", "count");
            for (label, _) in DEFAULT_QUANTILES {
                let label = if label == "p999" { "p99.9" } else { label };
                header.push_str(&format!(" {label:>10}"));
            }
            header.push_str(&format!(" {:>10}\n", "max"));
            out.push_str(&header);
            for (name, h) in &self.histograms {
                let mut row = format!("  {:<40} {:>8}", name, h.count);
                for (_, q) in DEFAULT_QUANTILES {
                    row.push_str(&format!(" {:>10.0}", h.quantile(q)));
                }
                row.push_str(&format!(" {:>10}\n", h.max));
                out.push_str(&row);
            }
        }
        if !self.events.is_empty() {
            out.push_str(&format!("events: {}\n", self.events.len()));
        }
        out
    }

    /// Write the JSON document to `path`.
    pub fn write(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_u64_range() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        for b in 0..HIST_BUCKETS {
            let (lo, hi) = bucket_bounds(b);
            assert!(lo < hi || b == 64);
            if b > 0 && b < 64 {
                assert_eq!(bucket_of(lo), b);
                assert_eq!(bucket_of(hi - 1), b);
            }
        }
    }

    #[test]
    fn counter_shards_by_core_and_merges() {
        let registry = MetricsRegistry::new(4);
        let counter = registry.counter("ops");
        counter.add(0, 5);
        counter.add(1, 7);
        counter.add(5, 1); // wraps to core 1
        assert_eq!(counter.total(), 13);
        assert_eq!(counter.per_core(), vec![5, 8, 0, 0]);
        // A re-resolved handle shares the cells.
        assert_eq!(registry.counter("ops").total(), 13);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let registry = MetricsRegistry::disabled(2);
        let counter = registry.counter("ops");
        let hist = registry.histogram("lat");
        counter.inc(0);
        hist.record(0, 42);
        assert_eq!(counter.total(), 0);
        assert_eq!(hist.merged().count, 0);
        registry.set_enabled(true);
        counter.inc(0);
        assert_eq!(counter.total(), 1);
    }

    #[test]
    fn histogram_quantiles_bracket_the_data() {
        let registry = MetricsRegistry::new(1);
        let hist = registry.histogram("lat");
        for v in 1..=1000u64 {
            hist.record(0, v);
        }
        let merged = hist.merged();
        assert_eq!(merged.count, 1000);
        assert_eq!(merged.max, 1000);
        let p50 = merged.p50();
        assert!((256.0..=1024.0).contains(&p50), "p50 = {p50}");
        let p99 = merged.p99();
        assert!((512.0..=1024.0).contains(&p99), "p99 = {p99}");
        assert!(merged.p50() <= merged.p90());
        assert!(merged.p90() <= merged.p99());
        assert!(merged.p99() <= merged.max as f64);
    }

    #[test]
    fn tail_quantile_interpolation_error_is_bounded_by_the_bucket() {
        // A log-bucketed histogram promises nothing tighter than "inside
        // the bucket the exact quantile falls in"; for bulk-uniform data
        // the in-bucket linear interpolation should land much closer.
        let registry = MetricsRegistry::new(1);
        let hist = registry.histogram("lat");
        for v in 1..=10_000u64 {
            hist.record(0, v);
        }
        let merged = hist.merged();
        let exact = 9_990.0; // true p99.9 of 1..=10000
        let est = merged.p999();
        let (lo, hi) = bucket_bounds(bucket_of(exact as u64));
        let hi = (hi as f64).min(merged.max as f64);
        assert!(
            est >= lo as f64 && est <= hi,
            "p99.9 estimate {est} escaped the exact value's bucket [{lo}, {hi}]"
        );
        // Uniform-within-bucket data: interpolation should be within 1%.
        assert!(
            (est - exact).abs() / exact < 0.01,
            "p99.9 estimate {est} too far from exact {exact}"
        );
        // The same bound at p99 for good measure.
        let est99 = merged.p99();
        assert!((est99 - 9_900.0).abs() / 9_900.0 < 0.05, "p99 = {est99}");
    }

    #[test]
    fn configurable_quantile_list_renders_p999_everywhere() {
        let registry = MetricsRegistry::new(1);
        let hist = registry.histogram("lat");
        for v in 1..=1000u64 {
            hist.record(0, v);
        }
        let merged = hist.merged();
        let qs = merged.quantiles(&DEFAULT_QUANTILES);
        assert_eq!(qs.len(), 4);
        assert_eq!(qs[3].0, "p999");
        assert!(qs[2].1 <= qs[3].1, "p99 {} > p99.9 {}", qs[2].1, qs[3].1);
        assert!(merged.p999() <= merged.max as f64);
        // Custom lists work too.
        let custom = merged.quantiles(&[("p10", 0.10), ("p9999", 0.9999)]);
        assert_eq!(custom[0].0, "p10");
        assert!(custom[0].1 <= custom[1].1);
        // Rendered snapshot carries the tail quantile in both formats.
        let snapshot = registry.snapshot();
        assert!(snapshot.to_json().contains("\"p999\""));
        assert!(snapshot.render_text().contains("p99.9"));
    }

    #[test]
    fn snapshot_round_trips_to_json() {
        let registry = MetricsRegistry::new(2);
        registry.counter("a.count").add(0, 3);
        registry.histogram("a.latency_ns").record(1, 100);
        let snapshot = registry.snapshot();
        let json = snapshot.to_json();
        assert!(json.contains("\"a.count\""));
        assert!(json.contains("\"total\":3"));
        assert!(json.contains("\"per_core\":[3,0]"));
        assert!(json.contains("\"a.latency_ns\""));
        assert!(json.contains("\"meta\""));
        let text = snapshot.render_text();
        assert!(text.contains("a.count"));
    }
}
