//! Tiny command-line helpers shared by the examples.
//!
//! Every example accepts `--metrics-out <path>` (JSON snapshot) and, where
//! it traces spans, `--trace-out <path>` (Chrome trace). These helpers keep
//! the flag names uniform without pulling in an argument-parsing dependency.

use std::path::PathBuf;

/// The value following `--<flag> <value>` in the process arguments, if any.
/// Also accepts the `--<flag>=<value>` form.
pub fn arg_value(flag: &str) -> Option<String> {
    let long = format!("--{flag}");
    let prefixed = format!("--{flag}=");
    let args: Vec<String> = std::env::args().collect();
    for (i, arg) in args.iter().enumerate() {
        if let Some(value) = arg.strip_prefix(&prefixed) {
            return Some(value.to_string());
        }
        if arg == &long {
            return args.get(i + 1).cloned();
        }
    }
    None
}

/// The `--metrics-out` path, if given.
pub fn metrics_out() -> Option<PathBuf> {
    arg_value("metrics-out").map(PathBuf::from)
}

/// The `--trace-out` path, if given.
pub fn trace_out() -> Option<PathBuf> {
    arg_value("trace-out").map(PathBuf::from)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absent_flags_yield_none() {
        // Test binaries carry their own args; the flags are never present.
        assert_eq!(arg_value("metrics-out-definitely-absent"), None);
    }
}
