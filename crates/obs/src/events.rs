//! A timestamped structured-event sink.
//!
//! Sweeps and campaigns emit progress events (pair finished, soak round
//! seeded, cache-hit rates) that end up in the metrics snapshot's `events`
//! array, so a failed run is reproducible from the artifact alone. Events
//! are free-form `(kind, fields)` records rather than a closed enum: the
//! schema lives with the emitter, and the sink only guarantees ordering and
//! timestamps.

use crate::json::Json;
use crate::metrics::EventRecord;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// An append-only, timestamped event log. Cheap to share (`Arc`), safe to
/// emit into from any thread; emission takes a short lock and is meant for
/// per-pair / per-round granularity, not per-operation hot paths.
pub struct EventLog {
    epoch: Instant,
    events: Mutex<Vec<EventRecord>>,
}

impl EventLog {
    pub fn new() -> Arc<EventLog> {
        Arc::new(EventLog {
            epoch: Instant::now(),
            events: Mutex::new(Vec::new()),
        })
    }

    /// Append an event of `kind` with ordered `fields`.
    pub fn emit(&self, kind: &str, fields: Vec<(String, Json)>) {
        let at_ns = self.epoch.elapsed().as_nanos() as u64;
        self.events.lock().unwrap().push(EventRecord {
            at_ns,
            kind: kind.to_string(),
            fields,
        });
    }

    /// Convenience: build the field vector from `(&str, Json)` pairs.
    pub fn emit_kv(&self, kind: &str, fields: Vec<(&str, Json)>) {
        self.emit(
            kind,
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        );
    }

    pub fn len(&self) -> usize {
        self.events.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A copy of all events in emission order.
    pub fn records(&self) -> Vec<EventRecord> {
        self.events.lock().unwrap().clone()
    }

    /// Events of one kind, in order.
    pub fn of_kind(&self, kind: &str) -> Vec<EventRecord> {
        self.events
            .lock()
            .unwrap()
            .iter()
            .filter(|e| e.kind == kind)
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_keep_order_and_kinds() {
        let log = EventLog::new();
        log.emit_kv("pair-done", vec![("pair", "open/close".into())]);
        log.emit_kv("soak-round", vec![("seed", 7u64.into())]);
        log.emit_kv("pair-done", vec![("pair", "read/write".into())]);
        assert_eq!(log.len(), 3);
        let pairs = log.of_kind("pair-done");
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[0].fields[0].1, Json::Str("open/close".to_string()));
        let all = log.records();
        assert!(all[0].at_ns <= all[1].at_ns && all[1].at_ns <= all[2].at_ns);
    }
}
