//! Per-syscall recording: call counts, errno counts and wall latency.
//!
//! [`SyscallRecorder`] pre-registers one counter, one latency histogram and
//! one counter per errno for every call family, so the record path never
//! touches the registry: it indexes a flat table and lands on the calling
//! core's padded slots. [`ObservedKernel`] wraps any [`SyscallApi`]
//! implementation and feeds the recorder; the recorder also implements
//! [`PerformObserver`], so reified `perform_observed` dispatch uses the same
//! sink.

use crate::metrics::{Counter, Histogram, HistogramSnapshot, MetricsRegistry};
use scr_kernel::api::{
    Errno, Fd, KResult, MmapBacking, OpenFlags, PerformObserver, Pid, Prot, SockId, SocketOrder,
    Stat, StatMask, SyscallApi, Whence,
};
use scr_mtrace::CoreId;
use std::sync::Arc;
use std::time::Instant;

/// Every call family the kernels expose, including the §4 extensions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyscallKind {
    Open,
    Link,
    Unlink,
    Rename,
    Stat,
    Fstat,
    Fstatx,
    Lseek,
    Close,
    Pipe,
    Read,
    Write,
    Pread,
    Pwrite,
    Mmap,
    Munmap,
    Mprotect,
    Memread,
    Memwrite,
    Fork,
    PosixSpawn,
    Wait,
    Socket,
    Send,
    Recv,
}

impl SyscallKind {
    /// Every kind, in declaration order (the recorder's table order).
    pub const ALL: [SyscallKind; 25] = [
        SyscallKind::Open,
        SyscallKind::Link,
        SyscallKind::Unlink,
        SyscallKind::Rename,
        SyscallKind::Stat,
        SyscallKind::Fstat,
        SyscallKind::Fstatx,
        SyscallKind::Lseek,
        SyscallKind::Close,
        SyscallKind::Pipe,
        SyscallKind::Read,
        SyscallKind::Write,
        SyscallKind::Pread,
        SyscallKind::Pwrite,
        SyscallKind::Mmap,
        SyscallKind::Munmap,
        SyscallKind::Mprotect,
        SyscallKind::Memread,
        SyscallKind::Memwrite,
        SyscallKind::Fork,
        SyscallKind::PosixSpawn,
        SyscallKind::Wait,
        SyscallKind::Socket,
        SyscallKind::Send,
        SyscallKind::Recv,
    ];

    /// The call's family name, matching [`scr_kernel::api::SysOp::call_name`]
    /// for the 24 modelled calls.
    pub fn name(self) -> &'static str {
        match self {
            SyscallKind::Open => "open",
            SyscallKind::Link => "link",
            SyscallKind::Unlink => "unlink",
            SyscallKind::Rename => "rename",
            SyscallKind::Stat => "stat",
            SyscallKind::Fstat => "fstat",
            SyscallKind::Fstatx => "fstatx",
            SyscallKind::Lseek => "lseek",
            SyscallKind::Close => "close",
            SyscallKind::Pipe => "pipe",
            SyscallKind::Read => "read",
            SyscallKind::Write => "write",
            SyscallKind::Pread => "pread",
            SyscallKind::Pwrite => "pwrite",
            SyscallKind::Mmap => "mmap",
            SyscallKind::Munmap => "munmap",
            SyscallKind::Mprotect => "mprotect",
            SyscallKind::Memread => "memread",
            SyscallKind::Memwrite => "memwrite",
            SyscallKind::Fork => "fork",
            SyscallKind::PosixSpawn => "posix_spawn",
            SyscallKind::Wait => "wait",
            SyscallKind::Socket => "socket",
            SyscallKind::Send => "send",
            SyscallKind::Recv => "recv",
        }
    }

    /// Inverse of [`SyscallKind::name`].
    pub fn from_name(name: &str) -> Option<SyscallKind> {
        SyscallKind::ALL.iter().copied().find(|k| k.name() == name)
    }

    fn index(self) -> usize {
        SyscallKind::ALL
            .iter()
            .position(|&k| k == self)
            .expect("kind listed in ALL")
    }
}

/// Every [`Errno`] the kernels return, in the recorder's table order.
pub const ALL_ERRNOS: [Errno; 13] = [
    Errno::ENOENT,
    Errno::EEXIST,
    Errno::EBADF,
    Errno::EINVAL,
    Errno::EMFILE,
    Errno::ENOSPC,
    Errno::ENOMEM,
    Errno::EPIPE,
    Errno::ESPIPE,
    Errno::EFAULT,
    Errno::EAGAIN,
    Errno::EPERM,
    Errno::EINTR,
];

fn errno_index(errno: Errno) -> usize {
    ALL_ERRNOS
        .iter()
        .position(|&e| e == errno)
        .expect("errno listed in ALL_ERRNOS")
}

struct CallMetrics {
    count: Counter,
    latency: Histogram,
    errnos: Box<[Counter]>,
}

/// Pre-resolved per-syscall metric handles over one [`MetricsRegistry`].
///
/// Metric names: `syscall.<call>.calls`, `syscall.<call>.latency_ns`,
/// `syscall.<call>.errno.<ERRNO>`.
pub struct SyscallRecorder {
    registry: Arc<MetricsRegistry>,
    calls: Box<[CallMetrics]>,
}

impl SyscallRecorder {
    /// Register handles for every call family on `registry`.
    pub fn new(registry: &Arc<MetricsRegistry>) -> Arc<SyscallRecorder> {
        let calls = SyscallKind::ALL
            .iter()
            .map(|kind| {
                let name = kind.name();
                CallMetrics {
                    count: registry.counter(&format!("syscall.{name}.calls")),
                    latency: registry.histogram(&format!("syscall.{name}.latency_ns")),
                    errnos: ALL_ERRNOS
                        .iter()
                        .map(|errno| registry.counter(&format!("syscall.{name}.errno.{errno}")))
                        .collect(),
                }
            })
            .collect();
        Arc::new(SyscallRecorder {
            registry: registry.clone(),
            calls,
        })
    }

    /// Shares the owning registry's enabled gate.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.registry.is_enabled()
    }

    /// Record one completed call from `core`.
    #[inline]
    pub fn observe(&self, core: CoreId, kind: SyscallKind, errno: Option<Errno>, nanos: u64) {
        let call = &self.calls[kind.index()];
        call.count.inc(core);
        call.latency.record(core, nanos);
        if let Some(errno) = errno {
            call.errnos[errno_index(errno)].inc(core);
        }
    }

    /// Total calls recorded for `kind`.
    pub fn count_of(&self, kind: SyscallKind) -> u64 {
        self.calls[kind.index()].count.total()
    }

    /// Per-core call counts for `kind`.
    pub fn per_core_counts(&self, kind: SyscallKind) -> Vec<u64> {
        self.calls[kind.index()].count.per_core()
    }

    /// Times `kind` failed with `errno`.
    pub fn errno_count(&self, kind: SyscallKind, errno: Errno) -> u64 {
        self.calls[kind.index()].errnos[errno_index(errno)].total()
    }

    /// The merged latency distribution for `kind`.
    pub fn latency(&self, kind: SyscallKind) -> HistogramSnapshot {
        self.calls[kind.index()].latency.merged()
    }
}

impl PerformObserver for SyscallRecorder {
    fn observer_enabled(&self) -> bool {
        self.is_enabled()
    }

    fn observe_call(&self, core: CoreId, call: &'static str, errno: Option<Errno>, nanos: u64) {
        if let Some(kind) = SyscallKind::from_name(call) {
            self.observe(core, kind, errno, nanos);
        }
    }
}

/// A [`SyscallApi`] wrapper that times every call into a
/// [`SyscallRecorder`]. When the recorder's registry is disabled each call
/// costs one relaxed load on top of the inner kernel — no clock reads.
pub struct ObservedKernel<'k, K: SyscallApi + ?Sized> {
    inner: &'k K,
    recorder: Arc<SyscallRecorder>,
}

impl<'k, K: SyscallApi + ?Sized> ObservedKernel<'k, K> {
    pub fn new(inner: &'k K, recorder: Arc<SyscallRecorder>) -> ObservedKernel<'k, K> {
        ObservedKernel { inner, recorder }
    }

    /// The wrapped kernel.
    pub fn inner(&self) -> &'k K {
        self.inner
    }

    /// The recorder this wrapper feeds.
    pub fn recorder(&self) -> &Arc<SyscallRecorder> {
        &self.recorder
    }

    #[inline]
    fn timed<T>(
        &self,
        core: CoreId,
        kind: SyscallKind,
        f: impl FnOnce(&'k K) -> KResult<T>,
    ) -> KResult<T> {
        if !self.recorder.is_enabled() {
            return f(self.inner);
        }
        let started = Instant::now();
        let result = f(self.inner);
        let nanos = started.elapsed().as_nanos() as u64;
        self.recorder
            .observe(core, kind, result.as_ref().err().copied(), nanos);
        result
    }
}

impl<K: SyscallApi + ?Sized> SyscallApi for ObservedKernel<'_, K> {
    fn new_process(&self) -> Pid {
        // No core to attribute to; passes through unobserved.
        self.inner.new_process()
    }

    fn open(&self, core: CoreId, pid: Pid, name: &str, flags: OpenFlags) -> KResult<Fd> {
        self.timed(core, SyscallKind::Open, |k| k.open(core, pid, name, flags))
    }

    fn link(&self, core: CoreId, pid: Pid, old: &str, new: &str) -> KResult<()> {
        self.timed(core, SyscallKind::Link, |k| k.link(core, pid, old, new))
    }

    fn unlink(&self, core: CoreId, pid: Pid, name: &str) -> KResult<()> {
        self.timed(core, SyscallKind::Unlink, |k| k.unlink(core, pid, name))
    }

    fn rename(&self, core: CoreId, pid: Pid, src: &str, dst: &str) -> KResult<()> {
        self.timed(core, SyscallKind::Rename, |k| k.rename(core, pid, src, dst))
    }

    fn stat(&self, core: CoreId, pid: Pid, name: &str) -> KResult<Stat> {
        self.timed(core, SyscallKind::Stat, |k| k.stat(core, pid, name))
    }

    fn fstat(&self, core: CoreId, pid: Pid, fd: Fd) -> KResult<Stat> {
        self.timed(core, SyscallKind::Fstat, |k| k.fstat(core, pid, fd))
    }

    fn fstatx(&self, core: CoreId, pid: Pid, fd: Fd, mask: StatMask) -> KResult<Stat> {
        self.timed(core, SyscallKind::Fstatx, |k| k.fstatx(core, pid, fd, mask))
    }

    fn lseek(&self, core: CoreId, pid: Pid, fd: Fd, offset: i64, whence: Whence) -> KResult<u64> {
        self.timed(core, SyscallKind::Lseek, |k| {
            k.lseek(core, pid, fd, offset, whence)
        })
    }

    fn close(&self, core: CoreId, pid: Pid, fd: Fd) -> KResult<()> {
        self.timed(core, SyscallKind::Close, |k| k.close(core, pid, fd))
    }

    fn pipe(&self, core: CoreId, pid: Pid) -> KResult<(Fd, Fd)> {
        self.timed(core, SyscallKind::Pipe, |k| k.pipe(core, pid))
    }

    fn read(&self, core: CoreId, pid: Pid, fd: Fd, len: u64) -> KResult<Vec<u8>> {
        self.timed(core, SyscallKind::Read, |k| k.read(core, pid, fd, len))
    }

    fn write(&self, core: CoreId, pid: Pid, fd: Fd, data: &[u8]) -> KResult<u64> {
        self.timed(core, SyscallKind::Write, |k| k.write(core, pid, fd, data))
    }

    fn pread(&self, core: CoreId, pid: Pid, fd: Fd, len: u64, offset: u64) -> KResult<Vec<u8>> {
        self.timed(core, SyscallKind::Pread, |k| {
            k.pread(core, pid, fd, len, offset)
        })
    }

    fn pwrite(&self, core: CoreId, pid: Pid, fd: Fd, data: &[u8], offset: u64) -> KResult<u64> {
        self.timed(core, SyscallKind::Pwrite, |k| {
            k.pwrite(core, pid, fd, data, offset)
        })
    }

    fn mmap(
        &self,
        core: CoreId,
        pid: Pid,
        addr_hint: Option<u64>,
        pages: u64,
        prot: Prot,
        backing: MmapBacking,
    ) -> KResult<u64> {
        self.timed(core, SyscallKind::Mmap, |k| {
            k.mmap(core, pid, addr_hint, pages, prot, backing)
        })
    }

    fn munmap(&self, core: CoreId, pid: Pid, addr: u64, pages: u64) -> KResult<()> {
        self.timed(core, SyscallKind::Munmap, |k| {
            k.munmap(core, pid, addr, pages)
        })
    }

    fn mprotect(&self, core: CoreId, pid: Pid, addr: u64, pages: u64, prot: Prot) -> KResult<()> {
        self.timed(core, SyscallKind::Mprotect, |k| {
            k.mprotect(core, pid, addr, pages, prot)
        })
    }

    fn memread(&self, core: CoreId, pid: Pid, addr: u64) -> KResult<u8> {
        self.timed(core, SyscallKind::Memread, |k| k.memread(core, pid, addr))
    }

    fn memwrite(&self, core: CoreId, pid: Pid, addr: u64, value: u8) -> KResult<()> {
        self.timed(core, SyscallKind::Memwrite, |k| {
            k.memwrite(core, pid, addr, value)
        })
    }

    fn fork(&self, core: CoreId, pid: Pid) -> KResult<Pid> {
        self.timed(core, SyscallKind::Fork, |k| k.fork(core, pid))
    }

    fn posix_spawn(&self, core: CoreId, pid: Pid, dup_fds: &[Fd]) -> KResult<Pid> {
        self.timed(core, SyscallKind::PosixSpawn, |k| {
            k.posix_spawn(core, pid, dup_fds)
        })
    }

    fn wait(&self, core: CoreId, pid: Pid, child: Pid) -> KResult<()> {
        self.timed(core, SyscallKind::Wait, |k| k.wait(core, pid, child))
    }

    fn socket(&self, core: CoreId, order: SocketOrder) -> KResult<SockId> {
        self.timed(core, SyscallKind::Socket, |k| k.socket(core, order))
    }

    fn send(&self, core: CoreId, sock: SockId, msg: &[u8]) -> KResult<()> {
        self.timed(core, SyscallKind::Send, |k| k.send(core, sock, msg))
    }

    fn recv(&self, core: CoreId, sock: SockId) -> KResult<Vec<u8>> {
        self.timed(core, SyscallKind::Recv, |k| k.recv(core, sock))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_round_trip() {
        for kind in SyscallKind::ALL {
            assert_eq!(SyscallKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(SyscallKind::from_name("nonsense"), None);
    }

    #[test]
    fn recorder_counts_calls_and_errnos() {
        let registry = MetricsRegistry::new(2);
        let recorder = SyscallRecorder::new(&registry);
        recorder.observe(0, SyscallKind::Open, None, 100);
        recorder.observe(1, SyscallKind::Open, Some(Errno::ENOENT), 50);
        recorder.observe(1, SyscallKind::Recv, Some(Errno::EAGAIN), 10);
        assert_eq!(recorder.count_of(SyscallKind::Open), 2);
        assert_eq!(recorder.per_core_counts(SyscallKind::Open), vec![1, 1]);
        assert_eq!(recorder.errno_count(SyscallKind::Open, Errno::ENOENT), 1);
        assert_eq!(recorder.errno_count(SyscallKind::Recv, Errno::EAGAIN), 1);
        assert_eq!(recorder.latency(SyscallKind::Open).count, 2);
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counters["syscall.open.calls"].total, 2);
        assert_eq!(snapshot.counters["syscall.recv.errno.EAGAIN"].total, 1);
        assert_eq!(snapshot.histograms["syscall.open.latency_ns"].count, 2);
    }

    #[test]
    fn disabled_registry_silences_the_recorder_gate() {
        let registry = MetricsRegistry::disabled(1);
        let recorder = SyscallRecorder::new(&registry);
        assert!(!recorder.is_enabled());
        use scr_kernel::api::PerformObserver as _;
        assert!(!recorder.observer_enabled());
    }
}
