//! A minimal JSON document builder.
//!
//! The workspace has no serialization dependency, and the snapshot schema is
//! small and stable, so we build documents from an explicit tree. The only
//! invariants that matter: strings are escaped, non-finite floats are clamped
//! to `0` (JSON has no NaN/Inf), and object keys keep insertion order so the
//! emitted artifacts diff cleanly across runs.

use std::fmt::Write as _;

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from `(key, value)` pairs, preserving order.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Render the tree as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::I64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::F64(f) => {
                let f = if f.is_finite() { *f } else { 0.0 };
                let _ = write!(out, "{f}");
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl Json {
    /// Parse a JSON document (the inverse of [`Json::render`], accepting
    /// anything standard). Built for reading the `BENCH_*.json` artifacts
    /// back (the `bench_diff` regression gate), so it favours clear errors
    /// over speed.
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Member lookup on an object (first match; our documents never repeat
    /// keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The boolean variant.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Any numeric variant as an `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::U64(n) => Some(*n as f64),
            Json::I64(n) => Some(*n as f64),
            Json::F64(f) => Some(*f),
            _ => None,
        }
    }

    /// A non-negative integer variant as a `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(n) => Some(*n),
            Json::I64(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            // Surrogate pairs don't appear in our artifacts;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {:?}", other.map(|c| c as char))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // byte-level continuation handling is safe).
                    let start = self.pos;
                    self.pos += 1;
                    while self.bytes.get(self.pos).is_some_and(|b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|e| e.to_string())?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Json::F64)
                .map_err(|e| format!("bad number {text:?}: {e}"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Json::I64)
                .map_err(|e| format!("bad number {text:?}: {e}"))
        } else {
            text.parse::<u64>()
                .map(Json::U64)
                .map_err(|e| format!("bad number {text:?}: {e}"))
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::U64(n)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::U64(n as u64)
    }
}

impl From<f64> for Json {
    fn from(f: f64) -> Json {
        Json::F64(f)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

/// Escape `s` as a JSON string literal (including the surrounding quotes).
pub fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_documents() {
        let doc = Json::obj(vec![
            ("name", "he said \"hi\"\n".into()),
            ("count", 3u64.into()),
            ("ratio", 0.5.into()),
            ("flags", Json::Arr(vec![true.into(), Json::Null])),
        ]);
        assert_eq!(
            doc.render(),
            r#"{"name":"he said \"hi\"\n","count":3,"ratio":0.5,"flags":[true,null]}"#
        );
    }

    #[test]
    fn clamps_non_finite_floats() {
        assert_eq!(Json::F64(f64::NAN).render(), "0");
        assert_eq!(Json::F64(f64::INFINITY).render(), "0");
    }

    #[test]
    fn escapes_control_characters() {
        assert_eq!(Json::Str("\u{1}".to_string()).render(), "\"\\u0001\"");
    }

    #[test]
    fn parse_round_trips_rendered_documents() {
        let doc = Json::obj(vec![
            ("name", "he said \"hi\"\n".into()),
            ("count", 3u64.into()),
            ("neg", Json::I64(-7)),
            ("ratio", 0.5.into()),
            ("flags", Json::Arr(vec![true.into(), Json::Null])),
            ("nested", Json::obj(vec![("k", "v".into())])),
        ]);
        let parsed = Json::parse(&doc.render()).expect("parse back");
        assert_eq!(parsed, doc);
    }

    #[test]
    fn parse_handles_whitespace_and_escapes() {
        let parsed = Json::parse(" { \"a\" : [ 1 , 2.5e1 , \"\\u0041\\t\" ] } ").unwrap();
        let arr = parsed.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(25.0));
        assert_eq!(arr[2].as_str(), Some("A\t"));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("tru").is_err());
    }

    #[test]
    fn accessors_navigate_documents() {
        let doc = Json::parse(r#"{"meta":{"cores":4},"cells":[{"p99":12.5}]}"#).unwrap();
        assert_eq!(
            doc.get("meta")
                .and_then(|m| m.get("cores"))
                .and_then(Json::as_u64),
            Some(4)
        );
        let cells = doc.get("cells").unwrap().as_arr().unwrap();
        assert_eq!(cells[0].get("p99").unwrap().as_f64(), Some(12.5));
        assert_eq!(doc.get("absent"), None);
    }
}
