//! A minimal JSON document builder.
//!
//! The workspace has no serialization dependency, and the snapshot schema is
//! small and stable, so we build documents from an explicit tree. The only
//! invariants that matter: strings are escaped, non-finite floats are clamped
//! to `0` (JSON has no NaN/Inf), and object keys keep insertion order so the
//! emitted artifacts diff cleanly across runs.

use std::fmt::Write as _;

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from `(key, value)` pairs, preserving order.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Render the tree as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::I64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::F64(f) => {
                let f = if f.is_finite() { *f } else { 0.0 };
                let _ = write!(out, "{f}");
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::U64(n)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::U64(n as u64)
    }
}

impl From<f64> for Json {
    fn from(f: f64) -> Json {
        Json::F64(f)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

/// Escape `s` as a JSON string literal (including the surrounding quotes).
pub fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_documents() {
        let doc = Json::obj(vec![
            ("name", "he said \"hi\"\n".into()),
            ("count", 3u64.into()),
            ("ratio", 0.5.into()),
            ("flags", Json::Arr(vec![true.into(), Json::Null])),
        ]);
        assert_eq!(
            doc.render(),
            r#"{"name":"he said \"hi\"\n","count":3,"ratio":0.5,"flags":[true,null]}"#
        );
    }

    #[test]
    fn clamps_non_finite_floats() {
        assert_eq!(Json::F64(f64::NAN).render(), "0");
        assert_eq!(Json::F64(f64::INFINITY).render(), "0");
    }

    #[test]
    fn escapes_control_characters() {
        assert_eq!(Json::Str("\u{1}".to_string()).render(), "\"\\u0001\"");
    }
}
