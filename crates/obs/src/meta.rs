//! Run metadata stamped into every exported artifact.
//!
//! Snapshots and `BENCH_*.json` files carry the same `meta` object — git
//! revision, example name, kernel mode, core count and a free-form config
//! string — so the bench trajectory is comparable across PRs without
//! guessing which commit produced which file.

use crate::json::Json;
use std::sync::OnceLock;
use std::time::{SystemTime, UNIX_EPOCH};

/// Identity of one run: enough to reproduce or compare it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunMeta {
    /// Short git revision of the tree that produced the artifact.
    pub git_rev: String,
    /// The example or gate that ran, e.g. `"host_mail"`.
    pub example: String,
    /// Kernel mode or substrate label, e.g. `"sv6-host"`.
    pub mode: String,
    /// Hardware threads / modelled cores in play.
    pub cores: usize,
    /// Free-form configuration summary, e.g. `"2 enq + 2 qman, 100 msgs"`.
    pub config: String,
    /// Seconds since the Unix epoch when the snapshot was taken.
    pub unix_time: u64,
}

impl RunMeta {
    /// Capture metadata for `example` now, resolving the git revision once
    /// per process.
    pub fn capture(example: &str, mode: &str, cores: usize, config: &str) -> RunMeta {
        RunMeta {
            git_rev: git_rev().to_string(),
            example: example.to_string(),
            mode: mode.to_string(),
            cores,
            config: config.to_string(),
            unix_time: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
        }
    }

    /// One-line human summary.
    pub fn describe(&self) -> String {
        format!(
            "{} [{}] rev {} on {} core(s) — {}",
            if self.example.is_empty() {
                "(unnamed)"
            } else {
                &self.example
            },
            self.mode,
            if self.git_rev.is_empty() {
                "unknown"
            } else {
                &self.git_rev
            },
            self.cores,
            self.config
        )
    }

    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("git_rev", self.git_rev.as_str().into()),
            ("example", self.example.as_str().into()),
            ("mode", self.mode.as_str().into()),
            ("cores", self.cores.into()),
            ("config", self.config.as_str().into()),
            ("unix_time", self.unix_time.into()),
        ])
    }
}

/// The short git revision of the current tree, resolved once. Honors
/// `SCR_GIT_REV` (useful in CI or detached checkouts); falls back to
/// running `git rev-parse --short HEAD`, then to `"unknown"`.
pub fn git_rev() -> &'static str {
    static REV: OnceLock<String> = OnceLock::new();
    REV.get_or_init(|| {
        if let Ok(rev) = std::env::var("SCR_GIT_REV") {
            if !rev.trim().is_empty() {
                return rev.trim().to_string();
            }
        }
        std::process::Command::new("git")
            .args(["rev-parse", "--short", "HEAD"])
            .output()
            .ok()
            .filter(|out| out.status.success())
            .and_then(|out| String::from_utf8(out.stdout).ok())
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| "unknown".to_string())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_fills_every_field() {
        let meta = RunMeta::capture("host_mail", "sv6-host", 4, "2 enq + 2 qman");
        assert_eq!(meta.example, "host_mail");
        assert_eq!(meta.cores, 4);
        assert!(!meta.git_rev.is_empty());
        let json = meta.to_json().render();
        assert!(json.contains("\"example\":\"host_mail\""));
        assert!(json.contains("\"cores\":4"));
        assert!(meta.describe().contains("host_mail"));
    }
}
