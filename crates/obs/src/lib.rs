//! `scr-obs`: a commutativity-aware telemetry layer.
//!
//! Observing a system built around the scalable commutativity rule must not
//! itself violate the rule: a shared metrics counter would be exactly the
//! contended cache line the instrumented code was designed to avoid. Every
//! hot-path structure in this crate is therefore per-core sharded and
//! cache-padded — metric updates, latency samples and trace spans from core
//! *c* touch only core *c*'s own lines, and merging happens on the read
//! side, outside the measured window.
//!
//! The pieces:
//!
//! * [`metrics`] — [`MetricsRegistry`]: named per-core counters and
//!   log-bucketed latency histograms (p50/p90/p99 mergeable across cores),
//!   exported as a JSON snapshot ([`MetricsSnapshot`]) with a shared
//!   `meta`-stamped schema.
//! * [`syscall`] — [`SyscallRecorder`] and [`ObservedKernel`]: per-syscall
//!   call counts, errno counts and wall latency over any [`SyscallApi`]
//!   kernel; also implements the kernel crate's `PerformObserver` hook.
//! * [`trace`] — [`TraceLog`]: per-core span buffers for the mail pipeline
//!   stages, exported in Chrome trace-event JSON (loads into Perfetto).
//! * [`heat`] — [`HeatMap`]: folds `hostmtrace` conflict windows into
//!   per-line access/conflict totals and renders the top-N hottest-lines
//!   table shown beside the Figure 6 heatmaps.
//! * [`events`] — [`EventLog`]: timestamped structured progress events
//!   (sweep pairs, soak rounds, cache-hit rates) for the snapshot's
//!   `events` section.
//! * [`meta`] — [`RunMeta`]: git revision, mode, core count and config
//!   stamped into every artifact.
//! * [`json`], [`cli`] — the dependency-free JSON builder and the shared
//!   `--metrics-out` / `--trace-out` flag helpers.
//!
//! When a registry is disabled ([`MetricsRegistry::set_enabled`]), every
//! handle's update path is one relaxed load and a branch; the
//! `obs_overhead` example gates this in CI against a committed ceiling.
//!
//! [`SyscallApi`]: scr_kernel::api::SyscallApi

pub mod cli;
pub mod events;
pub mod heat;
pub mod json;
pub mod meta;
pub mod metrics;
pub mod syscall;
pub mod trace;

pub use cli::{arg_value, metrics_out, trace_out};
pub use events::EventLog;
pub use heat::{HeatEntry, HeatMap};
pub use json::Json;
pub use meta::{git_rev, RunMeta};
pub use metrics::{
    Counter, CounterSnapshot, EventRecord, Histogram, HistogramSnapshot, MetricsRegistry,
    MetricsSnapshot, DEFAULT_QUANTILES, HIST_BUCKETS,
};
pub use syscall::{ObservedKernel, SyscallKind, SyscallRecorder, ALL_ERRNOS};
pub use trace::{SpanGuard, SpanName, TraceLog};
