//! Property tests for the metrics layer's merge semantics.
//!
//! The registry's whole claim is that per-core sharding loses nothing:
//! whatever any number of threads record on their own cache-padded cells,
//! the merged snapshot is *exactly* the sum — not approximately, and not
//! modulo a dropped update under contention. These tests drive randomized
//! multi-threaded schedules (seeded, via the proptest shim) against that
//! claim, and pin the disabled path to recording nothing at all.

use proptest::prelude::*;
use scr_obs::MetricsRegistry;
use std::sync::Barrier;
use std::thread;

/// Spawns one thread per plan entry, releases them through a barrier so
/// they genuinely contend, and joins them all.
fn run_threads<F>(plans: Vec<F>)
where
    F: FnOnce() + Send + 'static,
{
    let barrier = std::sync::Arc::new(Barrier::new(plans.len()));
    let handles: Vec<_> = plans
        .into_iter()
        .map(|plan| {
            let barrier = barrier.clone();
            thread::spawn(move || {
                barrier.wait();
                plan();
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("worker panicked");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Exactly-once counting under contention: with every thread hammering
    /// its own core's cell (and some threads deliberately sharing a core),
    /// the merged total equals the arithmetic sum of everything added, and
    /// each per-core shard equals the sum of what was aimed at that core.
    #[test]
    fn counter_is_exactly_once_under_contention(
        cores in 1usize..5,
        per_thread in proptest::collection::vec((0usize..8, 1u64..500, 1usize..400), 1..8),
    ) {
        let registry = MetricsRegistry::new(cores);
        let counter = registry.counter("prop.hits");

        let mut expected_per_core = vec![0u64; cores];
        let mut plans: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
        for &(core_pick, amount, reps) in &per_thread {
            let core = core_pick % cores;
            expected_per_core[core] += amount * reps as u64;
            let handle = counter.clone();
            plans.push(Box::new(move || {
                for _ in 0..reps {
                    handle.add(core, amount);
                }
            }));
        }
        run_threads(plans);

        let expected_total: u64 = expected_per_core.iter().sum();
        prop_assert_eq!(counter.total(), expected_total);
        prop_assert_eq!(counter.per_core(), expected_per_core);
    }

    /// Histogram merge semantics: concurrently recording a partition of the
    /// values yields byte-for-byte the same merged snapshot as ingesting the
    /// whole sequence on one thread — same count, sum, max, and buckets
    /// (order of ingestion must not matter).
    #[test]
    fn histogram_merge_equals_sequential_ingest(
        cores in 1usize..5,
        chunks in proptest::collection::vec(
            proptest::collection::vec(0u64..2_000_000, 1..60),
            1..6,
        ),
    ) {
        let concurrent = MetricsRegistry::new(cores);
        let histogram = concurrent.histogram("prop.latency");
        let mut plans: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
        for (index, chunk) in chunks.iter().enumerate() {
            let core = index % cores;
            let handle = histogram.clone();
            let values = chunk.clone();
            plans.push(Box::new(move || {
                for value in values {
                    handle.record(core, value);
                }
            }));
        }
        run_threads(plans);

        let sequential = MetricsRegistry::new(1);
        let reference = sequential.histogram("prop.latency");
        for chunk in &chunks {
            for &value in chunk {
                reference.record(0, value);
            }
        }

        prop_assert_eq!(histogram.merged(), reference.merged());
    }

    /// The disabled registry records nothing, even under the same
    /// contention — and flipping it on mid-run only counts what lands after
    /// the flip (monotonic w.r.t. the enable edge, no retroactive counts).
    #[test]
    fn disabled_registry_records_nothing(
        cores in 1usize..4,
        adds in proptest::collection::vec((0usize..4, 1u64..100), 1..20),
    ) {
        let registry = MetricsRegistry::disabled(cores);
        let counter = registry.counter("prop.silent");
        let histogram = registry.histogram("prop.silent_ns");
        for &(core_pick, amount) in &adds {
            let core = core_pick % cores;
            counter.add(core, amount);
            histogram.record(core, amount);
        }
        prop_assert_eq!(counter.total(), 0);
        prop_assert_eq!(histogram.merged().count, 0);

        registry.set_enabled(true);
        let mut expected = 0u64;
        for &(core_pick, amount) in &adds {
            counter.add(core_pick % cores, amount);
            expected += amount;
        }
        prop_assert_eq!(counter.total(), expected);
    }

    /// Quantile sanity on the merged distribution: quantiles are monotone
    /// in `q`, and every reported quantile is bounded by the true maximum
    /// (log-bucketing rounds *within* a bucket, never past the max).
    #[test]
    fn quantiles_are_monotone_and_bounded(
        values in proptest::collection::vec(1u64..5_000_000, 1..80),
    ) {
        let registry = MetricsRegistry::new(2);
        let histogram = registry.histogram("prop.q");
        for (index, &value) in values.iter().enumerate() {
            histogram.record(index % 2, value);
        }
        let merged = histogram.merged();
        let p50 = merged.p50();
        let p90 = merged.p90();
        let p99 = merged.p99();
        prop_assert!(p50 <= p90 && p90 <= p99);
        let max = *values.iter().max().unwrap() as f64;
        prop_assert!(p99 <= max * 2.0 + 1.0, "p99 {p99} not bounded by bucket of max {max}");
        prop_assert_eq!(merged.count, values.len() as u64);
        prop_assert_eq!(merged.sum, values.iter().sum::<u64>());
    }
}
