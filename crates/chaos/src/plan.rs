//! The chaos plan: every fault a run will inject, decided up front.
//!
//! The same open-loop discipline `scr-loadgen` uses for arrival schedules
//! applies to faults: nothing is drawn from shared mutable RNG state at
//! run time. A fault decision is a pure function of
//! `(plan.seed, core, per-core faultable-call index, call kind)` through a
//! SplitMix64 finalizer, so a run replays its exact fault plan from the
//! seed regardless of thread interleaving — the *k*-th send on core 2
//! fails identically in every run of the same plan. Crash schedules are
//! likewise fixed data (`CrashEvent`s) chosen before any thread starts.

/// SplitMix64 golden-ratio increment.
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;
/// A second odd constant to separate decision streams.
const STREAM2: u64 = 0xC2B2_AE3D_27D4_EB4F;

/// SplitMix64 finalizer.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(GOLDEN);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The syscalls chaos can fault. `Spawn` covers both `fork` and
/// `posix_spawn` (one knob for "child creation failed").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// `send` on a notification socket.
    Send,
    /// `recv` on a notification socket.
    Recv,
    /// `open` (spool and mailbox files).
    Open,
    /// `fork` / `posix_spawn` (delivery helpers).
    Spawn,
}

impl FaultKind {
    /// Stable tag folded into the decision hash.
    fn tag(self) -> u64 {
        match self {
            FaultKind::Send => 1,
            FaultKind::Recv => 2,
            FaultKind::Open => 3,
            FaultKind::Spawn => 4,
        }
    }

    /// Metric-name suffix.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Send => "send",
            FaultKind::Recv => "recv",
            FaultKind::Open => "open",
            FaultKind::Spawn => "spawn",
        }
    }
}

/// Per-call transient-errno injection probabilities, in parts per million.
///
/// Probabilities are clamped to [`FaultSpec::MAX_PPM`] at plan
/// construction: with p ≤ 0.95 per attempt, a bounded retry budget
/// terminates with overwhelming probability (48 attempts at p = 0.95
/// still fail end-to-end only ~8.5% of the time, and those messages
/// dead-letter rather than wedge — `lost` stays zero either way).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultSpec {
    /// Injection probability for `send`.
    pub send_ppm: u32,
    /// Injection probability for `recv` (on top of any delivery delay).
    pub recv_ppm: u32,
    /// Injection probability for `open`.
    pub open_ppm: u32,
    /// Injection probability for `fork`/`posix_spawn`.
    pub spawn_ppm: u32,
}

impl FaultSpec {
    /// Probability ceiling (0.95) that keeps bounded retries terminating.
    pub const MAX_PPM: u32 = 950_000;

    /// The same probability on every faultable call.
    pub fn uniform(ppm: u32) -> FaultSpec {
        FaultSpec {
            send_ppm: ppm,
            recv_ppm: ppm,
            open_ppm: ppm,
            spawn_ppm: ppm,
        }
    }

    fn clamped(self) -> FaultSpec {
        FaultSpec {
            send_ppm: self.send_ppm.min(Self::MAX_PPM),
            recv_ppm: self.recv_ppm.min(Self::MAX_PPM),
            open_ppm: self.open_ppm.min(Self::MAX_PPM),
            spawn_ppm: self.spawn_ppm.min(Self::MAX_PPM),
        }
    }

    fn ppm(&self, kind: FaultKind) -> u32 {
        match kind {
            FaultKind::Send => self.send_ppm,
            FaultKind::Recv => self.recv_ppm,
            FaultKind::Open => self.open_ppm,
            FaultKind::Spawn => self.spawn_ppm,
        }
    }

    fn is_zero(&self) -> bool {
        self.send_ppm == 0 && self.recv_ppm == 0 && self.open_ppm == 0 && self.spawn_ppm == 0
    }
}

/// Bounded delivery delay: with probability `ppm`, a `recv` that would
/// have been attempted instead begins a hold of `polls` consecutive
/// injected EAGAINs on that core. Holding the *attempt* rather than a
/// received message keeps injection side-effect free (nothing is dequeued
/// and parked), while being observationally identical to delaying
/// delivery by `polls` polls.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DelaySpec {
    /// Probability per million that a `recv` starts a hold.
    pub ppm: u32,
    /// Length of the hold in polls.
    pub polls: u32,
}

impl DelaySpec {
    fn clamped(self) -> DelaySpec {
        DelaySpec {
            ppm: self.ppm.min(FaultSpec::MAX_PPM),
            polls: self.polls,
        }
    }
}

/// Where in the qman step a scheduled crash fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrashPhase {
    /// After the notification was received but before the helper spawned:
    /// the envelope is in flight and must be re-driven.
    AfterRecv,
    /// After the delivery helper was spawned but before it delivered: the
    /// supervisor must reap the orphan and re-drive the envelope.
    AfterSpawn,
    /// After the message was delivered but before reap/cleanup: the
    /// supervisor must finish cleanup *without* re-delivering.
    AfterDeliver,
}

/// One scheduled qman death: incarnation `generation` of qman `qman` dies
/// at phase `phase` of its `after_steps`-th delivery step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashEvent {
    /// Which qman slot dies.
    pub qman: usize,
    /// Which incarnation (0 = the original thread, 1 = first restart...).
    pub generation: u32,
    /// How many envelopes this incarnation processes before dying.
    pub after_steps: u64,
    /// Where in the step it dies.
    pub phase: CrashPhase,
}

/// A complete, replayable fault plan.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ChaosPlan {
    /// Seed for every injection decision.
    pub seed: u64,
    /// Transient-errno injection probabilities.
    pub faults: FaultSpec,
    /// Bounded delivery delay on `recv`.
    pub delay: DelaySpec,
    /// Scheduled qman deaths.
    pub crashes: Vec<CrashEvent>,
}

impl ChaosPlan {
    /// The disabled plan: `FaultyKernel` under it is pure delegation.
    pub fn none() -> ChaosPlan {
        ChaosPlan::default()
    }

    /// Canned plan: an errno storm — every faultable call fails with a
    /// transient errno 20% of the time, no delays, no crashes.
    pub fn errno_storm(seed: u64) -> ChaosPlan {
        ChaosPlan::new(
            seed,
            FaultSpec::uniform(200_000),
            DelaySpec::default(),
            vec![],
        )
    }

    /// Canned plan: delayed delivery — 5% of `recv` attempts start an
    /// 8-poll hold, plus a light 2% errno drizzle on `send`.
    pub fn delayed_delivery(seed: u64) -> ChaosPlan {
        ChaosPlan::new(
            seed,
            FaultSpec {
                send_ppm: 20_000,
                ..FaultSpec::default()
            },
            DelaySpec {
                ppm: 50_000,
                polls: 8,
            },
            vec![],
        )
    }

    /// Canned plan: qman 0 dies mid-run (once per phase across its first
    /// three incarnations) under a light errno drizzle, exercising
    /// restart, orphan reaping, and re-drive.
    pub fn qman_crash(seed: u64) -> ChaosPlan {
        ChaosPlan::new(
            seed,
            FaultSpec::uniform(30_000),
            DelaySpec::default(),
            vec![
                CrashEvent {
                    qman: 0,
                    generation: 0,
                    after_steps: 2,
                    phase: CrashPhase::AfterRecv,
                },
                CrashEvent {
                    qman: 0,
                    generation: 1,
                    after_steps: 2,
                    phase: CrashPhase::AfterSpawn,
                },
                CrashEvent {
                    qman: 0,
                    generation: 2,
                    after_steps: 2,
                    phase: CrashPhase::AfterDeliver,
                },
            ],
        )
    }

    /// Builds a plan, clamping probabilities to the termination ceiling.
    pub fn new(seed: u64, faults: FaultSpec, delay: DelaySpec, crashes: Vec<CrashEvent>) -> Self {
        ChaosPlan {
            seed,
            faults: faults.clamped(),
            delay: delay.clamped(),
            crashes,
        }
    }

    /// Whether the plan injects anything at all. A disabled plan makes
    /// `FaultyKernel` pure delegation (the parity test pins this).
    pub fn enabled(&self) -> bool {
        !self.faults.is_zero() || self.delay.ppm != 0 || !self.crashes.is_empty()
    }

    /// The errno (if any) to inject for the `index`-th faultable call of
    /// `kind` on `core`. Pure: same arguments, same answer, forever.
    pub fn decide_fault(
        &self,
        core: usize,
        index: u64,
        kind: FaultKind,
    ) -> Option<scr_kernel::api::Errno> {
        use scr_kernel::api::Errno;
        let ppm = self.faults.ppm(kind);
        if ppm == 0 {
            return None;
        }
        let draw = mix64(
            self.seed
                ^ (core as u64).wrapping_mul(GOLDEN)
                ^ index.wrapping_mul(STREAM2)
                ^ kind.tag(),
        );
        if draw % 1_000_000 >= u64::from(ppm) {
            return None;
        }
        Some(match (draw >> 32) % 3 {
            0 => Errno::EAGAIN,
            1 => Errno::EINTR,
            _ => Errno::ENOMEM,
        })
    }

    /// Whether the `index`-th `recv` on `core` starts a delivery hold
    /// (and for how many polls). Separate stream from `decide_fault`.
    pub fn decide_delay(&self, core: usize, index: u64) -> Option<u32> {
        if self.delay.ppm == 0 || self.delay.polls == 0 {
            return None;
        }
        let draw = mix64(
            self.seed ^ STREAM2 ^ (core as u64).wrapping_mul(GOLDEN) ^ index.wrapping_mul(GOLDEN),
        );
        (draw % 1_000_000 < u64::from(self.delay.ppm)).then_some(self.delay.polls)
    }

    /// The scheduled death (if any) of incarnation `generation` of qman
    /// slot `qman`.
    pub fn crash_for(&self, qman: usize, generation: u32) -> Option<CrashEvent> {
        self.crashes
            .iter()
            .copied()
            .find(|c| c.qman == qman && c.generation == generation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_pure_functions_of_the_seed() {
        let plan = ChaosPlan::errno_storm(42);
        for core in 0..4 {
            for index in 0..256 {
                for kind in [
                    FaultKind::Send,
                    FaultKind::Recv,
                    FaultKind::Open,
                    FaultKind::Spawn,
                ] {
                    assert_eq!(
                        plan.decide_fault(core, index, kind),
                        plan.decide_fault(core, index, kind)
                    );
                }
            }
        }
    }

    #[test]
    fn storm_injects_near_its_nominal_rate() {
        let plan = ChaosPlan::errno_storm(7);
        let injected = (0..10_000u64)
            .filter(|&i| plan.decide_fault(0, i, FaultKind::Send).is_some())
            .count();
        // 20% nominal; allow generous slack for a 10k sample.
        assert!((1_500..=2_500).contains(&injected), "{injected}");
    }

    #[test]
    fn probabilities_clamp_to_the_termination_ceiling() {
        let plan = ChaosPlan::new(
            1,
            FaultSpec::uniform(1_000_000),
            DelaySpec {
                ppm: 1_000_000,
                polls: 4,
            },
            vec![],
        );
        assert_eq!(plan.faults, FaultSpec::uniform(FaultSpec::MAX_PPM));
        assert_eq!(plan.delay.ppm, FaultSpec::MAX_PPM);
        // Even at the ceiling some calls go through.
        let through = (0..10_000u64)
            .filter(|&i| plan.decide_fault(0, i, FaultKind::Send).is_none())
            .count();
        assert!(through > 100, "{through}");
    }

    #[test]
    fn disabled_plan_is_inert() {
        let plan = ChaosPlan::none();
        assert!(!plan.enabled());
        assert_eq!(plan.decide_fault(0, 0, FaultKind::Send), None);
        assert_eq!(plan.decide_delay(0, 0), None);
        assert_eq!(plan.crash_for(0, 0), None);
    }
}
