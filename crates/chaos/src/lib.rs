//! # scr-chaos — deterministic fault injection at the syscall boundary
//!
//! The repo's robustness observatory. Every other layer assumes a perfect
//! substrate; this crate manufactures the imperfect one, deterministically:
//!
//! * [`plan`] — [`ChaosPlan`]: seeded per-call errno-injection
//!   probabilities ([`FaultSpec`]), bounded delivery delay ([`DelaySpec`]),
//!   and scheduled qman deaths ([`CrashEvent`]). Decisions are pure
//!   functions of the seed (open-loop style, like `scr-loadgen`'s arrival
//!   schedules), so a failed chaos round reproduces from its recorded
//!   seed alone.
//! * [`kernel`] — [`FaultyKernel`], the `SyscallApi` wrapper that injects
//!   the plan (mirroring `scr-obs`'s `ObservedKernel`), and
//!   [`ReliableKernel`], the retry layer that re-issues exactly the
//!   failures injection manufactured, under a `RetryPolicy` budget, with
//!   [`ChaosTelemetry`] counting faults, retries, backoff sleep, and
//!   recovery time.
//!
//! The crate sits between `scr-kernel` and the consumers (`scr-host`'s
//! chaos pipeline and campaign, `scr-loadgen`'s `--chaos` leg) and
//! deliberately depends on neither consumer.

pub mod kernel;
pub mod plan;

pub use kernel::{ChaosTelemetry, FaultyKernel, ReliableKernel};
pub use plan::{ChaosPlan, CrashEvent, CrashPhase, DelaySpec, FaultKind, FaultSpec};
