//! [`FaultyKernel`]: the fault-injecting [`SyscallApi`] wrapper, and
//! [`ReliableKernel`]: the retrying wrapper that rides on top of it.
//!
//! The injection invariant that makes retry safe: a fault is decided
//! *before* the inner kernel is invoked, so an injected failure has **zero
//! side effects** — re-issuing the call is always equivalent to the call
//! never having failed. `ReliableKernel` exploits the second half of the
//! bargain: the faulty kernel knows which failures it manufactured
//! ([`FaultyKernel::was_injected`]), so the reliable path retries exactly
//! those and passes every genuine kernel answer through untouched. Under
//! any plan, `ReliableKernel` over `FaultyKernel` over `K` is
//! observationally `K` (modulo timing) until a retry budget exhausts —
//! and budget exhaustion surfaces the injected errno to the caller, whose
//! job is to dead-letter, not to lose.
//!
//! One thread per core is assumed (as everywhere else in the workspace):
//! the per-core injection state is not meaningful if two threads share a
//! core label.

use crate::plan::{ChaosPlan, FaultKind};
use scr_kernel::api::{
    Errno, Fd, KResult, MmapBacking, OpenFlags, Pid, Prot, SockId, SocketOrder, Stat, StatMask,
    SyscallApi, Whence,
};
use scr_kernel::retry::{Backoff, RetryPolicy};
use scr_mtrace::CoreId;
use scr_obs::{Counter, Histogram, MetricsRegistry};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Obs counters and histograms for the chaos layer, pre-registered flat
/// (same discipline as `SyscallRecorder`).
pub struct ChaosTelemetry {
    registry: Arc<MetricsRegistry>,
    /// Injected transient errnos, per faultable call.
    injected: [Counter; 4],
    /// Delivery holds started on `recv`.
    pub delay_holds: Counter,
    /// Injected EAGAIN polls spent inside holds (≥ holds × 1).
    pub delay_polls: Counter,
    /// Retries taken by the reliable path.
    pub retries: Counter,
    /// Nanoseconds of each backoff sleep (yields are not recorded).
    pub backoff_ns: Histogram,
    /// First injected failure → eventual success, per recovered call.
    pub recovery_ns: Histogram,
}

impl ChaosTelemetry {
    /// Registers the chaos metric family on `registry`.
    pub fn new(registry: &Arc<MetricsRegistry>) -> Arc<ChaosTelemetry> {
        let injected = [
            FaultKind::Send,
            FaultKind::Recv,
            FaultKind::Open,
            FaultKind::Spawn,
        ]
        .map(|kind| registry.counter(&format!("chaos.injected.{}", kind.name())));
        Arc::new(ChaosTelemetry {
            injected,
            delay_holds: registry.counter("chaos.delay.holds"),
            delay_polls: registry.counter("chaos.delay.polls"),
            retries: registry.counter("chaos.retries"),
            backoff_ns: registry.histogram("chaos.backoff_sleep_ns"),
            recovery_ns: registry.histogram("chaos.recovery_ns"),
            registry: registry.clone(),
        })
    }

    /// Whether the backing registry is recording.
    pub fn is_enabled(&self) -> bool {
        self.registry.is_enabled()
    }

    /// The injected-fault counter for `kind`.
    pub fn injected(&self, kind: FaultKind) -> &Counter {
        &self.injected[kind as usize]
    }

    /// Total injected faults across all calls (excluding delay polls).
    pub fn injected_total(&self) -> u64 {
        self.injected.iter().map(Counter::total).sum()
    }
}

struct CoreState {
    /// Per-kind faultable-call indices (the decision stream positions).
    counts: [AtomicU64; 4],
    /// Remaining injected-EAGAIN polls of an active delivery hold.
    pending_delay: AtomicU32,
    /// Whether this core's last faultable call failed by injection.
    injected: AtomicBool,
}

impl CoreState {
    fn new() -> CoreState {
        CoreState {
            counts: [
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
            ],
            pending_delay: AtomicU32::new(0),
            injected: AtomicBool::new(false),
        }
    }
}

/// A [`SyscallApi`] wrapper injecting the faults a [`ChaosPlan`] decided.
///
/// With a disabled plan ([`ChaosPlan::none`]) every call is pure
/// delegation — no atomics touched, no clock read, no probe footprint
/// beyond the inner kernel's own (the parity test in `scr-host` pins
/// this).
pub struct FaultyKernel<'k, K: SyscallApi + ?Sized> {
    inner: &'k K,
    plan: ChaosPlan,
    active: bool,
    telemetry: Option<Arc<ChaosTelemetry>>,
    per_core: Box<[CoreState]>,
    /// Total injected errnos (kept besides the obs counters so reports
    /// work without a registry).
    injected_count: AtomicU64,
    /// Total injected-EAGAIN polls spent in delivery holds.
    delayed_polls: AtomicU64,
}

impl<'k, K: SyscallApi + ?Sized> FaultyKernel<'k, K> {
    /// Wraps `inner` under `plan` for up to `cores` core labels.
    pub fn new(inner: &'k K, plan: ChaosPlan, cores: usize) -> FaultyKernel<'k, K> {
        let active = plan.enabled();
        FaultyKernel {
            inner,
            active,
            plan,
            telemetry: None,
            per_core: (0..cores).map(|_| CoreState::new()).collect(),
            injected_count: AtomicU64::new(0),
            delayed_polls: AtomicU64::new(0),
        }
    }

    /// Total errnos injected so far.
    pub fn injected_total(&self) -> u64 {
        self.injected_count.load(Ordering::Relaxed)
    }

    /// Total recv polls eaten by delivery holds so far.
    pub fn delayed_polls_total(&self) -> u64 {
        self.delayed_polls.load(Ordering::Relaxed)
    }

    /// Attaches chaos telemetry (counts injections, holds, retries).
    pub fn with_telemetry(mut self, telemetry: Arc<ChaosTelemetry>) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// The wrapped kernel.
    pub fn inner(&self) -> &'k K {
        self.inner
    }

    /// The plan in force.
    pub fn plan(&self) -> &ChaosPlan {
        &self.plan
    }

    /// Whether `core`'s most recent faultable call failed by injection
    /// (false after any call that reached the inner kernel). Meaningful
    /// only under the one-thread-per-core discipline.
    pub fn was_injected(&self, core: CoreId) -> bool {
        self.active && self.per_core[core].injected.load(Ordering::Relaxed)
    }

    fn count_injected(&self, core: CoreId, kind: FaultKind) {
        self.injected_count.fetch_add(1, Ordering::Relaxed);
        if let Some(t) = &self.telemetry {
            if t.is_enabled() {
                t.injected(kind).inc(core);
            }
        }
    }

    fn count_delay_poll(&self, core: CoreId, fresh_hold: bool) {
        self.delayed_polls.fetch_add(1, Ordering::Relaxed);
        if let Some(t) = &self.telemetry {
            if t.is_enabled() {
                if fresh_hold {
                    t.delay_holds.inc(core);
                }
                t.delay_polls.inc(core);
            }
        }
    }

    #[inline]
    fn faulted<T>(
        &self,
        core: CoreId,
        kind: FaultKind,
        f: impl FnOnce(&'k K) -> KResult<T>,
    ) -> KResult<T> {
        if !self.active {
            return f(self.inner);
        }
        let state = &self.per_core[core];
        let index = state.counts[kind as usize].fetch_add(1, Ordering::Relaxed);
        if let Some(errno) = self.plan.decide_fault(core, index, kind) {
            state.injected.store(true, Ordering::Relaxed);
            self.count_injected(core, kind);
            return Err(errno);
        }
        state.injected.store(false, Ordering::Relaxed);
        f(self.inner)
    }
}

impl<K: SyscallApi + ?Sized> SyscallApi for FaultyKernel<'_, K> {
    fn new_process(&self) -> Pid {
        self.inner.new_process()
    }

    fn open(&self, core: CoreId, pid: Pid, name: &str, flags: OpenFlags) -> KResult<Fd> {
        self.faulted(core, FaultKind::Open, |k| k.open(core, pid, name, flags))
    }

    fn link(&self, core: CoreId, pid: Pid, old: &str, new: &str) -> KResult<()> {
        self.inner.link(core, pid, old, new)
    }

    fn unlink(&self, core: CoreId, pid: Pid, name: &str) -> KResult<()> {
        self.inner.unlink(core, pid, name)
    }

    fn rename(&self, core: CoreId, pid: Pid, src: &str, dst: &str) -> KResult<()> {
        self.inner.rename(core, pid, src, dst)
    }

    fn stat(&self, core: CoreId, pid: Pid, name: &str) -> KResult<Stat> {
        self.inner.stat(core, pid, name)
    }

    fn fstat(&self, core: CoreId, pid: Pid, fd: Fd) -> KResult<Stat> {
        self.inner.fstat(core, pid, fd)
    }

    fn fstatx(&self, core: CoreId, pid: Pid, fd: Fd, mask: StatMask) -> KResult<Stat> {
        self.inner.fstatx(core, pid, fd, mask)
    }

    fn lseek(&self, core: CoreId, pid: Pid, fd: Fd, offset: i64, whence: Whence) -> KResult<u64> {
        self.inner.lseek(core, pid, fd, offset, whence)
    }

    fn close(&self, core: CoreId, pid: Pid, fd: Fd) -> KResult<()> {
        self.inner.close(core, pid, fd)
    }

    fn pipe(&self, core: CoreId, pid: Pid) -> KResult<(Fd, Fd)> {
        self.inner.pipe(core, pid)
    }

    fn read(&self, core: CoreId, pid: Pid, fd: Fd, len: u64) -> KResult<Vec<u8>> {
        self.inner.read(core, pid, fd, len)
    }

    fn write(&self, core: CoreId, pid: Pid, fd: Fd, data: &[u8]) -> KResult<u64> {
        self.inner.write(core, pid, fd, data)
    }

    fn pread(&self, core: CoreId, pid: Pid, fd: Fd, len: u64, offset: u64) -> KResult<Vec<u8>> {
        self.inner.pread(core, pid, fd, len, offset)
    }

    fn pwrite(&self, core: CoreId, pid: Pid, fd: Fd, data: &[u8], offset: u64) -> KResult<u64> {
        self.inner.pwrite(core, pid, fd, data, offset)
    }

    fn mmap(
        &self,
        core: CoreId,
        pid: Pid,
        addr_hint: Option<u64>,
        pages: u64,
        prot: Prot,
        backing: MmapBacking,
    ) -> KResult<u64> {
        self.inner.mmap(core, pid, addr_hint, pages, prot, backing)
    }

    fn munmap(&self, core: CoreId, pid: Pid, addr: u64, pages: u64) -> KResult<()> {
        self.inner.munmap(core, pid, addr, pages)
    }

    fn mprotect(&self, core: CoreId, pid: Pid, addr: u64, pages: u64, prot: Prot) -> KResult<()> {
        self.inner.mprotect(core, pid, addr, pages, prot)
    }

    fn memread(&self, core: CoreId, pid: Pid, addr: u64) -> KResult<u8> {
        self.inner.memread(core, pid, addr)
    }

    fn memwrite(&self, core: CoreId, pid: Pid, addr: u64, value: u8) -> KResult<()> {
        self.inner.memwrite(core, pid, addr, value)
    }

    fn fork(&self, core: CoreId, pid: Pid) -> KResult<Pid> {
        self.faulted(core, FaultKind::Spawn, |k| k.fork(core, pid))
    }

    fn posix_spawn(&self, core: CoreId, pid: Pid, dup_fds: &[Fd]) -> KResult<Pid> {
        self.faulted(core, FaultKind::Spawn, |k| {
            k.posix_spawn(core, pid, dup_fds)
        })
    }

    fn wait(&self, core: CoreId, pid: Pid, child: Pid) -> KResult<()> {
        self.inner.wait(core, pid, child)
    }

    fn socket(&self, core: CoreId, order: SocketOrder) -> KResult<SockId> {
        self.inner.socket(core, order)
    }

    fn send(&self, core: CoreId, sock: SockId, msg: &[u8]) -> KResult<()> {
        self.faulted(core, FaultKind::Send, |k| k.send(core, sock, msg))
    }

    fn recv(&self, core: CoreId, sock: SockId) -> KResult<Vec<u8>> {
        if !self.active {
            return self.inner.recv(core, sock);
        }
        let state = &self.per_core[core];
        // An active hold eats this poll with an injected EAGAIN.
        let pending = state.pending_delay.load(Ordering::Relaxed);
        if pending > 0 {
            state.pending_delay.store(pending - 1, Ordering::Relaxed);
            state.injected.store(true, Ordering::Relaxed);
            self.count_delay_poll(core, false);
            return Err(Errno::EAGAIN);
        }
        let index = state.counts[FaultKind::Recv as usize].fetch_add(1, Ordering::Relaxed);
        if let Some(errno) = self.plan.decide_fault(core, index, FaultKind::Recv) {
            state.injected.store(true, Ordering::Relaxed);
            self.count_injected(core, FaultKind::Recv);
            return Err(errno);
        }
        if let Some(polls) = self.plan.decide_delay(core, index) {
            // This attempt is the first poll of the hold.
            state.pending_delay.store(polls - 1, Ordering::Relaxed);
            state.injected.store(true, Ordering::Relaxed);
            self.count_delay_poll(core, true);
            return Err(Errno::EAGAIN);
        }
        state.injected.store(false, Ordering::Relaxed);
        self.inner.recv(core, sock)
    }
}

/// The retrying wrapper: re-issues exactly the failures its
/// [`FaultyKernel`] injected, under a [`RetryPolicy`] budget.
///
/// Genuine kernel errors (including a genuine EAGAIN from an empty
/// socket) pass through on the first bounce — poll loops and error
/// handling above see the real kernel's behaviour. When the budget
/// exhausts mid-storm, the last injected errno surfaces; the caller
/// dead-letters or sheds, it does not lose.
pub struct ReliableKernel<'f, 'k, K: SyscallApi + ?Sized> {
    faulty: &'f FaultyKernel<'k, K>,
    policy: RetryPolicy,
}

impl<'f, 'k, K: SyscallApi + ?Sized> ReliableKernel<'f, 'k, K> {
    /// Wraps `faulty` with retry `policy`.
    pub fn new(faulty: &'f FaultyKernel<'k, K>, policy: RetryPolicy) -> Self {
        ReliableKernel { faulty, policy }
    }

    /// The fault layer underneath.
    pub fn faulty(&self) -> &'f FaultyKernel<'k, K> {
        self.faulty
    }

    #[inline]
    fn retried<T>(
        &self,
        core: CoreId,
        f: impl Fn(&FaultyKernel<'k, K>) -> KResult<T>,
    ) -> KResult<T> {
        let mut result = f(self.faulty);
        if result.is_ok() || !self.faulty.was_injected(core) {
            return result;
        }
        let telemetry = self.faulty.telemetry.as_deref().filter(|t| t.is_enabled());
        let started = telemetry.map(|_| Instant::now());
        let mut backoff = Backoff::new(self.policy, core as u64);
        loop {
            match backoff.step() {
                None => return result, // budget exhausted: surface the injected errno
                Some(0) => std::thread::yield_now(),
                Some(ns) => {
                    if let Some(t) = telemetry {
                        t.backoff_ns.record(core, ns);
                    }
                    std::thread::sleep(std::time::Duration::from_nanos(ns));
                }
            }
            if let Some(t) = telemetry {
                t.retries.inc(core);
            }
            result = f(self.faulty);
            match &result {
                Ok(_) => {
                    if let (Some(t), Some(at)) = (telemetry, started) {
                        t.recovery_ns.record(core, at.elapsed().as_nanos() as u64);
                    }
                    return result;
                }
                Err(_) if self.faulty.was_injected(core) => continue,
                Err(_) => return result, // genuine kernel answer
            }
        }
    }
}

impl<K: SyscallApi + ?Sized> SyscallApi for ReliableKernel<'_, '_, K> {
    fn new_process(&self) -> Pid {
        self.faulty.new_process()
    }

    fn open(&self, core: CoreId, pid: Pid, name: &str, flags: OpenFlags) -> KResult<Fd> {
        self.retried(core, |k| k.open(core, pid, name, flags))
    }

    fn link(&self, core: CoreId, pid: Pid, old: &str, new: &str) -> KResult<()> {
        self.faulty.link(core, pid, old, new)
    }

    fn unlink(&self, core: CoreId, pid: Pid, name: &str) -> KResult<()> {
        self.faulty.unlink(core, pid, name)
    }

    fn rename(&self, core: CoreId, pid: Pid, src: &str, dst: &str) -> KResult<()> {
        self.faulty.rename(core, pid, src, dst)
    }

    fn stat(&self, core: CoreId, pid: Pid, name: &str) -> KResult<Stat> {
        self.faulty.stat(core, pid, name)
    }

    fn fstat(&self, core: CoreId, pid: Pid, fd: Fd) -> KResult<Stat> {
        self.faulty.fstat(core, pid, fd)
    }

    fn fstatx(&self, core: CoreId, pid: Pid, fd: Fd, mask: StatMask) -> KResult<Stat> {
        self.faulty.fstatx(core, pid, fd, mask)
    }

    fn lseek(&self, core: CoreId, pid: Pid, fd: Fd, offset: i64, whence: Whence) -> KResult<u64> {
        self.faulty.lseek(core, pid, fd, offset, whence)
    }

    fn close(&self, core: CoreId, pid: Pid, fd: Fd) -> KResult<()> {
        self.faulty.close(core, pid, fd)
    }

    fn pipe(&self, core: CoreId, pid: Pid) -> KResult<(Fd, Fd)> {
        self.faulty.pipe(core, pid)
    }

    fn read(&self, core: CoreId, pid: Pid, fd: Fd, len: u64) -> KResult<Vec<u8>> {
        self.faulty.read(core, pid, fd, len)
    }

    fn write(&self, core: CoreId, pid: Pid, fd: Fd, data: &[u8]) -> KResult<u64> {
        self.faulty.write(core, pid, fd, data)
    }

    fn pread(&self, core: CoreId, pid: Pid, fd: Fd, len: u64, offset: u64) -> KResult<Vec<u8>> {
        self.faulty.pread(core, pid, fd, len, offset)
    }

    fn pwrite(&self, core: CoreId, pid: Pid, fd: Fd, data: &[u8], offset: u64) -> KResult<u64> {
        self.faulty.pwrite(core, pid, fd, data, offset)
    }

    fn mmap(
        &self,
        core: CoreId,
        pid: Pid,
        addr_hint: Option<u64>,
        pages: u64,
        prot: Prot,
        backing: MmapBacking,
    ) -> KResult<u64> {
        self.faulty.mmap(core, pid, addr_hint, pages, prot, backing)
    }

    fn munmap(&self, core: CoreId, pid: Pid, addr: u64, pages: u64) -> KResult<()> {
        self.faulty.munmap(core, pid, addr, pages)
    }

    fn mprotect(&self, core: CoreId, pid: Pid, addr: u64, pages: u64, prot: Prot) -> KResult<()> {
        self.faulty.mprotect(core, pid, addr, pages, prot)
    }

    fn memread(&self, core: CoreId, pid: Pid, addr: u64) -> KResult<u8> {
        self.faulty.memread(core, pid, addr)
    }

    fn memwrite(&self, core: CoreId, pid: Pid, addr: u64, value: u8) -> KResult<()> {
        self.faulty.memwrite(core, pid, addr, value)
    }

    fn fork(&self, core: CoreId, pid: Pid) -> KResult<Pid> {
        self.retried(core, |k| k.fork(core, pid))
    }

    fn posix_spawn(&self, core: CoreId, pid: Pid, dup_fds: &[Fd]) -> KResult<Pid> {
        self.retried(core, |k| k.posix_spawn(core, pid, dup_fds))
    }

    fn wait(&self, core: CoreId, pid: Pid, child: Pid) -> KResult<()> {
        self.faulty.wait(core, pid, child)
    }

    fn socket(&self, core: CoreId, order: SocketOrder) -> KResult<SockId> {
        self.faulty.socket(core, order)
    }

    fn send(&self, core: CoreId, sock: SockId, msg: &[u8]) -> KResult<()> {
        self.retried(core, |k| k.send(core, sock, msg))
    }

    fn recv(&self, core: CoreId, sock: SockId) -> KResult<Vec<u8>> {
        self.retried(core, |k| k.recv(core, sock))
    }
}
