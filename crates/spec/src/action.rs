//! Actions: invocations and responses (§3.1).
//!
//! A system execution is modelled as a sequence of *actions*. An action is
//! either an **invocation** (a call with arguments, e.g. `open("file",
//! O_RDWR)`) or a **response** (the corresponding result). Each action
//! carries:
//!
//! 1. an operation payload (the invocation arguments or the return value),
//! 2. the thread that performed it, and
//! 3. a tag used to pair an invocation with its response.
//!
//! The payload types are generic so the same formalism serves the toy models
//! used in this crate's tests and the POSIX-scale models elsewhere in the
//! workspace.

use std::fmt;

/// Identifier of a thread in a history.
///
/// Threads are dense small integers; the formalism never needs more than a
/// handful of threads at once, but nothing here imposes a bound.
pub type ThreadId = usize;

/// Tag pairing an invocation with its response.
///
/// Within a well-formed history every tag appears at most twice: once on an
/// invocation and once on the matching response of the same thread.
pub type Tag = u64;

/// The payload of an action: either the arguments of an invocation or the
/// return value of a response.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum ActionKind<I, R> {
    /// An operation is being invoked with the given arguments.
    Invocation(I),
    /// An operation is returning the given value.
    Response(R),
}

impl<I, R> ActionKind<I, R> {
    /// Returns `true` if this is an invocation.
    pub fn is_invocation(&self) -> bool {
        matches!(self, ActionKind::Invocation(_))
    }

    /// Returns `true` if this is a response.
    pub fn is_response(&self) -> bool {
        matches!(self, ActionKind::Response(_))
    }
}

/// A single action in a history (§3.1).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Action<I, R> {
    /// The thread performing this action.
    pub thread: ThreadId,
    /// Tag pairing this action with its partner (invocation ↔ response).
    pub tag: Tag,
    /// Invocation arguments or response value.
    pub kind: ActionKind<I, R>,
}

impl<I, R> Action<I, R> {
    /// Builds an invocation action.
    pub fn invoke(thread: ThreadId, tag: Tag, args: I) -> Self {
        Action {
            thread,
            tag,
            kind: ActionKind::Invocation(args),
        }
    }

    /// Builds a response action.
    pub fn respond(thread: ThreadId, tag: Tag, value: R) -> Self {
        Action {
            thread,
            tag,
            kind: ActionKind::Response(value),
        }
    }

    /// Returns `true` if this action is an invocation.
    pub fn is_invocation(&self) -> bool {
        self.kind.is_invocation()
    }

    /// Returns `true` if this action is a response.
    pub fn is_response(&self) -> bool {
        self.kind.is_response()
    }

    /// Returns the invocation payload, if this is an invocation.
    pub fn invocation(&self) -> Option<&I> {
        match &self.kind {
            ActionKind::Invocation(i) => Some(i),
            ActionKind::Response(_) => None,
        }
    }

    /// Returns the response payload, if this is a response.
    pub fn response(&self) -> Option<&R> {
        match &self.kind {
            ActionKind::Response(r) => Some(r),
            ActionKind::Invocation(_) => None,
        }
    }
}

impl<I: fmt::Display, R: fmt::Display> fmt::Display for Action<I, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ActionKind::Invocation(i) => write!(f, "t{}:inv[{}]({})", self.thread, self.tag, i),
            ActionKind::Response(r) => write!(f, "t{}:res[{}]({})", self.thread, self.tag, r),
        }
    }
}

/// Convenience constructor for a complete (invocation, response) pair on one
/// thread. Returns the two actions in order.
pub fn op_pair<I, R>(thread: ThreadId, tag: Tag, args: I, value: R) -> [Action<I, R>; 2] {
    [
        Action::invoke(thread, tag, args),
        Action::respond(thread, tag, value),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invocation_and_response_discriminate() {
        let inv: Action<&str, i32> = Action::invoke(0, 1, "getpid");
        let res: Action<&str, i32> = Action::respond(0, 1, 42);
        assert!(inv.is_invocation());
        assert!(!inv.is_response());
        assert!(res.is_response());
        assert!(!res.is_invocation());
        assert_eq!(inv.invocation(), Some(&"getpid"));
        assert_eq!(inv.response(), None);
        assert_eq!(res.response(), Some(&42));
        assert_eq!(res.invocation(), None);
    }

    #[test]
    fn op_pair_produces_matching_tags() {
        let [inv, res] = op_pair(3, 7, "open", 5);
        assert_eq!(inv.thread, 3);
        assert_eq!(res.thread, 3);
        assert_eq!(inv.tag, res.tag);
        assert!(inv.is_invocation());
        assert!(res.is_response());
    }

    #[test]
    fn display_formats_thread_and_tag() {
        let inv: Action<&str, i32> = Action::invoke(1, 9, "stat");
        let shown = format!("{inv}");
        assert!(shown.contains("t1"));
        assert!(shown.contains("stat"));
    }
}
