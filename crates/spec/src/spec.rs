//! Specifications: prefix-closed sets of well-formed histories (§3.1).
//!
//! A specification `S` distinguishes "correct" histories from incorrect
//! ones. This module provides the [`Specification`] trait and [`RefSpec`],
//! which derives a specification from a sequential reference model by
//! searching for a linearisation of the history whose sequential replay
//! reproduces every recorded response (following Herlihy & Wing, which §3.1
//! cites as the basis of the action/history formalism).

use crate::action::{Action, ThreadId};
use crate::history::History;
use crate::model::SeqSpecModel;
use std::collections::BTreeMap;

/// A specification: a predicate on histories.
///
/// Implementations must be prefix-closed over well-formed histories: if
/// `contains(h)` then `contains(p)` for every prefix `p` of `h`. [`RefSpec`]
/// satisfies this by construction; the property is exercised by tests.
pub trait Specification<I, R> {
    /// Does the specification contain (allow) this history?
    fn contains(&self, history: &History<I, R>) -> bool;
}

/// An operation extracted from a history: an invocation and, if already
/// returned, its response, along with their positions in the history.
#[derive(Clone, Debug)]
struct PendingOp<I, R> {
    thread: ThreadId,
    inv: I,
    resp: Option<R>,
    inv_index: usize,
    resp_index: Option<usize>,
}

/// A specification derived from a sequential reference model.
///
/// A well-formed history is contained in the specification iff there exists
/// a linearisation of its operations — a total order consistent with each
/// thread's program order and with real-time order (an operation that
/// completed before another was invoked must be ordered first) — such that
/// replaying the invocations sequentially through the model can produce every
/// recorded response. Operations that have not yet responded may be
/// linearised with any allowed outcome or omitted.
#[derive(Clone, Debug)]
pub struct RefSpec<M> {
    model: M,
}

impl<M> RefSpec<M> {
    /// Wraps a sequential model as a specification.
    pub fn new(model: M) -> Self {
        RefSpec { model }
    }

    /// The underlying model.
    pub fn model(&self) -> &M {
        &self.model
    }
}

impl<M: SeqSpecModel> RefSpec<M> {
    fn extract_ops(history: &History<M::Inv, M::Resp>) -> Vec<PendingOp<M::Inv, M::Resp>> {
        let mut per_thread_open: BTreeMap<ThreadId, usize> = BTreeMap::new();
        let mut ops: Vec<PendingOp<M::Inv, M::Resp>> = Vec::new();
        for (idx, action) in history.actions().iter().enumerate() {
            match &action.kind {
                crate::action::ActionKind::Invocation(args) => {
                    per_thread_open.insert(action.thread, ops.len());
                    ops.push(PendingOp {
                        thread: action.thread,
                        inv: args.clone(),
                        resp: None,
                        inv_index: idx,
                        resp_index: None,
                    });
                }
                crate::action::ActionKind::Response(value) => {
                    if let Some(&op_idx) = per_thread_open.get(&action.thread) {
                        ops[op_idx].resp = Some(value.clone());
                        ops[op_idx].resp_index = Some(idx);
                        per_thread_open.remove(&action.thread);
                    }
                }
            }
        }
        ops
    }

    /// Backtracking linearisation search.
    fn linearize(
        &self,
        ops: &[PendingOp<M::Inv, M::Resp>],
        done: &mut Vec<bool>,
        state: &M::State,
    ) -> bool {
        // If every completed operation has been linearised, the incomplete
        // ones need not take effect: accept.
        if ops
            .iter()
            .enumerate()
            .all(|(i, op)| done[i] || op.resp.is_none())
        {
            return true;
        }
        for (i, op) in ops.iter().enumerate() {
            if done[i] {
                continue;
            }
            // Real-time order: `op` may be linearised next only if no other
            // unlinearised operation completed before `op` was invoked.
            let blocked = ops.iter().enumerate().any(|(j, other)| {
                !done[j] && j != i && other.resp_index.map(|r| r < op.inv_index).unwrap_or(false)
            });
            if blocked {
                continue;
            }
            let outcomes = self.model.outcomes(state, op.thread, &op.inv);
            for (resp, next_state) in outcomes {
                // If the operation already responded, the model must be able
                // to produce exactly that response here.
                if let Some(recorded) = &op.resp {
                    if recorded != &resp {
                        continue;
                    }
                }
                done[i] = true;
                if self.linearize(ops, done, &next_state) {
                    done[i] = false;
                    return true;
                }
                done[i] = false;
            }
            // An operation with no recorded response may also be deferred
            // (not linearised yet); that case is covered by the loop trying
            // other operations and by the acceptance condition above.
        }
        false
    }
}

impl<M: SeqSpecModel> Specification<M::Inv, M::Resp> for RefSpec<M> {
    fn contains(&self, history: &History<M::Inv, M::Resp>) -> bool {
        if !history.is_well_formed() {
            return false;
        }
        let ops = Self::extract_ops(history);
        let mut done = vec![false; ops.len()];
        self.linearize(&ops, &mut done, &self.model.initial())
    }
}

/// Convenience: replay a *sequential* history (each invocation immediately
/// followed by its response) through a model, returning the final states the
/// model can reach, or `None` if the history's responses are not allowed.
///
/// This is used by the constructive proof machines to re-initialise the
/// reference implementation's state from a recorded invocation sequence.
pub fn replay_sequential<M: SeqSpecModel>(
    model: &M,
    history: &History<M::Inv, M::Resp>,
) -> Option<Vec<M::State>> {
    let mut states = vec![model.initial()];
    let actions = history.actions();
    let mut i = 0;
    while i < actions.len() {
        let inv_action = &actions[i];
        let inv = match inv_action.invocation() {
            Some(inv) => inv.clone(),
            None => return None,
        };
        let resp = if i + 1 < actions.len() && actions[i + 1].is_response() {
            actions[i + 1].response().cloned()
        } else {
            None
        };
        let mut next_states = Vec::new();
        for s in &states {
            for (r, ns) in model.outcomes(s, inv_action.thread, &inv) {
                match &resp {
                    Some(expected) if expected != &r => {}
                    _ => next_states.push(ns),
                }
            }
        }
        if next_states.is_empty() {
            return None;
        }
        states = next_states;
        i += if resp.is_some() { 2 } else { 1 };
    }
    Some(states)
}

/// Builds the sequential history produced by replaying `invocations` through
/// a *deterministic* choice of outcomes (always the first outcome). Returns
/// the full invocation/response history.
pub fn run_first_outcome<M: SeqSpecModel>(
    model: &M,
    invocations: &[(ThreadId, M::Inv)],
) -> History<M::Inv, M::Resp> {
    let mut state = model.initial();
    let mut history = History::new();
    for (tag, (thread, inv)) in invocations.iter().enumerate() {
        let outs = model.outcomes(&state, *thread, inv);
        let (resp, next) = outs
            .into_iter()
            .next()
            .expect("model must allow at least one outcome for run_first_outcome");
        history.push(Action::invoke(*thread, tag as u64, inv.clone()));
        history.push(Action::respond(*thread, tag as u64, resp));
        state = next;
    }
    history
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::op_pair;
    use crate::model::{
        Det, FdAllocModel, FdOp, FdPolicy, FdResp, RegisterModel, RegisterOp, RegisterResp,
    };

    fn reg_spec() -> RefSpec<Det<RegisterModel>> {
        RefSpec::new(Det(RegisterModel))
    }

    #[test]
    fn sequential_valid_history_is_contained() {
        let mut h = History::new();
        for a in op_pair(0, 1, RegisterOp::Set(5), RegisterResp::Ok) {
            h.push(a);
        }
        for a in op_pair(1, 2, RegisterOp::Get, RegisterResp::Value(5)) {
            h.push(a);
        }
        assert!(reg_spec().contains(&h));
    }

    #[test]
    fn wrong_response_is_rejected() {
        let mut h = History::new();
        for a in op_pair(0, 1, RegisterOp::Set(5), RegisterResp::Ok) {
            h.push(a);
        }
        for a in op_pair(1, 2, RegisterOp::Get, RegisterResp::Value(9)) {
            h.push(a);
        }
        assert!(!reg_spec().contains(&h));
    }

    #[test]
    fn concurrent_history_accepts_any_linearization() {
        // Two overlapping sets on different threads followed by a get: the
        // get may observe either value.
        for observed in [3, 4] {
            let h: History<RegisterOp, RegisterResp> = History::from_actions(vec![
                Action::invoke(0, 1, RegisterOp::Set(3)),
                Action::invoke(1, 2, RegisterOp::Set(4)),
                Action::respond(0, 1, RegisterResp::Ok),
                Action::respond(1, 2, RegisterResp::Ok),
                Action::invoke(0, 3, RegisterOp::Get),
                Action::respond(0, 3, RegisterResp::Value(observed)),
            ]);
            assert!(reg_spec().contains(&h), "value {observed} must be allowed");
        }
    }

    #[test]
    fn real_time_order_is_respected() {
        // set(3) completes before set(4) is invoked, so a later get must see 4.
        let h: History<RegisterOp, RegisterResp> = History::from_actions(vec![
            Action::invoke(0, 1, RegisterOp::Set(3)),
            Action::respond(0, 1, RegisterResp::Ok),
            Action::invoke(1, 2, RegisterOp::Set(4)),
            Action::respond(1, 2, RegisterResp::Ok),
            Action::invoke(0, 3, RegisterOp::Get),
            Action::respond(0, 3, RegisterResp::Value(3)),
        ]);
        assert!(!reg_spec().contains(&h));
    }

    #[test]
    fn pending_invocation_is_allowed() {
        let h: History<RegisterOp, RegisterResp> =
            History::from_actions(vec![Action::invoke(0, 1, RegisterOp::Set(3))]);
        assert!(reg_spec().contains(&h));
    }

    #[test]
    fn prefix_closure_holds_for_contained_histories() {
        let mut h = History::new();
        for a in op_pair(0, 1, RegisterOp::Set(5), RegisterResp::Ok) {
            h.push(a);
        }
        for a in op_pair(1, 2, RegisterOp::Get, RegisterResp::Value(5)) {
            h.push(a);
        }
        let spec = reg_spec();
        assert!(spec.contains(&h));
        for p in h.prefixes() {
            assert!(spec.contains(&p), "prefix of length {} rejected", p.len());
        }
    }

    #[test]
    fn nondeterministic_spec_accepts_any_allowed_fd() {
        let spec = RefSpec::new(FdAllocModel {
            policy: FdPolicy::Any,
            capacity: 4,
        });
        for fd in 0..4 {
            let mut h = History::new();
            for a in op_pair(0, 1, FdOp::Alloc, FdResp::Fd(fd)) {
                h.push(a);
            }
            assert!(spec.contains(&h), "fd {fd} must be allowed under Any");
        }
    }

    #[test]
    fn lowest_fd_spec_rejects_non_lowest() {
        let spec = RefSpec::new(FdAllocModel {
            policy: FdPolicy::Lowest,
            capacity: 4,
        });
        let mut ok = History::new();
        for a in op_pair(0, 1, FdOp::Alloc, FdResp::Fd(0)) {
            ok.push(a);
        }
        assert!(spec.contains(&ok));
        let mut bad = History::new();
        for a in op_pair(0, 1, FdOp::Alloc, FdResp::Fd(2)) {
            bad.push(a);
        }
        assert!(!spec.contains(&bad));
    }

    #[test]
    fn replay_sequential_tracks_reachable_states() {
        let model = Det(RegisterModel);
        let h = run_first_outcome(&model, &[(0, RegisterOp::Set(4)), (1, RegisterOp::Get)]);
        let states = replay_sequential(&model, &h).expect("history must replay");
        assert_eq!(states, vec![4]);
    }

    #[test]
    fn replay_sequential_rejects_invalid_history() {
        let model = Det(RegisterModel);
        let mut h = History::new();
        for a in op_pair(0, 1, RegisterOp::Get, RegisterResp::Value(99)) {
            h.push(a);
        }
        assert!(replay_sequential(&model, &h).is_none());
    }

    #[test]
    fn run_first_outcome_builds_sequential_history() {
        let model = Det(RegisterModel);
        let h = run_first_outcome(&model, &[(0, RegisterOp::Set(2)), (1, RegisterOp::Get)]);
        assert_eq!(h.len(), 4);
        assert!(h.is_complete());
        assert_eq!(h.actions()[3].response(), Some(&RegisterResp::Value(2)));
    }
}
