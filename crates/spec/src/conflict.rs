//! Access conflicts and conflict freedom (§3.3).
//!
//! Two implementation steps have an **access conflict** when they are on
//! different threads and one writes a state component that the other reads
//! or writes. A set of steps is **conflict-free** when no pair of steps in
//! the set conflicts. Conflict freedom is the paper's proxy for scalability:
//! on MESI-like cache-coherent hardware, conflict-free access patterns scale
//! linearly.

use crate::implementation::StepRecord;
use std::collections::BTreeSet;
use std::fmt;

/// The components read and written by one implementation step.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AccessSet {
    /// Indices of components read.
    pub reads: BTreeSet<usize>,
    /// Indices of components written.
    pub writes: BTreeSet<usize>,
}

impl AccessSet {
    /// An empty access set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Does this access set conflict with `other`, assuming the two accesses
    /// are performed by different threads? (The thread check is the caller's
    /// responsibility.)
    pub fn conflicts_with(&self, other: &AccessSet) -> bool {
        // One writes what the other reads or writes.
        let self_writes_other_touches = self
            .writes
            .iter()
            .any(|c| other.reads.contains(c) || other.writes.contains(c));
        let other_writes_self_touches = other
            .writes
            .iter()
            .any(|c| self.reads.contains(c) || self.writes.contains(c));
        self_writes_other_touches || other_writes_self_touches
    }

    /// The components involved in a conflict between `self` and `other`
    /// (empty when there is no conflict).
    pub fn conflicting_components(&self, other: &AccessSet) -> BTreeSet<usize> {
        let mut out = BTreeSet::new();
        for c in &self.writes {
            if other.reads.contains(c) || other.writes.contains(c) {
                out.insert(*c);
            }
        }
        for c in &other.writes {
            if self.reads.contains(c) || self.writes.contains(c) {
                out.insert(*c);
            }
        }
        out
    }

    /// All components touched (read or written).
    pub fn touched(&self) -> BTreeSet<usize> {
        self.reads.union(&self.writes).copied().collect()
    }
}

/// One conflicting pair of steps found in a run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConflictPair {
    /// Index (in the step log) of the first step.
    pub step_a: usize,
    /// Thread of the first step.
    pub thread_a: usize,
    /// Index of the second step.
    pub step_b: usize,
    /// Thread of the second step.
    pub thread_b: usize,
    /// The state components on which the two steps conflict.
    pub components: BTreeSet<usize>,
    /// Human-readable labels of those components.
    pub labels: Vec<String>,
}

impl fmt::Display for ConflictPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "steps {}(t{}) and {}(t{}) conflict on {:?}",
            self.step_a, self.thread_a, self.step_b, self.thread_b, self.labels
        )
    }
}

/// Report of all conflicts among a set of steps.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ConflictReport {
    /// Every conflicting pair found.
    pub conflicts: Vec<ConflictPair>,
    /// Number of steps examined.
    pub steps_examined: usize,
}

impl ConflictReport {
    /// `true` when no conflicts were found.
    pub fn is_conflict_free(&self) -> bool {
        self.conflicts.is_empty()
    }
}

impl fmt::Display for ConflictReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_conflict_free() {
            write!(f, "conflict-free ({} steps)", self.steps_examined)
        } else {
            writeln!(
                f,
                "{} conflict(s) among {} steps:",
                self.conflicts.len(),
                self.steps_examined
            )?;
            for c in &self.conflicts {
                writeln!(f, "  {c}")?;
            }
            Ok(())
        }
    }
}

/// Finds every access conflict among `steps` (§3.3): pairs on different
/// threads where one writes a component the other reads or writes.
///
/// `label` maps a component index to a human-readable name for the report.
pub fn find_conflicts<I, R>(
    steps: &[&StepRecord<I, R>],
    label: impl Fn(usize) -> String,
) -> ConflictReport {
    let mut conflicts = Vec::new();
    for (i, a) in steps.iter().enumerate() {
        for b in steps.iter().skip(i + 1) {
            if a.thread == b.thread {
                continue;
            }
            let components = a.accesses.conflicting_components(&b.accesses);
            if !components.is_empty() {
                let labels = components.iter().map(|&c| label(c)).collect();
                conflicts.push(ConflictPair {
                    step_a: a.index,
                    thread_a: a.thread,
                    step_b: b.index,
                    thread_b: b.thread,
                    components,
                    labels,
                });
            }
        }
    }
    ConflictReport {
        conflicts,
        steps_examined: steps.len(),
    }
}

/// Convenience: is this whole set of steps conflict-free?
pub fn is_conflict_free<I, R>(steps: &[&StepRecord<I, R>]) -> bool {
    find_conflicts(steps, |c| format!("component[{c}]")).is_conflict_free()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::implementation::{Invocation, Response};

    fn record(
        index: usize,
        thread: usize,
        reads: &[usize],
        writes: &[usize],
    ) -> StepRecord<(), ()> {
        StepRecord {
            thread,
            invocation: Invocation::Op(()),
            response: Response::Op(()),
            accesses: AccessSet {
                reads: reads.iter().copied().collect(),
                writes: writes.iter().copied().collect(),
            },
            index,
        }
    }

    #[test]
    fn write_write_on_same_component_conflicts() {
        let a = record(0, 0, &[], &[3]);
        let b = record(1, 1, &[], &[3]);
        let report = find_conflicts(&[&a, &b], |c| format!("c{c}"));
        assert!(!report.is_conflict_free());
        assert_eq!(report.conflicts.len(), 1);
        assert_eq!(report.conflicts[0].components, BTreeSet::from([3]));
    }

    #[test]
    fn read_write_on_same_component_conflicts() {
        let a = record(0, 0, &[2], &[]);
        let b = record(1, 1, &[], &[2]);
        assert!(!is_conflict_free(&[&a, &b]));
    }

    #[test]
    fn read_read_is_conflict_free() {
        let a = record(0, 0, &[5], &[]);
        let b = record(1, 1, &[5], &[]);
        assert!(is_conflict_free(&[&a, &b]));
    }

    #[test]
    fn same_thread_never_conflicts() {
        let a = record(0, 0, &[], &[1]);
        let b = record(1, 0, &[], &[1]);
        assert!(is_conflict_free(&[&a, &b]));
    }

    #[test]
    fn disjoint_components_are_conflict_free() {
        let a = record(0, 0, &[0], &[1]);
        let b = record(1, 1, &[2], &[3]);
        assert!(is_conflict_free(&[&a, &b]));
    }

    #[test]
    fn report_lists_labels() {
        let a = record(0, 0, &[], &[7]);
        let b = record(1, 1, &[7], &[]);
        let report = find_conflicts(&[&a, &b], |c| format!("refcount[{c}]"));
        assert_eq!(report.conflicts[0].labels, vec!["refcount[7]".to_string()]);
        let shown = format!("{report}");
        assert!(shown.contains("refcount[7]"));
    }

    #[test]
    fn conflicting_components_symmetry() {
        let a = AccessSet {
            reads: BTreeSet::from([1]),
            writes: BTreeSet::from([2]),
        };
        let b = AccessSet {
            reads: BTreeSet::from([2]),
            writes: BTreeSet::from([1]),
        };
        assert_eq!(a.conflicting_components(&b), b.conflicting_components(&a));
        assert!(a.conflicts_with(&b));
    }
}
