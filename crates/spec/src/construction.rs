//! The constructive proof of the scalable commutativity rule (§3.5).
//!
//! Given a reference implementation `M` and a history `H = X || Y` where `Y`
//! SIM-commutes in `H`, the paper constructs an implementation `m` that is
//! correct for the whole specification and whose steps in the `Y` region are
//! conflict-free.
//!
//! Two machines are built here:
//!
//! * [`NonScalable`] is the warm-up machine `mns` of Figure 1: it replays
//!   `H` verbatim from a single shared history component and falls back to
//!   emulating the reference when the input diverges. Every pair of replay
//!   steps conflicts on the shared history component — it is correct but not
//!   scalable.
//! * [`Scalable`] is the machine `m` of Figure 2: it keeps a *per-thread*
//!   remaining history `h[t]` (initialised to `X || COMMUTE || (Y|t)`) and a
//!   per-thread `commute[t]` flag. Inside the commutative region each step
//!   touches only the invoking thread's components, so any two steps in the
//!   region are conflict-free. On divergence it reinitialises the reference
//!   implementation from an invocation sequence consistent with what each
//!   thread has consumed — which may reorder the commutative region, and is
//!   exactly where SIM commutativity is required.
//!
//! The tests at the bottom of this module check, for concrete models, the
//! three properties the proof claims: correct replay, correct divergence
//! handling, and conflict-freedom of the commutative region (for the
//! scalable machine only).

use crate::action::{Action, ThreadId};
use crate::history::History;
use crate::implementation::{
    Invocation, Response, Runner, StateCtx, StepImplementation, StepRecord,
};
use crate::model::DetModel;
use std::collections::VecDeque;

/// An entry in a (per-thread) remaining history: either a recorded action or
/// the special `COMMUTE` marker that precedes the commutative region.
#[derive(Clone, Debug, PartialEq)]
pub enum HistEntry<I, R> {
    /// The commutative region starts after this marker.
    Commute,
    /// A recorded action to replay.
    Act(Action<I, R>),
}

/// The replay slot of a constructed machine: either a queue of entries still
/// to be replayed, or the `EMULATE` sentinel after divergence.
#[derive(Clone, Debug, PartialEq)]
pub enum HistSlot<I, R> {
    /// Still replaying the recorded history.
    Replay(VecDeque<HistEntry<I, R>>),
    /// The recorded history is exhausted or the input diverged; all further
    /// invocations are forwarded to the reference implementation.
    Emulate,
}

/// One state component of a constructed machine.
#[derive(Clone, Debug, PartialEq)]
pub enum Comp<I, R, S> {
    /// A remaining-history slot (shared for `mns`, per-thread for `m`).
    Hist(HistSlot<I, R>),
    /// A per-thread "inside the commutative region" flag (`m` only).
    Flag(bool),
    /// The reference implementation's state.
    Ref(S),
}

impl<I, R, S> Comp<I, R, S> {
    fn as_hist(&self) -> &HistSlot<I, R> {
        match self {
            Comp::Hist(h) => h,
            _ => panic!("component is not a history slot"),
        }
    }

    fn as_flag(&self) -> bool {
        match self {
            Comp::Flag(f) => *f,
            _ => panic!("component is not a flag"),
        }
    }

    fn as_ref_state(&self) -> &S {
        match self {
            Comp::Ref(s) => s,
            _ => panic!("component is not the reference state"),
        }
    }
}

fn matches_invocation<I: PartialEq, R>(entry: &HistEntry<I, R>, thread: ThreadId, inv: &I) -> bool {
    match entry {
        HistEntry::Act(a) => a.thread == thread && a.invocation() == Some(inv),
        HistEntry::Commute => false,
    }
}

fn response_for<I, R: Clone>(entry: &HistEntry<I, R>, thread: ThreadId) -> Option<R> {
    match entry {
        HistEntry::Act(a) if a.thread == thread => a.response().cloned(),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// mns — Figure 1
// ---------------------------------------------------------------------------

/// The non-scalable constructed machine `mns` of Figure 1.
///
/// State components: `[0]` the shared remaining history, `[1]` the reference
/// implementation's state. Every replay step reads and writes component 0,
/// so any two steps on different threads conflict — this machine is correct
/// but deliberately not scalable.
pub struct NonScalable<M: DetModel> {
    model: M,
    target: History<M::Inv, M::Resp>,
}

impl<M: DetModel> NonScalable<M> {
    /// Builds `mns` for reference model `model` and target history `target`.
    pub fn new(model: M, target: History<M::Inv, M::Resp>) -> Self {
        NonScalable { model, target }
    }

    fn replay_prefix_into_ref(&self, remaining_len: usize) -> M::State {
        let consumed = self.target.len() - remaining_len;
        let mut state = self.model.initial();
        for action in self.target.prefix(consumed).invocations() {
            let inv = action
                .invocation()
                .expect("invocations() yields invocations");
            self.model.apply(&mut state, action.thread, inv);
        }
        state
    }
}

impl<M: DetModel> StepImplementation for NonScalable<M>
where
    M::Inv: PartialEq,
    M::State: PartialEq,
{
    type I = M::Inv;
    type R = M::Resp;
    type Comp = Comp<M::Inv, M::Resp, M::State>;

    fn initial(&self) -> Vec<Self::Comp> {
        let entries: VecDeque<HistEntry<M::Inv, M::Resp>> = self
            .target
            .actions()
            .iter()
            .cloned()
            .map(HistEntry::Act)
            .collect();
        vec![
            Comp::Hist(HistSlot::Replay(entries)),
            Comp::Ref(self.model.initial()),
        ]
    }

    fn component_label(&self, i: usize) -> String {
        ["s.h (shared remaining history)", "s.refstate"][i].to_string()
    }

    fn step(
        &self,
        ctx: &mut StateCtx<'_, Self::Comp>,
        thread: ThreadId,
        inv: &Invocation<Self::I>,
    ) -> Response<Self::R> {
        let hist = ctx.read(0);
        let slot = hist.as_hist().clone();
        match slot {
            HistSlot::Replay(mut entries) => {
                let head = entries.front().cloned();
                match (&head, inv) {
                    (Some(entry), Invocation::Op(op)) if matches_invocation(entry, thread, op) => {
                        entries.pop_front();
                        ctx.write(0, Comp::Hist(HistSlot::Replay(entries)));
                        Response::Continue
                    }
                    (Some(entry), Invocation::Continue)
                        if response_for::<M::Inv, M::Resp>(entry, thread).is_some() =>
                    {
                        let r = response_for(entry, thread).expect("checked above");
                        entries.pop_front();
                        ctx.write(0, Comp::Hist(HistSlot::Replay(entries)));
                        Response::Op(r)
                    }
                    _ => {
                        // H complete or input diverged: initialise the
                        // reference from the consumed prefix and emulate.
                        let mut refstate = self.replay_prefix_into_ref(entries.len());
                        ctx.write(0, Comp::Hist(HistSlot::Emulate));
                        let resp = match inv {
                            Invocation::Op(op) => {
                                Response::Op(self.model.apply(&mut refstate, thread, op))
                            }
                            Invocation::Continue => Response::Continue,
                        };
                        ctx.write(1, Comp::Ref(refstate));
                        resp
                    }
                }
            }
            HistSlot::Emulate => {
                let mut refstate = ctx.read(1).as_ref_state().clone();
                let resp = match inv {
                    Invocation::Op(op) => Response::Op(self.model.apply(&mut refstate, thread, op)),
                    Invocation::Continue => Response::Continue,
                };
                ctx.write(1, Comp::Ref(refstate));
                resp
            }
        }
    }
}

// ---------------------------------------------------------------------------
// m — Figure 2
// ---------------------------------------------------------------------------

/// The scalable constructed machine `m` of Figure 2, specialised for
/// `H = X || Y`.
///
/// State components for `T` threads: `[0..T)` the per-thread remaining
/// histories `h[t]`, `[T..2T)` the per-thread `commute[t]` flags, `[2T]` the
/// reference implementation's state. Inside the commutative region every
/// step touches only the invoking thread's two components.
pub struct Scalable<M: DetModel> {
    model: M,
    x: History<M::Inv, M::Resp>,
    y: History<M::Inv, M::Resp>,
    threads: usize,
}

impl<M: DetModel> Scalable<M> {
    /// Builds `m` for the history `x || y` (with `y` the SIM-commutative
    /// region) over `threads` threads.
    pub fn new(
        model: M,
        x: History<M::Inv, M::Resp>,
        y: History<M::Inv, M::Resp>,
        threads: usize,
    ) -> Self {
        Scalable {
            model,
            x,
            y,
            threads,
        }
    }

    /// Index of the history component of `thread`.
    pub fn hist_component(&self, thread: ThreadId) -> usize {
        thread
    }

    /// Index of the commute-flag component of `thread`.
    pub fn flag_component(&self, thread: ThreadId) -> usize {
        self.threads + thread
    }

    /// Index of the reference-state component.
    pub fn ref_component(&self) -> usize {
        2 * self.threads
    }

    /// Reconstructs an invocation sequence consistent with what each thread
    /// has consumed, and replays it into a fresh reference state. The
    /// consumed prefix of `X` is common to all threads; the consumed parts of
    /// `Y` are appended per thread in thread order — a reordering of the
    /// actual input order, which SIM commutativity makes harmless.
    fn rebuild_ref_state(&self, remaining: &[HistSlot<M::Inv, M::Resp>]) -> M::State {
        let mut x_consumed = 0usize;
        let mut y_consumed: Vec<Vec<Action<M::Inv, M::Resp>>> = vec![Vec::new(); self.threads];
        for (t, slot) in remaining.iter().enumerate() {
            let y_t = self.y.restrict(t);
            let remaining_len = match slot {
                HistSlot::Replay(entries) => entries.len(),
                HistSlot::Emulate => 0,
            };
            let full_len = self.x.len() + 1 + y_t.len();
            let consumed = full_len.saturating_sub(remaining_len);
            if consumed <= self.x.len() {
                x_consumed = x_consumed.max(consumed);
            } else {
                x_consumed = self.x.len();
                let consumed_y = consumed - self.x.len() - 1;
                y_consumed[t] = y_t.actions()[..consumed_y.min(y_t.len())].to_vec();
            }
        }
        let mut state = self.model.initial();
        for action in self.x.prefix(x_consumed).invocations() {
            let inv = action.invocation().expect("invocation");
            self.model.apply(&mut state, action.thread, inv);
        }
        for per_thread in &y_consumed {
            for action in per_thread {
                if let Some(inv) = action.invocation() {
                    self.model.apply(&mut state, action.thread, inv);
                }
            }
        }
        state
    }
}

impl<M: DetModel> StepImplementation for Scalable<M>
where
    M::Inv: PartialEq,
    M::State: PartialEq,
{
    type I = M::Inv;
    type R = M::Resp;
    type Comp = Comp<M::Inv, M::Resp, M::State>;

    fn initial(&self) -> Vec<Self::Comp> {
        let mut comps = Vec::with_capacity(2 * self.threads + 1);
        for t in 0..self.threads {
            let mut entries: VecDeque<HistEntry<M::Inv, M::Resp>> = self
                .x
                .actions()
                .iter()
                .cloned()
                .map(HistEntry::Act)
                .collect();
            entries.push_back(HistEntry::Commute);
            for a in self.y.restrict(t).actions() {
                entries.push_back(HistEntry::Act(a.clone()));
            }
            comps.push(Comp::Hist(HistSlot::Replay(entries)));
        }
        for _ in 0..self.threads {
            comps.push(Comp::Flag(false));
        }
        comps.push(Comp::Ref(self.model.initial()));
        comps
    }

    fn component_label(&self, i: usize) -> String {
        if i < self.threads {
            format!("s.h[{i}]")
        } else if i < 2 * self.threads {
            format!("s.commute[{}]", i - self.threads)
        } else {
            "s.refstate".to_string()
        }
    }

    fn step(
        &self,
        ctx: &mut StateCtx<'_, Self::Comp>,
        thread: ThreadId,
        inv: &Invocation<Self::I>,
    ) -> Response<Self::R> {
        let t = thread;
        assert!(
            t < self.threads,
            "thread {t} out of range for constructed machine"
        );
        let hist_idx = self.hist_component(t);
        let flag_idx = self.flag_component(t);
        let ref_idx = self.ref_component();

        let mut slot = ctx.read(hist_idx).as_hist().clone();
        // Enter conflict-free mode when the COMMUTE marker is at the head.
        if let HistSlot::Replay(entries) = &mut slot {
            if entries.front() == Some(&HistEntry::Commute) {
                entries.pop_front();
                ctx.write(flag_idx, Comp::Flag(true));
                ctx.write(hist_idx, Comp::Hist(HistSlot::Replay(entries.clone())));
            }
        }

        match slot {
            HistSlot::Replay(entries) => {
                let head = entries.front().cloned();
                let replay_response: Option<Response<M::Resp>> = match (&head, inv) {
                    (Some(entry), Invocation::Op(op)) if matches_invocation(entry, t, op) => {
                        Some(Response::Continue)
                    }
                    (Some(entry), Invocation::Continue) => {
                        response_for::<M::Inv, M::Resp>(entry, t).map(Response::Op)
                    }
                    _ => None,
                };
                match replay_response {
                    Some(resp) => {
                        // Advance: only our own history in conflict-free
                        // mode, every thread's history in replay mode.
                        let in_commute = ctx.read(flag_idx).as_flag();
                        if in_commute {
                            let mut own = entries;
                            own.pop_front();
                            ctx.write(hist_idx, Comp::Hist(HistSlot::Replay(own)));
                        } else {
                            for u in 0..self.threads {
                                let u_idx = self.hist_component(u);
                                if let Comp::Hist(HistSlot::Replay(mut u_entries)) = ctx.read(u_idx)
                                {
                                    u_entries.pop_front();
                                    ctx.write(u_idx, Comp::Hist(HistSlot::Replay(u_entries)));
                                }
                            }
                        }
                        resp
                    }
                    None => {
                        // H complete or input diverged: rebuild the reference
                        // state from every thread's consumed prefix and
                        // switch all threads to emulation.
                        let remaining: Vec<HistSlot<M::Inv, M::Resp>> = (0..self.threads)
                            .map(|u| ctx.read(self.hist_component(u)).as_hist().clone())
                            .collect();
                        let mut refstate = self.rebuild_ref_state(&remaining);
                        for u in 0..self.threads {
                            ctx.write(self.hist_component(u), Comp::Hist(HistSlot::Emulate));
                        }
                        let resp = match inv {
                            Invocation::Op(op) => {
                                Response::Op(self.model.apply(&mut refstate, t, op))
                            }
                            Invocation::Continue => Response::Continue,
                        };
                        ctx.write(ref_idx, Comp::Ref(refstate));
                        resp
                    }
                }
            }
            HistSlot::Emulate => {
                let mut refstate = ctx.read(ref_idx).as_ref_state().clone();
                let resp = match inv {
                    Invocation::Op(op) => Response::Op(self.model.apply(&mut refstate, t, op)),
                    Invocation::Continue => Response::Continue,
                };
                ctx.write(ref_idx, Comp::Ref(refstate));
                resp
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Drivers
// ---------------------------------------------------------------------------

/// Outcome of replaying a recorded history through a constructed machine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplayOutcome {
    /// Every response matched the recorded history.
    Matched,
    /// A response differed from the recorded one at the given action index.
    Mismatch(usize),
}

/// Drives a constructed machine through a recorded history: each invocation
/// action is passed as an operation, each response action as a `CONTINUE`
/// for the responding thread. Returns whether the machine reproduced every
/// recorded response, along with the runner (whose log can be inspected for
/// conflicts).
pub fn replay_history<'m, Mach>(
    machine: &'m Mach,
    history: &History<Mach::I, Mach::R>,
) -> (ReplayOutcome, Runner<'m, Mach>)
where
    Mach: StepImplementation,
    Mach::I: Clone,
    Mach::R: Clone + PartialEq,
{
    let mut runner = Runner::new(machine);
    for (idx, action) in history.actions().iter().enumerate() {
        match &action.kind {
            crate::action::ActionKind::Invocation(op) => {
                let resp = runner.step(action.thread, Invocation::Op(op.clone()));
                // During replay the machine answers CONTINUE to invocations;
                // an immediate real response is also acceptable as long as it
                // matches the recorded response that follows.
                if let Response::Op(_) = resp {
                    // Peek: the next action by this thread should be the
                    // matching response.
                    let recorded = history.actions()[idx + 1..]
                        .iter()
                        .find(|a| a.thread == action.thread)
                        .and_then(|a| a.response().cloned());
                    if recorded.as_ref() != resp.value() {
                        return (ReplayOutcome::Mismatch(idx), runner);
                    }
                }
            }
            crate::action::ActionKind::Response(expected) => {
                let resp = runner.step(action.thread, Invocation::Continue);
                match resp.value() {
                    Some(got) if got == expected => {}
                    _ => return (ReplayOutcome::Mismatch(idx), runner),
                }
            }
        }
    }
    (ReplayOutcome::Matched, runner)
}

/// The steps a runner took for the actions `range` of a replayed history
/// (one step per action).
pub fn steps_for_range<I, R>(
    log: &[StepRecord<I, R>],
    range: std::ops::Range<usize>,
) -> Vec<&StepRecord<I, R>> {
    log[range].iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::op_pair;
    use crate::commutativity::sim_commutes;
    use crate::conflict::find_conflicts;
    use crate::history::History;
    use crate::model::{
        Det, PutMaxModel, PutMaxOp, PutMaxResp, RegisterModel, RegisterOp, RegisterResp,
    };
    use crate::spec::{RefSpec, Specification};

    fn seq_history<I: Clone, R: Clone>(ops: &[(usize, I, R)]) -> History<I, R> {
        let mut h = History::new();
        for (tag, (t, i, r)) in ops.iter().enumerate() {
            for a in op_pair(*t, 100 + tag as u64, i.clone(), r.clone()) {
                h.push(a);
            }
        }
        h
    }

    /// X = put(3); Y = two gets... — use the put/max model where Y is a pair
    /// of puts of the same value, which SIM-commutes.
    fn putmax_xy() -> (History<PutMaxOp, PutMaxResp>, History<PutMaxOp, PutMaxResp>) {
        let x = seq_history(&[(0, PutMaxOp::Put(3), PutMaxResp::Ok)]);
        let y = seq_history(&[
            (0, PutMaxOp::Put(1), PutMaxResp::Ok),
            (1, PutMaxOp::Put(1), PutMaxResp::Ok),
        ]);
        (x, y)
    }

    #[test]
    fn chosen_region_sim_commutes() {
        let (x, y) = putmax_xy();
        assert!(sim_commutes(&Det(PutMaxModel), &x, &y).commutes);
    }

    #[test]
    fn mns_replays_the_recorded_history() {
        let (x, y) = putmax_xy();
        let h = x.concat(&y);
        let mns = NonScalable::new(PutMaxModel, h.clone());
        let (outcome, _runner) = replay_history(&mns, &h);
        assert_eq!(outcome, ReplayOutcome::Matched);
    }

    #[test]
    fn mns_commutative_region_conflicts_on_shared_history() {
        let (x, y) = putmax_xy();
        let h = x.concat(&y);
        let mns = NonScalable::new(PutMaxModel, h.clone());
        let (outcome, runner) = replay_history(&mns, &h);
        assert_eq!(outcome, ReplayOutcome::Matched);
        let y_steps = steps_for_range(runner.log(), x.len()..x.len() + y.len());
        let report = find_conflicts(&y_steps, |c| mns.component_label(c));
        assert!(
            !report.is_conflict_free(),
            "mns must conflict on the shared history component"
        );
    }

    #[test]
    fn scalable_replays_the_recorded_history() {
        let (x, y) = putmax_xy();
        let m = Scalable::new(PutMaxModel, x.clone(), y.clone(), 2);
        let (outcome, _runner) = replay_history(&m, &x.concat(&y));
        assert_eq!(outcome, ReplayOutcome::Matched);
    }

    #[test]
    fn scalable_commutative_region_is_conflict_free() {
        let (x, y) = putmax_xy();
        let m = Scalable::new(PutMaxModel, x.clone(), y.clone(), 2);
        let (outcome, runner) = replay_history(&m, &x.concat(&y));
        assert_eq!(outcome, ReplayOutcome::Matched);
        let y_steps = steps_for_range(runner.log(), x.len()..x.len() + y.len());
        let report = find_conflicts(&y_steps, |c| m.component_label(c));
        assert!(
            report.is_conflict_free(),
            "commutative region must be conflict-free, got: {report}"
        );
    }

    #[test]
    fn scalable_replays_reorderings_of_the_commutative_region() {
        let (x, y) = putmax_xy();
        let m = Scalable::new(PutMaxModel, x.clone(), y.clone(), 2);
        for y_prime in crate::commutativity::op_level_reorderings(&y) {
            let (outcome, runner) = replay_history(&m, &x.concat(&y_prime));
            assert_eq!(outcome, ReplayOutcome::Matched, "reordering must replay");
            let y_steps = steps_for_range(runner.log(), x.len()..x.len() + y_prime.len());
            let report = find_conflicts(&y_steps, |c| m.component_label(c));
            assert!(
                report.is_conflict_free(),
                "reordering region must be conflict-free"
            );
        }
    }

    #[test]
    fn scalable_handles_divergence_after_the_region() {
        // Replay X || Y, then issue an operation that is not in H; the
        // response must be what the reference model would produce.
        let (x, y) = putmax_xy();
        let m = Scalable::new(PutMaxModel, x.clone(), y.clone(), 2);
        let h = x.concat(&y);
        let (outcome, mut runner) = replay_history(&m, &h);
        assert_eq!(outcome, ReplayOutcome::Matched);
        let resp = runner.call(0, PutMaxOp::Max, 4);
        assert_eq!(resp, Some(PutMaxResp::Max(3)));
    }

    #[test]
    fn scalable_handles_divergence_inside_the_region() {
        // Replay X and the first operation of Y (on thread 0), then diverge
        // with a Max on thread 1. The constructed machine reinitialises the
        // reference from a reordering of the consumed prefix; the result must
        // still be allowed by the specification.
        let (x, y) = putmax_xy();
        let m = Scalable::new(PutMaxModel, x.clone(), y.clone(), 2);
        let mut runner = Runner::new(&m);
        // Replay X.
        for action in x.actions() {
            match &action.kind {
                crate::action::ActionKind::Invocation(op) => {
                    runner.step(action.thread, Invocation::Op(*op));
                }
                crate::action::ActionKind::Response(_) => {
                    runner.step(action.thread, Invocation::Continue);
                }
            }
        }
        // First operation of Y on thread 0.
        assert_eq!(runner.call(0, PutMaxOp::Put(1), 4), Some(PutMaxResp::Ok));
        // Divergence: Max on thread 1 (not the recorded next action).
        let resp = runner.call(1, PutMaxOp::Max, 4);
        assert_eq!(resp, Some(PutMaxResp::Max(3)));
        // The overall produced history must be allowed by the specification.
        let spec = RefSpec::new(Det(PutMaxModel));
        let produced = seq_history(&[
            (0, PutMaxOp::Put(3), PutMaxResp::Ok),
            (0, PutMaxOp::Put(1), PutMaxResp::Ok),
            (1, PutMaxOp::Max, PutMaxResp::Max(3)),
        ]);
        assert!(spec.contains(&produced));
    }

    #[test]
    fn mns_handles_divergence_from_the_start() {
        let model = RegisterModel;
        let h = seq_history(&[
            (0, RegisterOp::Set(1), RegisterResp::Ok),
            (1, RegisterOp::Get, RegisterResp::Value(1)),
        ]);
        let mns = NonScalable::new(model, h);
        let mut runner = Runner::new(&mns);
        // Diverge immediately with a different operation.
        assert_eq!(
            runner.call(1, RegisterOp::Set(9), 4),
            Some(RegisterResp::Ok)
        );
        assert_eq!(
            runner.call(0, RegisterOp::Get, 4),
            Some(RegisterResp::Value(9))
        );
    }

    #[test]
    fn component_labels_are_descriptive() {
        let (x, y) = putmax_xy();
        let m = Scalable::new(PutMaxModel, x, y, 2);
        assert_eq!(m.component_label(0), "s.h[0]");
        assert_eq!(m.component_label(2), "s.commute[0]");
        assert_eq!(m.component_label(4), "s.refstate");
        assert_eq!(m.ref_component(), 4);
    }
}
