//! # scr-spec — the formalism behind the scalable commutativity rule
//!
//! This crate is a mechanisation of §3 of *The Scalable Commutativity Rule*
//! (Clements et al., SOSP 2013). It provides:
//!
//! * **Actions and histories** (§3.1): invocations and responses tagged with
//!   threads, well-formedness, thread-restricted subhistories and
//!   reorderings.
//! * **Specifications** (§3.1): prefix-closed sets of well-formed histories,
//!   including [`spec::RefSpec`], which derives a specification from a
//!   (possibly non-deterministic) sequential reference model.
//! * **SI and SIM commutativity** (§3.2): decision procedures over bounded
//!   reorderings, prefixes and futures.
//! * **Implementations as step functions** (§3.3): explicit state
//!   components, instrumented read/write sets, and the access-conflict /
//!   conflict-freedom definitions.
//! * **The constructive proof** (§3.4–3.5): the non-scalable replay machine
//!   `mns` (Figure 1) and the scalable machine `m` (Figure 2), together with
//!   checkers that the commutative region of the constructed machine is
//!   conflict-free.
//! * **Worked examples** (§3.6): the put/max interface whose commutative
//!   history admits two different conflict-free strategies but no single one
//!   covering the whole history.
//!
//! Everything here is implementation-independent: the rest of the workspace
//! (the COMMUTER pipeline and the sv6-style kernel) builds on the same
//! definitions but at the scale of a POSIX interface model.

pub mod action;
pub mod commutativity;
pub mod conflict;
pub mod construction;
pub mod examples;
pub mod history;
pub mod implementation;
pub mod model;
pub mod spec;

pub use action::{Action, ActionKind, ThreadId};
pub use commutativity::{si_commutes, sim_commutes, CommutativityReport};
pub use conflict::{AccessSet, ConflictReport};
pub use history::History;
pub use implementation::{Invocation, Response, StepImplementation, StepRecord};
pub use model::{DetModel, SeqSpecModel};
pub use spec::{RefSpec, Specification};
