//! Histories, well-formedness, subhistories and reorderings (§3.1–3.2).
//!
//! A **history** is a sequence of actions. A history is *well-formed* when
//! each thread's actions alternate invocation / response starting with an
//! invocation, so each thread has at most one outstanding invocation at any
//! point. A **reordering** of an action sequence is any interleaving that
//! preserves every thread's own subsequence (`H|t = H'|t` for all threads
//! `t`).

use crate::action::{Action, ThreadId};
use std::collections::BTreeMap;

/// A history: an ordered sequence of actions (§3.1).
///
/// `History` is a thin wrapper over `Vec<Action<I, R>>` providing the
/// operations the formalism needs: well-formedness checks, thread-restricted
/// subhistories, concatenation, prefixes and reordering enumeration.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct History<I, R> {
    actions: Vec<Action<I, R>>,
}

impl<I, R> Default for History<I, R> {
    fn default() -> Self {
        History {
            actions: Vec::new(),
        }
    }
}

impl<I: Clone, R: Clone> History<I, R> {
    /// The empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a history from a sequence of actions.
    pub fn from_actions(actions: Vec<Action<I, R>>) -> Self {
        History { actions }
    }

    /// The actions of this history, in order.
    pub fn actions(&self) -> &[Action<I, R>] {
        &self.actions
    }

    /// Number of actions.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// `true` when the history contains no actions.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Appends an action.
    pub fn push(&mut self, action: Action<I, R>) {
        self.actions.push(action);
    }

    /// Concatenation `self || other` (the `||` operator of §3.2).
    pub fn concat(&self, other: &Self) -> Self {
        let mut actions = self.actions.clone();
        actions.extend(other.actions.iter().cloned());
        History { actions }
    }

    /// The thread-restricted subhistory `H|t`: the subsequence of actions
    /// performed by thread `t`.
    pub fn restrict(&self, thread: ThreadId) -> Self {
        History {
            actions: self
                .actions
                .iter()
                .filter(|a| a.thread == thread)
                .cloned()
                .collect(),
        }
    }

    /// All thread ids that appear in the history, in ascending order.
    pub fn threads(&self) -> Vec<ThreadId> {
        let mut ids: Vec<ThreadId> = self.actions.iter().map(|a| a.thread).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Is the history well-formed? Each thread's subhistory must alternate
    /// invocation / response starting with an invocation, and each response's
    /// tag must match the preceding invocation on the same thread.
    pub fn is_well_formed(&self) -> bool {
        let mut pending: BTreeMap<ThreadId, Option<u64>> = BTreeMap::new();
        for action in &self.actions {
            let slot = pending.entry(action.thread).or_insert(None);
            match (&*slot, action.is_invocation()) {
                // No outstanding invocation: next action must be an invocation.
                (None, true) => *slot = Some(action.tag),
                (None, false) => return false,
                // Outstanding invocation: next action must be the matching response.
                (Some(tag), false) if *tag == action.tag => *slot = None,
                (Some(_), _) => return false,
            }
        }
        true
    }

    /// Is the history *complete*, i.e. well-formed with no outstanding
    /// invocations?
    pub fn is_complete(&self) -> bool {
        if !self.is_well_formed() {
            return false;
        }
        for t in self.threads() {
            if !self.restrict(t).len().is_multiple_of(2) {
                return false;
            }
        }
        true
    }

    /// All prefixes of the history, from the empty prefix to the history
    /// itself (inclusive).
    pub fn prefixes(&self) -> Vec<Self> {
        (0..=self.actions.len())
            .map(|n| History {
                actions: self.actions[..n].to_vec(),
            })
            .collect()
    }

    /// The prefix of length `n` (saturating at the history length).
    pub fn prefix(&self, n: usize) -> Self {
        History {
            actions: self.actions[..n.min(self.actions.len())].to_vec(),
        }
    }

    /// Is `other` a reordering of `self`? Both must contain the same actions
    /// and `self|t == other|t` for every thread `t` (§3.2).
    pub fn is_reordering_of(&self, other: &Self) -> bool
    where
        I: PartialEq,
        R: PartialEq,
    {
        if self.actions.len() != other.actions.len() {
            return false;
        }
        let mut threads = self.threads();
        threads.extend(other.threads());
        threads.sort_unstable();
        threads.dedup();
        threads
            .into_iter()
            .all(|t| self.restrict(t).actions == other.restrict(t).actions)
    }

    /// Enumerates every reordering of this history: all interleavings of the
    /// per-thread subsequences. The original order is included.
    ///
    /// The number of reorderings is a multinomial coefficient of the
    /// per-thread lengths; callers should keep regions small (the formalism
    /// only ever reorders the commutative region under test).
    pub fn reorderings(&self) -> Vec<Self> {
        let threads = self.threads();
        let per_thread: Vec<Vec<Action<I, R>>> =
            threads.iter().map(|&t| self.restrict(t).actions).collect();
        let total: usize = per_thread.iter().map(|v| v.len()).sum();
        let mut out = Vec::new();
        let mut cursor = vec![0usize; per_thread.len()];
        let mut current: Vec<Action<I, R>> = Vec::with_capacity(total);
        Self::reorderings_rec(&per_thread, &mut cursor, &mut current, total, &mut out);
        out
    }

    fn reorderings_rec(
        per_thread: &[Vec<Action<I, R>>],
        cursor: &mut Vec<usize>,
        current: &mut Vec<Action<I, R>>,
        total: usize,
        out: &mut Vec<Self>,
    ) {
        if current.len() == total {
            out.push(History {
                actions: current.clone(),
            });
            return;
        }
        for t in 0..per_thread.len() {
            if cursor[t] < per_thread[t].len() {
                current.push(per_thread[t][cursor[t]].clone());
                cursor[t] += 1;
                Self::reorderings_rec(per_thread, cursor, current, total, out);
                cursor[t] -= 1;
                current.pop();
            }
        }
    }

    /// Enumerates reorderings that are themselves well-formed histories.
    pub fn well_formed_reorderings(&self) -> Vec<Self> {
        self.reorderings()
            .into_iter()
            .filter(|h| h.is_well_formed())
            .collect()
    }

    /// Splits the history into `(prefix, suffix)` at index `at`.
    pub fn split_at(&self, at: usize) -> (Self, Self) {
        let at = at.min(self.actions.len());
        (
            History {
                actions: self.actions[..at].to_vec(),
            },
            History {
                actions: self.actions[at..].to_vec(),
            },
        )
    }

    /// Only the invocations of this history, in order.
    pub fn invocations(&self) -> Vec<Action<I, R>> {
        self.actions
            .iter()
            .filter(|a| a.is_invocation())
            .cloned()
            .collect()
    }

    /// Only the responses of this history, in order.
    pub fn responses(&self) -> Vec<Action<I, R>> {
        self.actions
            .iter()
            .filter(|a| a.is_response())
            .cloned()
            .collect()
    }
}

impl<I: Clone, R: Clone> From<Vec<Action<I, R>>> for History<I, R> {
    fn from(actions: Vec<Action<I, R>>) -> Self {
        History { actions }
    }
}

impl<I: Clone, R: Clone> FromIterator<Action<I, R>> for History<I, R> {
    fn from_iter<T: IntoIterator<Item = Action<I, R>>>(iter: T) -> Self {
        History {
            actions: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::op_pair;

    fn h_paper() -> History<&'static str, i32> {
        // A sequential two-thread history: t0 does A then C; t1 does B.
        let mut h = History::new();
        for a in op_pair(0, 1, "A", 10) {
            h.push(a);
        }
        for a in op_pair(1, 2, "B", 20) {
            h.push(a);
        }
        for a in op_pair(0, 3, "C", 30) {
            h.push(a);
        }
        h
    }

    #[test]
    fn well_formedness_accepts_alternating_histories() {
        assert!(h_paper().is_well_formed());
        assert!(h_paper().is_complete());
    }

    #[test]
    fn well_formedness_rejects_response_without_invocation() {
        let h: History<&str, i32> =
            History::from_actions(vec![Action::respond(0, 1, 5), Action::invoke(0, 1, "A")]);
        assert!(!h.is_well_formed());
    }

    #[test]
    fn well_formedness_rejects_two_outstanding_invocations_on_one_thread() {
        let h: History<&str, i32> =
            History::from_actions(vec![Action::invoke(0, 1, "A"), Action::invoke(0, 2, "B")]);
        assert!(!h.is_well_formed());
    }

    #[test]
    fn overlapping_invocations_on_distinct_threads_are_well_formed() {
        let h: History<&str, i32> = History::from_actions(vec![
            Action::invoke(0, 1, "A"),
            Action::invoke(1, 2, "B"),
            Action::respond(1, 2, 2),
            Action::respond(0, 1, 1),
        ]);
        assert!(h.is_well_formed());
        assert!(h.is_complete());
    }

    #[test]
    fn restrict_extracts_per_thread_subhistory() {
        let h = h_paper();
        let t0 = h.restrict(0);
        assert_eq!(t0.len(), 4);
        assert!(t0.actions().iter().all(|a| a.thread == 0));
        let t1 = h.restrict(1);
        assert_eq!(t1.len(), 2);
    }

    #[test]
    fn reorderings_preserve_per_thread_order() {
        let h = h_paper();
        let all = h.reorderings();
        // t0 has 4 actions, t1 has 2: C(6,2) = 15 interleavings.
        assert_eq!(all.len(), 15);
        for r in &all {
            assert!(h.is_reordering_of(r));
        }
        // The identity reordering is included.
        assert!(all.iter().any(|r| r == &h));
    }

    #[test]
    fn non_reordering_is_detected() {
        let h = h_paper();
        // Swap the order of t0's two operations: not a reordering.
        let mut swapped = History::new();
        for a in op_pair(0, 3, "C", 30) {
            swapped.push(a);
        }
        for a in op_pair(1, 2, "B", 20) {
            swapped.push(a);
        }
        for a in op_pair(0, 1, "A", 10) {
            swapped.push(a);
        }
        assert!(!h.is_reordering_of(&swapped));
    }

    #[test]
    fn well_formed_reorderings_are_a_subset() {
        let h = h_paper();
        let wf = h.well_formed_reorderings();
        assert!(!wf.is_empty());
        assert!(wf.len() <= h.reorderings().len());
        for r in wf {
            assert!(r.is_well_formed());
        }
    }

    #[test]
    fn prefixes_include_empty_and_full() {
        let h = h_paper();
        let ps = h.prefixes();
        assert_eq!(ps.len(), h.len() + 1);
        assert!(ps[0].is_empty());
        assert_eq!(ps[ps.len() - 1], h);
    }

    #[test]
    fn concat_and_split_roundtrip() {
        let h = h_paper();
        let (x, y) = h.split_at(2);
        assert_eq!(x.concat(&y), h);
    }

    #[test]
    fn invocations_and_responses_partition_actions() {
        let h = h_paper();
        assert_eq!(h.invocations().len() + h.responses().len(), h.len());
        assert!(h.invocations().iter().all(|a| a.is_invocation()));
        assert!(h.responses().iter().all(|a| a.is_response()));
    }
}
