//! Sequential reference models.
//!
//! The paper's proof assumes a correct reference implementation `M` of the
//! specification. In this crate a reference model is a *sequential*
//! description of the interface: given a state and an invocation it yields
//! the set of allowed `(response, next state)` outcomes. Non-determinism in
//! the specification (e.g. "`creat` may assign any unused inode number") is
//! expressed by returning more than one outcome.
//!
//! [`RefSpec`](crate::spec::RefSpec) turns such a model into a specification
//! (a predicate on histories) by searching for a linearisation whose
//! sequential replay reproduces the recorded responses.

use crate::action::ThreadId;

/// A (possibly non-deterministic) sequential model of an interface.
///
/// This plays the role of the reference implementation `M` in §3.4–3.5 and
/// of the interface model that COMMUTER takes as input in §5.
pub trait SeqSpecModel {
    /// Invocation payload (operation plus arguments).
    type Inv: Clone;
    /// Response payload (return value).
    type Resp: Clone + PartialEq;
    /// Abstract state of the modelled system.
    type State: Clone;

    /// The initial state of the system.
    fn initial(&self) -> Self::State;

    /// All allowed `(response, next state)` outcomes of invoking `inv` on
    /// thread `thread` in `state`. An empty vector means the invocation is
    /// not allowed at all in this state (no valid response exists).
    fn outcomes(
        &self,
        state: &Self::State,
        thread: ThreadId,
        inv: &Self::Inv,
    ) -> Vec<(Self::Resp, Self::State)>;

    /// External indistinguishability of two states.
    ///
    /// The default is structural equality when `State: PartialEq`; models
    /// whose states contain internal bookkeeping that is not observable
    /// through the interface should override this (this mirrors the
    /// "state equivalence" function of §5.1).
    fn state_equivalent(&self, a: &Self::State, b: &Self::State) -> bool
    where
        Self::State: PartialEq,
    {
        a == b
    }
}

/// A deterministic sequential model: exactly one outcome per invocation.
///
/// Blanket-adapted into [`SeqSpecModel`] via [`Det`].
pub trait DetModel {
    /// Invocation payload.
    type Inv: Clone;
    /// Response payload.
    type Resp: Clone + PartialEq;
    /// Abstract state.
    type State: Clone;

    /// The initial state.
    fn initial(&self) -> Self::State;

    /// Applies `inv` to `state`, returning the response and mutating the
    /// state in place.
    fn apply(&self, state: &mut Self::State, thread: ThreadId, inv: &Self::Inv) -> Self::Resp;
}

/// Adapter turning a [`DetModel`] into a [`SeqSpecModel`] with a single
/// outcome per invocation.
#[derive(Clone, Debug, Default)]
pub struct Det<M>(pub M);

impl<M: DetModel> SeqSpecModel for Det<M> {
    type Inv = M::Inv;
    type Resp = M::Resp;
    type State = M::State;

    fn initial(&self) -> Self::State {
        self.0.initial()
    }

    fn outcomes(
        &self,
        state: &Self::State,
        thread: ThreadId,
        inv: &Self::Inv,
    ) -> Vec<(Self::Resp, Self::State)> {
        let mut next = state.clone();
        let resp = self.0.apply(&mut next, thread, inv);
        vec![(resp, next)]
    }
}

// ---------------------------------------------------------------------------
// Example models used throughout the crate's tests and documentation.
// ---------------------------------------------------------------------------

/// Invocations of the get/set register interface from §3.2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RegisterOp {
    /// Overwrite the register with a value.
    Set(i64),
    /// Read the register.
    Get,
}

/// Responses of the register interface.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RegisterResp {
    /// Acknowledgement of a `Set`.
    Ok,
    /// The value returned by a `Get`.
    Value(i64),
}

/// The get/set register model used in the SI-vs-SIM commutativity example of
/// §3.2 (`set(1); set(2); set(2)` commutes as a whole but its prefix does
/// not).
#[derive(Clone, Copy, Debug, Default)]
pub struct RegisterModel;

impl DetModel for RegisterModel {
    type Inv = RegisterOp;
    type Resp = RegisterResp;
    type State = i64;

    fn initial(&self) -> i64 {
        0
    }

    fn apply(&self, state: &mut i64, _thread: ThreadId, inv: &RegisterOp) -> RegisterResp {
        match inv {
            RegisterOp::Set(v) => {
                *state = *v;
                RegisterResp::Ok
            }
            RegisterOp::Get => RegisterResp::Value(*state),
        }
    }
}

/// Invocations of the put/max interface from §3.6.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PutMaxOp {
    /// Record a sample with the given value.
    Put(i64),
    /// Return the maximum sample recorded so far (or 0).
    Max,
}

/// Responses of the put/max interface.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PutMaxResp {
    /// Acknowledgement of a `Put`.
    Ok,
    /// The maximum returned by `Max`.
    Max(i64),
}

/// The put/max model of §3.6: `put(x)` records a sample, `max()` returns the
/// maximum recorded so far (or 0).
#[derive(Clone, Copy, Debug, Default)]
pub struct PutMaxModel;

impl DetModel for PutMaxModel {
    type Inv = PutMaxOp;
    type Resp = PutMaxResp;
    type State = i64;

    fn initial(&self) -> i64 {
        0
    }

    fn apply(&self, state: &mut i64, _thread: ThreadId, inv: &PutMaxOp) -> PutMaxResp {
        match inv {
            PutMaxOp::Put(v) => {
                if *v > *state {
                    *state = *v;
                }
                PutMaxResp::Ok
            }
            PutMaxOp::Max => PutMaxResp::Max(*state),
        }
    }
}

/// Invocations of a toy file-descriptor allocation interface, used to
/// contrast POSIX's "lowest available FD" rule with an `O_ANYFD`-style
/// relaxation (§4, "embrace specification non-determinism").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FdOp {
    /// Allocate a descriptor (POSIX: the lowest unused one).
    Alloc,
    /// Release a descriptor.
    Free(u32),
}

/// Responses of the FD allocation interface.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FdResp {
    /// The allocated descriptor.
    Fd(u32),
    /// Acknowledgement of a `Free`, or an error for freeing an unused fd.
    Ok,
    /// `Free` of a descriptor that was not allocated.
    BadFd,
}

/// Allocation policy for [`FdAllocModel`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FdPolicy {
    /// POSIX semantics: `Alloc` must return the lowest unused descriptor.
    Lowest,
    /// Relaxed semantics: `Alloc` may return any unused descriptor below the
    /// table capacity (the `O_ANYFD` design of §4 / §7.2).
    Any,
}

/// Model of file-descriptor allocation under either the strict "lowest
/// available FD" rule or the relaxed "any FD" rule.
#[derive(Clone, Copy, Debug)]
pub struct FdAllocModel {
    /// Allocation policy.
    pub policy: FdPolicy,
    /// Size of the descriptor table (bounds the `Any` non-determinism).
    pub capacity: u32,
}

impl Default for FdAllocModel {
    fn default() -> Self {
        FdAllocModel {
            policy: FdPolicy::Lowest,
            capacity: 4,
        }
    }
}

impl SeqSpecModel for FdAllocModel {
    type Inv = FdOp;
    type Resp = FdResp;
    // Set of allocated descriptors, kept sorted.
    type State = Vec<u32>;

    fn initial(&self) -> Vec<u32> {
        Vec::new()
    }

    fn outcomes(&self, state: &Vec<u32>, _thread: ThreadId, inv: &FdOp) -> Vec<(FdResp, Vec<u32>)> {
        match inv {
            FdOp::Alloc => {
                let free: Vec<u32> = (0..self.capacity)
                    .filter(|fd| !state.contains(fd))
                    .collect();
                match self.policy {
                    FdPolicy::Lowest => free
                        .first()
                        .map(|&fd| {
                            let mut next = state.clone();
                            next.push(fd);
                            next.sort_unstable();
                            vec![(FdResp::Fd(fd), next)]
                        })
                        .unwrap_or_default(),
                    FdPolicy::Any => free
                        .into_iter()
                        .map(|fd| {
                            let mut next = state.clone();
                            next.push(fd);
                            next.sort_unstable();
                            (FdResp::Fd(fd), next)
                        })
                        .collect(),
                }
            }
            FdOp::Free(fd) => {
                if state.contains(fd) {
                    let next = state.iter().copied().filter(|f| f != fd).collect();
                    vec![(FdResp::Ok, next)]
                } else {
                    vec![(FdResp::BadFd, state.clone())]
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_model_tracks_last_write() {
        let m = RegisterModel;
        let mut s = m.initial();
        assert_eq!(m.apply(&mut s, 0, &RegisterOp::Set(7)), RegisterResp::Ok);
        assert_eq!(m.apply(&mut s, 1, &RegisterOp::Get), RegisterResp::Value(7));
    }

    #[test]
    fn putmax_model_returns_running_maximum() {
        let m = PutMaxModel;
        let mut s = m.initial();
        assert_eq!(m.apply(&mut s, 0, &PutMaxOp::Max), PutMaxResp::Max(0));
        m.apply(&mut s, 0, &PutMaxOp::Put(5));
        m.apply(&mut s, 1, &PutMaxOp::Put(3));
        assert_eq!(m.apply(&mut s, 0, &PutMaxOp::Max), PutMaxResp::Max(5));
    }

    #[test]
    fn det_adapter_yields_single_outcome() {
        let m = Det(RegisterModel);
        let s = m.initial();
        let outs = m.outcomes(&s, 0, &RegisterOp::Set(3));
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0].0, RegisterResp::Ok);
        assert_eq!(outs[0].1, 3);
    }

    #[test]
    fn lowest_fd_policy_is_deterministic() {
        let m = FdAllocModel {
            policy: FdPolicy::Lowest,
            capacity: 4,
        };
        let s = m.initial();
        let outs = m.outcomes(&s, 0, &FdOp::Alloc);
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0].0, FdResp::Fd(0));
    }

    #[test]
    fn any_fd_policy_is_nondeterministic() {
        let m = FdAllocModel {
            policy: FdPolicy::Any,
            capacity: 4,
        };
        let s = m.initial();
        let outs = m.outcomes(&s, 0, &FdOp::Alloc);
        assert_eq!(outs.len(), 4);
        let fds: Vec<FdResp> = outs.iter().map(|(r, _)| *r).collect();
        assert!(fds.contains(&FdResp::Fd(0)));
        assert!(fds.contains(&FdResp::Fd(3)));
    }

    #[test]
    fn freeing_unallocated_fd_reports_badfd() {
        let m = FdAllocModel::default();
        let s = m.initial();
        let outs = m.outcomes(&s, 0, &FdOp::Free(2));
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0].0, FdResp::BadFd);
    }

    #[test]
    fn alloc_fails_when_table_full() {
        let m = FdAllocModel {
            policy: FdPolicy::Lowest,
            capacity: 1,
        };
        let s = vec![0];
        assert!(m.outcomes(&s, 0, &FdOp::Alloc).is_empty());
    }
}
