//! SI and SIM commutativity (§3.2).
//!
//! A region `Y` **SI-commutes** in `H = X || Y` when for any reordering `Y'`
//! of `Y` and any future action sequence `Z`,
//! `X || Y || Z ∈ S  ⇔  X || Y' || Z ∈ S`.
//!
//! SI commutativity is not monotonic: a region may SI-commute while one of
//! its prefixes does not (the `set(1); set(2); set(2)` example of §3.2). The
//! monotonic strengthening used by the rule is **SIM commutativity**: `Y`
//! SIM-commutes in `H = X || Y` when for any prefix `P` of any reordering of
//! `Y`, `P` SI-commutes in `X || P`.
//!
//! Quantifying over *all* futures `Z` is impossible in a checker, so this
//! module offers two procedures:
//!
//! * [`si_commutes_bounded`] / [`sim_commutes_bounded`] quantify over a
//!   caller-supplied set of candidate futures (plus the empty future). This
//!   follows the definition directly and is what the formalism tests use.
//! * [`si_commutes`] / [`sim_commutes`] substitute state equivalence for the
//!   future quantification, exactly as COMMUTER's ANALYZER does (§5.1): all
//!   reorderings must be allowed by the specification and must be able to
//!   reach externally indistinguishable states.

use crate::history::History;
use crate::model::SeqSpecModel;
use crate::spec::{replay_sequential, Specification};

/// At which granularity reorderings of a region are enumerated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Granularity {
    /// Every interleaving of individual actions that preserves per-thread
    /// order (the literal definition of a reordering in §3.2).
    Action,
    /// Only permutations of whole (invocation, response) operations. This is
    /// the granularity at which ANALYZER permutes operations and the natural
    /// one for sequential regions.
    Operation,
}

/// Why a region failed to commute, for diagnostics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CommutativityFailure {
    /// A reordering of the region (or of one of its prefixes) is not allowed
    /// by the specification. Holds the index of the offending reordering and
    /// the prefix length examined.
    ReorderingRejected {
        /// Index into the list of reorderings of the examined prefix.
        reordering: usize,
        /// Length of the prefix of the reordering under examination.
        prefix_len: usize,
    },
    /// Two orders are distinguishable: either by a future (bounded check) or
    /// because no pair of equivalent final states exists (state check).
    Distinguishable {
        /// Index of the reordering that is distinguishable from the original.
        reordering: usize,
        /// Length of the prefix of the reordering under examination.
        prefix_len: usize,
    },
}

/// Result of a commutativity check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommutativityReport {
    /// Whether the region commutes.
    pub commutes: bool,
    /// First failure found, if any.
    pub failure: Option<CommutativityFailure>,
    /// Number of (reordering, prefix) combinations examined.
    pub cases_examined: usize,
}

impl CommutativityReport {
    fn success(cases: usize) -> Self {
        CommutativityReport {
            commutes: true,
            failure: None,
            cases_examined: cases,
        }
    }

    fn failure(failure: CommutativityFailure, cases: usize) -> Self {
        CommutativityReport {
            commutes: false,
            failure: Some(failure),
            cases_examined: cases,
        }
    }
}

/// SI commutativity with an explicit, bounded set of futures.
///
/// Checks that for every reordering `Y'` of `y` (at the chosen granularity)
/// and every `z` in `futures` (the empty future is always included),
/// `x || y || z ∈ spec` iff `x || y' || z ∈ spec`.
pub fn si_commutes_bounded<I, R, S>(
    spec: &S,
    x: &History<I, R>,
    y: &History<I, R>,
    futures: &[History<I, R>],
    granularity: Granularity,
) -> CommutativityReport
where
    I: Clone + PartialEq,
    R: Clone + PartialEq,
    S: Specification<I, R>,
{
    let mut cases = 0;
    let empty = History::new();
    let mut all_futures: Vec<&History<I, R>> = vec![&empty];
    all_futures.extend(futures.iter());
    let reorderings = match granularity {
        Granularity::Action => y.reorderings(),
        Granularity::Operation => op_level_reorderings(y),
    };
    for (ri, y_prime) in reorderings.iter().enumerate() {
        for z in &all_futures {
            cases += 1;
            let original = x.concat(y).concat(z);
            let reordered = x.concat(y_prime).concat(z);
            if spec.contains(&original) != spec.contains(&reordered) {
                return CommutativityReport::failure(
                    CommutativityFailure::Distinguishable {
                        reordering: ri,
                        prefix_len: y.len(),
                    },
                    cases,
                );
            }
        }
    }
    CommutativityReport::success(cases)
}

/// SIM commutativity with an explicit, bounded set of futures: every prefix
/// of every reordering of `y` must SI-commute (with the same futures) after
/// `x`.
pub fn sim_commutes_bounded<I, R, S>(
    spec: &S,
    x: &History<I, R>,
    y: &History<I, R>,
    futures: &[History<I, R>],
    granularity: Granularity,
) -> CommutativityReport
where
    I: Clone + PartialEq,
    R: Clone + PartialEq,
    S: Specification<I, R>,
{
    let mut cases = 0;
    let reorderings = match granularity {
        Granularity::Action => y.reorderings(),
        Granularity::Operation => op_level_reorderings(y),
    };
    let step = match granularity {
        Granularity::Action => 1,
        Granularity::Operation => 2,
    };
    for (ri, y_prime) in reorderings.iter().enumerate() {
        for prefix_len in (0..=y_prime.len()).step_by(step) {
            let p = y_prime.prefix(prefix_len);
            let report = si_commutes_bounded(spec, x, &p, futures, granularity);
            cases += report.cases_examined;
            if !report.commutes {
                return CommutativityReport::failure(
                    CommutativityFailure::Distinguishable {
                        reordering: ri,
                        prefix_len,
                    },
                    cases,
                );
            }
        }
    }
    CommutativityReport::success(cases)
}

/// State-equivalence based SI commutativity (the ANALYZER check of §5.1).
///
/// `x` and `y` must be *sequential* histories (each invocation immediately
/// followed by its response). The region SI-commutes when:
///
/// 1. every well-formed reordering of `y` is allowed by the specification
///    derived from `model` after `x`, and
/// 2. there is a final state reachable by the original order such that every
///    reordering can reach an equivalent state (for some choice of the
///    model's non-deterministic outcomes).
pub fn si_commutes<M>(
    model: &M,
    x: &History<M::Inv, M::Resp>,
    y: &History<M::Inv, M::Resp>,
) -> CommutativityReport
where
    M: SeqSpecModel,
    M::Inv: PartialEq,
    M::State: PartialEq,
{
    let mut cases = 0;
    // The original order: if the recorded history itself is not allowed by
    // the specification, then (by prefix closure) no future can make it
    // allowed, and the same must hold for every reordering for the region to
    // commute. An invalid history is indistinguishable from any other
    // invalid history, so the check is about *matching* validity, not about
    // validity itself.
    let original_states = replay_sequential(&CloneModel(model), &x.concat(y));
    let original_valid = original_states.is_some();
    // Reorder at operation granularity: `y` is a sequential history, so the
    // relevant permutations keep each invocation paired with its response
    // (this is also the granularity at which ANALYZER permutes operations).
    let reorderings = op_level_reorderings(y);
    // Gather reachable state sets for every reordering.
    let mut reachable: Vec<Vec<M::State>> = Vec::with_capacity(reorderings.len());
    for (ri, y_prime) in reorderings.iter().enumerate() {
        cases += 1;
        let h = x.concat(y_prime);
        match replay_sequential(&CloneModel(model), &h) {
            Some(states) => {
                if !original_valid {
                    // This order is allowed but the original is not: a future
                    // (or the responses themselves) distinguishes them.
                    return CommutativityReport::failure(
                        CommutativityFailure::ReorderingRejected {
                            reordering: ri,
                            prefix_len: y.len(),
                        },
                        cases,
                    );
                }
                reachable.push(states);
            }
            None => {
                if original_valid {
                    return CommutativityReport::failure(
                        CommutativityFailure::ReorderingRejected {
                            reordering: ri,
                            prefix_len: y.len(),
                        },
                        cases,
                    );
                }
                // Both invalid: indistinguishable, keep going.
            }
        }
    }
    if !original_valid {
        // Every order is equally disallowed: vacuously SI-commutative.
        return CommutativityReport::success(cases);
    }
    let original_states = original_states.expect("checked original_valid");
    // Some original-order state must be matchable (up to equivalence) by
    // every reordering.
    let matchable = original_states.iter().any(|s0| {
        reachable
            .iter()
            .all(|states| states.iter().any(|s| model.state_equivalent(s0, s)))
    });
    if matchable {
        CommutativityReport::success(cases)
    } else {
        CommutativityReport::failure(
            CommutativityFailure::Distinguishable {
                reordering: 0,
                prefix_len: y.len(),
            },
            cases,
        )
    }
}

/// State-equivalence based SIM commutativity: every prefix of every
/// reordering of `y` must SI-commute after `x`.
///
/// `x` and `y` must be sequential histories. Prefixes are taken at operation
/// granularity (an invocation and its response move together), which is the
/// granularity at which the POSIX analysis of §5–6 operates.
pub fn sim_commutes<M>(
    model: &M,
    x: &History<M::Inv, M::Resp>,
    y: &History<M::Inv, M::Resp>,
) -> CommutativityReport
where
    M: SeqSpecModel,
    M::Inv: PartialEq,
    M::State: PartialEq,
{
    let mut cases = 0;
    for (ri, y_prime) in op_level_reorderings(y).iter().enumerate() {
        let ops = y_prime.len() / 2;
        for op_prefix in 0..=ops {
            let p = y_prime.prefix(op_prefix * 2);
            let report = si_commutes(model, x, &p);
            cases += report.cases_examined;
            if !report.commutes {
                return CommutativityReport::failure(
                    CommutativityFailure::Distinguishable {
                        reordering: ri,
                        prefix_len: op_prefix * 2,
                    },
                    cases,
                );
            }
        }
    }
    CommutativityReport::success(cases)
}

/// Reorderings of a *sequential* history at operation granularity: every
/// permutation of the (invocation, response) pairs that preserves each
/// thread's order. This is the set of reorderings relevant for sequential
/// regions; interleavings that split an invocation from its response are
/// covered by the action-level [`History::reorderings`].
pub fn op_level_reorderings<I: Clone + PartialEq, R: Clone + PartialEq>(
    y: &History<I, R>,
) -> Vec<History<I, R>> {
    y.well_formed_reorderings()
        .into_iter()
        .filter(|h| {
            h.actions().chunks(2).all(|c| {
                c.len() == 2
                    && c[0].is_invocation()
                    && c[1].is_response()
                    && c[0].thread == c[1].thread
            })
        })
        .collect()
}

/// Adapter so the commutativity checks can build a `RefSpec` from a borrowed
/// model without requiring `M: Clone`.
struct CloneModel<'a, M>(&'a M);

impl<M: SeqSpecModel> SeqSpecModel for CloneModel<'_, M> {
    type Inv = M::Inv;
    type Resp = M::Resp;
    type State = M::State;

    fn initial(&self) -> Self::State {
        self.0.initial()
    }

    fn outcomes(
        &self,
        state: &Self::State,
        thread: crate::action::ThreadId,
        inv: &Self::Inv,
    ) -> Vec<(Self::Resp, Self::State)> {
        self.0.outcomes(state, thread, inv)
    }

    fn state_equivalent(&self, a: &Self::State, b: &Self::State) -> bool
    where
        Self::State: PartialEq,
    {
        self.0.state_equivalent(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::op_pair;
    use crate::model::{
        Det, FdAllocModel, FdOp, FdPolicy, FdResp, PutMaxModel, PutMaxOp, PutMaxResp,
        RegisterModel, RegisterOp, RegisterResp,
    };
    use crate::spec::{run_first_outcome, RefSpec};

    fn seq_history<I: Clone, R: Clone>(ops: &[(usize, I, R)]) -> History<I, R> {
        let mut h = History::new();
        for (tag, (t, i, r)) in ops.iter().enumerate() {
            for a in op_pair(*t, tag as u64, i.clone(), r.clone()) {
                h.push(a);
            }
        }
        h
    }

    #[test]
    fn getpid_style_constant_reads_commute() {
        // Two gets on different threads commute in any state.
        let model = Det(RegisterModel);
        let x = seq_history(&[(0, RegisterOp::Set(7), RegisterResp::Ok)]);
        let y = seq_history(&[
            (0, RegisterOp::Get, RegisterResp::Value(7)),
            (1, RegisterOp::Get, RegisterResp::Value(7)),
        ]);
        assert!(si_commutes(&model, &x, &y).commutes);
        assert!(sim_commutes(&model, &x, &y).commutes);
    }

    #[test]
    fn set_and_get_do_not_commute() {
        let model = Det(RegisterModel);
        let x = History::new();
        let y = seq_history(&[
            (0, RegisterOp::Set(3), RegisterResp::Ok),
            (1, RegisterOp::Get, RegisterResp::Value(3)),
        ]);
        assert!(!si_commutes(&model, &x, &y).commutes);
    }

    #[test]
    fn paper_set_example_si_commutes_but_not_sim() {
        // §3.2: Y = [set(1)@t0, set(2)@t1, set(2)@t0]. Reorderings preserve
        // t0's order, so every order leaves the value at 2 and Y SI-commutes;
        // but the prefix [set(1)@t0, set(2)@t1] can end at either 1 or 2, so
        // Y does not SIM-commute.
        let model = Det(RegisterModel);
        let x = History::new();
        let y = seq_history(&[
            (0, RegisterOp::Set(1), RegisterResp::Ok),
            (1, RegisterOp::Set(2), RegisterResp::Ok),
            (0, RegisterOp::Set(2), RegisterResp::Ok),
        ]);
        assert!(si_commutes(&model, &x, &y).commutes, "Y must SI-commute");
        let sim = sim_commutes(&model, &x, &y);
        assert!(!sim.commutes, "Y must not SIM-commute");
    }

    #[test]
    fn bounded_check_agrees_on_register_example() {
        let model = Det(RegisterModel);
        let spec = RefSpec::new(Det(RegisterModel));
        let x = History::new();
        let y = seq_history(&[
            (0, RegisterOp::Set(1), RegisterResp::Ok),
            (1, RegisterOp::Set(2), RegisterResp::Ok),
            (0, RegisterOp::Set(2), RegisterResp::Ok),
        ]);
        // Futures that can observe the register value.
        let futures: Vec<History<RegisterOp, RegisterResp>> = (0..3)
            .map(|v| seq_history(&[(3, RegisterOp::Get, RegisterResp::Value(v))]))
            .collect();
        let g = Granularity::Operation;
        assert!(si_commutes_bounded(&spec, &x, &y, &futures, g).commutes);
        assert!(!sim_commutes_bounded(&spec, &x, &y, &futures, g).commutes);
        // The state-based and bounded checks agree.
        assert_eq!(
            si_commutes(&model, &x, &y).commutes,
            si_commutes_bounded(&spec, &x, &y, &futures, g).commutes
        );
    }

    #[test]
    fn putmax_subregions_commute_but_whole_history_does_not() {
        // H = put(1)@t0 put(1)@t1 max()@t2=1 — the §3.6 example. The prefix
        // of two puts SIM-commutes (after the empty X), and the suffix
        // [put(1)@t1, max()@t2] SIM-commutes after X = [put(1)@t0]; but the
        // whole history does not SIM-commute (max() before any put would
        // return 0), which is consistent with the paper's observation that no
        // single implementation is conflict-free across all of H.
        let model = Det(PutMaxModel);
        let puts = seq_history(&[
            (0, PutMaxOp::Put(1), PutMaxResp::Ok),
            (1, PutMaxOp::Put(1), PutMaxResp::Ok),
        ]);
        assert!(sim_commutes(&model, &History::new(), &puts).commutes);

        let x = seq_history(&[(0, PutMaxOp::Put(1), PutMaxResp::Ok)]);
        let suffix = seq_history(&[
            (1, PutMaxOp::Put(1), PutMaxResp::Ok),
            (2, PutMaxOp::Max, PutMaxResp::Max(1)),
        ]);
        assert!(sim_commutes(&model, &x, &suffix).commutes);

        let whole = seq_history(&[
            (0, PutMaxOp::Put(1), PutMaxResp::Ok),
            (1, PutMaxOp::Put(1), PutMaxResp::Ok),
            (2, PutMaxOp::Max, PutMaxResp::Max(1)),
        ]);
        assert!(!sim_commutes(&model, &History::new(), &whole).commutes);
    }

    #[test]
    fn puts_of_different_values_do_not_commute_with_max() {
        let model = Det(PutMaxModel);
        let x = History::new();
        let y = seq_history(&[
            (0, PutMaxOp::Put(5), PutMaxResp::Ok),
            (1, PutMaxOp::Max, PutMaxResp::Max(5)),
        ]);
        assert!(!si_commutes(&model, &x, &y).commutes);
    }

    #[test]
    fn lowest_fd_allocs_do_not_commute_but_any_fd_allocs_do() {
        // §4 "embrace specification non-determinism": two Allocs on different
        // threads commute under the Any policy but not under Lowest.
        let lowest = FdAllocModel {
            policy: FdPolicy::Lowest,
            capacity: 4,
        };
        let any = FdAllocModel {
            policy: FdPolicy::Any,
            capacity: 4,
        };
        let x = History::new();
        let y_lowest = seq_history(&[
            (0, FdOp::Alloc, FdResp::Fd(0)),
            (1, FdOp::Alloc, FdResp::Fd(1)),
        ]);
        assert!(!si_commutes(&lowest, &x, &y_lowest).commutes);
        let y_any = seq_history(&[
            (0, FdOp::Alloc, FdResp::Fd(2)),
            (1, FdOp::Alloc, FdResp::Fd(3)),
        ]);
        assert!(si_commutes(&any, &x, &y_any).commutes);
        assert!(sim_commutes(&any, &x, &y_any).commutes);
    }

    #[test]
    fn state_dependence_open_excl_style() {
        // Mimics the open(O_CREAT|O_EXCL) discussion: two identical Set ops
        // commute because the state they produce is identical and their
        // responses match, while a Set and a Get of that value do not.
        let model = Det(RegisterModel);
        let x = seq_history(&[(0, RegisterOp::Set(9), RegisterResp::Ok)]);
        let y = seq_history(&[
            (0, RegisterOp::Set(9), RegisterResp::Ok),
            (1, RegisterOp::Set(9), RegisterResp::Ok),
        ]);
        assert!(sim_commutes(&model, &x, &y).commutes);
    }

    #[test]
    fn report_counts_cases() {
        let model = Det(RegisterModel);
        let x = History::new();
        let y = seq_history(&[
            (0, RegisterOp::Get, RegisterResp::Value(0)),
            (1, RegisterOp::Get, RegisterResp::Value(0)),
        ]);
        let report = sim_commutes(&model, &x, &y);
        assert!(report.commutes);
        assert!(report.cases_examined > 0);
        assert!(report.failure.is_none());
    }

    #[test]
    fn run_first_outcome_feeds_si_check() {
        let model = Det(PutMaxModel);
        let y = run_first_outcome(&model, &[(0, PutMaxOp::Put(1)), (1, PutMaxOp::Put(1))]);
        assert!(si_commutes(&model, &History::new(), &y).commutes);
    }
}
