//! Implementations as step functions (§3.3).
//!
//! An implementation is a function `S × I → S × R`: given a state and an
//! invocation it produces a new state and a response. Special `CONTINUE`
//! actions let an implementation defer a response (enabling overlapping
//! operations and blocking).
//!
//! To reason about conflict freedom, states are tuples of *components*.
//! Implementations access their components through a [`StateCtx`], which
//! records the read set and write set of each step; [`crate::conflict`]
//! turns those access sets into the access-conflict and conflict-freedom
//! judgements of the paper. The definitional (perturbation-based) read/write
//! test from §3.3 is also provided ([`definitional_accesses`]) and is used in
//! tests to cross-check the instrumentation.

use crate::action::ThreadId;
use crate::conflict::AccessSet;
use std::collections::BTreeSet;
use std::fmt;

/// An invocation handed to an implementation: either a real operation or
/// `CONTINUE` (give the implementation a chance to complete an outstanding
/// request for the invoking thread).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Invocation<I> {
    /// A real operation invocation.
    Op(I),
    /// The `CONTINUE` pseudo-invocation.
    Continue,
}

/// A response produced by an implementation: either a real response or
/// `CONTINUE` (the real response is not ready yet).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response<R> {
    /// A real response value.
    Op(R),
    /// The `CONTINUE` pseudo-response.
    Continue,
}

impl<R> Response<R> {
    /// Returns the real response value, if any.
    pub fn value(&self) -> Option<&R> {
        match self {
            Response::Op(r) => Some(r),
            Response::Continue => None,
        }
    }
}

/// Mutable view of an implementation state that records which components a
/// step reads and writes.
pub struct StateCtx<'a, C> {
    components: &'a mut Vec<C>,
    reads: BTreeSet<usize>,
    writes: BTreeSet<usize>,
}

impl<'a, C: Clone> StateCtx<'a, C> {
    /// Wraps a component vector.
    pub fn new(components: &'a mut Vec<C>) -> Self {
        StateCtx {
            components,
            reads: BTreeSet::new(),
            writes: BTreeSet::new(),
        }
    }

    /// Number of components in the state.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// `true` if the state has no components.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Reads component `i`, recording the access.
    pub fn read(&mut self, i: usize) -> C {
        self.reads.insert(i);
        self.components[i].clone()
    }

    /// Writes component `i`, recording the access.
    pub fn write(&mut self, i: usize, value: C) {
        self.writes.insert(i);
        self.components[i] = value;
    }

    /// Reads then writes component `i` through a closure.
    pub fn update<F: FnOnce(&mut C)>(&mut self, i: usize, f: F) {
        self.reads.insert(i);
        self.writes.insert(i);
        f(&mut self.components[i]);
    }

    /// The access set recorded so far.
    pub fn access_set(&self) -> AccessSet {
        AccessSet {
            reads: self.reads.clone(),
            writes: self.writes.clone(),
        }
    }
}

/// An implementation as a step function over component states (§3.3).
pub trait StepImplementation {
    /// Invocation payload.
    type I: Clone;
    /// Response payload.
    type R: Clone + PartialEq;
    /// Component value type (every state component holds one of these).
    type Comp: Clone + PartialEq;

    /// The initial component vector.
    fn initial(&self) -> Vec<Self::Comp>;

    /// Human-readable label for component `i` (used in conflict reports).
    fn component_label(&self, i: usize) -> String {
        format!("component[{i}]")
    }

    /// One step: given the state (accessed through `ctx`), the invoking
    /// thread and the invocation, produce a response.
    fn step(
        &self,
        ctx: &mut StateCtx<'_, Self::Comp>,
        thread: ThreadId,
        inv: &Invocation<Self::I>,
    ) -> Response<Self::R>;
}

/// The record of one implementation step: what was invoked, what was
/// returned, and which components were read and written.
#[derive(Clone, Debug)]
pub struct StepRecord<I, R> {
    /// Invoking thread.
    pub thread: ThreadId,
    /// The invocation passed to the step.
    pub invocation: Invocation<I>,
    /// The response the step produced.
    pub response: Response<R>,
    /// Components read and written by the step.
    pub accesses: AccessSet,
    /// Index of the step in the run (0-based).
    pub index: usize,
}

impl<I: fmt::Debug, R: fmt::Debug> fmt::Display for StepRecord<I, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "step {} t{}: {:?} -> {:?} (r={:?} w={:?})",
            self.index,
            self.thread,
            self.invocation,
            self.response,
            self.accesses.reads,
            self.accesses.writes
        )
    }
}

/// A running instance of a step implementation: the machine plus its state,
/// with a log of all steps taken.
pub struct Runner<'m, M: StepImplementation> {
    machine: &'m M,
    state: Vec<M::Comp>,
    log: Vec<StepRecord<M::I, M::R>>,
}

impl<'m, M: StepImplementation> Runner<'m, M> {
    /// Creates a runner starting from the machine's initial state.
    pub fn new(machine: &'m M) -> Self {
        Runner {
            machine,
            state: machine.initial(),
            log: Vec::new(),
        }
    }

    /// The current state components.
    pub fn state(&self) -> &[M::Comp] {
        &self.state
    }

    /// The step log so far.
    pub fn log(&self) -> &[StepRecord<M::I, M::R>] {
        &self.log
    }

    /// Takes one step and returns the response.
    pub fn step(&mut self, thread: ThreadId, inv: Invocation<M::I>) -> Response<M::R> {
        let mut ctx = StateCtx::new(&mut self.state);
        let response = self.machine.step(&mut ctx, thread, &inv);
        let accesses = ctx.access_set();
        let index = self.log.len();
        self.log.push(StepRecord {
            thread,
            invocation: inv,
            response: response.clone(),
            accesses,
            index,
        });
        response
    }

    /// Invokes a real operation and, if the implementation answers
    /// `CONTINUE`, keeps issuing `CONTINUE` invocations for the same thread
    /// until a real response arrives (up to `max_continues`). Returns the
    /// real response, or `None` if the implementation never produced one.
    pub fn call(&mut self, thread: ThreadId, op: M::I, max_continues: usize) -> Option<M::R> {
        let mut response = self.step(thread, Invocation::Op(op));
        let mut budget = max_continues;
        while matches!(response, Response::Continue) {
            if budget == 0 {
                return None;
            }
            budget -= 1;
            response = self.step(thread, Invocation::Continue);
        }
        response.value().cloned()
    }

    /// Index range of the steps taken so far; useful for slicing the log into
    /// regions (e.g. "the steps of the commutative region").
    pub fn step_count(&self) -> usize {
        self.log.len()
    }
}

/// The definitional read/write sets of a single step (§3.3): component `i`
/// is *written* when its value changes, and *read* when substituting some
/// candidate value for it would change the step's behaviour (its response or
/// the resulting state of the other components).
///
/// The quantification over "some value y" is approximated by the caller's
/// `candidates` list. This function exists to validate the instrumented
/// access sets produced by [`StateCtx`]; production conflict checking uses
/// the instrumentation.
pub fn definitional_accesses<M: StepImplementation>(
    machine: &M,
    state: &[M::Comp],
    thread: ThreadId,
    inv: &Invocation<M::I>,
    candidates: &[M::Comp],
) -> AccessSet {
    // Baseline run.
    let mut base_state = state.to_vec();
    let base_resp = {
        let mut ctx = StateCtx::new(&mut base_state);
        machine.step(&mut ctx, thread, inv)
    };

    let mut reads = BTreeSet::new();
    let mut writes = BTreeSet::new();
    for i in 0..state.len() {
        if base_state[i] != state[i] {
            writes.insert(i);
        }
        for candidate in candidates {
            if *candidate == state[i] {
                continue;
            }
            // Perturb component i and re-run.
            let mut perturbed = state.to_vec();
            perturbed[i] = candidate.clone();
            let mut perturbed_state = perturbed.clone();
            let resp = {
                let mut ctx = StateCtx::new(&mut perturbed_state);
                machine.step(&mut ctx, thread, inv)
            };
            // Expected if i were not read: same response, and the final state
            // equals the baseline final state with component i replaced by
            // the perturbed value wherever the baseline left it untouched.
            let mut expected = base_state.clone();
            if base_state[i] == state[i] {
                expected[i] = candidate.clone();
            }
            let same_resp = match (&resp, &base_resp) {
                (Response::Op(a), Response::Op(b)) => a == b,
                (Response::Continue, Response::Continue) => true,
                _ => false,
            };
            if !same_resp || perturbed_state != expected {
                reads.insert(i);
                break;
            }
        }
    }
    AccessSet { reads, writes }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny two-component machine used to exercise the instrumentation: a
    /// counter (component 0) and a high-water mark (component 1).
    struct CounterMax;

    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    enum Op {
        Add(i64),
        ReadMax,
    }

    impl StepImplementation for CounterMax {
        type I = Op;
        type R = i64;
        type Comp = i64;

        fn initial(&self) -> Vec<i64> {
            vec![0, 0]
        }

        fn component_label(&self, i: usize) -> String {
            ["counter", "max"][i].to_string()
        }

        fn step(
            &self,
            ctx: &mut StateCtx<'_, i64>,
            _thread: ThreadId,
            inv: &Invocation<Op>,
        ) -> Response<i64> {
            match inv {
                Invocation::Op(Op::Add(v)) => {
                    let c = ctx.read(0) + v;
                    ctx.write(0, c);
                    let m = ctx.read(1);
                    if c > m {
                        ctx.write(1, c);
                    }
                    Response::Op(c)
                }
                Invocation::Op(Op::ReadMax) => Response::Op(ctx.read(1)),
                Invocation::Continue => Response::Continue,
            }
        }
    }

    #[test]
    fn runner_logs_accesses() {
        let m = CounterMax;
        let mut runner = Runner::new(&m);
        assert_eq!(runner.call(0, Op::Add(5), 4), Some(5));
        assert_eq!(runner.call(1, Op::ReadMax, 4), Some(5));
        let log = runner.log();
        assert_eq!(log.len(), 2);
        assert!(log[0].accesses.writes.contains(&0));
        assert!(log[0].accesses.writes.contains(&1));
        assert_eq!(log[1].accesses.reads, BTreeSet::from([1]));
        assert!(log[1].accesses.writes.is_empty());
    }

    #[test]
    fn definitional_accesses_match_instrumentation_for_add() {
        let m = CounterMax;
        let state = vec![3, 7];
        let acc = definitional_accesses(
            &m,
            &state,
            0,
            &Invocation::Op(Op::Add(2)),
            &[-1, 0, 1, 5, 100],
        );
        // Add reads and writes the counter; it reads the max (to compare) but
        // only writes it when exceeded (not here: 5 < 7).
        assert!(acc.reads.contains(&0));
        assert!(acc.writes.contains(&0));
        assert!(acc.reads.contains(&1));
        assert!(!acc.writes.contains(&1));
    }

    #[test]
    fn definitional_accesses_detect_pure_read() {
        let m = CounterMax;
        let state = vec![3, 7];
        let acc = definitional_accesses(
            &m,
            &state,
            0,
            &Invocation::Op(Op::ReadMax),
            &[-1, 0, 1, 5, 100],
        );
        assert_eq!(acc.reads, BTreeSet::from([1]));
        assert!(acc.writes.is_empty());
    }

    #[test]
    fn call_gives_up_after_budget() {
        /// A machine that always answers CONTINUE.
        struct Stuck;
        impl StepImplementation for Stuck {
            type I = ();
            type R = ();
            type Comp = ();
            fn initial(&self) -> Vec<()> {
                vec![]
            }
            fn step(
                &self,
                _ctx: &mut StateCtx<'_, ()>,
                _thread: ThreadId,
                _inv: &Invocation<()>,
            ) -> Response<()> {
                Response::Continue
            }
        }
        let mut runner = Runner::new(&Stuck);
        assert_eq!(runner.call(0, (), 3), None);
        assert_eq!(runner.step_count(), 4);
    }

    #[test]
    fn update_records_read_and_write() {
        let mut comps = vec![1, 2];
        let mut ctx = StateCtx::new(&mut comps);
        ctx.update(1, |v| *v += 10);
        let acc = ctx.access_set();
        assert!(acc.reads.contains(&1));
        assert!(acc.writes.contains(&1));
        assert_eq!(comps[1], 12);
    }
}
