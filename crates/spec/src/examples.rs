//! Worked examples from the paper (§3.6).
//!
//! The put/max interface: `put(x)` records a sample, `max()` returns the
//! maximum recorded so far (or 0). For the history
//!
//! ```text
//! H = [ put(1)@t0, ok, put(1)@t1, ok, max()@t2, 1 ]
//! ```
//!
//! the whole history SIM-commutes, yet no single implementation is
//! conflict-free across all of it. Two natural implementations each scale
//! for a *different* sub-region:
//!
//! * [`PerThreadMax`] keeps per-thread maxima reconciled by `max()`; the two
//!   `put`s are conflict-free, but `max()` reads every per-thread slot and
//!   therefore conflicts with the `put`s.
//! * [`GlobalMax`] keeps one global maximum that `put` checks before
//!   writing; `put(1)` after an earlier `put(1)` is a pure read and `max()`
//!   is a pure read, so the `[put(1)@t1, max()@t2]` suffix is conflict-free,
//!   but the first `put` writes the global and conflicts with everything
//!   after it.
//!
//! This is the paper's illustration that a system designer must choose
//! *which* commutative situations an implementation should scale for.

use crate::action::ThreadId;
use crate::implementation::{Invocation, Response, StateCtx, StepImplementation};
use crate::model::{PutMaxOp, PutMaxResp};

/// Put/max implementation with per-thread maxima (scales for concurrent
/// `put`s).
///
/// Component `t` holds thread `t`'s local maximum.
pub struct PerThreadMax {
    /// Number of threads (one component per thread).
    pub threads: usize,
}

impl StepImplementation for PerThreadMax {
    type I = PutMaxOp;
    type R = PutMaxResp;
    type Comp = i64;

    fn initial(&self) -> Vec<i64> {
        vec![0; self.threads]
    }

    fn component_label(&self, i: usize) -> String {
        format!("local_max[{i}]")
    }

    fn step(
        &self,
        ctx: &mut StateCtx<'_, i64>,
        thread: ThreadId,
        inv: &Invocation<PutMaxOp>,
    ) -> Response<PutMaxResp> {
        match inv {
            Invocation::Op(PutMaxOp::Put(v)) => {
                let cur = ctx.read(thread);
                if *v > cur {
                    ctx.write(thread, *v);
                }
                Response::Op(PutMaxResp::Ok)
            }
            Invocation::Op(PutMaxOp::Max) => {
                let mut best = 0;
                for t in 0..self.threads {
                    best = best.max(ctx.read(t));
                }
                Response::Op(PutMaxResp::Max(best))
            }
            Invocation::Continue => Response::Continue,
        }
    }
}

/// Put/max implementation with a single global maximum that `put` checks
/// before writing (scales for repeated `put`s of a non-increasing value and
/// for `max`).
pub struct GlobalMax;

impl StepImplementation for GlobalMax {
    type I = PutMaxOp;
    type R = PutMaxResp;
    type Comp = i64;

    fn initial(&self) -> Vec<i64> {
        vec![0]
    }

    fn component_label(&self, _i: usize) -> String {
        "global_max".to_string()
    }

    fn step(
        &self,
        ctx: &mut StateCtx<'_, i64>,
        _thread: ThreadId,
        inv: &Invocation<PutMaxOp>,
    ) -> Response<PutMaxResp> {
        match inv {
            Invocation::Op(PutMaxOp::Put(v)) => {
                // Optimistic check before writing ("precede pessimism with
                // optimism", §6.3): only write when the value increases.
                let cur = ctx.read(0);
                if *v > cur {
                    ctx.write(0, *v);
                }
                Response::Op(PutMaxResp::Ok)
            }
            Invocation::Op(PutMaxOp::Max) => Response::Op(PutMaxResp::Max(ctx.read(0))),
            Invocation::Continue => Response::Continue,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::op_pair;
    use crate::commutativity::sim_commutes;
    use crate::conflict::find_conflicts;
    use crate::history::History;
    use crate::implementation::Runner;
    use crate::model::{Det, PutMaxModel};

    /// The history H of §3.6.
    fn paper_history() -> History<PutMaxOp, PutMaxResp> {
        let mut h = History::new();
        for a in op_pair(0, 1, PutMaxOp::Put(1), PutMaxResp::Ok) {
            h.push(a);
        }
        for a in op_pair(1, 2, PutMaxOp::Put(1), PutMaxResp::Ok) {
            h.push(a);
        }
        for a in op_pair(2, 3, PutMaxOp::Max, PutMaxResp::Max(1)) {
            h.push(a);
        }
        h
    }

    fn run_and_slice<'m, M: StepImplementation<I = PutMaxOp, R = PutMaxResp>>(
        machine: &'m M,
        h: &History<PutMaxOp, PutMaxResp>,
    ) -> Runner<'m, M> {
        let mut runner = Runner::new(machine);
        for chunk in h.actions().chunks(2) {
            let op = chunk[0].invocation().copied().expect("invocation");
            let expected = chunk[1].response().copied().expect("response");
            let got = runner.call(chunk[0].thread, op, 4).expect("response");
            assert_eq!(got, expected, "implementation must satisfy the history");
        }
        runner
    }

    #[test]
    fn subregions_of_h_sim_commute() {
        // The two puts commute with each other, and the second put commutes
        // with max() once a put(1) has already happened — the two regions for
        // which the two implementations below are respectively conflict-free.
        let h = paper_history();
        let (puts, _) = h.split_at(4);
        assert!(sim_commutes(&Det(PutMaxModel), &History::new(), &puts).commutes);
        let (x, suffix) = h.split_at(2);
        assert!(sim_commutes(&Det(PutMaxModel), &x, &suffix).commutes);
        // The whole history does not SIM-commute, so the rule does not promise
        // a conflict-free implementation for all of it.
        assert!(!sim_commutes(&Det(PutMaxModel), &History::new(), &h).commutes);
    }

    #[test]
    fn per_thread_max_is_conflict_free_for_the_two_puts() {
        let h = paper_history();
        let machine = PerThreadMax { threads: 3 };
        let runner = run_and_slice(&machine, &h);
        // Steps 0 and 1 (the calls issue one step each since responses are
        // immediate) correspond to the two puts.
        let log = runner.log();
        let put_steps: Vec<_> = log.iter().take(2).collect();
        assert!(find_conflicts(&put_steps, |c| machine.component_label(c)).is_conflict_free());
        // But max() conflicts with the puts.
        let all: Vec<_> = log.iter().collect();
        assert!(!find_conflicts(&all, |c| machine.component_label(c)).is_conflict_free());
    }

    #[test]
    fn global_max_is_conflict_free_for_second_put_and_max() {
        let h = paper_history();
        let machine = GlobalMax;
        let runner = run_and_slice(&machine, &h);
        let log = runner.log();
        // Steps 1 and 2: the second put (pure read, value does not increase)
        // and the max (pure read).
        let suffix: Vec<_> = log.iter().skip(1).collect();
        assert!(find_conflicts(&suffix, |c| machine.component_label(c)).is_conflict_free());
        // But the first put writes the global maximum, so the whole history
        // is not conflict-free.
        let all: Vec<_> = log.iter().collect();
        assert!(!find_conflicts(&all, |c| machine.component_label(c)).is_conflict_free());
    }

    #[test]
    fn neither_implementation_is_conflict_free_for_all_of_h() {
        let h = paper_history();
        let per_thread = PerThreadMax { threads: 3 };
        let global = GlobalMax;
        let r1 = run_and_slice(&per_thread, &h);
        let r2 = run_and_slice(&global, &h);
        let all1: Vec<_> = r1.log().iter().collect();
        let all2: Vec<_> = r2.log().iter().collect();
        assert!(!find_conflicts(&all1, |c| per_thread.component_label(c)).is_conflict_free());
        assert!(!find_conflicts(&all2, |c| global.component_label(c)).is_conflict_free());
    }
}
