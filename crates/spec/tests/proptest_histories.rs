//! Property-based tests of the formalism's basic objects: histories,
//! reorderings, specifications and conflict detection.

use proptest::prelude::*;
use scr_spec::action::Action;
use scr_spec::conflict::AccessSet;
use scr_spec::history::History;
use scr_spec::model::{Det, RegisterModel, RegisterOp, RegisterResp};
use scr_spec::spec::{run_first_outcome, RefSpec};
use scr_spec::Specification;
use std::collections::BTreeSet;

fn register_ops() -> impl Strategy<Value = Vec<(usize, RegisterOp)>> {
    proptest::collection::vec(
        (
            0usize..3,
            prop_oneof![(0i64..4).prop_map(RegisterOp::Set), Just(RegisterOp::Get),],
        ),
        1..8,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn histories_generated_from_the_model_are_well_formed_and_accepted(ops in register_ops()) {
        let model = Det(RegisterModel);
        let history = run_first_outcome(&model, &ops);
        prop_assert!(history.is_well_formed());
        prop_assert!(history.is_complete());
        let spec = RefSpec::new(Det(RegisterModel));
        prop_assert!(spec.contains(&history));
        // Prefix closure.
        for prefix in history.prefixes() {
            prop_assert!(spec.contains(&prefix));
        }
    }

    #[test]
    fn reorderings_preserve_per_thread_subhistories(ops in register_ops()) {
        let model = Det(RegisterModel);
        let history = run_first_outcome(&model, &ops);
        // Keep the enumeration small.
        if history.len() <= 8 {
            for reordering in history.reorderings() {
                prop_assert!(history.is_reordering_of(&reordering));
                for t in history.threads() {
                    prop_assert_eq!(
                        history.restrict(t).actions().to_vec(),
                        reordering.restrict(t).actions().to_vec()
                    );
                }
            }
        }
    }

    #[test]
    fn corrupting_a_get_response_leaves_the_specification(ops in register_ops()) {
        let model = Det(RegisterModel);
        let history = run_first_outcome(&model, &ops);
        let spec = RefSpec::new(Det(RegisterModel));
        // Flip the value of the first Get response, if any; the resulting
        // history must be rejected.
        let mut actions: Vec<Action<RegisterOp, RegisterResp>> = history.actions().to_vec();
        let target = actions.iter().position(|a| matches!(a.response(), Some(RegisterResp::Value(_))));
        if let Some(idx) = target {
            if let Some(RegisterResp::Value(v)) = actions[idx].response().copied() {
                actions[idx] = Action::respond(actions[idx].thread, actions[idx].tag, RegisterResp::Value(v + 100));
                let corrupted = History::from_actions(actions);
                prop_assert!(!spec.contains(&corrupted));
            }
        }
    }

    #[test]
    fn access_conflicts_are_symmetric_and_reflexive_free(
        reads_a in proptest::collection::btree_set(0usize..6, 0..4),
        writes_a in proptest::collection::btree_set(0usize..6, 0..4),
        reads_b in proptest::collection::btree_set(0usize..6, 0..4),
        writes_b in proptest::collection::btree_set(0usize..6, 0..4),
    ) {
        let a = AccessSet { reads: reads_a, writes: writes_a };
        let b = AccessSet { reads: reads_b, writes: writes_b };
        // Symmetry.
        prop_assert_eq!(a.conflicts_with(&b), b.conflicts_with(&a));
        // Definition: a conflict requires a write on one side touching the
        // other side's footprint.
        let expected = a.writes.iter().any(|c| b.reads.contains(c) || b.writes.contains(c))
            || b.writes.iter().any(|c| a.reads.contains(c) || a.writes.contains(c));
        prop_assert_eq!(a.conflicts_with(&b), expected);
        // Read-only sets never conflict.
        let ro_a = AccessSet { reads: a.reads.clone(), writes: BTreeSet::new() };
        let ro_b = AccessSet { reads: b.reads.clone(), writes: BTreeSet::new() };
        prop_assert!(!ro_a.conflicts_with(&ro_b));
    }
}
