//! # scr-hostmtrace — a real-threads sharing monitor
//!
//! `scr-mtrace` observes sharing on a *simulated* machine: kernel state
//! lives in `TracedCell`s and every access is appended to one global log.
//! That design is inherently single-threaded. This crate is the equivalent
//! monitor for *real* OS threads, so the Figure 6 conflict heatmap — the
//! paper's central empirical artifact — can be reproduced on hardware, not
//! just under simulation.
//!
//! The pieces:
//!
//! * [`HostTraceSink`] owns per-thread, lock-free, append-only
//!   [`AccessLog`]s and an epoch-windowed tracing gate. The off path (gate
//!   closed) costs a single relaxed atomic load per probe hit; the on path
//!   reserves a log slot with one `fetch_add` and one store, touching only
//!   the recording thread's cache-padded log.
//! * [`Probe`] is a handle to one *logical cache line*, identified by the
//!   same [`LineId`] vocabulary the simulated machine uses and labelled at
//!   allocation (playing the role of MTRACE's DWARF-derived type names).
//!   Instrumented structures call [`Probe::read`]/[`Probe::write`]/
//!   [`Probe::rmw`] next to their real atomic operations, mirroring the
//!   footprint their `TracedCell` twins record on the simulator.
//! * [`LockProbe`], [`SeqProbe`] and [`ProbeRadix`] mirror the footprints
//!   of `scr_scalable`'s `TracedLock`, `SeqLock` and `RadixArray`, so a
//!   host structure can reproduce its simulated twin's access pattern
//!   line-for-line.
//! * [`HostConflictReport`] applies the §3.3 conflict definition (a line
//!   touched by ≥ 2 threads with ≥ 1 write) to a traced window, reusing
//!   `scr_mtrace::trace::analyze` — the simulated and host monitors share
//!   one report vocabulary.
//!
//! Threads are attributed to "cores" through a thread-local register set
//! with [`on_core`], exactly as the simulated machine's current-core
//! register — which is all conflict detection needs.

mod probe;
mod radix;
mod sink;

pub use probe::{LockProbe, Probe, SeqProbe};
pub use radix::ProbeRadix;
pub use sink::{
    current_core, on_core, AccessLog, HostConflictReport, HostTraceSink, WindowHeat,
    DEFAULT_LOG_CAPACITY,
};

pub use scr_mtrace::trace::{Access, AccessKind, ConflictReport, SharedLine};
pub use scr_mtrace::LineId;
