//! A probe mirror of `scr_scalable::RadixArray`'s access footprint.
//!
//! The host kernel stores file pages and address-space entries in ordinary
//! locked maps (a `BTreeMap` behind an `RwLock`), but the *sharing* the
//! paper cares about is that of the radix representation: one line per
//! interior slot and one per leaf slot, so operations on different indices
//! are conflict-free. [`ProbeRadix`] tracks which leaves the simulated
//! array would have populated and records the exact line footprint each
//! radix operation would produce.

use crate::probe::Probe;
use crate::sink::HostTraceSink;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Fan-out of each radix level; must match `RadixArray`'s (asserted by a
/// test in `scr-scalable` against `RadixArray::CAPACITY`).
pub(crate) const FANOUT: usize = 64;

/// Probe mirror of a two-level radix array.
pub struct ProbeRadix {
    sink: Arc<HostTraceSink>,
    label: String,
    interior: Vec<Probe>,
    /// Leaf probe tables, created when an index under the interior slot is
    /// first stored — exactly when `RadixArray::ensure_leaf` populates one.
    leaves: Mutex<HashMap<usize, Vec<Probe>>>,
}

impl ProbeRadix {
    /// Maximum representable index.
    pub const CAPACITY: usize = FANOUT * FANOUT;

    /// Allocates the interior lines (the simulated array allocates its
    /// interior cells eagerly too).
    pub fn new(sink: &Arc<HostTraceSink>, label: &str) -> Self {
        ProbeRadix {
            sink: Arc::clone(sink),
            label: label.to_string(),
            interior: (0..FANOUT)
                .map(|i| sink.probe(format!("{label}.interior[{i}]")))
                .collect(),
            leaves: Mutex::new(HashMap::new()),
        }
    }

    fn split(index: usize) -> (usize, usize) {
        assert!(index < Self::CAPACITY, "radix index out of range");
        (index / FANOUT, index % FANOUT)
    }

    /// Records a `RadixArray::get`: the interior slot is read; the leaf
    /// slot is read only if the leaf table exists.
    pub fn get(&self, index: usize) {
        let (hi, lo) = Self::split(index);
        self.interior[hi].read();
        if let Some(leaf) = self.leaves.lock().get(&hi) {
            leaf[lo].read();
        }
    }

    /// Records a `RadixArray::set`: `ensure_leaf` reads the interior slot
    /// (and writes it when publishing a fresh leaf table), then the leaf
    /// slot is written.
    pub fn set(&self, index: usize) {
        let (hi, lo) = Self::split(index);
        self.interior[hi].read();
        let mut leaves = self.leaves.lock();
        let leaf = match leaves.get(&hi) {
            Some(leaf) => leaf,
            None => {
                let table: Vec<Probe> = (0..FANOUT)
                    .map(|l| self.sink.probe(format!("{}.leaf[{hi}][{l}]", self.label)))
                    .collect();
                self.interior[hi].write();
                leaves.entry(hi).or_insert(table)
            }
        };
        leaf[lo].write();
    }

    /// Records a `RadixArray::take`: interior read; if the leaf exists its
    /// slot is read, and written only when a value was actually removed
    /// (`present` — the caller knows whether the real map held the index).
    pub fn take(&self, index: usize, present: bool) {
        let (hi, lo) = Self::split(index);
        self.interior[hi].read();
        if let Some(leaf) = self.leaves.lock().get(&hi) {
            leaf[lo].read();
            if present {
                leaf[lo].write();
            }
        } else {
            debug_assert!(!present, "value present but leaf never populated");
        }
    }
}

impl std::fmt::Debug for ProbeRadix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProbeRadix")
            .field("label", &self.label)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::on_core;
    use scr_mtrace::trace::AccessKind::{Read, Write};

    fn trace(sink: &Arc<HostTraceSink>) -> Vec<(String, scr_mtrace::trace::AccessKind)> {
        let report = sink.end_window();
        report
            .accesses
            .iter()
            .map(|a| (sink.label_of(a.line), a.kind))
            .collect()
    }

    #[test]
    fn set_on_fresh_leaf_publishes_the_interior_slot() {
        let sink = HostTraceSink::new(2);
        let radix = ProbeRadix::new(&sink, "f.pages");
        sink.begin_window();
        radix.set(0);
        radix.set(1);
        assert_eq!(
            trace(&sink),
            vec![
                ("f.pages.interior[0]".into(), Read),
                ("f.pages.interior[0]".into(), Write),
                ("f.pages.leaf[0][0]".into(), Write),
                ("f.pages.interior[0]".into(), Read),
                ("f.pages.leaf[0][1]".into(), Write),
            ]
        );
    }

    #[test]
    fn get_of_unpopulated_subtree_touches_only_the_interior() {
        let sink = HostTraceSink::new(2);
        let radix = ProbeRadix::new(&sink, "r");
        sink.begin_window();
        radix.get(130);
        assert_eq!(trace(&sink), vec![("r.interior[2]".into(), Read)]);
    }

    #[test]
    fn take_writes_only_when_present() {
        let sink = HostTraceSink::new(2);
        let radix = ProbeRadix::new(&sink, "r");
        radix.set(5); // untraced (gate closed): populates the leaf
        sink.begin_window();
        radix.take(5, true);
        radix.take(6, false);
        assert_eq!(
            trace(&sink),
            vec![
                ("r.interior[0]".into(), Read),
                ("r.leaf[0][5]".into(), Read),
                ("r.leaf[0][5]".into(), Write),
                ("r.interior[0]".into(), Read),
                ("r.leaf[0][6]".into(), Read),
            ]
        );
    }

    #[test]
    fn different_indices_are_conflict_free_across_cores() {
        let sink = HostTraceSink::new(2);
        let radix = ProbeRadix::new(&sink, "as");
        sink.begin_window();
        on_core(0, || radix.set(10));
        on_core(1, || radix.set(200));
        assert!(sink.end_window().is_conflict_free());
    }
}
