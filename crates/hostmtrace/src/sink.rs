//! The trace sink: per-thread lock-free access logs behind an epoch-windowed
//! gate, and the window analysis that turns a log into a conflict report.

use crossbeam::utils::CachePadded;
use parking_lot::Mutex;
use scr_mtrace::trace::{analyze, Access, AccessKind, ConflictReport};
use scr_mtrace::LineId;
use std::cell::Cell;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

thread_local! {
    /// The "core" accesses from this thread are attributed to — the
    /// real-threads analogue of the simulated machine's current-core
    /// register.
    static CURRENT_CORE: Cell<usize> = const { Cell::new(0) };
}

/// Runs `f` with the calling thread's core register set to `core`,
/// restoring the previous value afterwards (mirrors
/// `scr_mtrace::SimMachine::on_core`).
pub fn on_core<R>(core: usize, f: impl FnOnce() -> R) -> R {
    CURRENT_CORE.with(|c| {
        let prev = c.replace(core);
        let out = f();
        c.set(prev);
        out
    })
}

/// The core the calling thread's accesses are currently attributed to.
pub fn current_core() -> usize {
    CURRENT_CORE.with(|c| c.get())
}

/// Default per-thread log capacity (slots, one access each). Generated
/// tests record a few hundred accesses per window; the default leaves two
/// orders of magnitude of headroom.
pub const DEFAULT_LOG_CAPACITY: usize = 1 << 14;

/// Bit layout of one encoded log slot (an `AtomicU64`):
/// bit 0 = present, bit 1 = write?, bits 2..48 = line id,
/// bits 48..64 = window epoch (wrapping, used to filter stale slots).
const PRESENT_BIT: u64 = 1;
const WRITE_BIT: u64 = 1 << 1;
const LINE_SHIFT: u64 = 2;
const LINE_MASK: u64 = (1 << 46) - 1;
const EPOCH_SHIFT: u64 = 48;
const EPOCH_MASK: u64 = 0xFFFF;

fn encode(line: LineId, kind: AccessKind, epoch: u64) -> u64 {
    debug_assert!(line.0 <= LINE_MASK, "line id out of encodable range");
    let kind_bit = match kind {
        AccessKind::Read => 0,
        AccessKind::Write => WRITE_BIT,
    };
    PRESENT_BIT
        | kind_bit
        | ((line.0 & LINE_MASK) << LINE_SHIFT)
        | ((epoch & EPOCH_MASK) << EPOCH_SHIFT)
}

fn decode(slot: u64, epoch: u64) -> Option<(LineId, AccessKind)> {
    if slot & PRESENT_BIT == 0 || (slot >> EPOCH_SHIFT) & EPOCH_MASK != epoch & EPOCH_MASK {
        return None;
    }
    let kind = if slot & WRITE_BIT != 0 {
        AccessKind::Write
    } else {
        AccessKind::Read
    };
    Some((LineId((slot >> LINE_SHIFT) & LINE_MASK), kind))
}

/// A lock-free, append-only, fixed-capacity log of encoded accesses.
///
/// Appending reserves a slot with a relaxed `fetch_add` and publishes the
/// encoded access with one release store; appends past capacity are counted
/// as dropped instead of blocking or reallocating. One log belongs to one
/// "core" slot of the sink and is cache-padded against its neighbours.
pub struct AccessLog {
    slots: Box<[AtomicU64]>,
    cursor: AtomicUsize,
}

impl AccessLog {
    fn new(capacity: usize) -> Self {
        AccessLog {
            slots: (0..capacity.max(1)).map(|_| AtomicU64::new(0)).collect(),
            cursor: AtomicUsize::new(0),
        }
    }

    /// Slots available before appends start dropping.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    fn append(&self, line: LineId, kind: AccessKind, epoch: u64) {
        let idx = self.cursor.fetch_add(1, Ordering::Relaxed);
        if let Some(slot) = self.slots.get(idx) {
            slot.store(encode(line, kind, epoch), Ordering::Release);
        }
    }

    /// Clears the used prefix for a fresh window.
    fn reset(&self) {
        let used = self.cursor.swap(0, Ordering::Relaxed).min(self.slots.len());
        for slot in &self.slots[..used] {
            slot.store(0, Ordering::Relaxed);
        }
    }

    /// Decodes this log's entries for `epoch` into `out`; returns how many
    /// appends overflowed the capacity.
    fn collect(&self, core: usize, epoch: u64, out: &mut Vec<Access>) -> usize {
        let reserved = self.cursor.load(Ordering::Acquire);
        let readable = reserved.min(self.slots.len());
        for slot in &self.slots[..readable] {
            if let Some((line, kind)) = decode(slot.load(Ordering::Acquire), epoch) {
                out.push(Access {
                    seq: 0,
                    core,
                    line,
                    kind,
                });
            }
        }
        reserved.saturating_sub(self.slots.len())
    }
}

/// The sharing monitor: labelled logical lines, per-thread logs, and an
/// epoch-windowed tracing gate.
pub struct HostTraceSink {
    enabled: AtomicBool,
    epoch: AtomicU64,
    labels: Mutex<Vec<String>>,
    logs: Vec<CachePadded<AccessLog>>,
}

impl HostTraceSink {
    /// A sink with one log per core and the default capacity.
    pub fn new(cores: usize) -> Arc<Self> {
        Self::with_capacity(cores, DEFAULT_LOG_CAPACITY)
    }

    /// A sink with an explicit per-thread log capacity.
    pub fn with_capacity(cores: usize, capacity_per_thread: usize) -> Arc<Self> {
        Arc::new(HostTraceSink {
            enabled: AtomicBool::new(false),
            epoch: AtomicU64::new(0),
            labels: Mutex::new(Vec::new()),
            logs: (0..cores.max(1))
                .map(|_| CachePadded::new(AccessLog::new(capacity_per_thread)))
                .collect(),
        })
    }

    /// Number of per-thread log slots ("cores") the sink was built with.
    pub fn cores(&self) -> usize {
        self.logs.len()
    }

    /// Allocates a fresh labelled logical line (mirrors
    /// `SimMachine::alloc_line`). Allocation never records an access.
    pub fn alloc_line(&self, label: impl Into<String>) -> LineId {
        let mut labels = self.labels.lock();
        let id = LineId(labels.len() as u64);
        labels.push(label.into());
        id
    }

    /// The label attached to a line at allocation time.
    pub fn label_of(&self, line: LineId) -> String {
        self.labels
            .lock()
            .get(line.0 as usize)
            .cloned()
            .unwrap_or_else(|| format!("line#{}", line.0))
    }

    /// Allocates a line and returns a [`Probe`] handle for it.
    pub fn probe(self: &Arc<Self>, label: impl Into<String>) -> super::Probe {
        super::Probe::new(Arc::clone(self), self.alloc_line(label))
    }

    /// Is a tracing window currently open?
    pub fn is_tracing(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Opens a tracing window: clears every log, advances the epoch and
    /// opens the gate. Accesses recorded by threads that raced a previous
    /// window's close carry the old epoch and are filtered at collection.
    pub fn begin_window(&self) {
        for log in &self.logs {
            log.reset();
        }
        self.epoch.fetch_add(1, Ordering::SeqCst);
        self.enabled.store(true, Ordering::SeqCst);
    }

    /// Closes the window and analyses it. The caller must have joined the
    /// traced threads first — a straggler still recording would race the
    /// collection (its accesses are either seen or filtered by epoch, but
    /// never corrupt the log).
    pub fn end_window(&self) -> HostConflictReport {
        self.enabled.store(false, Ordering::SeqCst);
        let epoch = self.epoch.load(Ordering::SeqCst);
        let mut accesses = Vec::new();
        let mut dropped = 0;
        for (core, log) in self.logs.iter().enumerate() {
            dropped += log.collect(core, epoch, &mut accesses);
        }
        for (seq, access) in accesses.iter_mut().enumerate() {
            access.seq = seq as u64;
        }
        let report = analyze(&accesses, |line| self.label_of(line));
        HostConflictReport {
            report,
            accesses,
            dropped,
        }
    }

    /// Records one access against the calling thread's current core. The
    /// off path (no open window) is a single relaxed load.
    pub fn record(&self, line: LineId, kind: AccessKind) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        let epoch = self.epoch.load(Ordering::Relaxed);
        let core = current_core() % self.logs.len();
        self.logs[core].append(line, kind, epoch);
    }
}

impl fmt::Debug for HostTraceSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HostTraceSink")
            .field("cores", &self.logs.len())
            .field("tracing", &self.is_tracing())
            .finish()
    }
}

/// The analysis of one traced window: the §3.3 conflict report over the
/// collected accesses, plus the raw window and overflow accounting.
#[derive(Clone, Debug)]
pub struct HostConflictReport {
    /// Shared (conflicting) lines, in the shared `scr-mtrace` vocabulary.
    pub report: ConflictReport,
    /// The collected accesses (core-major order; `seq` is collection order).
    pub accesses: Vec<Access>,
    /// Appends that overflowed a log's capacity. A non-zero count means the
    /// window may have missed conflicts, so it is never reported
    /// conflict-free.
    pub dropped: usize,
}

impl HostConflictReport {
    /// Conflict-free means no shared lines *and* no dropped accesses.
    pub fn is_conflict_free(&self) -> bool {
        self.dropped == 0 && self.report.is_conflict_free()
    }

    /// Labels of the conflicting lines (deduplicated, sorted).
    pub fn conflicting_labels(&self) -> Vec<String> {
        self.report.conflicting_labels()
    }

    /// Digests this window for heat accumulation: per-label read/write
    /// counts plus which labels conflicted. `label_of` maps a [`LineId`] to
    /// the label to accumulate under — callers pass the sink's
    /// [`HostTraceSink::label_of`], optionally composed with a normalizer
    /// (the Figure 6 runner strips per-instance suffixes so heat aggregates
    /// per structure). The digest is computed after the window has ended,
    /// so it adds nothing to the traced footprint; `scr-obs` folds it into
    /// a running `HeatMap`.
    pub fn window_heat(&self, label_of: impl Fn(LineId) -> String) -> WindowHeat {
        let mut per_line: BTreeMap<(LineId, AccessKind), u64> = BTreeMap::new();
        for access in &self.accesses {
            *per_line.entry((access.line, access.kind)).or_default() += 1;
        }
        let mut accesses: BTreeMap<(String, bool), u64> = BTreeMap::new();
        for ((line, kind), count) in per_line {
            *accesses
                .entry((label_of(line), kind == AccessKind::Write))
                .or_default() += count;
        }
        let mut conflicting: Vec<String> = self
            .report
            .shared_lines
            .iter()
            .map(|shared| label_of(shared.line))
            .collect();
        conflicting.sort();
        conflicting.dedup();
        WindowHeat {
            accesses: accesses
                .into_iter()
                .map(|((label, is_write), count)| (label, is_write, count))
                .collect(),
            conflicting,
        }
    }
}

/// The per-label digest of one traced window (see
/// [`HostConflictReport::window_heat`]): normalized labels with read/write
/// counts, plus the deduplicated conflicting labels.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WindowHeat {
    /// `(label, is_write, access count)` triples, label-sorted.
    pub accesses: Vec<(String, bool, u64)>,
    /// Labels that conflicted in this window, sorted and deduplicated.
    pub conflicting: Vec<String>,
}

impl fmt::Display for HostConflictReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.dropped > 0 {
            writeln!(
                f,
                "WARNING: {} accesses dropped (log overflow)",
                self.dropped
            )?;
        }
        write!(f, "{}", self.report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_closed_records_nothing() {
        let sink = HostTraceSink::new(2);
        let probe = sink.probe("x");
        probe.write();
        probe.read();
        let report = sink.end_window();
        assert!(report.accesses.is_empty());
        assert_eq!(report.dropped, 0);
    }

    #[test]
    fn window_records_reads_and_writes_with_core() {
        let sink = HostTraceSink::new(4);
        let probe = sink.probe("ctr");
        sink.begin_window();
        on_core(3, || {
            probe.write();
            probe.read();
        });
        let report = sink.end_window();
        assert_eq!(report.accesses.len(), 2);
        assert!(report.accesses.iter().all(|a| a.core == 3));
        assert_eq!(report.accesses[0].kind, AccessKind::Write);
        assert_eq!(report.accesses[1].kind, AccessKind::Read);
        // One core, so no conflict despite the write.
        assert!(report.is_conflict_free());
    }

    #[test]
    fn cross_thread_write_conflicts_and_labels_resolve() {
        let sink = HostTraceSink::new(2);
        let probe = sink.probe("file.refcount");
        sink.begin_window();
        std::thread::scope(|s| {
            for core in 0..2 {
                let probe = probe.clone();
                s.spawn(move || on_core(core, || probe.rmw()));
            }
        });
        let report = sink.end_window();
        assert!(!report.is_conflict_free());
        assert_eq!(
            report.conflicting_labels(),
            vec!["file.refcount".to_string()]
        );
    }

    #[test]
    fn windows_are_isolated_by_epoch() {
        let sink = HostTraceSink::new(2);
        let probe = sink.probe("a");
        sink.begin_window();
        probe.write();
        let first = sink.end_window();
        assert_eq!(first.accesses.len(), 1);
        sink.begin_window();
        let second = sink.end_window();
        assert!(second.accesses.is_empty(), "stale accesses leaked");
    }

    #[test]
    fn overflow_is_counted_and_never_conflict_free() {
        let sink = HostTraceSink::with_capacity(1, 4);
        let probe = sink.probe("hot");
        sink.begin_window();
        for _ in 0..10 {
            probe.read();
        }
        let report = sink.end_window();
        assert_eq!(report.accesses.len(), 4);
        assert_eq!(report.dropped, 6);
        assert!(!report.is_conflict_free());
    }

    #[test]
    fn window_heat_digests_accesses_and_conflicts() {
        let sink = HostTraceSink::new(2);
        let hot = sink.probe("fd-bitmap");
        let cold = sink.probe("inode.len");
        sink.begin_window();
        std::thread::scope(|s| {
            for core in 0..2 {
                let hot = hot.clone();
                let cold = cold.clone();
                s.spawn(move || {
                    on_core(core, || {
                        hot.rmw();
                        cold.read();
                    })
                });
            }
        });
        let report = sink.end_window();
        let heat = report.window_heat(|line| sink.label_of(line));
        // rmw = one read + one write per core; reads and writes are
        // separate label rows, label-sorted.
        assert_eq!(
            heat.accesses,
            vec![
                ("fd-bitmap".to_string(), false, 2),
                ("fd-bitmap".to_string(), true, 2),
                ("inode.len".to_string(), false, 2),
            ]
        );
        assert_eq!(heat.conflicting, vec!["fd-bitmap".to_string()]);
    }

    #[test]
    fn on_core_restores_previous_core() {
        assert_eq!(current_core(), 0);
        let inner = on_core(5, || on_core(2, current_core));
        assert_eq!(inner, 2);
        assert_eq!(current_core(), 0);
    }

    #[test]
    fn unknown_line_label_falls_back() {
        let sink = HostTraceSink::new(1);
        assert_eq!(sink.label_of(LineId(99)), "line#99");
    }
}
