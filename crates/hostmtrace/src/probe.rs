//! Probe handles: the instrumentation side of the monitor.
//!
//! A [`Probe`] stands for one logical cache line of an instrumented host
//! structure. The composite probes ([`LockProbe`], [`SeqProbe`]) reproduce
//! the access footprints of their simulated twins (`TracedLock`, `SeqLock`)
//! so a host structure records the same multiset of accesses its simulated
//! counterpart would — which is what makes the SIM↔host cross-check of the
//! Figure 6 pipeline meaningful.

use crate::sink::HostTraceSink;
use scr_mtrace::trace::AccessKind;
use scr_mtrace::LineId;
use std::sync::Arc;

/// A handle to one labelled logical line.
#[derive(Clone)]
pub struct Probe {
    sink: Arc<HostTraceSink>,
    line: LineId,
}

impl Probe {
    pub(crate) fn new(sink: Arc<HostTraceSink>, line: LineId) -> Self {
        Probe { sink, line }
    }

    /// The line this probe records against.
    pub fn line(&self) -> LineId {
        self.line
    }

    /// The sink this probe records into.
    pub fn sink(&self) -> &Arc<HostTraceSink> {
        &self.sink
    }

    /// The label the line was allocated with.
    pub fn label(&self) -> String {
        self.sink.label_of(self.line)
    }

    /// Records a load (mirrors `TracedCell::get`/`with`).
    pub fn read(&self) {
        self.sink.record(self.line, AccessKind::Read);
    }

    /// Records a store (mirrors `TracedCell::set`).
    pub fn write(&self) {
        self.sink.record(self.line, AccessKind::Write);
    }

    /// Records a read-modify-write (mirrors `TracedCell::update` /
    /// `fetch_update`: one read then one write).
    pub fn rmw(&self) {
        self.sink.record(self.line, AccessKind::Read);
        self.sink.record(self.line, AccessKind::Write);
    }
}

impl std::fmt::Debug for Probe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Probe")
            .field("line", &self.line)
            .field("label", &self.label())
            .finish()
    }
}

/// Mirrors `scr_scalable::TracedLock`'s footprint: acquisition is a
/// read-modify-write of the lock word (a real `lock cmpxchg`), release is a
/// plain store.
#[derive(Clone, Debug)]
pub struct LockProbe {
    word: Probe,
}

impl LockProbe {
    /// Allocates the lock-word line.
    pub fn new(sink: &Arc<HostTraceSink>, label: impl Into<String>) -> Self {
        LockProbe {
            word: sink.probe(label),
        }
    }

    /// Records an acquisition (read + write of the lock word).
    pub fn acquire(&self) {
        self.word.rmw();
    }

    /// Records a release (write of the lock word).
    pub fn release(&self) {
        self.word.write();
    }

    /// The lock word's probe.
    pub fn word(&self) -> &Probe {
        &self.word
    }
}

/// Mirrors `scr_scalable::SeqLock`'s footprint: readers read the sequence
/// line, the data line, then the sequence line again; writers bump the
/// sequence line, update the data line, and bump the sequence line again.
#[derive(Clone, Debug)]
pub struct SeqProbe {
    seq: Probe,
    data: Probe,
}

impl SeqProbe {
    /// Allocates the `.seq` and `.data` lines under `label`.
    pub fn new(sink: &Arc<HostTraceSink>, label: &str) -> Self {
        SeqProbe {
            seq: sink.probe(format!("{label}.seq")),
            data: sink.probe(format!("{label}.data")),
        }
    }

    /// Records a seqlock read (reads only — concurrent readers stay
    /// conflict-free).
    pub fn read(&self) {
        self.seq.read();
        self.data.read();
        self.seq.read();
    }

    /// Records a seqlock write (both lines read-modify-written).
    pub fn write(&self) {
        self.seq.rmw();
        self.data.rmw();
        self.seq.rmw();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::on_core;
    use scr_mtrace::trace::AccessKind::{Read, Write};

    fn kinds(sink: &Arc<HostTraceSink>) -> Vec<(usize, AccessKind)> {
        sink.end_window()
            .accesses
            .iter()
            .map(|a| (a.core, a.kind))
            .collect()
    }

    #[test]
    fn lock_probe_mirrors_traced_lock() {
        let sink = HostTraceSink::new(2);
        let lock = LockProbe::new(&sink, "l");
        sink.begin_window();
        lock.acquire();
        lock.release();
        assert_eq!(kinds(&sink), vec![(0, Read), (0, Write), (0, Write)]);
    }

    #[test]
    fn seq_probe_reader_is_read_only_and_writer_is_not() {
        let sink = HostTraceSink::new(2);
        let seq = SeqProbe::new(&sink, "inode.size");
        sink.begin_window();
        on_core(0, || seq.read());
        on_core(1, || seq.read());
        let readers = sink.end_window();
        assert!(readers.is_conflict_free());
        sink.begin_window();
        on_core(0, || seq.read());
        on_core(1, || seq.write());
        let mixed = sink.end_window();
        assert!(!mixed.is_conflict_free());
        assert!(mixed
            .conflicting_labels()
            .iter()
            .any(|l| l == "inode.size.seq"));
    }

    #[test]
    fn probe_labels_resolve() {
        let sink = HostTraceSink::new(1);
        let p = sink.probe("dentry.refcount");
        assert_eq!(p.label(), "dentry.refcount");
    }
}
