//! Acceptance tests for the host-side Figure 6 pipeline.
//!
//! Two layers of evidence that the real-threads monitor reproduces the
//! simulated heatmap:
//!
//! 1. **Instrumentation faithfulness** — replaying a generated test
//!    *sequentially* on the instrumented `HostKernel` must record exactly
//!    the (core, label, kind) access multiset the simulated `Sv6Kernel`
//!    records for the same test. Sequential replay removes scheduling
//!    nondeterminism, so any difference is an instrumentation bug.
//! 2. **Cross-check under real concurrency** — running the pipeline with
//!    racing threads, every simulated-conflict-free test must stay
//!    host-conflict-free; the only tolerated divergences are the documented
//!    lowest-FD-allocation contention cases, asserted explicitly.

use scr_core::pipeline::bucket_distinct_names;
use scr_core::{
    analyze_pair, enumerate_shapes, generate_tests, ConcreteTest, KernelFactory, Sv6Factory,
};
use scr_host::fig6::{
    normalize_pipe_label, replay_traced_with_sink, run_host_fig6, HostFig6Config,
};
use scr_host::kernel::HostMode;
use scr_kernel::api::perform;
use scr_model::{CallKind, ModelConfig};
use scr_mtrace::AccessKind;

/// The (core, label, kind) multiset a test records on the simulated sv6
/// kernel (setup untraced on core 0, the pair traced on cores 0 and 1 —
/// the MTRACE driver's protocol).
fn sim_footprint(test: &ConcreteTest, cores: usize) -> Vec<(usize, String, AccessKind)> {
    let factory = Sv6Factory { cores };
    let kernel = factory.build();
    let machine = kernel.machine().clone();
    for _ in 0..test.procs.max(2) {
        kernel.new_process();
    }
    machine.stop_tracing();
    for (core, op) in &test.setup {
        machine.on_core(*core, || perform(kernel.as_ref(), *core, op));
    }
    machine.clear_trace();
    machine.start_tracing();
    machine.on_core(0, || perform(kernel.as_ref(), 0, &test.op_a));
    machine.on_core(1, || perform(kernel.as_ref(), 1, &test.op_b));
    machine.stop_tracing();
    let mut out: Vec<_> = machine
        .accesses()
        .iter()
        .map(|a| {
            (
                a.core,
                normalize_pipe_label(&machine.label_of(a.line)),
                a.kind,
            )
        })
        .collect();
    out.sort();
    out
}

/// The same multiset recorded by a sequential traced replay on the host.
fn host_footprint(test: &ConcreteTest, cores: usize) -> Vec<(usize, String, AccessKind)> {
    let (sink, report, _) = replay_traced_with_sink(HostMode::Sv6, cores, test, false);
    assert_eq!(report.dropped, 0, "log overflow in {}", test.id);
    let mut out: Vec<_> = report
        .accesses
        .iter()
        .map(|a| (a.core, normalize_pipe_label(&sink.label_of(a.line)), a.kind))
        .collect();
    out.sort();
    out
}

/// Generates the corpus for a call set (the quick pipeline's bounds).
fn corpus(calls: &[CallKind], max_assignments: usize) -> Vec<ConcreteTest> {
    let model = ModelConfig {
        inodes: 2,
        ..ModelConfig::default()
    };
    let names = bucket_distinct_names(8);
    let mut tests = Vec::new();
    for (i, &call_a) in calls.iter().enumerate() {
        for &call_b in calls.iter().skip(i) {
            for shape in enumerate_shapes(call_a, call_b, &model) {
                let analysis = analyze_pair(&shape, &model);
                if analysis.cases.is_empty() {
                    continue;
                }
                tests.extend(
                    generate_tests(&shape, &analysis.cases, &model, &names, max_assignments).tests,
                );
            }
        }
    }
    tests
}

/// Compares footprints over the corpus, stride-sampling when it is large:
/// the point is covering every access-pattern family, not replaying every
/// isomorphism-class witness twice (`cargo test` runs this in debug).
fn assert_faithful(calls: &[CallKind], max_assignments: usize) {
    let tests = corpus(calls, max_assignments);
    assert!(!tests.is_empty(), "corpus for {calls:?} is empty");
    let stride = (tests.len() / 250).max(1);
    for test in tests.iter().step_by(stride) {
        assert_eq!(
            host_footprint(test, 4),
            sim_footprint(test, 4),
            "instrumented host footprint diverges from the simulator for {}",
            test.id
        );
    }
}

#[test]
fn host_instrumentation_is_faithful_for_name_operations() {
    assert_faithful(
        &[
            CallKind::Open,
            CallKind::Link,
            CallKind::Unlink,
            CallKind::Rename,
            CallKind::Stat,
        ],
        8,
    );
}

#[test]
fn host_instrumentation_is_faithful_for_descriptor_and_pipe_operations() {
    // Lseek is exercised by `host_fig6_smoke` below instead of here: its
    // pairs with read/write are where TESTGEN's solver is slowest, and the
    // fstat/close/pipe corpus already covers every offset access pattern.
    assert_faithful(
        &[
            CallKind::Fstat,
            CallKind::Close,
            CallKind::Pipe,
            CallKind::Read,
            CallKind::Write,
        ],
        12,
    );
}

#[test]
fn host_instrumentation_is_faithful_for_memory_operations() {
    assert_faithful(
        &[
            CallKind::Pwrite,
            CallKind::Mmap,
            CallKind::Munmap,
            CallKind::Mprotect,
            CallKind::Memread,
            CallKind::Memwrite,
        ],
        8,
    );
}

#[test]
fn host_instrumentation_is_faithful_for_lseek() {
    assert_faithful(&[CallKind::Fstat, CallKind::Lseek, CallKind::Close], 12);
}

/// The acceptance criterion: the concurrent cross-check reports zero
/// unexplained divergences over a call set that deliberately includes the
/// descriptor-allocating calls where lowest-FD contention can appear.
#[test]
fn host_fig6_cross_check_has_no_unexplained_divergences() {
    let config = HostFig6Config {
        max_assignments_per_case: 8,
        schedules_per_test: 2,
        ..HostFig6Config::quick(&[
            CallKind::Open,
            CallKind::Stat,
            CallKind::Close,
            CallKind::Pipe,
            CallKind::Read,
        ])
    };
    let results = run_host_fig6(&config);
    assert!(results.tests_run > 0);
    assert_eq!(results.dropped, 0);
    assert_eq!(
        results.sim_sv6.total_tests(),
        results.host_sv6.total_tests()
    );
    assert_eq!(
        results.sim_sv6.total_tests(),
        results.host_linux.total_tests()
    );
    // Every divergence must be in the explicit exception list.
    assert!(
        results.unexplained_divergences().is_empty(),
        "unexplained SIM↔host divergences:\n{}",
        results.describe_divergences()
    );
    for divergence in &results.divergences {
        assert_eq!(divergence.exception, Some(scr_host::LOWEST_FD_EXCEPTION));
        assert!(
            !divergence.shared_labels.is_empty()
                && divergence.shared_labels.iter().all(|l| l.contains("].fd[")),
            "exception must name its fd-slot lines: {divergence:?}"
        );
    }
    // The giant-lock baseline must collapse, as in the paper's Linux column.
    results.assert_linux_collapses().unwrap();
    // And the host sv6 kernel must scale essentially as often as the
    // simulated one (exactly as often, minus the listed exceptions).
    assert_eq!(
        results.sim_sv6.total_conflict_free() - results.host_sv6.total_conflict_free(),
        results.divergences.len()
    );
}
