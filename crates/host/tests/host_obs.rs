//! Integration tests for the telemetry layer riding on the host kernel:
//! exactly-once accounting through the mail pipeline, the retry-tail
//! invariant, Chrome trace sanity, probe parity (observing syscalls must
//! not change the hostmtrace footprint), and heat-table/heatmap agreement.

use scr_host::workloads::{mail_pipeline_observed, MailTelemetry};
use scr_host::{run_host_fig6, HostFig6Config, HostKernel, HostMode, HostOptions};
use scr_hostmtrace::{on_core, HostTraceSink, WindowHeat};
use scr_kernel::api::{OpenFlags, StatMask, SyscallApi};
use scr_kernel::mail::MailConfig;
use scr_model::CallKind;
use scr_obs::{MetricsRegistry, ObservedKernel, SyscallKind, SyscallRecorder};

/// The mail pipeline, observed: every message is delivered exactly once,
/// the recv decomposition explains the whole latency tail (each `qman_step`
/// is exactly one recv — either a delivery or an EAGAIN retry), and the
/// stage trace holds exactly the seven-span ledger per message.
#[test]
fn observed_pipeline_accounts_for_every_recv_and_span() {
    let telemetry = MailTelemetry::new(4);
    let report = mail_pipeline_observed(
        HostMode::Sv6,
        MailConfig::CommutativeApis,
        2,
        2,
        15,
        Some(&telemetry),
    );
    assert!(report.exactly_once(), "pipeline lost or duplicated mail");
    let messages = 2 * 15u64;
    assert_eq!(telemetry.enqueued.total(), messages);
    assert_eq!(telemetry.delivered.total(), messages);

    // Retry-tail invariant: the recv count decomposes exactly into
    // deliveries plus EAGAIN retries, and the recv latency histogram saw
    // every one of those calls — the tail is fully explained by retries.
    let recvs = telemetry.syscalls.count_of(SyscallKind::Recv);
    let retries = telemetry.eagain_retries.total();
    assert_eq!(recvs, messages + retries);
    assert_eq!(
        telemetry
            .syscalls
            .errno_count(SyscallKind::Recv, scr_kernel::api::Errno::EAGAIN),
        retries
    );
    assert_eq!(telemetry.syscalls.latency(SyscallKind::Recv).count, recvs);
    // The backoff pairing: every EAGAIN retry backed off exactly once.
    assert_eq!(telemetry.yield_spins.total(), retries);

    // Seven spans per message: enqueue + notify on the enqueuer side,
    // receive + spawn + deliver + reap + cleanup on the qman side.
    assert_eq!(telemetry.trace.len(), 7 * messages as usize);

    // The Chrome export is loadable: one complete-event record per span,
    // named after the pipeline stages.
    let json = telemetry.trace.to_chrome_json();
    assert!(json.starts_with("{\"traceEvents\":["));
    assert!(json.ends_with("}"));
    assert_eq!(json.matches("\"ph\":\"X\"").count(), 7 * messages as usize);
    for stage in [
        "mail.enqueue",
        "mail.notify",
        "mail.receive",
        "mail.spawn",
        "mail.deliver",
        "mail.reap",
        "mail.cleanup",
    ] {
        assert!(
            json.contains(&format!("\"name\":\"{stage}\"")),
            "chrome trace missing {stage}"
        );
    }

    // The merged snapshot carries the same numbers through the JSON and
    // text renders the examples export.
    let snapshot = telemetry.registry.snapshot();
    let rendered = snapshot.to_json();
    assert!(rendered.contains("\"mail.delivered\""));
    assert!(rendered.contains("\"syscall.recv.calls\""));
    let text = snapshot.render_text();
    assert!(text.contains("mail.delivered"));
}

/// Runs a fixed deterministic syscall sequence inside a tracing window,
/// optionally through [`ObservedKernel`] with an *enabled* registry, and
/// returns the window's per-line digest plus how many syscalls the
/// recorder saw.
fn traced_heat(observe: bool) -> (WindowHeat, u64) {
    let sink = HostTraceSink::new(2);
    let kernel = HostKernel::instrumented(2, HostMode::Sv6, HostOptions::default(), &sink);
    let pid = kernel.new_process();
    let fd = on_core(0, || kernel.open(0, pid, "parity", OpenFlags::create())).unwrap();

    let registry = MetricsRegistry::new(2);
    let recorder = SyscallRecorder::new(&registry);
    let observed = ObservedKernel::new(&kernel, recorder.clone());
    let api: &(dyn SyscallApi + Sync) = if observe { &observed } else { &kernel };

    sink.begin_window();
    on_core(0, || api.fstat(0, pid, fd)).unwrap();
    on_core(1, || api.link(1, pid, "parity", "parity-b")).unwrap();
    on_core(0, || api.fstatx(0, pid, fd, StatMask::all_but_nlink())).unwrap();
    on_core(1, || api.unlink(1, pid, "parity-b")).unwrap();
    let report = sink.end_window();

    let heat = report.window_heat(|line| sink.label_of(line));
    let observed_calls = SyscallKind::ALL
        .iter()
        .map(|&kind| recorder.count_of(kind))
        .sum();
    (heat, observed_calls)
}

/// Probe parity: wrapping the instrumented kernel in the recorder — with
/// metrics *enabled* — must leave the traced footprint byte-for-byte
/// identical. The recorder's counters live outside the traced lines, so
/// observation cannot manufacture (or hide) a conflict.
#[test]
fn enabling_metrics_changes_no_hostmtrace_footprint() {
    let (raw_heat, raw_seen) = traced_heat(false);
    let (observed_heat, observed_seen) = traced_heat(true);
    assert_eq!(raw_seen, 0, "raw run must not touch the recorder");
    assert_eq!(observed_seen, 4, "recorder missed observed syscalls");
    assert!(
        !observed_heat.accesses.is_empty(),
        "window traced no accesses"
    );
    assert_eq!(raw_heat, observed_heat);
}

/// The Figure 6 heat tables agree with the heatmaps they annotate on a
/// real (small) sweep: a substrate reporting conflicting tests must show
/// hot lines and vice versa, and the known fstat↔link contention shows up
/// as a concrete hot label on the Linux-like host.
#[test]
fn fig6_heat_tables_match_the_heatmaps() {
    let config = HostFig6Config::quick(&[CallKind::Stat, CallKind::Link]);
    let results = run_host_fig6(&config);
    assert_eq!(results.dropped, 0);
    for (label, report, heat) in [
        ("sv6-host", &results.host_sv6, &results.heat_sv6),
        ("linux-host", &results.host_linux, &results.heat_linux),
    ] {
        let has_conflicts = report.total_tests() > report.total_conflict_free();
        let has_heat = heat.total_conflict_windows() > 0;
        assert_eq!(
            has_conflicts, has_heat,
            "{label}: heatmap ({has_conflicts}) and heat table ({has_heat}) disagree"
        );
    }
    // stat ∥ link contends on the inode's link count under the global-lock
    // substrate; the heat table must name at least one hot line for it.
    let top = results.heat_linux.top_n(5);
    assert!(
        !top.is_empty(),
        "linux-host ran conflicting tests but the heat table is empty"
    );
}
