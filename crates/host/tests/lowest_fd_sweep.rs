//! The lowest-FD exception-list sweep (ROADMAP follow-up): run the host
//! Figure 6 cross-check over the **full 18-call corpus** and check that
//! the `lowest-fd-allocation` exception list stays confined to
//! fd-allocating pairs (`open`/`pipe` without `O_ANYFD`), comparing the
//! observed pair list against the committed baseline
//! (`lowest_fd_exception_baseline.txt`).
//!
//! The sweep self-skips below 4 hardware threads (the ROADMAP asks for a
//! ≥4-core runner, where the four replay "cores" map to real hardware
//! threads); set `SCR_SWEEP_FORCE=1` to run it anyway — conflict verdicts
//! are exact regardless of the thread count, they depend on touched lines,
//! not timing. `SCR_SWEEP_ASSIGNMENTS` widens the per-case assignment
//! bound (default 24, the quick pipeline's; the committed baseline was
//! generated at 96 via `--all`, so it upper-bounds anything observed
//! here).

use scr_host::fig6::LOWEST_FD_EXCEPTION;
use scr_host::{available_threads, run_host_fig6, HostFig6Config};
use scr_model::ALL_CALLS;
use std::collections::BTreeSet;

fn baseline_pairs() -> BTreeSet<(String, String)> {
    include_str!("lowest_fd_exception_baseline.txt")
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| {
            let mut parts = l.split_whitespace();
            (
                parts.next().expect("call_a").to_string(),
                parts.next().expect("call_b").to_string(),
            )
        })
        .collect()
}

#[test]
fn lowest_fd_exceptions_stay_confined_to_fd_allocating_pairs() {
    if available_threads() < 4 && std::env::var_os("SCR_SWEEP_FORCE").is_none() {
        eprintln!(
            "skipping lowest-FD sweep: {} hardware thread(s) < 4 (set SCR_SWEEP_FORCE=1 to run)",
            available_threads()
        );
        return;
    }
    let max_assignments = std::env::var("SCR_SWEEP_ASSIGNMENTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(24);
    let config = HostFig6Config {
        max_assignments_per_case: max_assignments,
        schedules_per_test: 1,
        ..HostFig6Config::quick(ALL_CALLS.as_ref())
    };
    let results = run_host_fig6(&config);
    assert!(results.tests_run > 1000, "the full corpus must be swept");
    assert_eq!(results.dropped, 0, "log overflow");

    // 1. Nothing outside the documented exception class.
    assert!(
        results.unexplained_divergences().is_empty(),
        "unexplained SIM↔host divergences:\n{}",
        results.describe_divergences()
    );

    // 2. Every tagged divergence is an fd-allocating pair: open or pipe —
    //    the calls that claim descriptor slots without O_ANYFD.
    let mut observed = BTreeSet::new();
    for divergence in &results.divergences {
        assert_eq!(divergence.exception, Some(LOWEST_FD_EXCEPTION));
        let (a, b) = (
            divergence.calls.0.name().to_string(),
            divergence.calls.1.name().to_string(),
        );
        for call in [&a, &b] {
            assert!(
                call == "open" || call == "pipe",
                "{}: lowest-fd divergence on a non-fd-allocating call {call}",
                divergence.test_id
            );
        }
        observed.insert(if a <= b { (a, b) } else { (b, a) });
    }

    // 3. The observed pair list is covered by the committed baseline
    //    (generated from the wider --all corpus). A new pair means the
    //    corpus changed — inspect it and regenerate the baseline.
    let baseline = baseline_pairs();
    let new: Vec<_> = observed.difference(&baseline).collect();
    assert!(
        new.is_empty(),
        "lowest-fd exception pairs not in the committed baseline: {new:?}"
    );
}
