//! Integration tests for the real-threads backend.
//!
//! Timing-shape assertions are deliberately loose and are skipped on hosts
//! without enough parallelism (or under Miri): CI machines are noisy, and
//! the goal is the qualitative claim — per-core structures do not get
//! *much worse* as threads are added, while globally-locked or shared-line
//! structures do not get *better* — not a precise ratio.

use scr_core::{analyze_pair, generate_tests, PairShape};
use scr_host::differential::{
    differential_campaign, differential_sample, run_differential, CampaignConfig,
};
use scr_host::harness::LoadHarness;
use scr_host::kernel::{HostKernel, HostMode};
use scr_host::workloads;
use scr_model::calls::ArgSlots;
use scr_model::{CallKind, ModelConfig};
use scr_scalable::real::{PerCoreCounter, SharedCounter};
use std::sync::Arc;

fn parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn skip_timing_checks() -> bool {
    cfg!(miri) || parallelism() < 4
}

#[test]
fn differential_runner_agrees_on_name_operations() {
    let report = differential_sample(
        &[
            CallKind::Open,
            CallKind::Stat,
            CallKind::Link,
            CallKind::Unlink,
        ],
        120,
    );
    assert!(
        report.tests_run >= 20,
        "expected a real sample, got {}",
        report.tests_run
    );
    assert!(
        report.all_agree(),
        "simulated and host results diverged:\n{}",
        report.describe_mismatches()
    );
}

#[test]
fn differential_runner_agrees_on_descriptor_and_vm_operations() {
    let report = differential_sample(
        &[
            CallKind::Fstat,
            CallKind::Lseek,
            CallKind::Pread,
            CallKind::Pwrite,
            CallKind::Memread,
            CallKind::Memwrite,
        ],
        120,
    );
    assert!(report.tests_run > 0);
    assert!(
        report.all_agree(),
        "simulated and host results diverged:\n{}",
        report.describe_mismatches()
    );
}

#[test]
fn differential_runner_agrees_on_pipe_operations() {
    let report = differential_sample(
        &[
            CallKind::Pipe,
            CallKind::Read,
            CallKind::Write,
            CallKind::Close,
        ],
        80,
    );
    assert!(report.tests_run > 0);
    assert!(
        report.all_agree(),
        "simulated and host results diverged:\n{}",
        report.describe_mismatches()
    );
}

#[test]
fn read_read_half_closed_pipe_representatives_agree_with_the_host() {
    // Regression for the representative-selection tentpole: Read(fd0) ∥
    // Read(fd0) now materialises its pipe-backed cases — the half-closed
    // EOF∥EOF state (`pipe()` then close of the write end) directly, and
    // the EAGAIN∥EAGAIN state via a re-solved both-ends-open completion.
    // Every materialised representative must agree bit-for-bit with the
    // simulated kernel on real threads; the only families allowed to stay
    // skipped are the dup2-requiring ones.
    let cfg = ModelConfig {
        names: 4,
        inodes: 2,
        procs: 1,
        fds_per_proc: 2,
        file_pages: 2,
        vm_pages: 2,
        sockets: 0,
        queue_cap: 0,
        children: 0,
    };
    let shape = PairShape {
        calls: (CallKind::Read, CallKind::Read),
        slots_a: ArgSlots {
            proc: 0,
            fds: vec![0],
            ..Default::default()
        },
        slots_b: ArgSlots {
            proc: 0,
            fds: vec![0],
            ..Default::default()
        },
        tag: "samefd".into(),
    };
    let analysis = analyze_pair(&shape, &cfg);
    let names: Vec<String> = (0..4).map(|i| format!("f{i}")).collect();
    let generated = generate_tests(&shape, &analysis.cases, &cfg, &names, 128);
    assert!(
        generated.resolved > 0,
        "re-solve must rescue a representative"
    );
    let pipe_backed = generated
        .tests
        .iter()
        .filter(|t| {
            t.setup
                .iter()
                .any(|(_, op)| matches!(op, scr_kernel::api::SysOp::Pipe { .. }))
        })
        .count();
    assert!(
        pipe_backed >= 2,
        "both pipe case families must materialize, got {pipe_backed}"
    );
    let report = run_differential(&generated.tests);
    assert_eq!(report.tests_run, generated.tests.len());
    assert!(
        report.all_agree(),
        "newly materialised representatives diverged:\n{}",
        report.describe_mismatches()
    );
}

#[test]
fn scaled_campaign_over_pipe_calls_has_no_mismatches() {
    // The scaled oracle: budget spread round-robin across all pairs,
    // several schedules per test. Every pair with generated tests must be
    // exercised and every replay must agree.
    let config = CampaignConfig {
        max_tests: 96,
        schedules_per_test: 2,
        ..CampaignConfig::new(&[
            CallKind::Pipe,
            CallKind::Read,
            CallKind::Write,
            CallKind::Close,
        ])
    };
    let report = differential_campaign(&config);
    assert!(report.tests_run > 0);
    assert_eq!(report.replays_run, report.tests_run * 2);
    assert!(
        report.all_agree(),
        "simulated and host results diverged:\n{}",
        report.describe_mismatches()
    );
    for pair in &report.pairs {
        assert!(
            pair.generated == 0 || pair.replayed > 0,
            "budget starved pair {:?}",
            pair.calls
        );
    }
}

#[test]
fn per_core_counter_does_not_collapse_like_the_shared_one() {
    if skip_timing_checks() {
        eprintln!("skipping timing-shape check: <4 hardware threads or Miri");
        return;
    }
    const OPS: u64 = 400_000;

    // Measure ops/sec/core for 1 and 4 threads on both counters, taking the
    // best of three runs to shed scheduler noise.
    let best = |threads: usize, work: &dyn Fn() -> Box<dyn Fn(usize, u64) + Sync>| -> f64 {
        (0..3)
            .map(|_| {
                let w = work();
                LoadHarness::new(OPS).run(threads, w).ops_per_sec_per_core
            })
            .fold(0.0f64, f64::max)
    };

    let shared_work = || -> Box<dyn Fn(usize, u64) + Sync> {
        let counter = Arc::new(SharedCounter::new());
        Box::new(move |_core, _op| counter.add(1))
    };
    let percore_work = || -> Box<dyn Fn(usize, u64) + Sync> {
        let counter = Arc::new(PerCoreCounter::new(8));
        Box::new(move |core, _op| counter.add(core, 1))
    };

    let shared_1 = best(1, &shared_work);
    let shared_4 = best(4, &shared_work);
    let percore_1 = best(1, &percore_work);
    let percore_4 = best(4, &percore_work);

    // Generous thresholds: the per-core counter must retain a much larger
    // fraction of its single-thread per-core throughput than the shared
    // counter does at 4 threads.
    let percore_retention = percore_4 / percore_1;
    let shared_retention = shared_4 / shared_1;
    assert!(
        percore_retention > shared_retention * 1.5,
        "per-core retention {percore_retention:.2} not clearly better than shared {shared_retention:.2} \
         (1t: shared {shared_1:.0} percore {percore_1:.0}; 4t: shared {shared_4:.0} percore {percore_4:.0})"
    );
}

#[test]
fn sv6_mode_sustains_more_concurrent_throughput_than_the_global_lock() {
    if skip_timing_checks() {
        eprintln!("skipping timing-shape check: <4 hardware threads or Miri");
        return;
    }
    // Same workload, 4 threads, both kernel configurations; best of three.
    let best = |mode: HostMode| -> f64 {
        (0..3)
            .map(|_| {
                workloads::openbench(mode, matches!(mode, HostMode::Sv6), 4, 30_000)
                    .ops_per_sec_per_core
            })
            .fold(0.0f64, f64::max)
    };
    let sv6 = best(HostMode::Sv6);
    let linuxlike = best(HostMode::Linuxlike);
    assert!(
        sv6 > linuxlike,
        "striped kernel ({sv6:.0} ops/s/core) must out-scale the globally locked one ({linuxlike:.0})"
    );
}

#[test]
fn host_workloads_complete_under_minimal_parallelism() {
    // Functional smoke: runs everywhere, no timing assertions.
    let p1 = workloads::statbench(
        HostMode::Sv6,
        workloads::HostStatMode::FstatxNoNlink,
        2,
        100,
    );
    assert_eq!(p1.total_ops, 200);
    let p2 = workloads::mailbench(
        HostMode::Linuxlike,
        scr_kernel::mail::MailConfig::RegularApis,
        2,
        20,
    );
    assert_eq!(p2.total_ops, 40);
    let kernel = HostKernel::new(2, HostMode::Linuxlike);
    let pid = kernel.new_process();
    assert!(kernel
        .open(0, pid, "smoke", scr_kernel::api::OpenFlags::create())
        .is_ok());
}
