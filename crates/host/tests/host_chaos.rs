//! Integration tests for the chaos layer riding on the host kernel:
//! fault injection is deterministic per plan, a disabled fault layer is
//! invisible to the hostmtrace probes (the chaos twin of the
//! metrics-parity test in `host_obs.rs`), the reliable surface retries
//! exactly the injected faults, and the chaos telemetry ledger of the
//! supervised pipeline adds up.

use scr_chaos::kernel::{FaultyKernel, ReliableKernel};
use scr_chaos::plan::{ChaosPlan, DelaySpec, FaultSpec};
use scr_host::workloads::MailTelemetry;
use scr_host::{mail_pipeline_chaos, ChaosMailConfig, HostKernel, HostMode, HostOptions};
use scr_hostmtrace::{on_core, HostTraceSink, WindowHeat};
use scr_kernel::api::{Errno, OpenFlags, StatMask, SyscallApi};
use scr_kernel::retry::RetryPolicy;

/// Runs a fixed single-threaded sequence of faultable calls under `plan`
/// and returns the observable outcome pattern plus the injection count.
fn storm_pattern(plan: &ChaosPlan) -> (Vec<Result<(), Errno>>, u64) {
    let kernel = HostKernel::new(2, HostMode::Sv6);
    let pid = kernel.new_process();
    let faulty = FaultyKernel::new(&kernel, plan.clone(), 2);
    let pattern = (0..64)
        .map(|i| {
            faulty
                .open(0, pid, &format!("storm-{i}"), OpenFlags::create())
                .map(|_| ())
        })
        .collect();
    (pattern, faulty.injected_total())
}

/// The same plan against the same call sequence injects the same faults
/// at the same positions — a chaos run is replayable from its seed alone.
#[test]
fn fault_injection_is_deterministic_per_plan() {
    let plan = ChaosPlan::errno_storm(23);
    let (a, injected_a) = storm_pattern(&plan);
    let (b, injected_b) = storm_pattern(&plan);
    assert_eq!(a, b);
    assert_eq!(injected_a, injected_b);
    assert!(injected_a > 0, "storm injected nothing in 64 calls");
    // A reseeded plan draws a different pattern (64 draws at 20%
    // injection: the chance of agreeing everywhere is negligible).
    let reseeded = ChaosPlan::errno_storm(24);
    assert_ne!(a, storm_pattern(&reseeded).0);
}

/// The deterministic syscall sequence of `host_obs.rs`'s parity test,
/// optionally behind a `FaultyKernel` carrying the *disabled* plan.
fn traced_heat(through_chaos: bool) -> WindowHeat {
    let sink = HostTraceSink::new(2);
    let kernel = HostKernel::instrumented(2, HostMode::Sv6, HostOptions::default(), &sink);
    let pid = kernel.new_process();
    let fd = on_core(0, || kernel.open(0, pid, "parity", OpenFlags::create())).unwrap();

    let faulty = FaultyKernel::new(&kernel, ChaosPlan::none(), 2);
    let api: &(dyn SyscallApi + Sync) = if through_chaos { &faulty } else { &kernel };

    sink.begin_window();
    on_core(0, || api.fstat(0, pid, fd)).unwrap();
    on_core(1, || api.link(1, pid, "parity", "parity-b")).unwrap();
    on_core(0, || api.fstatx(0, pid, fd, StatMask::all_but_nlink())).unwrap();
    on_core(1, || api.unlink(1, pid, "parity-b")).unwrap();
    let report = sink.end_window();
    report.window_heat(|line| sink.label_of(line))
}

/// Probe parity: a `FaultyKernel` carrying the disabled plan must leave
/// the traced footprint byte-for-byte identical — enabling the chaos
/// layer without a plan cannot manufacture (or hide) a conflict.
#[test]
fn disabled_chaos_layer_changes_no_hostmtrace_footprint() {
    let raw = traced_heat(false);
    let chaos = traced_heat(true);
    assert!(!raw.accesses.is_empty(), "window traced no accesses");
    assert_eq!(raw, chaos);
}

/// The reliable surface retries exactly the injected faults: under a
/// heavy storm every open still succeeds (injection happens *before* the
/// inner call, so a retry never duplicates an effect), while genuine
/// kernel answers surface unchanged through the same storm.
#[test]
fn reliable_surface_absorbs_injected_faults_but_not_genuine_errors() {
    let kernel = HostKernel::new(2, HostMode::Sv6);
    let pid = kernel.new_process();
    let plan = ChaosPlan::new(
        41,
        FaultSpec::uniform(400_000),
        DelaySpec::default(),
        vec![],
    );
    let faulty = FaultyKernel::new(&kernel, plan, 2);
    let reliable = ReliableKernel::new(&faulty, RetryPolicy::spin().with_seed(41));
    for i in 0..48 {
        let fd = reliable
            .open(0, pid, &format!("file-{i}"), OpenFlags::create())
            .unwrap_or_else(|e| panic!("open {i} surfaced an injected fault: {e}"));
        reliable.close(0, pid, fd).unwrap();
    }
    assert!(faulty.injected_total() > 0, "storm injected nothing");
    // A genuine error rides out the storm too: the missing file stays
    // ENOENT no matter how many injected bounces precede the real answer.
    assert_eq!(
        reliable.open(0, pid, "missing", OpenFlags::plain()),
        Err(Errno::ENOENT)
    );
}

/// The chaos telemetry ledger: the observability counters agree with the
/// fault layer's own totals, and the retry/backoff counters actually
/// moved while the pipeline rode out the storm.
#[test]
fn chaos_telemetry_counters_match_the_fault_layer() {
    let mut cfg = ChaosMailConfig::new(ChaosPlan::errno_storm(47));
    cfg.plan.delay = DelaySpec {
        ppm: 100_000,
        polls: 4,
    };
    let cores = cfg.enqueuers + cfg.qmans + 1;
    let telemetry = MailTelemetry::new(cores);
    let report = mail_pipeline_chaos(&cfg, Some(&telemetry));
    assert!(
        report.accounted(),
        "chaos ledger does not balance: {report:?}"
    );

    let counter = |name: &str| telemetry.registry.counter(name).total();
    let injected: u64 = ["send", "recv", "open", "spawn"]
        .iter()
        .map(|kind| counter(&format!("chaos.injected.{kind}")))
        .sum();
    assert_eq!(injected, report.injected_faults);
    assert!(injected > 0, "storm injected nothing");
    assert_eq!(counter("chaos.delay.polls"), report.delayed_polls);
    assert!(counter("chaos.delay.holds") > 0, "no delivery hold started");
    assert!(counter("chaos.retries") > 0, "no retry was recorded");
    // The snapshot carries the chaos section for the artifact exports.
    let rendered = telemetry.registry.snapshot().to_json();
    assert!(rendered.contains("\"chaos.injected.send\""));
    assert!(rendered.contains("\"chaos.retries\""));
}
