//! Acceptance tests for the host mail-server parity PR: sockets,
//! `fork`/`posix_spawn`/`wait` and the full §7.3 pipeline on real threads.
//!
//! Three layers of evidence, mirroring `host_fig6.rs`'s structure:
//!
//! 1. **Instrumentation faithfulness** — every new host socket/spawn/wait
//!    operation, replayed *sequentially* on the instrumented `HostKernel`,
//!    must record exactly the (core, label, kind) access multiset its
//!    simulated counterpart records. Sequential replay removes scheduling
//!    nondeterminism, so any difference is an instrumentation bug.
//! 2. **Cross-check under real concurrency** — the §4 extension corpus
//!    racing on real threads: SIM-conflict-free pairs stay conflict-free,
//!    results linearize against the simulated kernel, and datagrams are
//!    conserved exactly-once.
//! 3. **End-to-end pipeline** — the mail server (enqueue → notification
//!    socket → qman → spawn/wait → deliver) as communicating threads, in
//!    both API configurations and both host modes, delivering every
//!    message exactly once across repeated schedules.

use scr_core::ConcreteTest;
use scr_host::fig6::{
    ext_corpus, ext_failures, normalize_pipe_label, run_ext_corpus, run_ext_host, run_ext_sim,
};
use scr_host::kernel::{HostKernel, HostMode};
use scr_host::workloads::mail_pipeline;
use scr_kernel::api::{Errno, OpenFlags, SocketOrder, SysOp, SyscallApi};
use scr_kernel::mail::{MailConfig, MailServer};
use scr_kernel::Sv6Kernel;
use scr_model::CallKind;
use scr_mtrace::AccessKind;

/// A sorted (core, label, kind) access multiset.
type Footprint = Vec<(usize, String, AccessKind)>;

/// Normalised sequential footprints of a test on both substrates. Pipe
/// instance ids differ between the kernels (the simulator derives them
/// from its access counter), so labels are normalised before comparison.
fn footprints(test: &ConcreteTest) -> (Footprint, Footprint) {
    let normalize = |mut fp: Footprint| {
        for entry in &mut fp {
            entry.1 = normalize_pipe_label(&entry.1);
        }
        fp.sort();
        fp
    };
    let sim = normalize(run_ext_sim(4, test, true).footprint);
    let host_run = run_ext_host(HostMode::Sv6, 4, test, false);
    assert_eq!(host_run.dropped, 0, "log overflow in {}", test.id);
    (sim, normalize(host_run.footprint))
}

fn assert_mirrors(test: &ConcreteTest) {
    let (sim, host) = footprints(test);
    assert_eq!(
        host, sim,
        "instrumented host footprint diverges from the simulator for {}",
        test.id
    );
}

/// A single-op probe: pairs the op under test with a stat of a missing
/// name, whose footprint (one read of a directory bucket) is identical and
/// deterministic on both substrates.
fn single(id: &str, setup: Vec<(usize, SysOp)>, op: SysOp, procs: usize) -> ConcreteTest {
    ConcreteTest {
        id: id.into(),
        calls: (CallKind::Stat, CallKind::Stat),
        setup,
        op_a: op,
        op_b: SysOp::StatPath {
            pid: 1,
            name: "no-such-name".into(),
        },
        procs,
    }
}

fn sock(order: SocketOrder) -> SysOp {
    SysOp::Socket { order }
}

fn send(sockid: usize, msg: &str) -> SysOp {
    SysOp::Send {
        sock: sockid,
        msg: msg.as_bytes().to_vec(),
    }
}

fn open(pid: usize, name: &str) -> SysOp {
    SysOp::Open {
        pid,
        name: name.into(),
        flags: OpenFlags::create(),
    }
}

#[test]
fn socket_operations_mirror_the_simulated_footprint_per_op() {
    for order in [SocketOrder::Ordered, SocketOrder::Unordered] {
        let tag = format!("{order:?}").to_lowercase();
        // send into an empty socket.
        assert_mirrors(&single(
            &format!("send_{tag}"),
            vec![(0, sock(order))],
            send(0, "m"),
            2,
        ));
        // recv of a pending message (preloaded from the receiving core, so
        // the unordered flavour hits its local queue).
        assert_mirrors(&single(
            &format!("recv_hit_{tag}"),
            vec![(0, sock(order)), (0, send(0, "m"))],
            SysOp::Recv { sock: 0 },
            2,
        ));
        // recv of an empty socket (the unordered flavour scans every
        // queue — reads of the remote lines, as in the simulated steal).
        assert_mirrors(&single(
            &format!("recv_empty_{tag}"),
            vec![(0, sock(order))],
            SysOp::Recv { sock: 0 },
            2,
        ));
    }
    // The steal path: message pending only on core 1's queue, receiver on
    // core 0 must cross over.
    assert_mirrors(&single(
        "recv_steal",
        vec![(0, sock(SocketOrder::Unordered)), (1, send(0, "m"))],
        SysOp::Recv { sock: 0 },
        2,
    ));
}

#[test]
fn fork_and_spawn_mirror_the_simulated_snapshot_footprints() {
    // fork with a mixed descriptor table (two files and a pipe): the
    // snapshot reads every slot and writes the occupied child slots —
    // including the pipe endpoints, whose lines are shared cells.
    let setup = vec![
        (0, open(0, "a")),
        (0, open(0, "b")),
        (0, SysOp::Pipe { pid: 0 }),
    ];
    assert_mirrors(&single(
        "fork_snapshot",
        setup.clone(),
        SysOp::Fork { pid: 0 },
        2,
    ));
    // posix_spawn touches exactly the listed descriptors.
    assert_mirrors(&single(
        "spawn_listed_fds",
        setup.clone(),
        SysOp::Spawn {
            pid: 0,
            dup_fds: vec![0, 2],
        },
        2,
    ));
    // wait reaps a fork child's whole table — pipe endpoint counts are
    // decremented, the deliberate §6.4 shared lines.
    let mut wait_setup = setup;
    wait_setup.push((0, SysOp::Fork { pid: 0 }));
    assert_mirrors(&single(
        "wait_reaps_fork_child",
        wait_setup,
        SysOp::Wait { pid: 0, child: 2 },
        2,
    ));
}

#[test]
fn linuxlike_socket_calls_record_the_giant_lock_as_a_written_line() {
    // The host baseline serialises socket calls on the global kernel lock;
    // its acquisition is recorded as a written line, so — exactly as in the
    // paper's Linux column — ordered *and* unordered socket pairs collapse
    // there. The remaining accesses must still mirror the sv6 footprint.
    for order in [SocketOrder::Ordered, SocketOrder::Unordered] {
        let test = single(
            &format!("linuxlike_send_{order:?}"),
            vec![(0, sock(order))],
            send(0, "m"),
            2,
        );
        let host = run_ext_host(HostMode::Linuxlike, 4, &test, false);
        assert_eq!(host.dropped, 0);
        let giant: Vec<&AccessKind> = host
            .footprint
            .iter()
            .filter(|(_, label, _)| label == "kernel.giant_lock")
            .map(|(_, _, kind)| kind)
            .collect();
        assert!(
            giant.contains(&&AccessKind::Write),
            "{}: the giant lock must be recorded as a written line, got {giant:?}",
            test.id
        );
        // The socket lines themselves still mirror the sv6 footprint: the
        // mode adds the lock, it does not change the queue accesses. (The
        // directory lines differ by design — linuxlike collapses the
        // stripes — so only socket labels are compared.)
        let socket_lines = |fp: Footprint| -> Footprint {
            fp.into_iter()
                .filter(|(_, label, _)| label.starts_with("socket["))
                .collect()
        };
        let rest = socket_lines(host.footprint);
        let sim = socket_lines(run_ext_sim(4, &test, true).footprint);
        assert_eq!(rest, sim, "{}", test.id);
    }
}

#[test]
fn ext_corpus_footprints_match_the_simulator_sequentially() {
    for test in ext_corpus() {
        assert_mirrors(&test);
    }
}

#[test]
fn ext_cross_check_under_real_concurrency_has_no_failures() {
    // The hand corpus under extra schedules; the generated corpus's
    // cross-check lives in the fig6 unit tests (its TESTGEN run is
    // memoised per process, and this is a separate test binary).
    let outcomes = run_ext_corpus(4, 3, &ext_corpus());
    let failures = ext_failures(&outcomes);
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

#[test]
fn socket_errnos_match_the_simulated_kernel() {
    let sim = Sv6Kernel::new(2);
    let host = HostKernel::new(2, HostMode::Sv6);
    let sim_sock = SyscallApi::socket(&sim, 0, SocketOrder::Unordered).unwrap();
    let host_sock = host.socket(0, SocketOrder::Unordered).unwrap();
    assert_eq!(sim_sock, host_sock, "socket ids are dense on both");
    // Empty and bad-id paths agree errno for errno; the queues are
    // unbounded on both substrates, so send has no overflow path.
    assert_eq!(
        SyscallApi::recv(&sim, 0, sim_sock).unwrap_err(),
        host.recv(0, host_sock).unwrap_err()
    );
    assert_eq!(host.recv(0, host_sock), Err(Errno::EAGAIN));
    assert_eq!(
        SyscallApi::send(&sim, 0, 9, b"x").unwrap_err(),
        host.send(0, 9, b"x").unwrap_err()
    );
    assert_eq!(host.send(0, 9, b"x"), Err(Errno::EBADF));
    assert_eq!(host.recv(0, 9), Err(Errno::EBADF));
}

#[test]
fn mail_server_runs_end_to_end_on_the_host_kernel() {
    // The same assertions the simulated kernels' mail tests make, now on
    // the real-threads kernel through the identical `SyscallApi` surface.
    for mode in [HostMode::Sv6, HostMode::Linuxlike] {
        for config in [MailConfig::CommutativeApis, MailConfig::RegularApis] {
            let kernel = HostKernel::new(4, mode);
            let client = kernel.new_process();
            let qman = kernel.new_process();
            let server = MailServer::new(&kernel, config, 4).unwrap();
            let env = server.enqueue(0, client, "alice", b"hello alice").unwrap();
            let delivered = server.qman_step(1, qman).unwrap();
            assert!(delivered.starts_with("mail/alice/"));
            assert_eq!(
                kernel.stat(0, qman, &env).unwrap_err(),
                Errno::ENOENT,
                "envelope must be unlinked after delivery ({mode:?}/{config:?})"
            );
            let fd = kernel
                .open(0, qman, &delivered, OpenFlags::plain())
                .unwrap();
            assert_eq!(kernel.pread(0, qman, fd, 64, 0).unwrap(), b"hello alice");
            // The delivery helper exists, was reaped by wait, and holds no
            // descriptors any more.
            assert!(kernel.fstat(0, 2, 0).is_err(), "helper table must be empty");
        }
    }
}

#[test]
fn mail_pipeline_delivers_exactly_once_across_repeated_schedules() {
    // The acceptance bar: both MailConfigs × both host modes, with
    // dedicated enqueuer and qman threads racing, repeated so different
    // hardware schedules are exercised — every message delivered exactly
    // once, every time.
    for round in 0..3 {
        for mode in [HostMode::Sv6, HostMode::Linuxlike] {
            for config in [MailConfig::CommutativeApis, MailConfig::RegularApis] {
                let report = mail_pipeline(mode, config, 2, 2, 40);
                assert!(
                    report.exactly_once(),
                    "round {round} {mode:?}/{config:?}: {report:?}"
                );
            }
        }
    }
}

#[test]
fn unordered_notification_socket_keeps_local_delivery_conflict_free() {
    // The pipeline-level restatement of §4: an enqueue immediately
    // followed by the same core's qman step touches only that core's
    // socket queue under CommutativeApis — so the notification hot path
    // records no cross-core socket sharing when each core consumes its own
    // queue. (The fig6 ext corpus asserts the per-pair version; this
    // drives it through the real MailServer.)
    let kernel = HostKernel::new(2, HostMode::Sv6);
    let client = kernel.new_process();
    let qman = kernel.new_process();
    let server = MailServer::new(&kernel, MailConfig::CommutativeApis, 2).unwrap();
    for core in 0..2 {
        server
            .enqueue(core, client, "bob", format!("m{core}").as_bytes())
            .unwrap();
    }
    // Each core's qman step finds its own notification without stealing.
    for core in 0..2 {
        server.qman_step(core, qman).unwrap();
        assert_eq!(
            kernel.socket_pending_untraced(server.notify_socket()),
            1 - core,
            "core {core} must consume its own queue"
        );
    }
}

#[test]
fn duplicated_pipe_endpoints_survive_child_reaping_on_the_host() {
    // Host mirror of the kernel_semantics regression: fork/posix_spawn
    // take a reference on duplicated pipe endpoints, so reaping the child
    // cannot strand the parent's still-open ends.
    for mode in [HostMode::Sv6, HostMode::Linuxlike] {
        let k = HostKernel::new(4, mode);
        let pid = k.new_process();
        let (r, w) = k.pipe(0, pid).unwrap();
        let child = k.fork(0, pid).unwrap();
        k.wait(0, pid, child).unwrap();
        assert_eq!(k.write(0, pid, w, b"x").unwrap(), 1, "{mode:?}");
        assert_eq!(k.read(0, pid, r, 4).unwrap(), b"x", "{mode:?}");
        assert_eq!(k.read(0, pid, r, 1).unwrap_err(), Errno::EAGAIN, "{mode:?}");
        let spawned = k.posix_spawn(0, pid, &[w]).unwrap();
        k.close(0, pid, w).unwrap();
        assert_eq!(
            k.read(0, pid, r, 1).unwrap_err(),
            Errno::EAGAIN,
            "{mode:?}: the spawned child's write end keeps the pipe writable"
        );
        k.wait(0, pid, spawned).unwrap();
        assert_eq!(
            k.read(0, pid, r, 1).unwrap(),
            Vec::<u8>::new(),
            "{mode:?}: after the last writer is reaped, EOF"
        );
    }
}

#[test]
fn spawn_per_message_delivery_stays_cheap_on_wide_kernels() {
    // Regression for the per-message helper cost: qman spawns one helper
    // per delivered message, and helpers are never removed from the
    // process table (pids are not reused, matching the simulated
    // kernels). Each helper must therefore materialise only the
    // descriptor partitions it touches — with eager O(cores) padded-slot
    // tables, 10k helpers on a 64-core kernel would cost gigabytes and
    // minutes; lazily chunked they cost a few KB each.
    let k = HostKernel::new(64, HostMode::Sv6);
    let pid = k.new_process();
    let fd = k
        .open(0, pid, "spool", scr_kernel::api::OpenFlags::create())
        .unwrap();
    for _ in 0..10_000 {
        let helper = k.posix_spawn(0, pid, &[fd]).unwrap();
        k.wait(0, pid, helper).unwrap();
    }
    assert!(
        k.fstat(0, pid, fd).is_ok(),
        "parent fd must survive reaping"
    );
}

#[test]
fn failed_posix_spawn_leaves_no_trace_on_the_host() {
    // Host mirror of the kernel_semantics regression: a bad descriptor in
    // the dup list fails the spawn before any endpoint reference is taken
    // or a child pid is allocated.
    let k = HostKernel::new(4, HostMode::Sv6);
    let pid = k.new_process();
    let (r, w) = k.pipe(0, pid).unwrap();
    assert_eq!(k.posix_spawn(0, pid, &[w, 999]).unwrap_err(), Errno::EBADF);
    let child = k.posix_spawn(0, pid, &[w]).unwrap();
    assert_eq!(child, 1, "the failed spawn must not have allocated a pid");
    k.wait(0, pid, child).unwrap();
    k.close(0, pid, w).unwrap();
    assert_eq!(
        k.read(0, pid, r, 1).unwrap(),
        Vec::<u8>::new(),
        "all writers closed must read as EOF, not EAGAIN"
    );
    // A repeated fd in the dup list collapses into one child slot and
    // must take exactly one endpoint reference.
    let (r2, w2) = k.pipe(0, pid).unwrap();
    let child = k.posix_spawn(0, pid, &[w2, w2]).unwrap();
    k.wait(0, pid, child).unwrap();
    k.close(0, pid, w2).unwrap();
    assert_eq!(
        k.read(0, pid, r2, 1).unwrap(),
        Vec::<u8>::new(),
        "a doubled dup entry must not leak a writer reference"
    );
}

#[test]
fn same_fd_read_write_race_is_linearizable() {
    // Regression: the host `read` once observed a racing same-fd `write`
    // half-applied — old shared offset, new contents — returning 4096
    // bytes no sequential order produces (TESTGEN's read ∥ write corpus
    // caught it, rarely). Both sequential orders leave this read empty:
    // read-then-write reads an empty file, write-then-read reads at the
    // advanced shared offset. Any non-empty read is a linearizability
    // violation of the per-open-file I/O lock.
    for round in 0..500 {
        let k = HostKernel::new(2, HostMode::Sv6);
        let pid = k.new_process();
        let fd = k
            .open(0, pid, "f", scr_kernel::api::OpenFlags::create())
            .unwrap();
        let barrier = std::sync::Barrier::new(2);
        let (kr, br) = (&k, &barrier);
        let (read, written) = std::thread::scope(|s| {
            let a = s.spawn(move || {
                br.wait();
                kr.read(0, pid, fd, 4096)
            });
            let b = s.spawn(move || {
                br.wait();
                kr.write(1, pid, fd, &[7u8; 4096])
            });
            (a.join().unwrap().unwrap(), b.join().unwrap().unwrap())
        });
        assert_eq!(written, 4096);
        assert_eq!(read, Vec::<u8>::new(), "round {round}: mixed-state read");
    }
}
