//! A thread-safe kernel over real atomics: the execution backend the
//! Figure-7 workloads and the differential runner drive from actual OS
//! threads.
//!
//! [`HostKernel`] mirrors the *semantics* of `scr_kernel::sv6::Sv6Kernel`
//! call for call — same error codes, same inode numbering, same descriptor
//! allocation order, same `mmap` address arithmetic — so the differential
//! runner can compare return values bit-for-bit. What changes between the
//! two configurations is only the *sharing*:
//!
//! * [`HostMode::Sv6`] assembles the kernel from the host twins of the
//!   scalable primitives ([`scr_scalable::real`]): a lock-striped
//!   directory, per-core inode counters, Refcache-style per-core link
//!   counts, and per-slot descriptor locks.
//! * [`HostMode::Linuxlike`] wraps every system call in one global kernel
//!   lock — the sharing structure that makes the baseline collapse as real
//!   threads are added, no matter how fast each individual call is.

use parking_lot::{Mutex, RwLock};
use scr_hostmtrace::{HostTraceSink, LockProbe, Probe, ProbeRadix, SeqProbe};
use scr_kernel::api::{
    Errno, Fd, Ino, KResult, MmapBacking, OpenFlags, Pid, Prot, SockId, SocketOrder, Stat,
    StatMask, SysOp, SysResult, SyscallApi, Whence, PAGE_SIZE,
};
use scr_scalable::real::{
    HostInodeAllocator, HostProcTable, HostSocketTable, PerCoreRefcount, QueueOrder, SocketError,
    StripedHashDir,
};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, OnceLock};

/// Descriptors per core partition (`O_ANYFD`), mirroring the sv6 kernel.
pub const FDS_PER_CORE: usize = 16;
/// Virtual pages reserved per core for hint-less `mmap`, mirroring sv6.
const VPN_REGION_PER_CORE: u64 = 256;
/// Directory stripe count, mirroring the sv6 kernel's bucket count.
const DIR_STRIPES: usize = 512;

/// Which sharing structure the kernel is assembled with.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum HostMode {
    /// Per-core / striped structures; no global serialisation.
    #[default]
    Sv6,
    /// One global kernel lock around every call (the collapsing baseline).
    Linuxlike,
}

impl HostMode {
    /// Label used in benchmark tables.
    pub fn label(&self) -> &'static str {
        match self {
            HostMode::Sv6 => "sv6-like (striped)",
            HostMode::Linuxlike => "linuxlike (global lock)",
        }
    }
}

/// Tunable options, mirroring `Sv6Options` for the statbench ablation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HostOptions {
    /// Keep link counts in one shared atomic instead of per-core deltas.
    pub shared_link_counts: bool,
}

/// A link counter in one of the two statbench representations. The
/// per-core variant is boxed: it holds one padded cache line per core and
/// would otherwise bloat every inode in shared-count mode too.
enum LinkCounter {
    /// Per-core deltas (Refcache-style).
    Scalable(Box<PerCoreRefcount>),
    /// One shared atomic (plus its probe when the kernel is instrumented,
    /// mirroring the simulated `LinkCounter::Shared` cell).
    Shared(AtomicI64, Option<Probe>),
}

impl LinkCounter {
    fn new(cores: usize, options: HostOptions, trace: Option<(&Arc<HostTraceSink>, &str)>) -> Self {
        if options.shared_link_counts {
            LinkCounter::Shared(
                AtomicI64::new(0),
                trace.map(|(sink, label)| sink.probe(format!("{label}.shared"))),
            )
        } else {
            let rc = match trace {
                Some((sink, label)) => PerCoreRefcount::instrumented(cores, 0, sink, label),
                None => PerCoreRefcount::new(cores, 0),
            };
            LinkCounter::Scalable(Box::new(rc))
        }
    }

    fn inc(&self, core: usize) {
        match self {
            LinkCounter::Scalable(rc) => rc.inc(core),
            LinkCounter::Shared(cell, probe) => {
                if let Some(p) = probe {
                    p.rmw();
                }
                cell.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn dec(&self, core: usize) {
        match self {
            LinkCounter::Scalable(rc) => rc.dec(core),
            LinkCounter::Shared(cell, probe) => {
                if let Some(p) = probe {
                    p.rmw();
                }
                cell.fetch_sub(1, Ordering::Relaxed);
            }
        }
    }

    fn read_exact(&self) -> i64 {
        match self {
            LinkCounter::Scalable(rc) => rc.read_exact(),
            LinkCounter::Shared(cell, probe) => {
                if let Some(p) = probe {
                    p.read();
                }
                cell.load(Ordering::Relaxed)
            }
        }
    }
}

/// Probe lines of an instrumented inode, mirroring the simulated inode's
/// traced cells (the link counter carries its own probes).
struct InodeTrace {
    /// `inode[N].size` seqlock lines.
    size: SeqProbe,
    /// `inode[N].pages` radix lines.
    pages: ProbeRadix,
}

/// One regular file's in-memory inode.
struct Inode {
    ino: Ino,
    nlink: LinkCounter,
    /// File size in pages. Grown with `fetch_max`, the optimistic
    /// "grow only when extending" protocol of the simulated kernel.
    size_pages: AtomicU64,
    /// Page cache: page number → contents.
    pages: RwLock<BTreeMap<u64, Vec<u8>>>,
    tr: Option<InodeTrace>,
}

/// Probe lines of an instrumented pipe (three shared cells, as in the
/// simulated kernel — the §6.4 residual non-scalable case).
struct PipeTrace {
    buffer: Probe,
    readers: Probe,
    writers: Probe,
}

/// One pipe; endpoint counts are plain shared atomics (the §6.4 residual
/// non-scalable case, kept deliberately).
struct Pipe {
    buffer: Mutex<VecDeque<u8>>,
    readers: AtomicI64,
    writers: AtomicI64,
    tr: Option<PipeTrace>,
}

/// What an open descriptor refers to.
#[derive(Clone)]
enum FileObj {
    File(Arc<Inode>),
    PipeRead(Arc<Pipe>),
    PipeWrite(Arc<Pipe>),
}

/// An open file description.
struct OpenFile {
    obj: FileObj,
    offset: AtomicU64,
    /// Serialises offset-consistent I/O (`read`/`write`/`lseek`) on this
    /// open file: the simulated kernel executes each call atomically, so
    /// a host call must not observe another's offset update and content
    /// update half-applied. A host-only correctness measure like the
    /// per-slot locks — real synchronisation, no recorded line.
    io: Mutex<()>,
    /// The offset cell's line (`proc[p].ofile[name].offset`), when traced.
    offset_probe: Option<Probe>,
}

/// One page of a mapped region.
#[derive(Clone)]
enum PageBacking {
    /// Anonymous memory; the probe mirrors the simulated per-page cell
    /// `proc[p].page[vpn]`.
    Anon(Arc<AtomicU8>, Option<Probe>),
    File {
        ino: Ino,
        file_page: u64,
    },
}

/// A mapping entry in the address space.
#[derive(Clone)]
struct MappedPage {
    prot: Prot,
    backing: PageBacking,
}

/// One descriptor slot: a cache-padded lock, so lowest-FD scans and
/// `O_ANYFD` partition claims contend only on the slots they touch.
type FdSlot = crossbeam::utils::CachePadded<Mutex<Option<Arc<OpenFile>>>>;
/// One core partition's worth of descriptor slots ([`FDS_PER_CORE`]).
type FdChunk = Box<[FdSlot]>;

/// A process: descriptor table and address space.
///
/// The slot storage is allocated lazily, one core partition at a time:
/// every padded slot costs a cache line, and the mail workload creates one
/// short-lived helper process *per message* (`posix_spawn`), each touching
/// only the partition its one or two descriptors land in — eager
/// allocation would cost O(cores) cache lines per delivered message.
/// An untouched partition is definitionally all-free/empty, which the
/// accessors exploit without publishing the chunk.
struct Process {
    fd_chunks: Vec<OnceLock<FdChunk>>,
    vm_pages: RwLock<BTreeMap<u64, MappedPage>>,
    /// Per-core mmap bump allocators, lazily allocated like the slots
    /// (helper processes never map memory).
    next_vpn: Vec<OnceLock<crossbeam::utils::CachePadded<AtomicU64>>>,
    /// One probe per descriptor slot (`proc[p].fd[f]`), when traced.
    /// Probes are eager: instrumented kernels are built one per traced
    /// test, never on a process-churning hot path.
    fd_probes: Option<Vec<Probe>>,
    /// Address-space radix mirror (`proc[p].as`), when traced.
    vm_probes: Option<ProbeRadix>,
    /// Per-core mmap bump-allocator lines (`proc[p].next_vpn[c]`).
    vpn_probes: Option<Vec<Probe>>,
}

impl Process {
    /// Total descriptor capacity (cores × partition size).
    fn fd_capacity(&self) -> usize {
        self.fd_chunks.len() * FDS_PER_CORE
    }

    /// The slot for `fd`, allocating its partition on first touch. `None`
    /// only when `fd` is beyond the table.
    fn fd_slot(&self, fd: usize) -> Option<&FdSlot> {
        let chunk = self.fd_chunks.get(fd / FDS_PER_CORE)?.get_or_init(|| {
            (0..FDS_PER_CORE)
                .map(|_| crossbeam::utils::CachePadded::new(Mutex::new(None)))
                .collect()
        });
        Some(&chunk[fd % FDS_PER_CORE])
    }

    /// The slot for `fd` only if its partition was ever touched — an
    /// unallocated partition holds no open files, so lookups through here
    /// treat it as an empty slot without materialising it.
    fn fd_slot_if_allocated(&self, fd: usize) -> Option<&FdSlot> {
        Some(&self.fd_chunks.get(fd / FDS_PER_CORE)?.get()?[fd % FDS_PER_CORE])
    }

    /// `shard`'s mmap bump allocator, allocated on first use with the same
    /// per-core region arithmetic as the simulated kernel.
    fn next_vpn(&self, shard: usize) -> &AtomicU64 {
        self.next_vpn[shard].get_or_init(|| {
            crossbeam::utils::CachePadded::new(AtomicU64::new(
                1 + shard as u64 * VPN_REGION_PER_CORE,
            ))
        })
    }
}

/// The monitor hook-up of an instrumented kernel.
struct KernelTrace {
    sink: Arc<HostTraceSink>,
    /// The global kernel lock's line. Acquisition is recorded as a
    /// read-modify-write (and release as a write), so in `Linuxlike` mode
    /// every pair of calls conflicts on this written line — the Linux
    /// column of Figure 6.
    giant: LockProbe,
    /// Per-core deferred-reclamation queue lines
    /// (`scalefs.inode_gc.defer[c]`).
    defer: Vec<Probe>,
    /// Distinguishes the pipes created during one window (label suffix
    /// only; the simulated kernel uses its access counter the same way).
    next_pipe_id: AtomicU64,
}

/// The real-threads kernel. All methods take `&self` and the type is
/// `Send + Sync`; callers drive it from as many OS threads as they like,
/// passing the thread's "core" number exactly as the simulated kernels do.
pub struct HostKernel {
    mode: HostMode,
    cores: usize,
    options: HostOptions,
    /// The global kernel lock; taken around every call in `Linuxlike` mode.
    giant: Mutex<()>,
    root: StripedHashDir<Ino>,
    /// Inode table, sharded by inode number so sv6-mode lookups of
    /// different inodes do not serialise.
    inode_shards: Vec<InodeShard>,
    inode_alloc: HostInodeAllocator,
    /// Process table: lock-free append-only (the simulated kernels' pid
    /// vector is untraced, so concurrent spawns must not serialise here).
    procs: HostProcTable<Arc<Process>>,
    /// Datagram sockets (§4 / §7.3): ordered or per-core unordered queues.
    sockets: HostSocketTable,
    /// Per-core lists of inodes whose last link may be gone, drained by the
    /// epoch passes ("defer work", as in the simulated kernel's DeferQueue).
    defer: Vec<crossbeam::utils::CachePadded<Mutex<Vec<Ino>>>>,
    /// The sharing monitor, when built with [`HostKernel::instrumented`].
    trace: Option<KernelTrace>,
}

/// One cache-padded shard of the inode table.
type InodeShard = crossbeam::utils::CachePadded<RwLock<BTreeMap<Ino, Arc<Inode>>>>;

const INODE_SHARDS: usize = 64;

impl HostKernel {
    /// Builds a kernel for `cores` participating threads.
    pub fn new(cores: usize, mode: HostMode) -> Self {
        Self::with_options(cores, mode, HostOptions::default())
    }

    /// Builds a kernel with non-default options (statbench ablation).
    pub fn with_options(cores: usize, mode: HostMode, options: HostOptions) -> Self {
        Self::build(cores, mode, options, None)
    }

    /// Builds a kernel wired to a sharing monitor: every operation records
    /// the same logical-line footprint its simulated counterpart records,
    /// so traced windows can be cross-checked against the simulated
    /// heatmap. The uninstrumented constructors record nothing.
    pub fn instrumented(
        cores: usize,
        mode: HostMode,
        options: HostOptions,
        sink: &Arc<HostTraceSink>,
    ) -> Self {
        Self::build(cores, mode, options, Some(sink))
    }

    fn build(
        cores: usize,
        mode: HostMode,
        options: HostOptions,
        sink: Option<&Arc<HostTraceSink>>,
    ) -> Self {
        let cores = cores.max(2);
        let stripes = match mode {
            HostMode::Sv6 => DIR_STRIPES,
            // A single stripe: every name operation shares one lock,
            // like a directory-wide dentry lock.
            HostMode::Linuxlike => 1,
        };
        HostKernel {
            mode,
            cores,
            options,
            giant: Mutex::new(()),
            root: match sink {
                Some(sink) => StripedHashDir::instrumented(stripes, sink, "scalefs.root"),
                None => StripedHashDir::new(stripes),
            },
            inode_shards: (0..INODE_SHARDS)
                .map(|_| crossbeam::utils::CachePadded::new(RwLock::new(BTreeMap::new())))
                .collect(),
            inode_alloc: match sink {
                Some(sink) => HostInodeAllocator::instrumented(cores, sink, "scalefs"),
                None => HostInodeAllocator::new(cores),
            },
            procs: HostProcTable::new(),
            sockets: match sink {
                Some(sink) => HostSocketTable::instrumented(cores, sink),
                None => HostSocketTable::new(cores),
            },
            defer: (0..cores)
                .map(|_| crossbeam::utils::CachePadded::new(Mutex::new(Vec::new())))
                .collect(),
            trace: sink.map(|sink| KernelTrace {
                sink: Arc::clone(sink),
                giant: LockProbe::new(sink, "kernel.giant_lock"),
                defer: (0..cores)
                    .map(|c| sink.probe(format!("scalefs.inode_gc.defer[{c}]")))
                    .collect(),
                next_pipe_id: AtomicU64::new(0),
            }),
        }
    }

    /// Queues an inode for deferred reclamation on `core`'s list (touches
    /// only that core's queue line, as in the simulated `DeferQueue`).
    fn defer_reclaim(&self, core: usize, ino: Ino) {
        if let Some(t) = &self.trace {
            t.defer[core % self.cores].rmw();
        }
        self.defer[core % self.cores].lock().push(ino);
    }

    /// Drains `core`'s deferred list, reclaiming inodes whose link count
    /// reconciles to zero (the per-core half of the epoch pass; a real
    /// kernel runs this from a per-core timer tick). Returns the number of
    /// inodes reclaimed.
    pub fn reclaim_core(&self, core: usize) -> usize {
        if let Some(t) = &self.trace {
            t.defer[core % self.cores].rmw();
        }
        let pending = std::mem::take(&mut *self.defer[core % self.cores].lock());
        let mut reclaimed = 0;
        for ino in pending {
            // The zero check must happen inside the shard's write section:
            // link() publishes its increment before validating the inode is
            // still present (under the same lock), so whichever of the two
            // wins the lock sees a consistent picture — either the count is
            // back above zero and the inode survives, or it is removed and
            // link() observes that and undoes its insertion.
            let mut shard = self.inode_shard(ino).write();
            let reclaim = shard
                .get(&ino)
                .map(|inode| inode.nlink.read_exact() <= 0)
                .unwrap_or(false);
            if reclaim {
                shard.remove(&ino);
                reclaimed += 1;
            }
        }
        reclaimed
    }

    /// Runs the epoch pass over every core's deferred list. Returns the
    /// number of inodes reclaimed.
    pub fn reclaim_epoch(&self) -> usize {
        (0..self.cores).map(|core| self.reclaim_core(core)).sum()
    }

    /// The configured mode.
    pub fn mode(&self) -> HostMode {
        self.mode
    }

    /// Number of cores (thread slots) the kernel was configured for.
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// Number of processes ever created (pids are dense and never reused,
    /// so this is also one past the highest valid pid).
    pub fn process_count(&self) -> usize {
        self.procs.len()
    }

    /// Open descriptors currently held by `pid`. Only partitions the
    /// process ever touched are scanned (an unallocated partition holds no
    /// descriptors by construction). The mail pipelines use this as their
    /// teardown leak check: a reaped helper must hold zero descriptors, so
    /// a qman dying between `spawn` and `wait` must not strand its helper
    /// in the process table with the spool descriptor still open.
    pub fn open_fd_count(&self, pid: Pid) -> KResult<usize> {
        let proc_ = self.proc(pid)?;
        let mut open = 0;
        for chunk in proc_.fd_chunks.iter() {
            if let Some(chunk) = chunk.get() {
                open += chunk.iter().filter(|slot| slot.lock().is_some()).count();
            }
        }
        Ok(open)
    }

    /// Takes the global lock in `Linuxlike` mode; free in `Sv6` mode. The
    /// acquisition is recorded as a read-modify-write of the giant lock's
    /// line and the release as a write (recorded up front — within a
    /// window only the access multiset matters, not its order).
    fn serialise(&self) -> Option<parking_lot::MutexGuard<'_, ()>> {
        match self.mode {
            HostMode::Linuxlike => {
                if let Some(t) = &self.trace {
                    t.giant.acquire();
                    t.giant.release();
                }
                Some(self.giant.lock())
            }
            HostMode::Sv6 => None,
        }
    }

    /// Creates a new process, returning its pid (dense from zero). The
    /// append-only table makes this lock-free: concurrent syscalls' pid
    /// lookups never wait behind a table construction, which is what lets
    /// `posix_spawn`-per-message mail delivery scale.
    pub fn new_process(&self) -> Pid {
        self.procs.push_with(|pid| self.build_process(pid))
    }

    /// Builds a process table entry; `pid` only affects probe labels and is
    /// ignored on uninstrumented kernels.
    fn build_process(&self, pid: Pid) -> Arc<Process> {
        let sink = self.trace.as_ref().map(|t| &t.sink);
        Arc::new(Process {
            fd_chunks: (0..self.cores).map(|_| OnceLock::new()).collect(),
            vm_pages: RwLock::new(BTreeMap::new()),
            next_vpn: (0..self.cores).map(|_| OnceLock::new()).collect(),
            fd_probes: sink.map(|sink| {
                (0..self.cores * FDS_PER_CORE)
                    .map(|fd| sink.probe(format!("proc[{pid}].fd[{fd}]")))
                    .collect()
            }),
            vm_probes: sink.map(|sink| ProbeRadix::new(sink, &format!("proc[{pid}].as"))),
            vpn_probes: sink.map(|sink| {
                (0..self.cores)
                    .map(|c| sink.probe(format!("proc[{pid}].next_vpn[{c}]")))
                    .collect()
            }),
        })
    }

    fn proc(&self, pid: Pid) -> KResult<Arc<Process>> {
        self.procs.get(pid).ok_or(Errno::EINVAL)
    }

    fn inode_shard(&self, ino: Ino) -> &RwLock<BTreeMap<Ino, Arc<Inode>>> {
        &self.inode_shards[(ino % INODE_SHARDS as u64) as usize]
    }

    fn inode(&self, ino: Ino) -> Option<Arc<Inode>> {
        self.inode_shard(ino).read().get(&ino).cloned()
    }

    fn new_inode(&self, core: usize) -> Arc<Inode> {
        let ino = self.inode_alloc.alloc(core);
        let sink = self.trace.as_ref().map(|t| &t.sink);
        let nlink_label = format!("inode[{ino}].nlink");
        let inode = Arc::new(Inode {
            ino,
            nlink: LinkCounter::new(
                self.cores,
                self.options,
                sink.map(|sink| (sink, nlink_label.as_str())),
            ),
            size_pages: AtomicU64::new(0),
            pages: RwLock::new(BTreeMap::new()),
            tr: sink.map(|sink| InodeTrace {
                size: SeqProbe::new(sink, &format!("inode[{ino}].size")),
                pages: ProbeRadix::new(sink, &format!("inode[{ino}].pages")),
            }),
        });
        self.inode_shard(ino)
            .write()
            .insert(ino, Arc::clone(&inode));
        inode
    }

    fn open_file(&self, proc_: &Process, fd: Fd) -> KResult<Arc<OpenFile>> {
        if fd as usize >= proc_.fd_capacity() {
            return Err(Errno::EBADF);
        }
        if let Some(p) = &proc_.fd_probes {
            p[fd as usize].read();
        }
        // An unallocated partition is an empty slot (recorded as the read
        // above, like the simulated `slot.get()` of a None slot).
        let slot = proc_
            .fd_slot_if_allocated(fd as usize)
            .ok_or(Errno::EBADF)?;
        slot.lock().clone().ok_or(Errno::EBADF)
    }

    /// Allocates a descriptor slot: lowest free slot, or the invoking core's
    /// partition with `anyfd`, exactly as in the simulated sv6 kernel. The
    /// per-slot lock makes the claim atomic under concurrency; the recorded
    /// footprint is one read per scanned slot plus a write of the claimed
    /// one, as in the simulated scan.
    fn alloc_fd(
        &self,
        core: usize,
        proc_: &Process,
        file: Arc<OpenFile>,
        anyfd: bool,
    ) -> KResult<Fd> {
        let (start, end) = if anyfd {
            let core = core % self.cores;
            (core * FDS_PER_CORE, (core + 1) * FDS_PER_CORE)
        } else {
            (0, proc_.fd_capacity())
        };
        for fd in start..end {
            if let Some(p) = &proc_.fd_probes {
                p[fd].read();
            }
            // The scan stops at the first free slot, so materialising the
            // partition here only ever allocates the chunk being claimed.
            let mut slot = proc_.fd_slot(fd).expect("fd within capacity").lock();
            if slot.is_none() {
                if let Some(p) = &proc_.fd_probes {
                    p[fd].write();
                }
                *slot = Some(file);
                return Ok(fd as Fd);
            }
        }
        Err(Errno::EMFILE)
    }

    fn file_stat(&self, inode: &Inode, mask: StatMask) -> Stat {
        Stat {
            ino: if mask.want_ino { inode.ino } else { 0 },
            size: if mask.want_size {
                if let Some(tr) = &inode.tr {
                    tr.size.read();
                }
                inode.size_pages.load(Ordering::Acquire) * PAGE_SIZE
            } else {
                0
            },
            nlink: if mask.want_nlink {
                inode.nlink.read_exact()
            } else {
                0
            },
            is_pipe: false,
        }
    }

    fn file_read_at(&self, inode: &Inode, offset: u64, len: u64) -> Vec<u8> {
        let mut out = Vec::new();
        if len == 0 {
            return out;
        }
        let pages = inode.pages.read();
        let first_page = offset / PAGE_SIZE;
        let last_page = (offset + len - 1) / PAGE_SIZE;
        for page in first_page..=last_page {
            if let Some(tr) = &inode.tr {
                tr.pages.get(page as usize);
            }
            match pages.get(&page) {
                Some(data) => {
                    let page_start = page * PAGE_SIZE;
                    let begin = offset.max(page_start) - page_start;
                    let end = ((offset + len).min(page_start + PAGE_SIZE)) - page_start;
                    let begin = begin as usize;
                    let end = (end as usize).min(data.len());
                    if begin < end {
                        out.extend_from_slice(&data[begin..end]);
                    }
                }
                None => break,
            }
        }
        out
    }

    fn file_write_at(&self, inode: &Inode, offset: u64, data: &[u8]) -> u64 {
        if data.is_empty() {
            return 0;
        }
        let mut written = 0u64;
        let mut cursor = offset;
        let mut pages = inode.pages.write();
        while written < data.len() as u64 {
            let page = cursor / PAGE_SIZE;
            let in_page = (cursor % PAGE_SIZE) as usize;
            let chunk = ((PAGE_SIZE as usize) - in_page).min(data.len() - written as usize);
            // The simulated kernel reads the page, mutates a copy and
            // stores it back — one radix get plus one radix set per chunk.
            if let Some(tr) = &inode.tr {
                tr.pages.get(page as usize);
                tr.pages.set(page as usize);
            }
            let page_data = pages.entry(page).or_default();
            if page_data.len() < in_page + chunk {
                page_data.resize(in_page + chunk, 0);
            }
            page_data[in_page..in_page + chunk]
                .copy_from_slice(&data[written as usize..written as usize + chunk]);
            written += chunk as u64;
            cursor += chunk as u64;
        }
        drop(pages);
        // Grow the size only when the write extends the file (the
        // optimistic protocol): the read is always recorded, the write only
        // when `fetch_max` actually raised the size.
        let end_pages = (offset + written).div_ceil(PAGE_SIZE);
        if let Some(tr) = &inode.tr {
            tr.size.read();
        }
        let prev = inode.size_pages.fetch_max(end_pages, Ordering::AcqRel);
        if prev < end_pages {
            if let Some(tr) = &inode.tr {
                tr.size.write();
            }
        }
        written
    }

    fn vpn_of(addr: u64) -> KResult<u64> {
        if !addr.is_multiple_of(PAGE_SIZE) {
            return Err(Errno::EINVAL);
        }
        Ok(addr / PAGE_SIZE)
    }

    // --- file-name operations -------------------------------------------

    /// Opens (and possibly creates) `name`, returning a descriptor.
    pub fn open(&self, core: usize, pid: Pid, name: &str, flags: OpenFlags) -> KResult<Fd> {
        let _g = self.serialise();
        let proc_ = self.proc(pid)?;
        let ino = match self.root.get(name) {
            Some(ino) => {
                if flags.create && flags.excl {
                    return Err(Errno::EEXIST);
                }
                ino
            }
            None => {
                if !flags.create {
                    return Err(Errno::ENOENT);
                }
                let inode = self.new_inode(core);
                inode.nlink.inc(core);
                if self.root.insert_if_absent(name, inode.ino) {
                    inode.ino
                } else {
                    // Lost a create race with another thread: the
                    // pre-allocated inode was never published under a name,
                    // so drop it from the table here — no epoch pass would
                    // ever reclaim it otherwise.
                    inode.nlink.dec(core);
                    self.inode_shard(inode.ino).write().remove(&inode.ino);
                    if flags.excl {
                        return Err(Errno::EEXIST);
                    }
                    self.root.get(name).ok_or(Errno::ENOENT)?
                }
            }
        };
        let inode = self.inode(ino).ok_or(Errno::ENOENT)?;
        if flags.truncate {
            if let Some(tr) = &inode.tr {
                tr.size.read();
            }
            let size = inode.size_pages.load(Ordering::Acquire);
            if size != 0 {
                if let Some(tr) = &inode.tr {
                    tr.size.write();
                }
                inode.size_pages.store(0, Ordering::Release);
                let mut pages = inode.pages.write();
                if let Some(tr) = &inode.tr {
                    for page in pages.keys() {
                        tr.pages.take(*page as usize, true);
                    }
                }
                pages.clear();
            }
        }
        let file = Arc::new(OpenFile {
            obj: FileObj::File(inode),
            offset: AtomicU64::new(0),
            io: Mutex::new(()),
            offset_probe: self
                .trace
                .as_ref()
                .map(|t| t.sink.probe(format!("proc[{pid}].ofile[{name}].offset"))),
        });
        self.alloc_fd(core, &proc_, file, flags.anyfd)
    }

    /// Creates a new hard link `new` to the file `old`.
    pub fn link(&self, core: usize, pid: Pid, old: &str, new: &str) -> KResult<()> {
        let _g = self.serialise();
        let _ = self.proc(pid)?;
        let ino = self.root.get(old).ok_or(Errno::ENOENT)?;
        let inode = self.inode(ino).ok_or(Errno::ENOENT)?;
        // Optimistic existence check first ("precede pessimism with
        // optimism", and the same read-only EEXIST path the simulated
        // kernel takes): a link to an existing name must not touch the link
        // counter at all. This check doubles as the insert's optimistic
        // stage, so the pessimistic insert below completes exactly the
        // traced `insert_if_absent` footprint.
        if self.root.contains(new) {
            return Err(Errno::EEXIST);
        }
        // Publish the increment *before* inserting the name, then validate
        // the inode is still in the table. A concurrent unlink+epoch pass
        // could have reclaimed it between our lookup and our increment; the
        // epoch pass re-checks the count under the shard lock, so after a
        // successful validation the inode can no longer disappear while the
        // new name references it.
        inode.nlink.inc(core);
        if !self.root.insert_if_absent_pessimistic(new, ino) {
            inode.nlink.dec(core);
            return Err(Errno::EEXIST);
        }
        if self.inode(ino).is_none() {
            // Lost to reclamation: linearise as link-after-unlink.
            self.root.remove(new);
            return Err(Errno::ENOENT);
        }
        Ok(())
    }

    /// Removes the name `name`. Reclamation of the inode is deferred to an
    /// epoch pass, as in the simulated kernel.
    pub fn unlink(&self, core: usize, pid: Pid, name: &str) -> KResult<()> {
        let _g = self.serialise();
        let _ = self.proc(pid)?;
        let ino = self.root.remove(name).ok_or(Errno::ENOENT)?;
        if let Some(inode) = self.inode(ino) {
            inode.nlink.dec(core);
            self.defer_reclaim(core, ino);
        }
        Ok(())
    }

    /// Renames `src` to `dst`, with the same observable semantics as the
    /// simulated kernel (including the same-inode fast path). Unlike the
    /// single-threaded simulator, the whole check-then-update must be
    /// atomic here: both names' stripes are locked together (in canonical
    /// order), otherwise two concurrent renames sharing a destination can
    /// interleave their existence checks and produce a state no sequential
    /// order could (e.g. a leaked link count).
    pub fn rename(&self, core: usize, pid: Pid, src: &str, dst: &str) -> KResult<()> {
        let _g = self.serialise();
        let _ = self.proc(pid)?;
        let s_stripe = self.root.stripe_of(src);
        let d_stripe = self.root.stripe_of(dst);
        self.root.with_pair_locked(src, dst, |dir| {
            let src_ino = dir.get(src, s_stripe).ok_or(Errno::ENOENT)?;
            if src == dst {
                return Ok(());
            }
            match dir.get(dst, d_stripe) {
                Some(dst_ino) if dst_ino == src_ino => {
                    dir.remove(src, s_stripe);
                    if let Some(inode) = self.inode(src_ino) {
                        inode.nlink.dec(core);
                    }
                    return Ok(());
                }
                Some(dst_ino) => {
                    dir.upsert(dst, d_stripe, src_ino);
                    if let Some(old) = self.inode(dst_ino) {
                        old.nlink.dec(core);
                        self.defer_reclaim(core, dst_ino);
                    }
                }
                None => {
                    dir.upsert(dst, d_stripe, src_ino);
                }
            }
            dir.remove(src, s_stripe);
            Ok(())
        })
    }

    /// Returns the metadata of `name`.
    pub fn stat(&self, _core: usize, pid: Pid, name: &str) -> KResult<Stat> {
        let _g = self.serialise();
        let _ = self.proc(pid)?;
        let ino = self.root.get(name).ok_or(Errno::ENOENT)?;
        let inode = self.inode(ino).ok_or(Errno::ENOENT)?;
        Ok(self.file_stat(&inode, StatMask::all()))
    }

    // --- descriptor operations ------------------------------------------

    /// Returns the metadata of the open file `fd`.
    pub fn fstat(&self, core: usize, pid: Pid, fd: Fd) -> KResult<Stat> {
        self.fstatx(core, pid, fd, StatMask::all())
    }

    /// Field-selective `fstat`: the §4 commutative variant. Skipping
    /// `want_nlink` avoids touching the link counter entirely.
    pub fn fstatx(&self, _core: usize, pid: Pid, fd: Fd, mask: StatMask) -> KResult<Stat> {
        let _g = self.serialise();
        let proc_ = self.proc(pid)?;
        let file = self.open_file(&proc_, fd)?;
        match &file.obj {
            FileObj::File(inode) => Ok(self.file_stat(inode, mask)),
            FileObj::PipeRead(_) | FileObj::PipeWrite(_) => Ok(Stat {
                ino: 0,
                size: 0,
                nlink: 0,
                is_pipe: true,
            }),
        }
    }

    /// Repositions the offset of `fd`.
    pub fn lseek(
        &self,
        _core: usize,
        pid: Pid,
        fd: Fd,
        offset: i64,
        whence: Whence,
    ) -> KResult<u64> {
        let _g = self.serialise();
        let proc_ = self.proc(pid)?;
        let file = self.open_file(&proc_, fd)?;
        let inode = match &file.obj {
            FileObj::File(inode) => inode,
            _ => return Err(Errno::ESPIPE),
        };
        let _io = file.io.lock();
        // Optimistic stage: compute the new offset read-only and return
        // early if it is invalid or equal to the current offset (§6.3).
        if let Some(p) = &file.offset_probe {
            p.read();
        }
        let current = file.offset.load(Ordering::Acquire);
        let base = match whence {
            Whence::Set => 0i64,
            Whence::Cur => current as i64,
            Whence::End => {
                if let Some(tr) = &inode.tr {
                    tr.size.read();
                }
                (inode.size_pages.load(Ordering::Acquire) * PAGE_SIZE) as i64
            }
        };
        let target = base + offset;
        if target < 0 {
            return Err(Errno::EINVAL);
        }
        let target = target as u64;
        if target == current {
            return Ok(target);
        }
        if let Some(p) = &file.offset_probe {
            p.write();
        }
        file.offset.store(target, Ordering::Release);
        Ok(target)
    }

    /// Closes `fd`.
    pub fn close(&self, _core: usize, pid: Pid, fd: Fd) -> KResult<()> {
        let _g = self.serialise();
        let proc_ = self.proc(pid)?;
        if fd as usize >= proc_.fd_capacity() {
            return Err(Errno::EBADF);
        }
        if let Some(p) = &proc_.fd_probes {
            p[fd as usize].read();
        }
        let slot = proc_
            .fd_slot_if_allocated(fd as usize)
            .ok_or(Errno::EBADF)?;
        let file = slot.lock().take().ok_or(Errno::EBADF)?;
        if let Some(p) = &proc_.fd_probes {
            p[fd as usize].write();
        }
        adjust_pipe_endpoint(&file, -1);
        Ok(())
    }

    /// Creates a pipe, returning `(read_fd, write_fd)`.
    pub fn pipe(&self, core: usize, pid: Pid) -> KResult<(Fd, Fd)> {
        let _g = self.serialise();
        let proc_ = self.proc(pid)?;
        let trace = self.trace.as_ref();
        let id = trace.map(|t| t.next_pipe_id.fetch_add(1, Ordering::Relaxed));
        let label = |suffix: &str| {
            format!(
                "pipe[{pid}:{}].{suffix}",
                id.expect("labels only built when traced")
            )
        };
        let pipe = Arc::new(Pipe {
            buffer: Mutex::new(VecDeque::new()),
            readers: AtomicI64::new(1),
            writers: AtomicI64::new(1),
            tr: trace.map(|t| PipeTrace {
                buffer: t.sink.probe(label("buffer")),
                readers: t.sink.probe(label("readers")),
                writers: t.sink.probe(label("writers")),
            }),
        });
        let read_end = Arc::new(OpenFile {
            obj: FileObj::PipeRead(Arc::clone(&pipe)),
            offset: AtomicU64::new(0),
            io: Mutex::new(()),
            offset_probe: trace.map(|t| t.sink.probe(label("roff"))),
        });
        let write_end = Arc::new(OpenFile {
            obj: FileObj::PipeWrite(pipe),
            offset: AtomicU64::new(0),
            io: Mutex::new(()),
            offset_probe: trace.map(|t| t.sink.probe(label("woff"))),
        });
        let rfd = self.alloc_fd(core, &proc_, read_end, false)?;
        let wfd = self.alloc_fd(core, &proc_, write_end, false)?;
        Ok((rfd, wfd))
    }

    /// Reads up to `len` bytes at the current offset.
    pub fn read(&self, _core: usize, pid: Pid, fd: Fd, len: u64) -> KResult<Vec<u8>> {
        let _g = self.serialise();
        let proc_ = self.proc(pid)?;
        let file = self.open_file(&proc_, fd)?;
        match &file.obj {
            FileObj::File(inode) => {
                let _io = file.io.lock();
                if let Some(p) = &file.offset_probe {
                    p.read();
                }
                let offset = file.offset.load(Ordering::Acquire);
                let data = self.file_read_at(inode, offset, len);
                if !data.is_empty() {
                    if let Some(p) = &file.offset_probe {
                        p.write();
                    }
                    file.offset
                        .store(offset + data.len() as u64, Ordering::Release);
                }
                Ok(data)
            }
            FileObj::PipeRead(pipe) => {
                // The simulated kernel drains through `buffer.update`, which
                // reads and writes the buffer cell even when nothing is
                // taken — two concurrent empty reads of one pipe conflict,
                // deliberately (§6.4).
                if let Some(tr) = &pipe.tr {
                    tr.buffer.rmw();
                }
                let data: Vec<u8> = {
                    let mut buf = pipe.buffer.lock();
                    let take = (len as usize).min(buf.len());
                    buf.drain(..take).collect()
                };
                if data.is_empty() {
                    if let Some(tr) = &pipe.tr {
                        tr.writers.read();
                    }
                    if pipe.writers.load(Ordering::Acquire) > 0 {
                        return Err(Errno::EAGAIN);
                    }
                    return Ok(Vec::new());
                }
                Ok(data)
            }
            FileObj::PipeWrite(_) => Err(Errno::EBADF),
        }
    }

    /// Writes `data` at the current offset.
    pub fn write(&self, _core: usize, pid: Pid, fd: Fd, data: &[u8]) -> KResult<u64> {
        let _g = self.serialise();
        let proc_ = self.proc(pid)?;
        let file = self.open_file(&proc_, fd)?;
        match &file.obj {
            FileObj::File(inode) => {
                let _io = file.io.lock();
                if let Some(p) = &file.offset_probe {
                    p.read();
                }
                let offset = file.offset.load(Ordering::Acquire);
                let written = self.file_write_at(inode, offset, data);
                if let Some(p) = &file.offset_probe {
                    p.write();
                }
                file.offset.store(offset + written, Ordering::Release);
                Ok(written)
            }
            FileObj::PipeWrite(pipe) => {
                // SIGPIPE check: reads the shared reader count.
                if let Some(tr) = &pipe.tr {
                    tr.readers.read();
                }
                if pipe.readers.load(Ordering::Acquire) == 0 {
                    return Err(Errno::EPIPE);
                }
                if let Some(tr) = &pipe.tr {
                    tr.buffer.rmw();
                }
                pipe.buffer.lock().extend(data.iter().copied());
                Ok(data.len() as u64)
            }
            FileObj::PipeRead(_) => Err(Errno::EBADF),
        }
    }

    /// Reads at an absolute offset (no offset update).
    pub fn pread(&self, _core: usize, pid: Pid, fd: Fd, len: u64, offset: u64) -> KResult<Vec<u8>> {
        let _g = self.serialise();
        let proc_ = self.proc(pid)?;
        let file = self.open_file(&proc_, fd)?;
        match &file.obj {
            FileObj::File(inode) => Ok(self.file_read_at(inode, offset, len)),
            _ => Err(Errno::ESPIPE),
        }
    }

    /// Writes at an absolute offset (no offset update).
    pub fn pwrite(&self, _core: usize, pid: Pid, fd: Fd, data: &[u8], offset: u64) -> KResult<u64> {
        let _g = self.serialise();
        let proc_ = self.proc(pid)?;
        let file = self.open_file(&proc_, fd)?;
        match &file.obj {
            FileObj::File(inode) => Ok(self.file_write_at(inode, offset, data)),
            _ => Err(Errno::ESPIPE),
        }
    }

    // --- virtual memory ---------------------------------------------------

    /// Maps `pages` pages, returning the mapped address. Hint-less mappings
    /// come from the per-core region, with the same address arithmetic as
    /// the simulated kernel.
    pub fn mmap(
        &self,
        core: usize,
        pid: Pid,
        addr_hint: Option<u64>,
        pages: u64,
        prot: Prot,
        backing: MmapBacking,
    ) -> KResult<u64> {
        let _g = self.serialise();
        if pages == 0 {
            return Err(Errno::EINVAL);
        }
        let proc_ = self.proc(pid)?;
        let base_vpn = match addr_hint {
            Some(addr) => Self::vpn_of(addr)?,
            None => {
                // Per-core region allocation: no shared allocation state.
                let shard = core % self.cores;
                if let Some(p) = &proc_.vpn_probes {
                    p[shard].rmw();
                }
                proc_.next_vpn(shard).fetch_add(pages, Ordering::Relaxed)
            }
        };
        let file_ino = match backing {
            MmapBacking::Anon => None,
            MmapBacking::File(fd) => {
                let file = self.open_file(&proc_, fd)?;
                match &file.obj {
                    FileObj::File(inode) => Some(inode.ino),
                    _ => return Err(Errno::EBADF),
                }
            }
        };
        let mut vm = proc_.vm_pages.write();
        for i in 0..pages {
            let vpn = base_vpn + i;
            let backing = match file_ino {
                None => PageBacking::Anon(
                    Arc::new(AtomicU8::new(0)),
                    self.trace
                        .as_ref()
                        .map(|t| t.sink.probe(format!("proc[{pid}].page[{vpn}]"))),
                ),
                Some(ino) => PageBacking::File { ino, file_page: i },
            };
            if let Some(p) = &proc_.vm_probes {
                p.set(vpn as usize);
            }
            vm.insert(vpn, MappedPage { prot, backing });
        }
        Ok(base_vpn * PAGE_SIZE)
    }

    /// Unmaps `pages` pages starting at `addr`.
    pub fn munmap(&self, _core: usize, pid: Pid, addr: u64, pages: u64) -> KResult<()> {
        let _g = self.serialise();
        let proc_ = self.proc(pid)?;
        let base_vpn = Self::vpn_of(addr)?;
        let mut vm = proc_.vm_pages.write();
        for i in 0..pages {
            let present = vm.remove(&(base_vpn + i)).is_some();
            if let Some(p) = &proc_.vm_probes {
                p.take((base_vpn + i) as usize, present);
            }
        }
        Ok(())
    }

    /// Changes the protection of `pages` pages starting at `addr`.
    pub fn mprotect(
        &self,
        _core: usize,
        pid: Pid,
        addr: u64,
        pages: u64,
        prot: Prot,
    ) -> KResult<()> {
        let _g = self.serialise();
        let proc_ = self.proc(pid)?;
        let base_vpn = Self::vpn_of(addr)?;
        let mut vm = proc_.vm_pages.write();
        for i in 0..pages {
            let vpn = base_vpn + i;
            if let Some(p) = &proc_.vm_probes {
                p.get(vpn as usize);
            }
            match vm.get_mut(&vpn) {
                Some(page) => {
                    // The simulated kernel reads the slot and stores the
                    // updated mapping back.
                    if let Some(p) = &proc_.vm_probes {
                        p.set(vpn as usize);
                    }
                    page.prot = prot;
                }
                None => return Err(Errno::ENOMEM),
            }
        }
        Ok(())
    }

    /// Reads one byte from mapped memory.
    pub fn memread(&self, _core: usize, pid: Pid, addr: u64) -> KResult<u8> {
        let _g = self.serialise();
        let proc_ = self.proc(pid)?;
        let vpn = addr / PAGE_SIZE;
        let in_page = addr % PAGE_SIZE;
        if let Some(p) = &proc_.vm_probes {
            p.get(vpn as usize);
        }
        let page = proc_
            .vm_pages
            .read()
            .get(&vpn)
            .cloned()
            .ok_or(Errno::EFAULT)?;
        if !page.prot.read {
            return Err(Errno::EFAULT);
        }
        match &page.backing {
            PageBacking::Anon(cell, probe) => {
                if let Some(p) = probe {
                    p.read();
                }
                Ok(cell.load(Ordering::Acquire))
            }
            PageBacking::File { ino, file_page } => {
                let inode = self.inode(*ino).ok_or(Errno::EFAULT)?;
                let data = self.file_read_at(&inode, file_page * PAGE_SIZE + in_page, 1);
                Ok(data.first().copied().unwrap_or(0))
            }
        }
    }

    /// Writes one byte to mapped memory.
    pub fn memwrite(&self, _core: usize, pid: Pid, addr: u64, value: u8) -> KResult<()> {
        let _g = self.serialise();
        let proc_ = self.proc(pid)?;
        let vpn = addr / PAGE_SIZE;
        let in_page = addr % PAGE_SIZE;
        if let Some(p) = &proc_.vm_probes {
            p.get(vpn as usize);
        }
        let page = proc_
            .vm_pages
            .read()
            .get(&vpn)
            .cloned()
            .ok_or(Errno::EFAULT)?;
        if !page.prot.write {
            return Err(Errno::EFAULT);
        }
        match &page.backing {
            PageBacking::Anon(cell, probe) => {
                if let Some(p) = probe {
                    p.write();
                }
                cell.store(value, Ordering::Release);
                Ok(())
            }
            PageBacking::File { ino, file_page } => {
                let inode = self.inode(*ino).ok_or(Errno::EFAULT)?;
                self.file_write_at(&inode, file_page * PAGE_SIZE + in_page, &[value]);
                Ok(())
            }
        }
    }

    // --- processes and sockets (§4 / §7.3) --------------------------------

    /// Creates a child by duplicating the parent's descriptor table. The
    /// snapshot reads *every* parent slot — recorded as such, which is what
    /// makes fork commute with almost nothing — and writes each occupied
    /// slot into the child.
    pub fn fork(&self, _core: usize, pid: Pid) -> KResult<Pid> {
        let _g = self.serialise();
        let parent = self.proc(pid)?;
        let child_pid = self.new_process();
        let child = self.proc(child_pid)?;
        for fd in 0..parent.fd_capacity() {
            if let Some(p) = &parent.fd_probes {
                p[fd].read();
            }
            // An unallocated partition reads as all-empty without being
            // materialised (the probe read above still mirrors the
            // simulated whole-table snapshot).
            let file = parent
                .fd_slot_if_allocated(fd)
                .and_then(|slot| slot.lock().clone());
            if let Some(file) = file {
                // A duplicated descriptor is a second reference to a pipe
                // endpoint; the count grows with it (and shrinks again in
                // close/wait), exactly as in the simulated kernel.
                adjust_pipe_endpoint(&file, 1);
                if let Some(p) = &child.fd_probes {
                    p[fd].write();
                }
                *child.fd_slot(fd).expect("fd within capacity").lock() = Some(file);
            }
        }
        Ok(child_pid)
    }

    /// Creates a child with a fresh descriptor table, duplicating only the
    /// listed descriptors (`posix_spawn`, §4 "decompose compound
    /// operations"): only those slots are ever touched.
    pub fn posix_spawn(&self, _core: usize, pid: Pid, dup_fds: &[Fd]) -> KResult<Pid> {
        let _g = self.serialise();
        let parent = self.proc(pid)?;
        // Resolve the whole dup list first, as in the simulated kernel: a
        // bad descriptor fails the spawn before any endpoint reference is
        // taken or a child process exists.
        let mut files = dup_fds
            .iter()
            .map(|&fd| Ok((fd, self.open_file(&parent, fd)?)))
            .collect::<KResult<Vec<_>>>()?;
        // A repeated fd collapses into one child slot, so it must take
        // exactly one endpoint reference (matching the simulated kernel,
        // whose resolve also reads once per list entry).
        let mut seen = std::collections::BTreeSet::new();
        files.retain(|(fd, _)| seen.insert(*fd));
        let child_pid = self.new_process();
        let child = self.proc(child_pid)?;
        for (fd, file) in files {
            adjust_pipe_endpoint(&file, 1);
            if let Some(p) = &child.fd_probes {
                p[fd as usize].write();
            }
            *child.fd_slot(fd as usize).expect("open fd in range").lock() = Some(file);
        }
        Ok(child_pid)
    }

    /// Reaps a finished child: empties the occupied descriptor slots,
    /// releasing pipe endpoints exactly as `close` does, touching only the
    /// occupied lines (the exiting child's fd list is process-private
    /// state, so reaping stays O(open descriptors), not O(table size)).
    /// The pid stays valid and refers to an empty process afterwards, as
    /// in the simulated kernels.
    pub fn wait(&self, _core: usize, _pid: Pid, child: Pid) -> KResult<()> {
        let _g = self.serialise();
        let proc_ = self.proc(child)?;
        for (chunk_idx, chunk) in proc_.fd_chunks.iter().enumerate() {
            // Never-touched partitions hold nothing to reap.
            let Some(chunk) = chunk.get() else { continue };
            for (slot_idx, slot) in chunk.iter().enumerate() {
                let fd = chunk_idx * FDS_PER_CORE + slot_idx;
                let file = slot.lock().take();
                // Like the simulated kernel, reaping records accesses only
                // for occupied slots (the exiting child's fd list is
                // process-private state): a read and the emptying write.
                let Some(file) = file else { continue };
                if let Some(p) = &proc_.fd_probes {
                    p[fd].read();
                    p[fd].write();
                }
                adjust_pipe_endpoint(&file, -1);
            }
        }
        Ok(())
    }

    /// Creates a datagram socket with the requested ordering. Unlike the
    /// simulated Linux baseline (which always enforces ordering), the host
    /// kernel honours the request in both modes: `HostMode` changes only
    /// the *sharing* — in `Linuxlike` mode every socket call still takes
    /// the giant lock, which is what collapses its scaling.
    pub fn socket(&self, _core: usize, order: SocketOrder) -> KResult<SockId> {
        let _g = self.serialise();
        Ok(self.sockets.create(match order {
            SocketOrder::Ordered => QueueOrder::Ordered,
            SocketOrder::Unordered => QueueOrder::Unordered,
        }))
    }

    /// Sends a datagram on a socket.
    pub fn send(&self, core: usize, sock: SockId, msg: &[u8]) -> KResult<()> {
        let _g = self.serialise();
        self.sockets.send(core, sock, msg).map_err(sock_errno)
    }

    /// Receives a datagram from a socket (`EAGAIN` when every queue the
    /// receiver may take from is empty).
    pub fn recv(&self, core: usize, sock: SockId) -> KResult<Vec<u8>> {
        let _g = self.serialise();
        self.sockets.recv(core, sock).map_err(sock_errno)
    }

    /// Queued messages on a socket (untraced; for tests and the
    /// conservation checks).
    pub fn socket_pending_untraced(&self, sock: SockId) -> usize {
        self.sockets.pending_untraced(sock)
    }

    /// Removes and returns every queued message (untraced; used by the
    /// differential conservation checks).
    pub fn socket_drain_untraced(&self, sock: SockId) -> Vec<Vec<u8>> {
        self.sockets.drain_untraced(sock)
    }
}

/// Adjusts a descriptor's pipe-endpoint count: duplication (fork's
/// snapshot, posix_spawn's dup list) takes a reference (`+1`),
/// `close`/`wait` drop one (`-1`). The counts are shared cells — the
/// deliberate §6.4 residual conflict — and the recorded footprint is one
/// read-modify-write of the endpoint line, mirroring the simulated
/// kernel's `update`.
fn adjust_pipe_endpoint(file: &OpenFile, delta: i64) {
    match &file.obj {
        FileObj::File(_) => {}
        FileObj::PipeRead(pipe) => {
            if let Some(tr) = &pipe.tr {
                tr.readers.rmw();
            }
            pipe.readers.fetch_add(delta, Ordering::AcqRel);
        }
        FileObj::PipeWrite(pipe) => {
            if let Some(tr) = &pipe.tr {
                tr.writers.rmw();
            }
            pipe.writers.fetch_add(delta, Ordering::AcqRel);
        }
    }
}

/// Maps host socket-table errors onto the simulated twin's errnos.
fn sock_errno(e: SocketError) -> Errno {
    match e {
        SocketError::BadSocket => Errno::EBADF,
        SocketError::Empty => Errno::EAGAIN,
    }
}

/// The host kernel speaks the same [`SyscallApi`] as the simulated
/// kernels, so applications written against it — the §7.3 mail server —
/// and the reified-[`SysOp`] driver run on either substrate unchanged.
impl SyscallApi for HostKernel {
    fn new_process(&self) -> Pid {
        HostKernel::new_process(self)
    }

    fn open(&self, core: usize, pid: Pid, name: &str, flags: OpenFlags) -> KResult<Fd> {
        HostKernel::open(self, core, pid, name, flags)
    }

    fn link(&self, core: usize, pid: Pid, old: &str, new: &str) -> KResult<()> {
        HostKernel::link(self, core, pid, old, new)
    }

    fn unlink(&self, core: usize, pid: Pid, name: &str) -> KResult<()> {
        HostKernel::unlink(self, core, pid, name)
    }

    fn rename(&self, core: usize, pid: Pid, src: &str, dst: &str) -> KResult<()> {
        HostKernel::rename(self, core, pid, src, dst)
    }

    fn stat(&self, core: usize, pid: Pid, name: &str) -> KResult<Stat> {
        HostKernel::stat(self, core, pid, name)
    }

    fn fstat(&self, core: usize, pid: Pid, fd: Fd) -> KResult<Stat> {
        HostKernel::fstat(self, core, pid, fd)
    }

    fn fstatx(&self, core: usize, pid: Pid, fd: Fd, mask: StatMask) -> KResult<Stat> {
        HostKernel::fstatx(self, core, pid, fd, mask)
    }

    fn lseek(&self, core: usize, pid: Pid, fd: Fd, offset: i64, whence: Whence) -> KResult<u64> {
        HostKernel::lseek(self, core, pid, fd, offset, whence)
    }

    fn close(&self, core: usize, pid: Pid, fd: Fd) -> KResult<()> {
        HostKernel::close(self, core, pid, fd)
    }

    fn pipe(&self, core: usize, pid: Pid) -> KResult<(Fd, Fd)> {
        HostKernel::pipe(self, core, pid)
    }

    fn read(&self, core: usize, pid: Pid, fd: Fd, len: u64) -> KResult<Vec<u8>> {
        HostKernel::read(self, core, pid, fd, len)
    }

    fn write(&self, core: usize, pid: Pid, fd: Fd, data: &[u8]) -> KResult<u64> {
        HostKernel::write(self, core, pid, fd, data)
    }

    fn pread(&self, core: usize, pid: Pid, fd: Fd, len: u64, offset: u64) -> KResult<Vec<u8>> {
        HostKernel::pread(self, core, pid, fd, len, offset)
    }

    fn pwrite(&self, core: usize, pid: Pid, fd: Fd, data: &[u8], offset: u64) -> KResult<u64> {
        HostKernel::pwrite(self, core, pid, fd, data, offset)
    }

    fn mmap(
        &self,
        core: usize,
        pid: Pid,
        addr_hint: Option<u64>,
        pages: u64,
        prot: Prot,
        backing: MmapBacking,
    ) -> KResult<u64> {
        HostKernel::mmap(self, core, pid, addr_hint, pages, prot, backing)
    }

    fn munmap(&self, core: usize, pid: Pid, addr: u64, pages: u64) -> KResult<()> {
        HostKernel::munmap(self, core, pid, addr, pages)
    }

    fn mprotect(&self, core: usize, pid: Pid, addr: u64, pages: u64, prot: Prot) -> KResult<()> {
        HostKernel::mprotect(self, core, pid, addr, pages, prot)
    }

    fn memread(&self, core: usize, pid: Pid, addr: u64) -> KResult<u8> {
        HostKernel::memread(self, core, pid, addr)
    }

    fn memwrite(&self, core: usize, pid: Pid, addr: u64, value: u8) -> KResult<()> {
        HostKernel::memwrite(self, core, pid, addr, value)
    }

    fn fork(&self, core: usize, pid: Pid) -> KResult<Pid> {
        HostKernel::fork(self, core, pid)
    }

    fn posix_spawn(&self, core: usize, pid: Pid, dup_fds: &[Fd]) -> KResult<Pid> {
        HostKernel::posix_spawn(self, core, pid, dup_fds)
    }

    fn wait(&self, core: usize, pid: Pid, child: Pid) -> KResult<()> {
        HostKernel::wait(self, core, pid, child)
    }

    fn socket(&self, core: usize, order: SocketOrder) -> KResult<SockId> {
        HostKernel::socket(self, core, order)
    }

    fn send(&self, core: usize, sock: SockId, msg: &[u8]) -> KResult<()> {
        HostKernel::send(self, core, sock, msg)
    }

    fn recv(&self, core: usize, sock: SockId) -> KResult<Vec<u8>> {
        HostKernel::recv(self, core, sock)
    }
}

/// Performs a reified operation against a host kernel on the given core.
/// Since [`HostKernel`] implements [`SyscallApi`], this is the generic
/// `scr_kernel::api::perform` — kept as a named entry point for the
/// differential and Figure-6 pipelines' call sites.
pub fn perform_host(kernel: &HostKernel, core: usize, op: &SysOp) -> SysResult {
    scr_kernel::api::perform(kernel, core, op)
}

/// [`perform_host`] with per-call observation: when the observer is
/// enabled, the dispatch is timed and reported with the call's family name
/// and errno. With a disabled observer this is `perform_host` plus one
/// branch — no clock reads.
pub fn perform_host_observed<O>(
    kernel: &HostKernel,
    core: usize,
    op: &SysOp,
    observer: &O,
) -> SysResult
where
    O: scr_kernel::api::PerformObserver + ?Sized,
{
    scr_kernel::api::perform_observed(kernel, core, op, observer)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel_with_proc(mode: HostMode) -> (HostKernel, Pid) {
        let k = HostKernel::new(4, mode);
        let pid = k.new_process();
        (k, pid)
    }

    #[test]
    fn host_kernel_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<HostKernel>();
    }

    #[test]
    fn create_write_read_roundtrip_in_both_modes() {
        for mode in [HostMode::Sv6, HostMode::Linuxlike] {
            let (k, pid) = kernel_with_proc(mode);
            let fd = k.open(0, pid, "hello", OpenFlags::create()).unwrap();
            assert_eq!(k.write(0, pid, fd, b"hi there").unwrap(), 8);
            assert_eq!(k.lseek(0, pid, fd, 0, Whence::Set).unwrap(), 0);
            assert_eq!(k.read(0, pid, fd, 8).unwrap(), b"hi there");
            let st = k.fstat(0, pid, fd).unwrap();
            assert_eq!(st.nlink, 1);
            assert_eq!(st.size, PAGE_SIZE);
            k.close(0, pid, fd).unwrap();
            assert_eq!(k.read(0, pid, fd, 1), Err(Errno::EBADF));
        }
    }

    #[test]
    fn link_unlink_rename_match_sv6_semantics() {
        let (k, pid) = kernel_with_proc(HostMode::Sv6);
        k.open(0, pid, "a", OpenFlags::create()).unwrap();
        k.link(1, pid, "a", "b").unwrap();
        assert_eq!(k.stat(0, pid, "a").unwrap().nlink, 2);
        k.unlink(2, pid, "a").unwrap();
        assert_eq!(k.stat(0, pid, "b").unwrap().nlink, 1);
        assert_eq!(k.stat(0, pid, "a"), Err(Errno::ENOENT));
        // Rename onto a hard link of the same inode only removes the source.
        k.link(0, pid, "b", "c").unwrap();
        k.rename(0, pid, "b", "c").unwrap();
        assert_eq!(k.stat(0, pid, "b"), Err(Errno::ENOENT));
        assert_eq!(k.stat(0, pid, "c").unwrap().nlink, 1);
    }

    #[test]
    fn anyfd_uses_the_cores_partition() {
        let (k, pid) = kernel_with_proc(HostMode::Sv6);
        k.open(0, pid, "f", OpenFlags::create()).unwrap();
        let fd = k
            .open(2, pid, "f", OpenFlags::plain().with_anyfd())
            .unwrap();
        assert!(
            (fd as usize) >= 2 * FDS_PER_CORE && (fd as usize) < 3 * FDS_PER_CORE,
            "O_ANYFD descriptor must come from core 2's partition, got {fd}"
        );
    }

    #[test]
    fn pipes_match_sv6_semantics() {
        let (k, pid) = kernel_with_proc(HostMode::Sv6);
        let (r, w) = k.pipe(0, pid).unwrap();
        assert_eq!(k.write(0, pid, w, b"ping").unwrap(), 4);
        assert_eq!(k.read(0, pid, r, 16).unwrap(), b"ping");
        assert_eq!(k.read(0, pid, r, 1), Err(Errno::EAGAIN));
        k.close(0, pid, r).unwrap();
        assert_eq!(k.write(0, pid, w, b"x"), Err(Errno::EPIPE));
        let (r2, w2) = k.pipe(0, pid).unwrap();
        k.close(0, pid, w2).unwrap();
        assert_eq!(k.read(0, pid, r2, 4).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn vm_roundtrip_matches_sv6_semantics() {
        let (k, pid) = kernel_with_proc(HostMode::Sv6);
        let addr = k
            .mmap(0, pid, None, 2, Prot::rw(), MmapBacking::Anon)
            .unwrap();
        // Same per-core region arithmetic as the simulated kernel.
        assert_eq!(addr, PAGE_SIZE);
        k.memwrite(0, pid, addr, 7).unwrap();
        assert_eq!(k.memread(0, pid, addr).unwrap(), 7);
        assert_eq!(k.memread(0, pid, addr + PAGE_SIZE).unwrap(), 0);
        k.mprotect(0, pid, addr, 2, Prot::ro()).unwrap();
        assert_eq!(k.memwrite(0, pid, addr, 1), Err(Errno::EFAULT));
        k.munmap(0, pid, addr, 2).unwrap();
        assert_eq!(k.memread(0, pid, addr), Err(Errno::EFAULT));
        // File-backed mappings read through to the file.
        let fd = k.open(0, pid, "data", OpenFlags::create()).unwrap();
        k.pwrite(0, pid, fd, b"Z", 0).unwrap();
        let m = k
            .mmap(0, pid, None, 1, Prot::rw(), MmapBacking::File(fd))
            .unwrap();
        assert_eq!(k.memread(0, pid, m).unwrap(), b'Z');
        k.memwrite(0, pid, m, b'Q').unwrap();
        assert_eq!(k.pread(0, pid, fd, 1, 0).unwrap(), b"Q");
    }

    #[test]
    fn inode_numbers_match_the_simulated_allocator() {
        // Same (counter << 8) | core scheme as scr_scalable::InodeAllocator.
        let (k, pid) = kernel_with_proc(HostMode::Sv6);
        k.open(0, pid, "x", OpenFlags::create()).unwrap();
        k.open(1, pid, "y", OpenFlags::create()).unwrap();
        k.open(0, pid, "z", OpenFlags::create()).unwrap();
        assert_eq!(k.stat(0, pid, "x").unwrap().ino, 1 << 8);
        assert_eq!(k.stat(0, pid, "y").unwrap().ino, (1 << 8) | 1);
        assert_eq!(k.stat(0, pid, "z").unwrap().ino, 2 << 8);
    }

    #[test]
    fn concurrent_renames_sharing_a_destination_match_a_sequential_order() {
        // rename(a, b) || rename(c, b) where a and c are hard links to the
        // same inode: every sequential order ends with exactly one name (b)
        // and nlink == 1. A non-atomic check-then-act can miss the
        // same-inode fast path on both sides and leak a link count.
        for round in 0..200 {
            let k = std::sync::Arc::new(HostKernel::new(4, HostMode::Sv6));
            let pid = k.new_process();
            let a = format!("a-{round}");
            let b = format!("b-{round}");
            let c = format!("c-{round}");
            k.open(0, pid, &a, OpenFlags::create()).unwrap();
            k.link(0, pid, &a, &c).unwrap();
            let barrier = std::sync::Barrier::new(2);
            let (kr, br) = (&k, &barrier);
            std::thread::scope(|s| {
                let (a1, b1) = (a.clone(), b.clone());
                let t1 = s.spawn(move || {
                    br.wait();
                    kr.rename(0, pid, &a1, &b1)
                });
                let (c2, b2) = (c.clone(), b.clone());
                let t2 = s.spawn(move || {
                    br.wait();
                    kr.rename(1, pid, &c2, &b2)
                });
                t1.join().unwrap().unwrap();
                t2.join().unwrap().unwrap();
            });
            assert_eq!(k.stat(0, pid, &a), Err(Errno::ENOENT), "round {round}");
            assert_eq!(k.stat(0, pid, &c), Err(Errno::ENOENT), "round {round}");
            let st = k.stat(0, pid, &b).unwrap();
            assert_eq!(st.nlink, 1, "round {round}: leaked link count");
        }
    }

    #[test]
    fn unlinked_inodes_are_reclaimed_by_the_epoch_pass() {
        let (k, pid) = kernel_with_proc(HostMode::Sv6);
        k.open(0, pid, "victim", OpenFlags::create()).unwrap();
        let ino = k.stat(0, pid, "victim").unwrap().ino;
        k.unlink(1, pid, "victim").unwrap();
        assert!(k.inode(ino).is_some(), "reclamation must be deferred");
        assert_eq!(k.reclaim_epoch(), 1);
        assert!(k.inode(ino).is_none(), "epoch pass must reclaim the inode");
        // A still-linked inode survives its defer entry (link/unlink pair).
        k.open(0, pid, "kept", OpenFlags::create()).unwrap();
        k.link(0, pid, "kept", "extra").unwrap();
        k.unlink(0, pid, "extra").unwrap();
        assert_eq!(k.reclaim_epoch(), 0);
        assert!(k.stat(0, pid, "kept").is_ok());
    }

    #[test]
    fn concurrent_creates_from_many_threads_are_safe() {
        let k = std::sync::Arc::new(HostKernel::new(4, HostMode::Sv6));
        let pid = k.new_process();
        std::thread::scope(|s| {
            for t in 0..4 {
                let k = std::sync::Arc::clone(&k);
                s.spawn(move || {
                    for i in 0..50 {
                        let name = format!("t{t}-f{i}");
                        let fd = k
                            .open(t, pid, &name, OpenFlags::create().with_anyfd())
                            .unwrap();
                        k.close(t, pid, fd).unwrap();
                    }
                });
            }
        });
        for t in 0..4 {
            for i in 0..50 {
                assert!(k.stat(0, pid, &format!("t{t}-f{i}")).is_ok());
            }
        }
    }

    #[test]
    fn perform_host_drives_the_kernel_via_sysops() {
        let (k, pid) = kernel_with_proc(HostMode::Sv6);
        let res = perform_host(
            &k,
            0,
            &SysOp::Open {
                pid,
                name: "via-sysop".into(),
                flags: OpenFlags::create(),
            },
        );
        assert!(res.is_ok());
        match perform_host(
            &k,
            0,
            &SysOp::StatPath {
                pid,
                name: "via-sysop".into(),
            },
        ) {
            SysResult::Meta(st) => assert_eq!(st.nlink, 1),
            other => panic!("unexpected result {other:?}"),
        }
    }
}
