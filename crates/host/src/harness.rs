//! The load harness: N real OS threads, a start barrier, a wall clock.
//!
//! Where `scr_mtrace::ThroughputModel` *derives* ops/sec/core from a traced
//! access log, the harness *measures* it: each participating thread is
//! handed its core number, runs the per-core closure `rounds` times, and
//! the slowest thread's wall-clock time defines the point — the same
//! "slowest core" convention the simulated model uses.

use scr_mtrace::ScalingPoint;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;
use std::time::Instant;

/// Number of hardware threads the host offers (at least 1).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs per-core closures on real threads and turns the measurement into
/// [`ScalingPoint`]s compatible with the simulated Figure-7 sweeps.
#[derive(Clone, Copy, Debug)]
pub struct LoadHarness {
    /// Operations each thread performs per measurement.
    pub ops_per_thread: u64,
}

impl LoadHarness {
    /// A harness running `ops_per_thread` operations on every thread.
    pub fn new(ops_per_thread: u64) -> Self {
        LoadHarness { ops_per_thread }
    }

    /// Spawns `threads` OS threads; thread `t` calls `work(t, op_index)`
    /// for each of its operations after all threads pass a common barrier.
    /// Returns the resulting scaling point (`remote_transfers` is zero:
    /// real hardware does not expose its coherence traffic to us).
    pub fn run<W>(&self, threads: usize, work: W) -> ScalingPoint
    where
        W: Fn(usize, u64) + Sync,
    {
        let threads = threads.max(1);
        let barrier = Barrier::new(threads);
        let slowest_nanos = AtomicU64::new(0);
        let work = &work;
        let barrier = &barrier;
        let slowest = &slowest_nanos;
        let ops = self.ops_per_thread;
        std::thread::scope(|scope| {
            for t in 0..threads {
                scope.spawn(move || {
                    barrier.wait();
                    let start = Instant::now();
                    for op in 0..ops {
                        work(t, op);
                    }
                    let nanos = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                    slowest.fetch_max(nanos, Ordering::AcqRel);
                });
            }
        });
        let elapsed_seconds = (slowest_nanos.load(Ordering::Acquire) as f64 / 1e9).max(1e-9);
        let total_ops = ops * threads as u64;
        ScalingPoint {
            cores: threads,
            total_ops,
            ops_per_sec_per_core: total_ops as f64 / elapsed_seconds / threads as f64,
            remote_transfers: 0,
            elapsed_seconds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn available_threads_is_positive() {
        assert!(available_threads() >= 1);
    }

    #[test]
    fn harness_runs_every_operation_on_every_thread() {
        let counter = AtomicU64::new(0);
        let harness = LoadHarness::new(100);
        let point = harness.run(3, |_core, _op| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 300);
        assert_eq!(point.cores, 3);
        assert_eq!(point.total_ops, 300);
        assert!(point.elapsed_seconds > 0.0);
        assert!(point.ops_per_sec_per_core > 0.0);
    }

    #[test]
    fn threads_see_distinct_core_numbers() {
        let seen = std::sync::Mutex::new(std::collections::BTreeSet::new());
        LoadHarness::new(1).run(4, |core, _| {
            seen.lock().unwrap().insert(core);
        });
        assert_eq!(seen.into_inner().unwrap().len(), 4);
    }
}
