//! The host-side Figure 6 pipeline: the conflict heatmap on real threads.
//!
//! The simulated pipeline (`scr_core::run_commuter`) runs every generated
//! test on the simulated kernels and reports which commutative pairs share
//! cache lines. This module replays the same tests on the real-threads
//! [`HostKernel`] with a `scr-hostmtrace` tracing window around the
//! concurrent pair, producing [`Figure6Report`]s labelled `sv6-host` and
//! `linux-host` — and cross-checks them against the simulated heatmap.
//!
//! The cross-check invariant is one-directional: every test that is
//! conflict-free on the simulated sv6 kernel must be conflict-free on the
//! host sv6 kernel too, in **every** schedule the hardware picks. The only
//! tolerated exceptions are the documented lowest-FD-allocation contention
//! cases (the paper's §1 example: POSIX's "lowest available descriptor"
//! rule makes otherwise-commutative calls contend on the descriptor table).
//! Such divergences are classified by their conflicting labels and recorded
//! explicitly in [`HostFig6Results::divergences`] with the
//! [`LOWEST_FD_EXCEPTION`] tag — never waived silently; anything else is an
//! unexplained divergence and fails the acceptance test.
//!
//! The `linux-host` column is not cross-checked per test: the host baseline
//! serialises every call on one global kernel lock (recorded as a written
//! line), so — exactly as in the paper's Linux column — essentially every
//! pair conflicts there, which [`HostFig6Results::assert_linux_collapses`]
//! verifies in aggregate instead.

use crate::kernel::{perform_host, HostKernel, HostMode, HostOptions};
use scr_core::pipeline::bucket_distinct_names;
use scr_core::{
    analyze_pair, enumerate_shapes, generate_tests, run_test, ConcreteTest, Figure6Report,
    LinuxLikeFactory, Sv6Factory,
};
use scr_hostmtrace::{on_core, HostConflictReport, HostTraceSink};
use scr_kernel::api::SysResult;
use scr_model::{CallKind, ModelConfig};
use std::sync::Barrier;

/// The exception tag for divergences fully explained by lowest-FD
/// descriptor-table contention (every conflicting line is a `proc[p].fd[f]`
/// slot). See §1 of the paper: `O_ANYFD` removes exactly this contention.
pub const LOWEST_FD_EXCEPTION: &str = "lowest-fd-allocation";

/// Configuration of a host Figure 6 run.
#[derive(Clone, Debug)]
pub struct HostFig6Config {
    /// Calls whose unordered pairs are analysed.
    pub calls: Vec<CallKind>,
    /// Model bounds (the same defaults as the simulated pipeline).
    pub model: ModelConfig,
    /// Satisfying assignments enumerated per commutative case.
    pub max_assignments_per_case: usize,
    /// Cores (threads) each kernel is configured with.
    pub cores: usize,
    /// How many times each test's concurrent pair is replayed; a test is
    /// host-conflict-free only when every schedule is.
    pub schedules_per_test: usize,
}

impl HostFig6Config {
    /// A bounded configuration for the given calls (half the quick
    /// pipeline's assignment limit: every traced test runs on four kernels
    /// and several schedules, so the corpus is kept proportionate).
    pub fn quick(calls: &[CallKind]) -> Self {
        HostFig6Config {
            calls: calls.to_vec(),
            model: ModelConfig {
                inodes: 2,
                ..ModelConfig::default()
            },
            max_assignments_per_case: 24,
            cores: 4,
            schedules_per_test: 2,
        }
    }
}

/// The outcome of one traced host replay.
#[derive(Clone, Debug)]
pub struct HostTestOutcome {
    /// The test's identifier.
    pub test_id: String,
    /// Whether the traced window was conflict-free.
    pub conflict_free: bool,
    /// Labels of the lines shared between the two threads.
    pub shared_labels: Vec<String>,
    /// The results the two operations returned.
    pub results: (SysResult, SysResult),
    /// Accesses dropped by log overflow (0 in any healthy run).
    pub dropped: usize,
}

/// Replays one test on an instrumented kernel: setup untraced on core 0,
/// then the commutative pair inside a tracing window — on two real threads
/// when `concurrent`, or back to back on the calling thread otherwise (the
/// deterministic mode used to validate instrumentation faithfulness).
pub fn replay_traced(
    mode: HostMode,
    cores: usize,
    test: &ConcreteTest,
    concurrent: bool,
) -> (HostConflictReport, (SysResult, SysResult)) {
    let (_, report, results) = replay_traced_with_sink(mode, cores, test, concurrent);
    (report, results)
}

/// [`replay_traced`], also returning the sink so callers can resolve every
/// access's label (used by the instrumentation-faithfulness tests).
pub fn replay_traced_with_sink(
    mode: HostMode,
    cores: usize,
    test: &ConcreteTest,
    concurrent: bool,
) -> (
    std::sync::Arc<HostTraceSink>,
    HostConflictReport,
    (SysResult, SysResult),
) {
    let sink = HostTraceSink::new(cores.max(2));
    let kernel = HostKernel::instrumented(cores, mode, HostOptions::default(), &sink);
    for _ in 0..test.procs.max(2) {
        kernel.new_process();
    }
    for op in &test.setup {
        on_core(0, || perform_host(&kernel, 0, op));
    }
    sink.begin_window();
    let results = if concurrent {
        let barrier = Barrier::new(2);
        let (kernel_ref, barrier_ref) = (&kernel, &barrier);
        std::thread::scope(|scope| {
            let a = scope.spawn(move || {
                barrier_ref.wait();
                on_core(0, || perform_host(kernel_ref, 0, &test.op_a))
            });
            let b = scope.spawn(move || {
                barrier_ref.wait();
                on_core(1, || perform_host(kernel_ref, 1, &test.op_b))
            });
            (
                a.join().expect("op_a thread"),
                b.join().expect("op_b thread"),
            )
        })
    } else {
        (
            on_core(0, || perform_host(&kernel, 0, &test.op_a)),
            on_core(1, || perform_host(&kernel, 1, &test.op_b)),
        )
    };
    let report = sink.end_window();
    (sink, report, results)
}

/// Normalises a pipe line label for footprint comparison: pipe *instance*
/// ids differ between the simulated kernel (which derives them from its
/// access counter) and the host kernel (a plain counter), so
/// `pipe[0:17].buffer` becomes `pipe[0:#].buffer`. All other labels are
/// returned unchanged.
pub fn normalize_pipe_label(label: &str) -> String {
    if let Some(rest) = label.strip_prefix("pipe[") {
        if let Some((head, tail)) = rest.split_once(']') {
            if let Some((pid, _id)) = head.split_once(':') {
                return format!("pipe[{pid}:#]{tail}");
            }
        }
    }
    label.to_string()
}

/// Runs one test on real threads under `schedules` schedules; the outcome
/// is conflict-free only if every schedule was, and the shared labels are
/// the union over schedules.
pub fn run_test_host(
    mode: HostMode,
    cores: usize,
    test: &ConcreteTest,
    schedules: usize,
) -> HostTestOutcome {
    let mut shared_labels = Vec::new();
    let mut conflict_free = true;
    let mut dropped = 0;
    let mut results = (SysResult::Unit, SysResult::Unit);
    for _ in 0..schedules.max(1) {
        let (report, res) = replay_traced(mode, cores, test, true);
        conflict_free &= report.is_conflict_free();
        shared_labels.extend(report.conflicting_labels());
        dropped += report.dropped;
        results = res;
    }
    shared_labels.sort();
    shared_labels.dedup();
    HostTestOutcome {
        test_id: test.id.clone(),
        conflict_free,
        shared_labels,
        results,
        dropped,
    }
}

/// A test where the simulated sv6 kernel was conflict-free but the host
/// sv6 kernel conflicted in at least one schedule.
#[derive(Clone, Debug)]
pub struct Fig6Divergence {
    /// The diverging test.
    pub test_id: String,
    /// Its call pair.
    pub calls: (CallKind, CallKind),
    /// The lines the host conflicted on.
    pub shared_labels: Vec<String>,
    /// `Some(tag)` when the divergence is in the documented exception list
    /// (currently only [`LOWEST_FD_EXCEPTION`]); `None` means unexplained.
    pub exception: Option<&'static str>,
}

/// Classifies a divergence by its conflicting labels: an exception only
/// when *every* shared line is a descriptor-table slot (`proc[p].fd[f]`).
pub fn classify_divergence(shared_labels: &[String]) -> Option<&'static str> {
    if !shared_labels.is_empty() && shared_labels.iter().all(|l| is_fd_slot_label(l)) {
        Some(LOWEST_FD_EXCEPTION)
    } else {
        None
    }
}

fn is_fd_slot_label(label: &str) -> bool {
    label.starts_with("proc[") && label.contains("].fd[")
}

/// The aggregated result of a host Figure 6 run.
#[derive(Clone, Debug)]
pub struct HostFig6Results {
    /// The simulated heatmaps, for side-by-side comparison.
    pub sim_sv6: Figure6Report,
    pub sim_linux: Figure6Report,
    /// The host heatmaps.
    pub host_sv6: Figure6Report,
    pub host_linux: Figure6Report,
    /// Every sim-free→host-conflict divergence on the sv6 pair, classified.
    pub divergences: Vec<Fig6Divergence>,
    /// Number of distinct tests run (each on four kernels).
    pub tests_run: usize,
    /// Accesses dropped across every traced window (0 in a healthy run).
    pub dropped: usize,
}

impl HostFig6Results {
    /// Divergences not covered by the documented exception list.
    pub fn unexplained_divergences(&self) -> Vec<&Fig6Divergence> {
        self.divergences
            .iter()
            .filter(|d| d.exception.is_none())
            .collect()
    }

    /// Divergences covered by the exception list.
    pub fn explained_divergences(&self) -> Vec<&Fig6Divergence> {
        self.divergences
            .iter()
            .filter(|d| d.exception.is_some())
            .collect()
    }

    /// The giant kernel lock must make essentially everything conflict in
    /// the host baseline — the Linux column of the paper's figure. Returns
    /// an error string when any test with at least one conflict on the
    /// simulated Linux kernel scaled on linux-host.
    pub fn assert_linux_collapses(&self) -> Result<(), String> {
        if self.host_linux.total_tests() > 0
            && self.host_linux.total_conflict_free() > self.sim_linux.total_conflict_free()
        {
            return Err(format!(
                "linux-host scaled more often than simulated Linux: {} vs {}",
                self.host_linux.total_conflict_free(),
                self.sim_linux.total_conflict_free()
            ));
        }
        Ok(())
    }

    /// One line per divergence, for diagnostics and reports.
    pub fn describe_divergences(&self) -> String {
        self.divergences
            .iter()
            .map(|d| {
                format!(
                    "{} ({} ∥ {}): {} [{}]",
                    d.test_id,
                    d.calls.0.name(),
                    d.calls.1.name(),
                    d.shared_labels.join(", "),
                    d.exception.unwrap_or("UNEXPLAINED")
                )
            })
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// Runs the full host Figure 6 pipeline: generates tests for every
/// unordered pair of `config.calls`, runs each on the simulated sv6 and
/// Linux kernels and on the host kernel in both modes, aggregates four
/// heatmaps, and records every SIM↔host divergence on the sv6 pair.
pub fn run_host_fig6(config: &HostFig6Config) -> HostFig6Results {
    let names = bucket_distinct_names(8);
    let sim_sv6_factory = Sv6Factory {
        cores: config.cores,
    };
    let sim_linux_factory = LinuxLikeFactory {
        cores: config.cores,
    };
    let mut results = HostFig6Results {
        sim_sv6: Figure6Report::new("sv6"),
        sim_linux: Figure6Report::new("Linux"),
        host_sv6: Figure6Report::new("sv6-host"),
        host_linux: Figure6Report::new("linux-host"),
        divergences: Vec::new(),
        tests_run: 0,
        dropped: 0,
    };
    for (i, &call_a) in config.calls.iter().enumerate() {
        for &call_b in config.calls.iter().skip(i) {
            for shape in enumerate_shapes(call_a, call_b, &config.model) {
                let analysis = analyze_pair(&shape, &config.model);
                if analysis.cases.is_empty() {
                    continue;
                }
                let generated = generate_tests(
                    &shape,
                    &analysis.cases,
                    &config.model,
                    &names,
                    config.max_assignments_per_case,
                );
                for report in [
                    &mut results.sim_sv6,
                    &mut results.sim_linux,
                    &mut results.host_sv6,
                    &mut results.host_linux,
                ] {
                    report.record_skips(call_a, call_b, &generated.skip_reasons);
                }
                for test in &generated.tests {
                    results.tests_run += 1;
                    let sim_sv6 = run_test(&sim_sv6_factory, test);
                    let sim_linux = run_test(&sim_linux_factory, test);
                    let host_sv6 =
                        run_test_host(HostMode::Sv6, config.cores, test, config.schedules_per_test);
                    let host_linux = run_test_host(
                        HostMode::Linuxlike,
                        config.cores,
                        test,
                        config.schedules_per_test,
                    );
                    results.dropped += host_sv6.dropped + host_linux.dropped;
                    results
                        .sim_sv6
                        .record(call_a, call_b, sim_sv6.conflict_free);
                    results
                        .sim_linux
                        .record(call_a, call_b, sim_linux.conflict_free);
                    results
                        .host_sv6
                        .record(call_a, call_b, host_sv6.conflict_free);
                    results
                        .host_linux
                        .record(call_a, call_b, host_linux.conflict_free);
                    if sim_sv6.conflict_free && !host_sv6.conflict_free {
                        results.divergences.push(Fig6Divergence {
                            test_id: test.id.clone(),
                            calls: (call_a, call_b),
                            exception: classify_divergence(&host_sv6.shared_labels),
                            shared_labels: host_sv6.shared_labels,
                        });
                    }
                }
            }
        }
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use scr_kernel::api::{OpenFlags, SysOp};

    fn manual_test(
        id: &str,
        calls: (CallKind, CallKind),
        op_a: SysOp,
        op_b: SysOp,
    ) -> ConcreteTest {
        ConcreteTest {
            id: id.into(),
            calls,
            setup: vec![],
            op_a,
            op_b,
            procs: 2,
        }
    }

    fn create_op(pid: usize, name: &str, anyfd: bool) -> SysOp {
        let mut flags = OpenFlags::create();
        if anyfd {
            flags = flags.with_anyfd();
        }
        SysOp::Open {
            pid,
            name: name.into(),
            flags,
        }
    }

    #[test]
    fn creating_different_files_scales_on_host_sv6_but_not_linuxlike() {
        let test = manual_test(
            "host_create_different",
            (CallKind::Open, CallKind::Open),
            create_op(0, "alpha", false),
            create_op(1, "bravo", false),
        );
        let sv6 = run_test_host(HostMode::Sv6, 4, &test, 2);
        assert!(sv6.conflict_free, "sv6-host shared {:?}", sv6.shared_labels);
        let linux = run_test_host(HostMode::Linuxlike, 4, &test, 1);
        assert!(!linux.conflict_free);
        assert!(
            linux.shared_labels.iter().any(|l| l == "kernel.giant_lock"),
            "the giant lock must be the recorded conflict, got {:?}",
            linux.shared_labels
        );
    }

    #[test]
    fn same_process_double_create_contends_on_lowest_fd_and_anyfd_fixes_it() {
        // The paper's §1 example on real threads: two creates of different
        // names in one process conflict on the descriptor table under
        // POSIX's lowest-FD rule, and O_ANYFD removes the contention.
        let lowest = manual_test(
            "host_lowest_fd",
            (CallKind::Open, CallKind::Open),
            create_op(0, "alpha", false),
            create_op(0, "bravo", false),
        );
        let outcome = run_test_host(HostMode::Sv6, 4, &lowest, 2);
        assert!(!outcome.conflict_free);
        assert!(
            outcome.shared_labels.iter().all(|l| l.contains("].fd[")),
            "only fd slots may conflict, got {:?}",
            outcome.shared_labels
        );
        assert_eq!(
            classify_divergence(&outcome.shared_labels),
            Some(LOWEST_FD_EXCEPTION)
        );
        let anyfd = manual_test(
            "host_anyfd",
            (CallKind::Open, CallKind::Open),
            create_op(0, "alpha", true),
            create_op(0, "bravo", true),
        );
        let outcome = run_test_host(HostMode::Sv6, 4, &anyfd, 2);
        assert!(
            outcome.conflict_free,
            "O_ANYFD must remove the contention, got {:?}",
            outcome.shared_labels
        );
    }

    #[test]
    fn classification_requires_every_label_to_be_an_fd_slot() {
        assert_eq!(classify_divergence(&[]), None);
        assert_eq!(
            classify_divergence(&["proc[0].fd[3]".to_string()]),
            Some(LOWEST_FD_EXCEPTION)
        );
        assert_eq!(
            classify_divergence(&[
                "proc[0].fd[3]".to_string(),
                "scalefs.root.bucket[9].entries".to_string()
            ]),
            None
        );
    }

    #[test]
    fn small_pipeline_cross_checks_cleanly() {
        let config = HostFig6Config {
            schedules_per_test: 1,
            ..HostFig6Config::quick(&[CallKind::Stat, CallKind::Unlink])
        };
        let results = run_host_fig6(&config);
        assert!(results.tests_run > 0);
        assert_eq!(results.dropped, 0);
        assert_eq!(
            results.sim_sv6.total_tests(),
            results.host_sv6.total_tests()
        );
        assert!(
            results.unexplained_divergences().is_empty(),
            "unexplained divergences:\n{}",
            results.describe_divergences()
        );
        results.assert_linux_collapses().unwrap();
    }
}
