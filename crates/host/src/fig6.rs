//! The host-side Figure 6 pipeline: the conflict heatmap on real threads.
//!
//! The simulated pipeline (`scr_core::run_commuter`) runs every generated
//! test on the simulated kernels and reports which commutative pairs share
//! cache lines. This module replays the same tests on the real-threads
//! [`HostKernel`] with a `scr-hostmtrace` tracing window around the
//! concurrent pair, producing [`Figure6Report`]s labelled `sv6-host` and
//! `linux-host` — and cross-checks them against the simulated heatmap.
//!
//! The cross-check invariant is one-directional: every test that is
//! conflict-free on the simulated sv6 kernel must be conflict-free on the
//! host sv6 kernel too, in **every** schedule the hardware picks. The only
//! tolerated exceptions are the documented lowest-FD-allocation contention
//! cases (the paper's §1 example: POSIX's "lowest available descriptor"
//! rule makes otherwise-commutative calls contend on the descriptor table).
//! Such divergences are classified by their conflicting labels and recorded
//! explicitly in [`HostFig6Results::divergences`] with the
//! [`LOWEST_FD_EXCEPTION`] tag — never waived silently; anything else is an
//! unexplained divergence and fails the acceptance test.
//!
//! The `linux-host` column is not cross-checked per test: the host baseline
//! serialises every call on one global kernel lock (recorded as a written
//! line), so — exactly as in the paper's Linux column — essentially every
//! pair conflicts there, which [`HostFig6Results::assert_linux_collapses`]
//! verifies in aggregate instead.

use crate::kernel::{perform_host, HostKernel, HostMode, HostOptions};
use scr_core::pipeline::bucket_distinct_names;
use scr_core::{
    analyze_pair, enumerate_shapes, generate_tests, run_test, ConcreteTest, Figure6Report,
    LinuxLikeFactory, Sv6Factory,
};
use scr_hostmtrace::{on_core, HostConflictReport, HostTraceSink};
use scr_kernel::api::{perform, Fd, Pid, SockId, SocketOrder, SysOp, SysResult, SyscallApi};
use scr_kernel::Sv6Kernel;
use scr_model::{CallKind, ModelConfig};
use scr_mtrace::AccessKind;
use scr_obs::HeatMap;
use std::sync::Barrier;

/// The exception tag for divergences fully explained by lowest-FD
/// descriptor-table contention (every conflicting line is a `proc[p].fd[f]`
/// slot). See §1 of the paper: `O_ANYFD` removes exactly this contention.
pub const LOWEST_FD_EXCEPTION: &str = "lowest-fd-allocation";

/// Configuration of a host Figure 6 run.
#[derive(Clone, Debug)]
pub struct HostFig6Config {
    /// Calls whose unordered pairs are analysed.
    pub calls: Vec<CallKind>,
    /// Model bounds (the same defaults as the simulated pipeline).
    pub model: ModelConfig,
    /// Satisfying assignments enumerated per commutative case.
    pub max_assignments_per_case: usize,
    /// Cores (threads) each kernel is configured with.
    pub cores: usize,
    /// How many times each test's concurrent pair is replayed; a test is
    /// host-conflict-free only when every schedule is.
    pub schedules_per_test: usize,
}

impl HostFig6Config {
    /// A bounded configuration for the given calls (half the quick
    /// pipeline's assignment limit: every traced test runs on four kernels
    /// and several schedules, so the corpus is kept proportionate).
    pub fn quick(calls: &[CallKind]) -> Self {
        HostFig6Config {
            calls: calls.to_vec(),
            model: ModelConfig {
                inodes: 2,
                ..ModelConfig::default()
            },
            max_assignments_per_case: 24,
            cores: 4,
            schedules_per_test: 2,
        }
    }
}

/// The outcome of one traced host replay.
#[derive(Clone, Debug)]
pub struct HostTestOutcome {
    /// The test's identifier.
    pub test_id: String,
    /// Whether the traced window was conflict-free.
    pub conflict_free: bool,
    /// Labels of the lines shared between the two threads.
    pub shared_labels: Vec<String>,
    /// The results the two operations returned.
    pub results: (SysResult, SysResult),
    /// Accesses dropped by log overflow (0 in any healthy run).
    pub dropped: usize,
}

/// Replays one test on an instrumented kernel: setup untraced on core 0,
/// then the commutative pair inside a tracing window — on two real threads
/// when `concurrent`, or back to back on the calling thread otherwise (the
/// deterministic mode used to validate instrumentation faithfulness).
pub fn replay_traced(
    mode: HostMode,
    cores: usize,
    test: &ConcreteTest,
    concurrent: bool,
) -> (HostConflictReport, (SysResult, SysResult)) {
    let (_, report, results) = replay_traced_with_sink(mode, cores, test, concurrent);
    (report, results)
}

/// [`replay_traced`], also returning the sink so callers can resolve every
/// access's label (used by the instrumentation-faithfulness tests).
pub fn replay_traced_with_sink(
    mode: HostMode,
    cores: usize,
    test: &ConcreteTest,
    concurrent: bool,
) -> (
    std::sync::Arc<HostTraceSink>,
    HostConflictReport,
    (SysResult, SysResult),
) {
    let sink = HostTraceSink::new(cores.max(2));
    let kernel = HostKernel::instrumented(cores, mode, HostOptions::default(), &sink);
    for _ in 0..test.procs.max(2) {
        kernel.new_process();
    }
    for op in &test.setup {
        on_core(0, || perform_host(&kernel, 0, op));
    }
    sink.begin_window();
    let results = if concurrent {
        let barrier = Barrier::new(2);
        let (kernel_ref, barrier_ref) = (&kernel, &barrier);
        std::thread::scope(|scope| {
            let a = scope.spawn(move || {
                barrier_ref.wait();
                on_core(0, || perform_host(kernel_ref, 0, &test.op_a))
            });
            let b = scope.spawn(move || {
                barrier_ref.wait();
                on_core(1, || perform_host(kernel_ref, 1, &test.op_b))
            });
            (
                a.join().expect("op_a thread"),
                b.join().expect("op_b thread"),
            )
        })
    } else {
        (
            on_core(0, || perform_host(&kernel, 0, &test.op_a)),
            on_core(1, || perform_host(&kernel, 1, &test.op_b)),
        )
    };
    let report = sink.end_window();
    (sink, report, results)
}

/// Normalises a pipe line label for footprint comparison: pipe *instance*
/// ids differ between the simulated kernel (which derives them from its
/// access counter) and the host kernel (a plain counter), so
/// `pipe[0:17].buffer` becomes `pipe[0:#].buffer`. All other labels are
/// returned unchanged.
pub fn normalize_pipe_label(label: &str) -> String {
    if let Some(rest) = label.strip_prefix("pipe[") {
        if let Some((head, tail)) = rest.split_once(']') {
            if let Some((pid, _id)) = head.split_once(':') {
                return format!("pipe[{pid}:#]{tail}");
            }
        }
    }
    label.to_string()
}

/// Runs one test on real threads under `schedules` schedules; the outcome
/// is conflict-free only if every schedule was, and the shared labels are
/// the union over schedules.
pub fn run_test_host(
    mode: HostMode,
    cores: usize,
    test: &ConcreteTest,
    schedules: usize,
) -> HostTestOutcome {
    run_test_host_with(mode, cores, test, schedules, None)
}

/// [`run_test_host`], optionally folding every traced window into a
/// conflict [`HeatMap`]: each schedule's per-line access counts (and the
/// lines that actually conflicted) are accumulated under pipe-normalised
/// labels, after the window has ended — so the heat map costs the traced
/// region nothing.
pub fn run_test_host_with(
    mode: HostMode,
    cores: usize,
    test: &ConcreteTest,
    schedules: usize,
    heat: Option<&HeatMap>,
) -> HostTestOutcome {
    let mut shared_labels = Vec::new();
    let mut conflict_free = true;
    let mut dropped = 0;
    let mut results = (SysResult::Unit, SysResult::Unit);
    for _ in 0..schedules.max(1) {
        let (sink, report, res) = replay_traced_with_sink(mode, cores, test, true);
        if let Some(heat) = heat {
            heat.fold_report(&report, |line| normalize_pipe_label(&sink.label_of(line)));
        }
        conflict_free &= report.is_conflict_free();
        shared_labels.extend(report.conflicting_labels());
        dropped += report.dropped;
        results = res;
    }
    shared_labels.sort();
    shared_labels.dedup();
    HostTestOutcome {
        test_id: test.id.clone(),
        conflict_free,
        shared_labels,
        results,
        dropped,
    }
}

/// A test where the simulated sv6 kernel was conflict-free but the host
/// sv6 kernel conflicted in at least one schedule.
#[derive(Clone, Debug)]
pub struct Fig6Divergence {
    /// The diverging test.
    pub test_id: String,
    /// Its call pair.
    pub calls: (CallKind, CallKind),
    /// The lines the host conflicted on.
    pub shared_labels: Vec<String>,
    /// `Some(tag)` when the divergence is in the documented exception list
    /// (currently only [`LOWEST_FD_EXCEPTION`]); `None` means unexplained.
    pub exception: Option<&'static str>,
}

/// Classifies a divergence by its conflicting labels: an exception only
/// when *every* shared line is a descriptor-table slot (`proc[p].fd[f]`).
pub fn classify_divergence(shared_labels: &[String]) -> Option<&'static str> {
    if !shared_labels.is_empty() && shared_labels.iter().all(|l| is_fd_slot_label(l)) {
        Some(LOWEST_FD_EXCEPTION)
    } else {
        None
    }
}

fn is_fd_slot_label(label: &str) -> bool {
    label.starts_with("proc[") && label.contains("].fd[")
}

/// The aggregated result of a host Figure 6 run.
#[derive(Clone, Debug)]
pub struct HostFig6Results {
    /// The simulated heatmaps, for side-by-side comparison.
    pub sim_sv6: Figure6Report,
    pub sim_linux: Figure6Report,
    /// The host heatmaps.
    pub host_sv6: Figure6Report,
    pub host_linux: Figure6Report,
    /// Every sim-free→host-conflict divergence on the sv6 pair, classified.
    pub divergences: Vec<Fig6Divergence>,
    /// Number of distinct tests run (each on four kernels).
    pub tests_run: usize,
    /// Accesses dropped across every traced window (0 in a healthy run).
    pub dropped: usize,
    /// Per-line access/conflict heat over every sv6-host traced window.
    pub heat_sv6: HeatMap,
    /// Per-line access/conflict heat over every linux-host traced window.
    pub heat_linux: HeatMap,
}

impl HostFig6Results {
    /// Divergences not covered by the documented exception list.
    pub fn unexplained_divergences(&self) -> Vec<&Fig6Divergence> {
        self.divergences
            .iter()
            .filter(|d| d.exception.is_none())
            .collect()
    }

    /// Divergences covered by the exception list.
    pub fn explained_divergences(&self) -> Vec<&Fig6Divergence> {
        self.divergences
            .iter()
            .filter(|d| d.exception.is_some())
            .collect()
    }

    /// The giant kernel lock must make essentially everything conflict in
    /// the host baseline — the Linux column of the paper's figure. Returns
    /// an error string when any test with at least one conflict on the
    /// simulated Linux kernel scaled on linux-host.
    pub fn assert_linux_collapses(&self) -> Result<(), String> {
        if self.host_linux.total_tests() > 0
            && self.host_linux.total_conflict_free() > self.sim_linux.total_conflict_free()
        {
            return Err(format!(
                "linux-host scaled more often than simulated Linux: {} vs {}",
                self.host_linux.total_conflict_free(),
                self.sim_linux.total_conflict_free()
            ));
        }
        Ok(())
    }

    /// One line per divergence, for diagnostics and reports.
    pub fn describe_divergences(&self) -> String {
        self.divergences
            .iter()
            .map(|d| {
                format!(
                    "{} ({} ∥ {}): {} [{}]",
                    d.test_id,
                    d.calls.0.name(),
                    d.calls.1.name(),
                    d.shared_labels.join(", "),
                    d.exception.unwrap_or("UNEXPLAINED")
                )
            })
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// Runs the full host Figure 6 pipeline: generates tests for every
/// unordered pair of `config.calls`, runs each on the simulated sv6 and
/// Linux kernels and on the host kernel in both modes, aggregates four
/// heatmaps, and records every SIM↔host divergence on the sv6 pair.
pub fn run_host_fig6(config: &HostFig6Config) -> HostFig6Results {
    let names = bucket_distinct_names(8);
    let sim_sv6_factory = Sv6Factory {
        cores: config.cores,
    };
    let sim_linux_factory = LinuxLikeFactory {
        cores: config.cores,
    };
    let mut results = HostFig6Results {
        sim_sv6: Figure6Report::new("sv6"),
        sim_linux: Figure6Report::new("Linux"),
        host_sv6: Figure6Report::new("sv6-host"),
        host_linux: Figure6Report::new("linux-host"),
        divergences: Vec::new(),
        tests_run: 0,
        dropped: 0,
        heat_sv6: HeatMap::new(),
        heat_linux: HeatMap::new(),
    };
    for (i, &call_a) in config.calls.iter().enumerate() {
        for &call_b in config.calls.iter().skip(i) {
            for shape in enumerate_shapes(call_a, call_b, &config.model) {
                let analysis = analyze_pair(&shape, &config.model);
                if analysis.cases.is_empty() {
                    continue;
                }
                let generated = generate_tests(
                    &shape,
                    &analysis.cases,
                    &config.model,
                    &names,
                    config.max_assignments_per_case,
                );
                for report in [
                    &mut results.sim_sv6,
                    &mut results.sim_linux,
                    &mut results.host_sv6,
                    &mut results.host_linux,
                ] {
                    report.record_skips(call_a, call_b, &generated.skip_reasons);
                }
                for test in &generated.tests {
                    results.tests_run += 1;
                    let sim_sv6 = run_test(&sim_sv6_factory, test);
                    let sim_linux = run_test(&sim_linux_factory, test);
                    let host_sv6 = run_test_host_with(
                        HostMode::Sv6,
                        config.cores,
                        test,
                        config.schedules_per_test,
                        Some(&results.heat_sv6),
                    );
                    let host_linux = run_test_host_with(
                        HostMode::Linuxlike,
                        config.cores,
                        test,
                        config.schedules_per_test,
                        Some(&results.heat_linux),
                    );
                    results.dropped += host_sv6.dropped + host_linux.dropped;
                    results
                        .sim_sv6
                        .record(call_a, call_b, sim_sv6.conflict_free);
                    results
                        .sim_linux
                        .record(call_a, call_b, sim_linux.conflict_free);
                    results
                        .host_sv6
                        .record(call_a, call_b, host_sv6.conflict_free);
                    results
                        .host_linux
                        .record(call_a, call_b, host_linux.conflict_free);
                    if sim_sv6.conflict_free && !host_sv6.conflict_free {
                        results.divergences.push(Fig6Divergence {
                            test_id: test.id.clone(),
                            calls: (call_a, call_b),
                            exception: classify_divergence(&host_sv6.shared_labels),
                            shared_labels: host_sv6.shared_labels,
                        });
                    }
                }
            }
        }
    }
    results
}

// --- §4 extension pairs: sockets and process management -------------------
//
// The symbolic pipeline covers the 18 modelled file-system and VM calls;
// the §4 extensions — datagram `send`/`recv` with optional ordering,
// `fork`/`posix_spawn`/`wait` — live outside the model, so their host
// cross-check corpus is enumerated by hand here and run through the same
// protocol as every generated test: setup untraced, the pair traced on
// cores 0 and 1, SIM-conflict-free ⇒ host-conflict-free, and observable
// results compared against the simulated kernel. Because several of these
// pairs commute only up to fungible values (two spawns race for the next
// pid; unordered receives race for equivalent messages), the result check
// is a linearization check — the host's racing outcome must equal the
// simulated outcome under *some* order of the two calls — plus a message
// conservation check: every datagram sent is received or still queued,
// exactly once.

/// A reified operation over the §4 extension calls plus the modelled
/// file-system calls (the latter for setup and mixed pairs).
#[derive(Clone, Debug)]
pub enum ExtOp {
    /// `socket(order)` (setup; sockets are numbered densely from 0).
    Socket {
        /// Requested delivery discipline.
        order: SocketOrder,
    },
    /// `send(sock, msg)`.
    Send {
        /// Socket to send on.
        sock: SockId,
        /// Payload.
        msg: Vec<u8>,
    },
    /// `recv(sock)`.
    Recv {
        /// Socket to receive from.
        sock: SockId,
    },
    /// `fork(pid)`.
    Fork {
        /// Forking process.
        pid: Pid,
    },
    /// `posix_spawn(pid, dup_fds)`.
    Spawn {
        /// Spawning process.
        pid: Pid,
        /// Descriptors duplicated into the child.
        dup_fds: Vec<Fd>,
    },
    /// `wait(pid, child)`.
    Wait {
        /// Waiting process.
        pid: Pid,
        /// Child being reaped.
        child: Pid,
    },
    /// Any modelled call, reusing the [`SysOp`] vocabulary.
    Fs(SysOp),
}

/// Performs an extension operation on any kernel speaking [`SyscallApi`].
pub fn perform_ext<K: SyscallApi + ?Sized>(kernel: &K, core: usize, op: &ExtOp) -> SysResult {
    match op {
        ExtOp::Socket { order } => match kernel.socket(core, *order) {
            Ok(id) => SysResult::Value(id as i64),
            Err(e) => SysResult::Err(e),
        },
        ExtOp::Send { sock, msg } => match kernel.send(core, *sock, msg) {
            Ok(()) => SysResult::Unit,
            Err(e) => SysResult::Err(e),
        },
        ExtOp::Recv { sock } => match kernel.recv(core, *sock) {
            Ok(data) => SysResult::Data(data),
            Err(e) => SysResult::Err(e),
        },
        ExtOp::Fork { pid } => match kernel.fork(core, *pid) {
            Ok(child) => SysResult::Value(child as i64),
            Err(e) => SysResult::Err(e),
        },
        ExtOp::Spawn { pid, dup_fds } => match kernel.posix_spawn(core, *pid, dup_fds) {
            Ok(child) => SysResult::Value(child as i64),
            Err(e) => SysResult::Err(e),
        },
        ExtOp::Wait { pid, child } => match kernel.wait(core, *pid, *child) {
            Ok(()) => SysResult::Unit,
            Err(e) => SysResult::Err(e),
        },
        ExtOp::Fs(op) => perform(kernel, core, op),
    }
}

/// One hand-enumerated extension-pair test.
#[derive(Clone, Debug)]
pub struct ExtTest {
    /// Unique identifier.
    pub id: String,
    /// Setup operations, each with the core it runs on (untraced; cores
    /// matter here because unordered sockets route by sending core).
    pub setup: Vec<(usize, ExtOp)>,
    /// The first operation of the pair (traced, core 0).
    pub op_a: ExtOp,
    /// The second operation of the pair (traced, core 1).
    pub op_b: ExtOp,
    /// Number of processes to create up front.
    pub procs: usize,
    /// Sockets whose leftover messages the conservation check drains.
    pub sockets: Vec<SockId>,
}

impl ExtTest {
    /// Every payload sent anywhere in the test (setup and pair), in
    /// sorted order — the "sent" side of the conservation ledger.
    pub fn sent_messages(&self) -> Vec<Vec<u8>> {
        let mut sent: Vec<Vec<u8>> = self
            .setup
            .iter()
            .map(|(_, op)| op)
            .chain([&self.op_a, &self.op_b])
            .filter_map(|op| match op {
                ExtOp::Send { msg, .. } => Some(msg.clone()),
                _ => None,
            })
            .collect();
        sent.sort();
        sent
    }
}

/// The §4 extension corpus: socket pairs in both disciplines and the
/// spawn/fork/wait pairs, every one of them SIM-commutative in its
/// materialised state (the corpus mirrors TESTGEN's rule of only
/// materialising commutative cases — e.g. `recv ∥ recv` on an ordered
/// socket appears only with equal pending messages, since distinct heads
/// do not commute).
pub fn ext_corpus() -> Vec<ExtTest> {
    let sock = |order| ExtOp::Socket { order };
    let send = |sock, msg: &str| ExtOp::Send {
        sock,
        msg: msg.as_bytes().to_vec(),
    };
    let recv = |sock| ExtOp::Recv { sock };
    let open = |pid, name: &str| {
        ExtOp::Fs(SysOp::Open {
            pid,
            name: name.into(),
            flags: scr_kernel::api::OpenFlags::create(),
        })
    };
    let mut tests = vec![
        ExtTest {
            id: "ext_send_send_ordered".into(),
            setup: vec![(0, sock(SocketOrder::Ordered))],
            op_a: send(0, "a0"),
            op_b: send(0, "b1"),
            procs: 2,
            sockets: vec![0],
        },
        ExtTest {
            id: "ext_send_send_unordered".into(),
            setup: vec![(0, sock(SocketOrder::Unordered))],
            op_a: send(0, "a0"),
            op_b: send(0, "b1"),
            procs: 2,
            sockets: vec![0],
        },
        ExtTest {
            // §4's headline: with a message pending in the receiver's own
            // queue, unordered send ∥ recv commutes AND is conflict-free.
            id: "ext_send_recv_unordered_local".into(),
            setup: vec![(0, sock(SocketOrder::Unordered)), (1, send(0, "pre"))],
            op_a: send(0, "a0"),
            op_b: recv(0),
            procs: 2,
            sockets: vec![0],
        },
        ExtTest {
            // POSIX ordering forces one queue: the same pair conflicts.
            id: "ext_send_recv_ordered".into(),
            setup: vec![(0, sock(SocketOrder::Ordered)), (0, send(0, "pre"))],
            op_a: send(0, "a0"),
            op_b: recv(0),
            procs: 2,
            sockets: vec![0],
        },
        ExtTest {
            // Ordered recv ∥ recv commutes only with equal heads.
            id: "ext_recv_recv_ordered_equal_heads".into(),
            setup: vec![
                (0, sock(SocketOrder::Ordered)),
                (0, send(0, "m")),
                (0, send(0, "m")),
            ],
            op_a: recv(0),
            op_b: recv(0),
            procs: 2,
            sockets: vec![0],
        },
        ExtTest {
            id: "ext_recv_recv_unordered_local_queues".into(),
            setup: vec![
                (0, sock(SocketOrder::Unordered)),
                (0, send(0, "m0")),
                (1, send(0, "m1")),
            ],
            op_a: recv(0),
            op_b: recv(0),
            procs: 2,
            sockets: vec![0],
        },
        ExtTest {
            // Empty receives: commute (both EAGAIN) but the steal scan
            // makes them conflict — on both substrates.
            id: "ext_recv_recv_unordered_empty".into(),
            setup: vec![(0, sock(SocketOrder::Unordered))],
            op_a: recv(0),
            op_b: recv(0),
            procs: 2,
            sockets: vec![0],
        },
        ExtTest {
            id: "ext_fork_fork".into(),
            setup: vec![(0, open(0, "shared"))],
            op_a: ExtOp::Fork { pid: 0 },
            op_b: ExtOp::Fork { pid: 0 },
            procs: 2,
            sockets: vec![],
        },
        ExtTest {
            id: "ext_spawn_spawn".into(),
            setup: vec![(0, open(0, "shared"))],
            op_a: ExtOp::Spawn {
                pid: 0,
                dup_fds: vec![0],
            },
            op_b: ExtOp::Spawn {
                pid: 0,
                dup_fds: vec![0],
            },
            procs: 2,
            sockets: vec![],
        },
        ExtTest {
            // posix_spawn touches only the listed descriptor, so it stays
            // conflict-free beside a lowest-FD open of a later slot…
            id: "ext_spawn_open".into(),
            setup: vec![(0, open(0, "shared"))],
            op_a: ExtOp::Spawn {
                pid: 0,
                dup_fds: vec![0],
            },
            op_b: open(0, "other"),
            procs: 2,
            sockets: vec![],
        },
        ExtTest {
            // …while fork's whole-table snapshot conflicts with it.
            id: "ext_fork_open".into(),
            setup: vec![(0, open(0, "shared"))],
            op_a: ExtOp::Fork { pid: 0 },
            op_b: open(0, "other"),
            procs: 2,
            sockets: vec![],
        },
        ExtTest {
            id: "ext_wait_spawn".into(),
            setup: vec![
                (0, open(0, "shared")),
                (
                    0,
                    ExtOp::Spawn {
                        pid: 0,
                        dup_fds: vec![0],
                    },
                ),
            ],
            op_a: ExtOp::Wait { pid: 0, child: 2 },
            op_b: ExtOp::Spawn {
                pid: 0,
                dup_fds: vec![0],
            },
            procs: 2,
            sockets: vec![],
        },
        ExtTest {
            id: "ext_wait_wait_same_child".into(),
            setup: vec![
                (0, open(0, "shared")),
                (
                    0,
                    ExtOp::Spawn {
                        pid: 0,
                        dup_fds: vec![0],
                    },
                ),
            ],
            op_a: ExtOp::Wait { pid: 0, child: 2 },
            op_b: ExtOp::Wait { pid: 1, child: 2 },
            procs: 2,
            sockets: vec![],
        },
    ];
    // A second ordering flavour of the fungible-message steal case: the
    // receiver's local queue is empty, so it must steal the pending
    // message or report the sent one — either way conservation holds.
    tests.push(ExtTest {
        id: "ext_send_recv_unordered_steal".into(),
        setup: vec![(0, sock(SocketOrder::Unordered)), (0, send(0, "pre"))],
        op_a: send(0, "a0"),
        op_b: recv(0),
        procs: 2,
        sockets: vec![0],
    });
    tests
}

/// Results and footprint of a sequential simulated run of an [`ExtTest`].
#[derive(Clone, Debug)]
pub struct SimExtRun {
    /// The pair's observable results, as (op_a, op_b).
    pub results: (SysResult, SysResult),
    /// Whether the traced pair was conflict-free.
    pub conflict_free: bool,
    /// The traced (core, label, kind) multiset, sorted.
    pub footprint: Vec<(usize, String, AccessKind)>,
}

/// Runs an extension test on a fresh simulated sv6 kernel: setup untraced,
/// then the pair traced on cores 0 and 1, in the given order (`a_first`
/// false replays B before A — the other linearization).
pub fn run_ext_sim(cores: usize, test: &ExtTest, a_first: bool) -> SimExtRun {
    let kernel = Sv6Kernel::new(cores.max(2));
    let machine = scr_kernel::api::KernelApi::machine(&kernel).clone();
    for _ in 0..test.procs.max(2) {
        kernel.new_process();
    }
    machine.stop_tracing();
    for (core, op) in &test.setup {
        machine.on_core(*core, || perform_ext(&kernel, *core, op));
    }
    machine.clear_trace();
    machine.start_tracing();
    let results = if a_first {
        let ra = machine.on_core(0, || perform_ext(&kernel, 0, &test.op_a));
        let rb = machine.on_core(1, || perform_ext(&kernel, 1, &test.op_b));
        (ra, rb)
    } else {
        let rb = machine.on_core(1, || perform_ext(&kernel, 1, &test.op_b));
        let ra = machine.on_core(0, || perform_ext(&kernel, 0, &test.op_a));
        (ra, rb)
    };
    machine.stop_tracing();
    let mut footprint: Vec<_> = machine
        .accesses()
        .iter()
        .map(|a| (a.core, machine.label_of(a.line), a.kind))
        .collect();
    footprint.sort();
    SimExtRun {
        results,
        conflict_free: machine.conflict_report().is_conflict_free(),
        footprint,
    }
}

/// Results, footprint and leftovers of one traced host run of an
/// [`ExtTest`].
#[derive(Clone, Debug)]
pub struct HostExtRun {
    /// The pair's observable results, as (op_a, op_b).
    pub results: (SysResult, SysResult),
    /// Whether the traced window was conflict-free.
    pub conflict_free: bool,
    /// Labels of lines shared between the two cores.
    pub shared_labels: Vec<String>,
    /// The traced (core, label, kind) multiset, sorted.
    pub footprint: Vec<(usize, String, AccessKind)>,
    /// Messages still queued on the test's sockets afterwards.
    pub leftover: Vec<Vec<u8>>,
    /// Accesses dropped by log overflow (0 in any healthy run).
    pub dropped: usize,
}

/// Replays an extension test on an instrumented host kernel: setup
/// untraced, then the pair inside a tracing window — concurrently on two
/// real threads, or back to back when `concurrent` is false (the
/// deterministic mode the footprint-parity tests use).
pub fn run_ext_host(mode: HostMode, cores: usize, test: &ExtTest, concurrent: bool) -> HostExtRun {
    let sink = HostTraceSink::new(cores.max(2));
    let kernel = HostKernel::instrumented(cores, mode, HostOptions::default(), &sink);
    for _ in 0..test.procs.max(2) {
        kernel.new_process();
    }
    for (core, op) in &test.setup {
        on_core(*core, || perform_ext(&kernel, *core, op));
    }
    sink.begin_window();
    let results = if concurrent {
        let barrier = Barrier::new(2);
        let (kernel_ref, barrier_ref) = (&kernel, &barrier);
        std::thread::scope(|scope| {
            let a = scope.spawn(move || {
                barrier_ref.wait();
                on_core(0, || perform_ext(kernel_ref, 0, &test.op_a))
            });
            let b = scope.spawn(move || {
                barrier_ref.wait();
                on_core(1, || perform_ext(kernel_ref, 1, &test.op_b))
            });
            (
                a.join().expect("op_a thread"),
                b.join().expect("op_b thread"),
            )
        })
    } else {
        (
            on_core(0, || perform_ext(&kernel, 0, &test.op_a)),
            on_core(1, || perform_ext(&kernel, 1, &test.op_b)),
        )
    };
    let report = sink.end_window();
    let mut footprint: Vec<_> = report
        .accesses
        .iter()
        .map(|a| (a.core, sink.label_of(a.line), a.kind))
        .collect();
    footprint.sort();
    let leftover = test
        .sockets
        .iter()
        .flat_map(|&s| kernel.socket_drain_untraced(s))
        .collect();
    HostExtRun {
        results,
        conflict_free: report.is_conflict_free(),
        shared_labels: report.conflicting_labels(),
        footprint,
        leftover,
        dropped: report.dropped,
    }
}

/// The aggregated verdict for one extension test across schedules.
#[derive(Clone, Debug)]
pub struct ExtOutcome {
    /// The test's identifier.
    pub test_id: String,
    /// Conflict-free on the simulated sv6 kernel (A-then-B trace).
    pub sim_conflict_free: bool,
    /// Conflict-free on the host sv6 kernel in every schedule.
    pub host_conflict_free: bool,
    /// Union of host conflicting labels over schedules.
    pub host_shared_labels: Vec<String>,
    /// Every host schedule's results matched a sequential simulated order.
    pub linearizable: bool,
    /// Every sent message was received or still queued, exactly once, in
    /// every schedule.
    pub conserved: bool,
    /// Accesses dropped across schedules (0 in any healthy run).
    pub dropped: usize,
}

/// Runs the extension corpus on real threads (`schedules` replays per
/// test) and cross-checks against the simulated sv6 kernel: conflict
/// verdicts one-directionally, results by linearization, messages by
/// conservation.
pub fn run_ext_fig6(cores: usize, schedules: usize) -> Vec<ExtOutcome> {
    ext_corpus()
        .iter()
        .map(|test| {
            let sim_ab = run_ext_sim(cores, test, true);
            let sim_ba = run_ext_sim(cores, test, false);
            let sent = test.sent_messages();
            let mut outcome = ExtOutcome {
                test_id: test.id.clone(),
                sim_conflict_free: sim_ab.conflict_free,
                host_conflict_free: true,
                host_shared_labels: Vec::new(),
                linearizable: true,
                conserved: true,
                dropped: 0,
            };
            for _ in 0..schedules.max(1) {
                let host = run_ext_host(HostMode::Sv6, cores, test, true);
                outcome.host_conflict_free &= host.conflict_free;
                outcome.host_shared_labels.extend(host.shared_labels);
                outcome.linearizable &=
                    host.results == sim_ab.results || host.results == sim_ba.results;
                let mut seen: Vec<Vec<u8>> = [&host.results.0, &host.results.1]
                    .into_iter()
                    .filter_map(|r| match r {
                        SysResult::Data(d) => Some(d.clone()),
                        _ => None,
                    })
                    .chain(host.leftover.iter().cloned())
                    .collect();
                seen.sort();
                outcome.conserved &= seen == sent;
                outcome.dropped += host.dropped;
            }
            outcome.host_shared_labels.sort();
            outcome.host_shared_labels.dedup();
            outcome
        })
        .collect()
}

/// Failures of an extension cross-check run, one line each: unexplained
/// sim-free→host-conflict divergences, non-linearizable results, broken
/// conservation, or log overflow. Empty means the cross-check passed.
pub fn ext_failures(outcomes: &[ExtOutcome]) -> Vec<String> {
    let mut failures = Vec::new();
    for o in outcomes {
        if o.sim_conflict_free && !o.host_conflict_free {
            failures.push(format!(
                "{}: SIM-conflict-free but host conflicted on [{}]",
                o.test_id,
                o.host_shared_labels.join(", ")
            ));
        }
        if !o.linearizable {
            failures.push(format!(
                "{}: host results match no sequential order",
                o.test_id
            ));
        }
        if !o.conserved {
            failures.push(format!("{}: messages lost or duplicated", o.test_id));
        }
        if o.dropped > 0 {
            failures.push(format!("{}: {} accesses dropped", o.test_id, o.dropped));
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;
    use scr_kernel::api::{OpenFlags, SysOp};

    fn manual_test(
        id: &str,
        calls: (CallKind, CallKind),
        op_a: SysOp,
        op_b: SysOp,
    ) -> ConcreteTest {
        ConcreteTest {
            id: id.into(),
            calls,
            setup: vec![],
            op_a,
            op_b,
            procs: 2,
        }
    }

    fn create_op(pid: usize, name: &str, anyfd: bool) -> SysOp {
        let mut flags = OpenFlags::create();
        if anyfd {
            flags = flags.with_anyfd();
        }
        SysOp::Open {
            pid,
            name: name.into(),
            flags,
        }
    }

    #[test]
    fn creating_different_files_scales_on_host_sv6_but_not_linuxlike() {
        let test = manual_test(
            "host_create_different",
            (CallKind::Open, CallKind::Open),
            create_op(0, "alpha", false),
            create_op(1, "bravo", false),
        );
        let sv6 = run_test_host(HostMode::Sv6, 4, &test, 2);
        assert!(sv6.conflict_free, "sv6-host shared {:?}", sv6.shared_labels);
        let linux = run_test_host(HostMode::Linuxlike, 4, &test, 1);
        assert!(!linux.conflict_free);
        assert!(
            linux.shared_labels.iter().any(|l| l == "kernel.giant_lock"),
            "the giant lock must be the recorded conflict, got {:?}",
            linux.shared_labels
        );
    }

    #[test]
    fn heat_map_agrees_with_the_outcome_conflicts() {
        let test = manual_test(
            "host_create_different_heat",
            (CallKind::Open, CallKind::Open),
            create_op(0, "alpha", false),
            create_op(1, "bravo", false),
        );
        let heat = HeatMap::new();
        let linux = run_test_host_with(HostMode::Linuxlike, 4, &test, 2, Some(&heat));
        assert!(!linux.conflict_free);
        // Every label the outcome reports as conflicting must show up hot.
        for label in &linux.shared_labels {
            let entry = heat
                .entry(label)
                .unwrap_or_else(|| panic!("label {label} conflicting but absent from heat map"));
            assert!(entry.conflict_windows > 0, "{label}: {entry:?}");
            assert!(entry.accesses() > 0);
        }
        // Two schedules were traced, so no line can be hot in more windows.
        let giant = heat.entry("kernel.giant_lock").expect("giant lock traced");
        assert!(giant.conflict_windows <= 2);
        assert!(heat
            .render_top("linux-host hottest lines", 5)
            .contains("kernel.giant_lock"));
    }

    #[test]
    fn same_process_double_create_contends_on_lowest_fd_and_anyfd_fixes_it() {
        // The paper's §1 example on real threads: two creates of different
        // names in one process conflict on the descriptor table under
        // POSIX's lowest-FD rule, and O_ANYFD removes the contention.
        let lowest = manual_test(
            "host_lowest_fd",
            (CallKind::Open, CallKind::Open),
            create_op(0, "alpha", false),
            create_op(0, "bravo", false),
        );
        let outcome = run_test_host(HostMode::Sv6, 4, &lowest, 2);
        assert!(!outcome.conflict_free);
        assert!(
            outcome.shared_labels.iter().all(|l| l.contains("].fd[")),
            "only fd slots may conflict, got {:?}",
            outcome.shared_labels
        );
        assert_eq!(
            classify_divergence(&outcome.shared_labels),
            Some(LOWEST_FD_EXCEPTION)
        );
        let anyfd = manual_test(
            "host_anyfd",
            (CallKind::Open, CallKind::Open),
            create_op(0, "alpha", true),
            create_op(0, "bravo", true),
        );
        let outcome = run_test_host(HostMode::Sv6, 4, &anyfd, 2);
        assert!(
            outcome.conflict_free,
            "O_ANYFD must remove the contention, got {:?}",
            outcome.shared_labels
        );
    }

    #[test]
    fn classification_requires_every_label_to_be_an_fd_slot() {
        assert_eq!(classify_divergence(&[]), None);
        assert_eq!(
            classify_divergence(&["proc[0].fd[3]".to_string()]),
            Some(LOWEST_FD_EXCEPTION)
        );
        assert_eq!(
            classify_divergence(&[
                "proc[0].fd[3]".to_string(),
                "scalefs.root.bucket[9].entries".to_string()
            ]),
            None
        );
    }

    #[test]
    fn ext_corpus_ids_are_unique_and_pairs_are_linearizable_on_sim() {
        let corpus = ext_corpus();
        let ids: std::collections::BTreeSet<_> = corpus.iter().map(|t| t.id.as_str()).collect();
        assert_eq!(ids.len(), corpus.len(), "duplicate test ids");
        // Sanity: every corpus entry is SIM-commutative in its observable
        // results up to pid fungibility — both sequential orders agree or
        // are each other's pid swap (the linearization check's premise).
        for test in &corpus {
            let ab = run_ext_sim(4, test, true);
            let ba = run_ext_sim(4, test, false);
            let swapped = (ba.results.1.clone(), ba.results.0.clone());
            assert!(
                ab.results == ba.results || (ab.results.0, ab.results.1) == swapped,
                "{}: orders disagree beyond fungible values",
                test.id
            );
        }
    }

    #[test]
    fn unordered_send_recv_with_local_message_is_conflict_free_everywhere() {
        let corpus = ext_corpus();
        let test = corpus
            .iter()
            .find(|t| t.id == "ext_send_recv_unordered_local")
            .unwrap();
        let sim = run_ext_sim(4, test, true);
        assert!(sim.conflict_free, "sim must scale: {:?}", sim.footprint);
        let host = run_ext_host(HostMode::Sv6, 4, test, true);
        assert!(
            host.conflict_free,
            "host must scale, shared {:?}",
            host.shared_labels
        );
        let ordered = corpus
            .iter()
            .find(|t| t.id == "ext_send_recv_ordered")
            .unwrap();
        let sim = run_ext_sim(4, ordered, true);
        assert!(!sim.conflict_free, "ordered sockets must conflict");
        let host = run_ext_host(HostMode::Sv6, 4, ordered, true);
        assert!(!host.conflict_free);
        assert!(
            host.shared_labels.iter().any(|l| l == "socket[0].queue"),
            "the shared ordered queue must be the conflict, got {:?}",
            host.shared_labels
        );
    }

    #[test]
    fn spawn_scales_beside_open_where_forks_snapshot_conflicts() {
        let corpus = ext_corpus();
        let spawn = corpus.iter().find(|t| t.id == "ext_spawn_open").unwrap();
        assert!(run_ext_sim(4, spawn, true).conflict_free);
        assert!(run_ext_host(HostMode::Sv6, 4, spawn, true).conflict_free);
        let fork = corpus.iter().find(|t| t.id == "ext_fork_open").unwrap();
        assert!(!run_ext_sim(4, fork, true).conflict_free);
        let host = run_ext_host(HostMode::Sv6, 4, fork, true);
        assert!(!host.conflict_free);
        assert!(
            host.shared_labels.iter().all(|l| l.contains("].fd[")),
            "fork ∥ open conflicts on descriptor slots, got {:?}",
            host.shared_labels
        );
    }

    #[test]
    fn ext_cross_check_passes_on_the_full_corpus() {
        let outcomes = run_ext_fig6(4, 2);
        let failures = ext_failures(&outcomes);
        assert!(failures.is_empty(), "{}", failures.join("\n"));
    }

    #[test]
    fn small_pipeline_cross_checks_cleanly() {
        let config = HostFig6Config {
            schedules_per_test: 1,
            ..HostFig6Config::quick(&[CallKind::Stat, CallKind::Unlink])
        };
        let results = run_host_fig6(&config);
        assert!(results.tests_run > 0);
        assert_eq!(results.dropped, 0);
        assert_eq!(
            results.sim_sv6.total_tests(),
            results.host_sv6.total_tests()
        );
        assert!(
            results.unexplained_divergences().is_empty(),
            "unexplained divergences:\n{}",
            results.describe_divergences()
        );
        results.assert_linux_collapses().unwrap();
    }
}
