//! The host-side Figure 6 pipeline: the conflict heatmap on real threads.
//!
//! The simulated pipeline (`scr_core::run_commuter`) runs every generated
//! test on the simulated kernels and reports which commutative pairs share
//! cache lines. This module replays the same tests on the real-threads
//! [`HostKernel`] with a `scr-hostmtrace` tracing window around the
//! concurrent pair, producing [`Figure6Report`]s labelled `sv6-host` and
//! `linux-host` — and cross-checks them against the simulated heatmap.
//!
//! The cross-check invariant is one-directional: every test that is
//! conflict-free on the simulated sv6 kernel must be conflict-free on the
//! host sv6 kernel too, in **every** schedule the hardware picks. The only
//! tolerated exceptions are the documented lowest-FD-allocation contention
//! cases (the paper's §1 example: POSIX's "lowest available descriptor"
//! rule makes otherwise-commutative calls contend on the descriptor table).
//! Such divergences are classified by their conflicting labels and recorded
//! explicitly in [`HostFig6Results::divergences`] with the
//! [`LOWEST_FD_EXCEPTION`] tag — never waived silently; anything else is an
//! unexplained divergence and fails the acceptance test.
//!
//! The `linux-host` column is not cross-checked per test: the host baseline
//! serialises every call on one global kernel lock (recorded as a written
//! line), so — exactly as in the paper's Linux column — essentially every
//! pair conflicts there, which [`HostFig6Results::assert_linux_collapses`]
//! verifies in aggregate instead.

use crate::kernel::{perform_host, HostKernel, HostMode, HostOptions};
use scr_core::pipeline::bucket_distinct_names;
use scr_core::{
    analyze_pair, claim_in_order, effective_threads, enumerate_shapes, generate_tests, run_test,
    ConcreteTest, Figure6Report, LinuxLikeFactory, Sv6Factory,
};
use scr_hostmtrace::{on_core, HostConflictReport, HostTraceSink};
use scr_kernel::api::{perform, SockId, SocketOrder, SysOp, SysResult, SyscallApi};
use scr_kernel::Sv6Kernel;
use scr_model::{pair_config, CallKind, ModelConfig};
use scr_mtrace::AccessKind;
use scr_obs::HeatMap;
use std::sync::Barrier;

/// The exception tag for divergences fully explained by lowest-FD
/// descriptor-table contention (every conflicting line is a `proc[p].fd[f]`
/// slot). See §1 of the paper: `O_ANYFD` removes exactly this contention.
pub const LOWEST_FD_EXCEPTION: &str = "lowest-fd-allocation";

/// Configuration of a host Figure 6 run.
#[derive(Clone, Debug)]
pub struct HostFig6Config {
    /// Calls whose unordered pairs are analysed.
    pub calls: Vec<CallKind>,
    /// Model bounds (the same defaults as the simulated pipeline).
    pub model: ModelConfig,
    /// Satisfying assignments enumerated per commutative case.
    pub max_assignments_per_case: usize,
    /// Cores (threads) each kernel is configured with.
    pub cores: usize,
    /// How many times each test's concurrent pair is replayed; a test is
    /// host-conflict-free only when every schedule is.
    pub schedules_per_test: usize,
    /// Sweep workers: `1` runs sequentially, `N > 1` spawns that many
    /// claiming workers over the (pair, shape) unit list, `0` uses one per
    /// hardware thread. The generated corpus — and therefore the sim
    /// columns — are byte-identical for every value; the host columns
    /// depend on hardware schedules either way.
    pub threads: usize,
}

impl HostFig6Config {
    /// A bounded configuration for the given calls (half the quick
    /// pipeline's assignment limit: every traced test runs on four kernels
    /// and several schedules, so the corpus is kept proportionate).
    pub fn quick(calls: &[CallKind]) -> Self {
        HostFig6Config {
            calls: calls.to_vec(),
            model: ModelConfig {
                inodes: 2,
                ..ModelConfig::default()
            },
            max_assignments_per_case: 24,
            cores: 4,
            schedules_per_test: 2,
            threads: 1,
        }
    }
}

/// The outcome of one traced host replay.
#[derive(Clone, Debug)]
pub struct HostTestOutcome {
    /// The test's identifier.
    pub test_id: String,
    /// Whether the traced window was conflict-free.
    pub conflict_free: bool,
    /// Labels of the lines shared between the two threads.
    pub shared_labels: Vec<String>,
    /// The results the two operations returned.
    pub results: (SysResult, SysResult),
    /// Accesses dropped by log overflow (0 in any healthy run).
    pub dropped: usize,
}

/// Replays one test on an instrumented kernel: setup untraced on core 0,
/// then the commutative pair inside a tracing window — on two real threads
/// when `concurrent`, or back to back on the calling thread otherwise (the
/// deterministic mode used to validate instrumentation faithfulness).
pub fn replay_traced(
    mode: HostMode,
    cores: usize,
    test: &ConcreteTest,
    concurrent: bool,
) -> (HostConflictReport, (SysResult, SysResult)) {
    let (_, report, results) = replay_traced_with_sink(mode, cores, test, concurrent);
    (report, results)
}

/// [`replay_traced`], also returning the sink so callers can resolve every
/// access's label (used by the instrumentation-faithfulness tests).
pub fn replay_traced_with_sink(
    mode: HostMode,
    cores: usize,
    test: &ConcreteTest,
    concurrent: bool,
) -> (
    std::sync::Arc<HostTraceSink>,
    HostConflictReport,
    (SysResult, SysResult),
) {
    let sink = HostTraceSink::new(cores.max(2));
    let kernel = HostKernel::instrumented(cores, mode, HostOptions::default(), &sink);
    for _ in 0..test.procs.max(2) {
        kernel.new_process();
    }
    for (core, op) in &test.setup {
        on_core(*core, || perform_host(&kernel, *core, op));
    }
    sink.begin_window();
    let results = if concurrent {
        let barrier = Barrier::new(2);
        let (kernel_ref, barrier_ref) = (&kernel, &barrier);
        std::thread::scope(|scope| {
            let a = scope.spawn(move || {
                barrier_ref.wait();
                on_core(0, || perform_host(kernel_ref, 0, &test.op_a))
            });
            let b = scope.spawn(move || {
                barrier_ref.wait();
                on_core(1, || perform_host(kernel_ref, 1, &test.op_b))
            });
            (
                a.join().expect("op_a thread"),
                b.join().expect("op_b thread"),
            )
        })
    } else {
        (
            on_core(0, || perform_host(&kernel, 0, &test.op_a)),
            on_core(1, || perform_host(&kernel, 1, &test.op_b)),
        )
    };
    let report = sink.end_window();
    (sink, report, results)
}

/// Normalises a pipe line label for footprint comparison: pipe *instance*
/// ids differ between the simulated kernel (which derives them from its
/// access counter) and the host kernel (a plain counter), so
/// `pipe[0:17].buffer` becomes `pipe[0:#].buffer`. All other labels are
/// returned unchanged.
pub fn normalize_pipe_label(label: &str) -> String {
    if let Some(rest) = label.strip_prefix("pipe[") {
        if let Some((head, tail)) = rest.split_once(']') {
            if let Some((pid, _id)) = head.split_once(':') {
                return format!("pipe[{pid}:#]{tail}");
            }
        }
    }
    label.to_string()
}

/// Runs one test on real threads under `schedules` schedules; the outcome
/// is conflict-free only if every schedule was, and the shared labels are
/// the union over schedules.
pub fn run_test_host(
    mode: HostMode,
    cores: usize,
    test: &ConcreteTest,
    schedules: usize,
) -> HostTestOutcome {
    run_test_host_with(mode, cores, test, schedules, None)
}

/// [`run_test_host`], optionally folding every traced window into a
/// conflict [`HeatMap`]: each schedule's per-line access counts (and the
/// lines that actually conflicted) are accumulated under pipe-normalised
/// labels, after the window has ended — so the heat map costs the traced
/// region nothing.
pub fn run_test_host_with(
    mode: HostMode,
    cores: usize,
    test: &ConcreteTest,
    schedules: usize,
    heat: Option<&HeatMap>,
) -> HostTestOutcome {
    let mut shared_labels = Vec::new();
    let mut conflict_free = true;
    let mut dropped = 0;
    let mut results = (SysResult::Unit, SysResult::Unit);
    for _ in 0..schedules.max(1) {
        let (sink, report, res) = replay_traced_with_sink(mode, cores, test, true);
        if let Some(heat) = heat {
            heat.fold_report(&report, |line| normalize_pipe_label(&sink.label_of(line)));
        }
        conflict_free &= report.is_conflict_free();
        shared_labels.extend(report.conflicting_labels());
        dropped += report.dropped;
        results = res;
    }
    shared_labels.sort();
    shared_labels.dedup();
    HostTestOutcome {
        test_id: test.id.clone(),
        conflict_free,
        shared_labels,
        results,
        dropped,
    }
}

/// A test where the simulated sv6 kernel was conflict-free but the host
/// sv6 kernel conflicted in at least one schedule.
#[derive(Clone, Debug)]
pub struct Fig6Divergence {
    /// The diverging test.
    pub test_id: String,
    /// Its call pair.
    pub calls: (CallKind, CallKind),
    /// The lines the host conflicted on.
    pub shared_labels: Vec<String>,
    /// `Some(tag)` when the divergence is in the documented exception list
    /// (currently only [`LOWEST_FD_EXCEPTION`]); `None` means unexplained.
    pub exception: Option<&'static str>,
}

/// Classifies a divergence by its conflicting labels: an exception only
/// when *every* shared line is a descriptor-table slot (`proc[p].fd[f]`).
pub fn classify_divergence(shared_labels: &[String]) -> Option<&'static str> {
    if !shared_labels.is_empty() && shared_labels.iter().all(|l| is_fd_slot_label(l)) {
        Some(LOWEST_FD_EXCEPTION)
    } else {
        None
    }
}

fn is_fd_slot_label(label: &str) -> bool {
    label.starts_with("proc[") && label.contains("].fd[")
}

/// The aggregated result of a host Figure 6 run.
#[derive(Clone, Debug)]
pub struct HostFig6Results {
    /// The simulated heatmaps, for side-by-side comparison.
    pub sim_sv6: Figure6Report,
    pub sim_linux: Figure6Report,
    /// The host heatmaps.
    pub host_sv6: Figure6Report,
    pub host_linux: Figure6Report,
    /// Every sim-free→host-conflict divergence on the sv6 pair, classified.
    pub divergences: Vec<Fig6Divergence>,
    /// Number of distinct tests run (each on four kernels).
    pub tests_run: usize,
    /// Accesses dropped across every traced window (0 in a healthy run).
    pub dropped: usize,
    /// Per-line access/conflict heat over every sv6-host traced window.
    pub heat_sv6: HeatMap,
    /// Per-line access/conflict heat over every linux-host traced window.
    pub heat_linux: HeatMap,
}

impl HostFig6Results {
    /// Divergences not covered by the documented exception list.
    pub fn unexplained_divergences(&self) -> Vec<&Fig6Divergence> {
        self.divergences
            .iter()
            .filter(|d| d.exception.is_none())
            .collect()
    }

    /// Divergences covered by the exception list.
    pub fn explained_divergences(&self) -> Vec<&Fig6Divergence> {
        self.divergences
            .iter()
            .filter(|d| d.exception.is_some())
            .collect()
    }

    /// The giant kernel lock must make essentially everything conflict in
    /// the host baseline — the Linux column of the paper's figure. Returns
    /// an error string when any test with at least one conflict on the
    /// simulated Linux kernel scaled on linux-host.
    pub fn assert_linux_collapses(&self) -> Result<(), String> {
        if self.host_linux.total_tests() > 0
            && self.host_linux.total_conflict_free() > self.sim_linux.total_conflict_free()
        {
            return Err(format!(
                "linux-host scaled more often than simulated Linux: {} vs {}",
                self.host_linux.total_conflict_free(),
                self.sim_linux.total_conflict_free()
            ));
        }
        Ok(())
    }

    /// One line per divergence, for diagnostics and reports.
    pub fn describe_divergences(&self) -> String {
        self.divergences
            .iter()
            .map(|d| {
                format!(
                    "{} ({} ∥ {}): {} [{}]",
                    d.test_id,
                    d.calls.0.name(),
                    d.calls.1.name(),
                    d.shared_labels.join(", "),
                    d.exception.unwrap_or("UNEXPLAINED")
                )
            })
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// One (pair, shape) work unit of the host Figure 6 sweep. A unit runs
/// analysis, generation and the four-kernel replay of every generated test
/// entirely on one worker; only plain concrete data comes back.
struct Fig6Unit {
    call_a: CallKind,
    call_b: CallKind,
    shape: scr_core::PairShape,
}

/// The concrete verdicts of one replayed test, ready for in-order
/// aggregation on the calling thread.
struct Fig6TestRecord {
    sim_sv6: bool,
    sim_linux: bool,
    host_sv6: bool,
    host_linux: bool,
    dropped: usize,
    divergence: Option<Fig6Divergence>,
}

/// What a [`Fig6Unit`] produces. `had_cases` mirrors the sequential
/// pipeline's `continue` on case-less shapes: skips are recorded only for
/// shapes the analyzer produced commutative cases for.
struct Fig6UnitOutcome {
    had_cases: bool,
    skip_reasons: scr_core::SkipHistogram,
    records: Vec<Fig6TestRecord>,
}

/// Runs the full host Figure 6 pipeline: generates tests for every
/// unordered pair of `config.calls`, runs each on the simulated sv6 and
/// Linux kernels and on the host kernel in both modes, aggregates four
/// heatmaps, and records every SIM↔host divergence on the sv6 pair.
///
/// With `config.threads > 1` the (pair, shape) units are claimed by that
/// many workers; outcomes are aggregated in unit order on the calling
/// thread, so the generated corpus and the sim columns are byte-identical
/// to a sequential run. Heat maps are folded concurrently — their
/// per-label counters are order-independent sums.
pub fn run_host_fig6(config: &HostFig6Config) -> HostFig6Results {
    let names = bucket_distinct_names(8);
    let sim_sv6_factory = Sv6Factory {
        cores: config.cores,
    };
    let sim_linux_factory = LinuxLikeFactory {
        cores: config.cores,
    };
    let heat_sv6 = HeatMap::new();
    let heat_linux = HeatMap::new();
    let mut units = Vec::new();
    for (i, &call_a) in config.calls.iter().enumerate() {
        for &call_b in config.calls.iter().skip(i) {
            for shape in enumerate_shapes(call_a, call_b, &config.model) {
                units.push(Fig6Unit {
                    call_a,
                    call_b,
                    shape,
                });
            }
        }
    }
    let mut results = HostFig6Results {
        sim_sv6: Figure6Report::new("sv6"),
        sim_linux: Figure6Report::new("Linux"),
        host_sv6: Figure6Report::new("sv6-host"),
        host_linux: Figure6Report::new("linux-host"),
        divergences: Vec::new(),
        tests_run: 0,
        dropped: 0,
        heat_sv6: HeatMap::new(),
        heat_linux: HeatMap::new(),
    };
    claim_in_order(
        &units,
        effective_threads(config.threads),
        |_, unit| {
            let analysis = analyze_pair(&unit.shape, &config.model);
            if analysis.cases.is_empty() {
                return Fig6UnitOutcome {
                    had_cases: false,
                    skip_reasons: scr_core::SkipHistogram::new(),
                    records: Vec::new(),
                };
            }
            let generated = generate_tests(
                &unit.shape,
                &analysis.cases,
                &config.model,
                &names,
                config.max_assignments_per_case,
            );
            let mut records = Vec::new();
            for test in &generated.tests {
                let sim_sv6 = run_test(&sim_sv6_factory, test);
                let sim_linux = run_test(&sim_linux_factory, test);
                let host_sv6 = run_test_host_with(
                    HostMode::Sv6,
                    config.cores,
                    test,
                    config.schedules_per_test,
                    Some(&heat_sv6),
                );
                let host_linux = run_test_host_with(
                    HostMode::Linuxlike,
                    config.cores,
                    test,
                    config.schedules_per_test,
                    Some(&heat_linux),
                );
                let divergence = if sim_sv6.conflict_free && !host_sv6.conflict_free {
                    Some(Fig6Divergence {
                        test_id: test.id.clone(),
                        calls: (unit.call_a, unit.call_b),
                        exception: classify_divergence(&host_sv6.shared_labels),
                        shared_labels: host_sv6.shared_labels.clone(),
                    })
                } else {
                    None
                };
                records.push(Fig6TestRecord {
                    sim_sv6: sim_sv6.conflict_free,
                    sim_linux: sim_linux.conflict_free,
                    host_sv6: host_sv6.conflict_free,
                    host_linux: host_linux.conflict_free,
                    dropped: host_sv6.dropped + host_linux.dropped,
                    divergence,
                });
            }
            Fig6UnitOutcome {
                had_cases: true,
                skip_reasons: generated.skip_reasons,
                records,
            }
        },
        |idx, outcome| {
            let unit = &units[idx];
            if !outcome.had_cases {
                return;
            }
            for report in [
                &mut results.sim_sv6,
                &mut results.sim_linux,
                &mut results.host_sv6,
                &mut results.host_linux,
            ] {
                report.record_skips(unit.call_a, unit.call_b, &outcome.skip_reasons);
            }
            for record in outcome.records {
                results.tests_run += 1;
                results.dropped += record.dropped;
                results
                    .sim_sv6
                    .record(unit.call_a, unit.call_b, record.sim_sv6);
                results
                    .sim_linux
                    .record(unit.call_a, unit.call_b, record.sim_linux);
                results
                    .host_sv6
                    .record(unit.call_a, unit.call_b, record.host_sv6);
                results
                    .host_linux
                    .record(unit.call_a, unit.call_b, record.host_linux);
                if let Some(divergence) = record.divergence {
                    results.divergences.push(divergence);
                }
            }
        },
    );
    results.heat_sv6 = heat_sv6;
    results.heat_linux = heat_linux;
    results
}

// --- §4 extension pairs: sockets and process management -------------------
//
// The §4 extensions — datagram `send`/`recv` with optional ordering,
// `fork`/`posix_spawn`/`wait` — are modelled symbolically (`scr-model`'s
// socket queues and process table), so their host cross-check corpus is
// *generated* by TESTGEN exactly like the file-system corpus: every
// unordered pair with at least one extension call is analysed, each
// commutative case is materialised into a [`ConcreteTest`], and every test
// runs through the same protocol as the rest of Figure 6 — setup untraced,
// the pair traced on cores 0 and 1, SIM-conflict-free ⇒ host-conflict-free.
//
// Because several of these pairs commute only up to fungible values (two
// spawns race for the next pid; unordered receives race for equivalent
// messages), the result check is a linearization check — the host's racing
// outcome must equal the simulated outcome under *some* order of the two
// calls — plus a message conservation check: every datagram sent to an
// existing socket is received or still queued, exactly once.
//
// A hand-enumerated corpus ([`ext_corpus`]) predates the generated one and
// is kept as a regression floor: the acceptance test checks every hand
// test appears, up to isomorphism ([`ext_signature`]), among the generated
// tests.

/// Satisfying assignments enumerated per commutative case when building
/// the generated extension corpus (smaller than the fs pipeline's limit:
/// extension pairs have many shapes and every test runs on four kernels).
pub const EXT_MAX_ASSIGNMENTS_PER_CASE: usize = 12;

/// Total test budget for [`run_ext_fig6`]: the generated corpus is
/// round-robined across call pairs down to this many tests so the
/// cross-check stays proportionate to the rest of the suite.
pub const EXT_CORPUS_BUDGET: usize = 96;

/// The calls whose pairs make up the extension corpus: every §4 extension
/// call, plus `open` so the mixed pairs of the paper's process-management
/// discussion (`posix_spawn ∥ open` scaling where `fork ∥ open` cannot)
/// are covered.
pub fn ext_calls() -> Vec<CallKind> {
    vec![
        CallKind::Socket,
        CallKind::Send,
        CallKind::Recv,
        CallKind::Fork,
        CallKind::PosixSpawn,
        CallKind::Wait,
        CallKind::Open,
    ]
}

/// Every unordered pair over [`ext_calls`] with at least one extension
/// call (pure fs pairs like `open ∥ open` belong to the main pipeline).
pub fn ext_pair_calls() -> Vec<(CallKind, CallKind)> {
    let calls = ext_calls();
    let mut pairs = Vec::new();
    for (i, &a) in calls.iter().enumerate() {
        for &b in calls.iter().skip(i) {
            if a.is_extension() || b.is_extension() {
                pairs.push((a, b));
            }
        }
    }
    pairs
}

/// The TESTGEN-generated extension corpus plus its skip histogram.
#[derive(Clone, Debug)]
pub struct ExtCorpus {
    /// Every materialised test, in pair-enumeration order.
    pub tests: Vec<ConcreteTest>,
    /// Why satisfying assignments were skipped, summed over all pairs.
    pub skip_reasons: scr_core::SkipHistogram,
}

/// Generates the extension corpus: every pair from [`ext_pair_calls`]
/// under its own [`pair_config`] specialisation, `max_per_case`
/// assignments per commutative case. The result is memoised for the
/// default limit via [`generated_ext_corpus`]; call this directly to use a
/// different limit.
pub fn build_ext_corpus(max_per_case: usize) -> ExtCorpus {
    let base = ModelConfig::default();
    let names = bucket_distinct_names(8);
    let mut tests = Vec::new();
    let mut skip_reasons = scr_core::SkipHistogram::new();
    for (call_a, call_b) in ext_pair_calls() {
        let cfg = pair_config(&base, call_a, call_b);
        for shape in enumerate_shapes(call_a, call_b, &cfg) {
            let analysis = analyze_pair(&shape, &cfg);
            if analysis.cases.is_empty() {
                continue;
            }
            let generated = generate_tests(&shape, &analysis.cases, &cfg, &names, max_per_case);
            for (&reason, &count) in &generated.skip_reasons {
                *skip_reasons.entry(reason).or_default() += count;
            }
            tests.extend(generated.tests);
        }
    }
    ExtCorpus {
        tests,
        skip_reasons,
    }
}

/// The generated extension corpus at the default per-case limit, built
/// once per process (generation runs the symbolic analyzer over 27 pairs,
/// which is far more expensive than replaying the corpus).
pub fn generated_ext_corpus() -> &'static ExtCorpus {
    static CORPUS: std::sync::OnceLock<ExtCorpus> = std::sync::OnceLock::new();
    CORPUS.get_or_init(|| build_ext_corpus(EXT_MAX_ASSIGNMENTS_PER_CASE))
}

/// Round-robins `tests` across their call pairs down to at most `budget`
/// tests, preserving within-pair order — so a budgeted corpus still covers
/// every pair that generated anything.
pub fn budget_corpus(tests: &[ConcreteTest], budget: usize) -> Vec<ConcreteTest> {
    let mut by_pair: std::collections::BTreeMap<(&str, &str), Vec<&ConcreteTest>> =
        std::collections::BTreeMap::new();
    for test in tests {
        by_pair
            .entry((test.calls.0.name(), test.calls.1.name()))
            .or_default()
            .push(test);
    }
    let mut out = Vec::new();
    let mut round = 0;
    while out.len() < budget.min(tests.len()) {
        let mut advanced = false;
        for pool in by_pair.values() {
            if let Some(test) = pool.get(round) {
                out.push((*test).clone());
                advanced = true;
                if out.len() == budget {
                    break;
                }
            }
        }
        if !advanced {
            break;
        }
        round += 1;
    }
    out
}

/// The hand-enumerated §4 corpus: socket pairs in both disciplines and the
/// spawn/fork/wait pairs, every one of them SIM-commutative in its
/// materialised state (the corpus mirrors TESTGEN's rule of only
/// materialising commutative cases — e.g. `recv ∥ recv` on an ordered
/// socket appears only with equal pending messages, since distinct heads
/// do not commute). Kept as the regression floor for the generated corpus:
/// see `generated_corpus_covers_every_hand_enumerated_test`.
pub fn ext_corpus() -> Vec<ConcreteTest> {
    let sock = |order| SysOp::Socket { order };
    let send = |sock, msg: &str| SysOp::Send {
        sock,
        msg: msg.as_bytes().to_vec(),
    };
    let recv = |sock| SysOp::Recv { sock };
    let open = |pid, name: &str| SysOp::Open {
        pid,
        name: name.into(),
        flags: scr_kernel::api::OpenFlags::create(),
    };
    let spawn1 = |pid| SysOp::Spawn {
        pid,
        dup_fds: vec![0],
    };
    let test = |id: &str, calls, setup: Vec<(usize, SysOp)>, op_a, op_b| ConcreteTest {
        id: id.into(),
        calls,
        setup,
        op_a,
        op_b,
        procs: 2,
    };
    vec![
        test(
            "ext_send_send_ordered",
            (CallKind::Send, CallKind::Send),
            vec![(0, sock(SocketOrder::Ordered))],
            send(0, "a0"),
            send(0, "b1"),
        ),
        test(
            "ext_send_send_unordered",
            (CallKind::Send, CallKind::Send),
            vec![(0, sock(SocketOrder::Unordered))],
            send(0, "a0"),
            send(0, "b1"),
        ),
        // §4's headline: with a message pending in the receiver's own
        // queue, unordered send ∥ recv commutes AND is conflict-free.
        test(
            "ext_send_recv_unordered_local",
            (CallKind::Send, CallKind::Recv),
            vec![(0, sock(SocketOrder::Unordered)), (1, send(0, "pre"))],
            send(0, "a0"),
            recv(0),
        ),
        // POSIX ordering forces one queue: the same pair conflicts.
        test(
            "ext_send_recv_ordered",
            (CallKind::Send, CallKind::Recv),
            vec![(0, sock(SocketOrder::Ordered)), (0, send(0, "pre"))],
            send(0, "a0"),
            recv(0),
        ),
        // Ordered recv ∥ recv commutes only with equal heads.
        test(
            "ext_recv_recv_ordered_equal_heads",
            (CallKind::Recv, CallKind::Recv),
            vec![
                (0, sock(SocketOrder::Ordered)),
                (0, send(0, "m")),
                (0, send(0, "m")),
            ],
            recv(0),
            recv(0),
        ),
        test(
            "ext_recv_recv_unordered_local_queues",
            (CallKind::Recv, CallKind::Recv),
            vec![
                (0, sock(SocketOrder::Unordered)),
                (0, send(0, "m0")),
                (1, send(0, "m1")),
            ],
            recv(0),
            recv(0),
        ),
        // Empty receives: commute (both EAGAIN) but the steal scan makes
        // them conflict — on both substrates.
        test(
            "ext_recv_recv_unordered_empty",
            (CallKind::Recv, CallKind::Recv),
            vec![(0, sock(SocketOrder::Unordered))],
            recv(0),
            recv(0),
        ),
        test(
            "ext_fork_fork",
            (CallKind::Fork, CallKind::Fork),
            vec![(0, open(0, "shared"))],
            SysOp::Fork { pid: 0 },
            SysOp::Fork { pid: 0 },
        ),
        test(
            "ext_spawn_spawn",
            (CallKind::PosixSpawn, CallKind::PosixSpawn),
            vec![(0, open(0, "shared"))],
            spawn1(0),
            spawn1(0),
        ),
        // posix_spawn touches only the listed descriptor, so it stays
        // conflict-free beside a lowest-FD open of a later slot…
        test(
            "ext_spawn_open",
            (CallKind::PosixSpawn, CallKind::Open),
            vec![(0, open(0, "shared"))],
            spawn1(0),
            open(0, "other"),
        ),
        // …while fork's whole-table snapshot conflicts with it.
        test(
            "ext_fork_open",
            (CallKind::Fork, CallKind::Open),
            vec![(0, open(0, "shared"))],
            SysOp::Fork { pid: 0 },
            open(0, "other"),
        ),
        test(
            "ext_wait_spawn",
            (CallKind::Wait, CallKind::PosixSpawn),
            vec![(0, open(0, "shared")), (0, spawn1(0))],
            SysOp::Wait { pid: 0, child: 2 },
            spawn1(0),
        ),
        test(
            "ext_wait_wait_same_child",
            (CallKind::Wait, CallKind::Wait),
            vec![(0, open(0, "shared")), (0, spawn1(0))],
            SysOp::Wait { pid: 0, child: 2 },
            SysOp::Wait { pid: 1, child: 2 },
        ),
        // A second ordering flavour of the fungible-message steal case:
        // the receiver's local queue is empty, so it must steal the
        // pending message or report the sent one — either way conservation
        // holds.
        test(
            "ext_send_recv_unordered_steal",
            (CallKind::Send, CallKind::Recv),
            vec![(0, sock(SocketOrder::Unordered)), (0, send(0, "pre"))],
            send(0, "a0"),
            recv(0),
        ),
    ]
}

/// How many sockets a test's setup creates. Both kernels number sockets
/// densely from 0, so ids `0..count` exist and anything ≥ count is a
/// deliberate bad-socket probe.
pub fn created_sockets(test: &ConcreteTest) -> usize {
    test.setup
        .iter()
        .filter(|(_, op)| matches!(op, SysOp::Socket { .. }))
        .count()
}

/// The socket ids a test's setup creates (the ones the conservation check
/// drains afterwards).
pub fn socket_ids(test: &ConcreteTest) -> Vec<SockId> {
    (0..created_sockets(test)).collect()
}

/// Every payload the test sends to an *existing* socket (setup and pair),
/// sorted — the "sent" side of the conservation ledger. Sends to bad
/// socket ids fail with EBADF on both substrates and never enter a queue,
/// so they are excluded.
pub fn sent_messages(test: &ConcreteTest) -> Vec<Vec<u8>> {
    let created = created_sockets(test);
    let mut sent: Vec<Vec<u8>> = test
        .setup
        .iter()
        .map(|(_, op)| op)
        .chain([&test.op_a, &test.op_b])
        .filter_map(|op| match op {
            SysOp::Send { sock, msg } if *sock < created => Some(msg.clone()),
            _ => None,
        })
        .collect();
    sent.sort();
    sent
}

/// An isomorphism signature for an extension test: what remains after
/// erasing every fungible detail. Two tests with equal signatures exercise
/// the same commutative scenario:
///
/// * payloads, file names, caller pids and concrete fd numbers are erased
///   (all fungible — TESTGEN picks arbitrary witnesses);
/// * socket identity within the test is kept (`s0`, `s1`, or `bad` for a
///   nonexistent-socket probe), as is each socket's delivery discipline;
/// * setup sends keep their sending core (unordered sockets route by
///   core, so `send@c1` vs `send@c0` distinguishes a local-queue preload
///   from a steal scenario);
/// * setup spawns are counted (their dup lists are fungible: the hand
///   corpus duplicates a file descriptor where the generated corpus
///   duplicates pipe endpoints, but either way the child is reapable);
/// * the traced ops keep their target socket / child pid / spawn dup
///   arity; other setup ops (opens, pipes) are scaffolding and erased.
///
/// `swap_ops` renders the pair in the opposite order: pair enumeration is
/// unordered, so `wait ∥ posix_spawn` in the hand corpus matches a
/// generated `posix_spawn ∥ wait` test.
pub fn ext_signature(test: &ConcreteTest, swap_ops: bool) -> String {
    let created = created_sockets(test);
    let sock_ref = |s: SockId| {
        if s < created {
            format!("s{s}")
        } else {
            "bad".to_string()
        }
    };
    let mut setup: Vec<String> = Vec::new();
    for (core, op) in &test.setup {
        match op {
            SysOp::Socket { order } => setup.push(format!("socket:{order:?}")),
            SysOp::Send { sock, .. } => setup.push(format!("send@c{core}:{}", sock_ref(*sock))),
            SysOp::Spawn { .. } => setup.push("spawn".to_string()),
            _ => {}
        }
    }
    setup.sort();
    let op_sig = |op: &SysOp| match op {
        SysOp::Socket { order } => format!("socket:{order:?}"),
        SysOp::Send { sock, .. } => format!("send:{}", sock_ref(*sock)),
        SysOp::Recv { sock } => format!("recv:{}", sock_ref(*sock)),
        SysOp::Fork { .. } => "fork".to_string(),
        SysOp::Spawn { dup_fds, .. } => format!("spawn:{}", dup_fds.len()),
        SysOp::Wait { child, .. } => {
            if *child >= scr_core::BAD_CHILD_PID {
                "wait:bad".to_string()
            } else {
                format!("wait:p{child}")
            }
        }
        other => other.call_name().to_string(),
    };
    let (a, b) = if swap_ops {
        (&test.op_b, &test.op_a)
    } else {
        (&test.op_a, &test.op_b)
    };
    format!("[{}] {} ∥ {}", setup.join(","), op_sig(a), op_sig(b))
}

/// Results and footprint of a sequential simulated run of an extension
/// test.
#[derive(Clone, Debug)]
pub struct SimExtRun {
    /// The pair's observable results, as (op_a, op_b).
    pub results: (SysResult, SysResult),
    /// Whether the traced pair was conflict-free.
    pub conflict_free: bool,
    /// The traced (core, label, kind) multiset, sorted.
    pub footprint: Vec<(usize, String, AccessKind)>,
}

/// Runs an extension test on a fresh simulated sv6 kernel: setup untraced
/// on its annotated cores, then the pair traced on cores 0 and 1, in the
/// given order (`a_first` false replays B before A — the other
/// linearization).
pub fn run_ext_sim(cores: usize, test: &ConcreteTest, a_first: bool) -> SimExtRun {
    let kernel = Sv6Kernel::new(cores.max(2));
    let machine = scr_kernel::api::KernelApi::machine(&kernel).clone();
    for _ in 0..test.procs.max(2) {
        kernel.new_process();
    }
    machine.stop_tracing();
    for (core, op) in &test.setup {
        machine.on_core(*core, || perform(&kernel, *core, op));
    }
    machine.clear_trace();
    machine.start_tracing();
    let results = if a_first {
        let ra = machine.on_core(0, || perform(&kernel, 0, &test.op_a));
        let rb = machine.on_core(1, || perform(&kernel, 1, &test.op_b));
        (ra, rb)
    } else {
        let rb = machine.on_core(1, || perform(&kernel, 1, &test.op_b));
        let ra = machine.on_core(0, || perform(&kernel, 0, &test.op_a));
        (ra, rb)
    };
    machine.stop_tracing();
    let mut footprint: Vec<_> = machine
        .accesses()
        .iter()
        .map(|a| (a.core, machine.label_of(a.line), a.kind))
        .collect();
    footprint.sort();
    SimExtRun {
        results,
        conflict_free: machine.conflict_report().is_conflict_free(),
        footprint,
    }
}

/// Results, footprint and leftovers of one traced host run of an extension
/// test.
#[derive(Clone, Debug)]
pub struct HostExtRun {
    /// The pair's observable results, as (op_a, op_b).
    pub results: (SysResult, SysResult),
    /// Whether the traced window was conflict-free.
    pub conflict_free: bool,
    /// Labels of lines shared between the two cores.
    pub shared_labels: Vec<String>,
    /// The traced (core, label, kind) multiset, sorted.
    pub footprint: Vec<(usize, String, AccessKind)>,
    /// Messages still queued on the test's sockets afterwards.
    pub leftover: Vec<Vec<u8>>,
    /// Accesses dropped by log overflow (0 in any healthy run).
    pub dropped: usize,
}

/// Replays an extension test on an instrumented host kernel: setup
/// untraced, then the pair inside a tracing window — concurrently on two
/// real threads, or back to back when `concurrent` is false (the
/// deterministic mode the footprint-parity tests use).
pub fn run_ext_host(
    mode: HostMode,
    cores: usize,
    test: &ConcreteTest,
    concurrent: bool,
) -> HostExtRun {
    let sink = HostTraceSink::new(cores.max(2));
    let kernel = HostKernel::instrumented(cores, mode, HostOptions::default(), &sink);
    for _ in 0..test.procs.max(2) {
        kernel.new_process();
    }
    for (core, op) in &test.setup {
        on_core(*core, || perform_host(&kernel, *core, op));
    }
    sink.begin_window();
    let results = if concurrent {
        let barrier = Barrier::new(2);
        let (kernel_ref, barrier_ref) = (&kernel, &barrier);
        std::thread::scope(|scope| {
            let a = scope.spawn(move || {
                barrier_ref.wait();
                on_core(0, || perform_host(kernel_ref, 0, &test.op_a))
            });
            let b = scope.spawn(move || {
                barrier_ref.wait();
                on_core(1, || perform_host(kernel_ref, 1, &test.op_b))
            });
            (
                a.join().expect("op_a thread"),
                b.join().expect("op_b thread"),
            )
        })
    } else {
        (
            on_core(0, || perform_host(&kernel, 0, &test.op_a)),
            on_core(1, || perform_host(&kernel, 1, &test.op_b)),
        )
    };
    let report = sink.end_window();
    let mut footprint: Vec<_> = report
        .accesses
        .iter()
        .map(|a| (a.core, sink.label_of(a.line), a.kind))
        .collect();
    footprint.sort();
    let leftover = socket_ids(test)
        .into_iter()
        .flat_map(|s| kernel.socket_drain_untraced(s))
        .collect();
    HostExtRun {
        results,
        conflict_free: report.is_conflict_free(),
        shared_labels: report.conflicting_labels(),
        footprint,
        leftover,
        dropped: report.dropped,
    }
}

/// The aggregated verdict for one extension test across schedules.
#[derive(Clone, Debug)]
pub struct ExtOutcome {
    /// The test's identifier.
    pub test_id: String,
    /// The test's call pair.
    pub calls: (CallKind, CallKind),
    /// Conflict-free on the simulated sv6 kernel (A-then-B trace).
    pub sim_conflict_free: bool,
    /// Conflict-free on the host sv6 kernel in every schedule.
    pub host_conflict_free: bool,
    /// Union of host conflicting labels over schedules.
    pub host_shared_labels: Vec<String>,
    /// Every host schedule's results matched a sequential simulated order.
    pub linearizable: bool,
    /// Every sent message was received or still queued, exactly once, in
    /// every schedule.
    pub conserved: bool,
    /// Accesses dropped across schedules (0 in any healthy run).
    pub dropped: usize,
}

/// Cross-checks one extension corpus on real threads (`schedules` replays
/// per test) against the simulated sv6 kernel: conflict verdicts
/// one-directionally, results by linearization, messages by conservation.
pub fn run_ext_corpus(cores: usize, schedules: usize, corpus: &[ConcreteTest]) -> Vec<ExtOutcome> {
    corpus
        .iter()
        .map(|test| {
            let sim_ab = run_ext_sim(cores, test, true);
            let sim_ba = run_ext_sim(cores, test, false);
            let sent = sent_messages(test);
            let mut outcome = ExtOutcome {
                test_id: test.id.clone(),
                calls: test.calls,
                sim_conflict_free: sim_ab.conflict_free,
                host_conflict_free: true,
                host_shared_labels: Vec::new(),
                linearizable: true,
                conserved: true,
                dropped: 0,
            };
            for _ in 0..schedules.max(1) {
                let host = run_ext_host(HostMode::Sv6, cores, test, true);
                outcome.host_conflict_free &= host.conflict_free;
                outcome.host_shared_labels.extend(host.shared_labels);
                outcome.linearizable &=
                    host.results == sim_ab.results || host.results == sim_ba.results;
                let mut seen: Vec<Vec<u8>> = [&host.results.0, &host.results.1]
                    .into_iter()
                    .filter_map(|r| match r {
                        SysResult::Data(d) => Some(d.clone()),
                        _ => None,
                    })
                    .chain(host.leftover.iter().cloned())
                    .collect();
                seen.sort();
                outcome.conserved &= seen == sent;
                outcome.dropped += host.dropped;
            }
            outcome.host_shared_labels.sort();
            outcome.host_shared_labels.dedup();
            outcome
        })
        .collect()
}

/// Runs the TESTGEN-generated extension corpus (budgeted to
/// [`EXT_CORPUS_BUDGET`] tests, round-robined across pairs) on real
/// threads and cross-checks it against the simulated sv6 kernel.
pub fn run_ext_fig6(cores: usize, schedules: usize) -> Vec<ExtOutcome> {
    let corpus = budget_corpus(&generated_ext_corpus().tests, EXT_CORPUS_BUDGET);
    run_ext_corpus(cores, schedules, &corpus)
}

/// Failures of an extension cross-check run, one line each: unexplained
/// sim-free→host-conflict divergences, non-linearizable results, broken
/// conservation, or log overflow. Empty means the cross-check passed.
pub fn ext_failures(outcomes: &[ExtOutcome]) -> Vec<String> {
    let mut failures = Vec::new();
    for o in outcomes {
        if o.sim_conflict_free && !o.host_conflict_free {
            failures.push(format!(
                "{}: SIM-conflict-free but host conflicted on [{}]",
                o.test_id,
                o.host_shared_labels.join(", ")
            ));
        }
        if !o.linearizable {
            failures.push(format!(
                "{}: host results match no sequential order",
                o.test_id
            ));
        }
        if !o.conserved {
            failures.push(format!("{}: messages lost or duplicated", o.test_id));
        }
        if o.dropped > 0 {
            failures.push(format!("{}: {} accesses dropped", o.test_id, o.dropped));
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;
    use scr_kernel::api::{OpenFlags, SysOp};

    fn manual_test(
        id: &str,
        calls: (CallKind, CallKind),
        op_a: SysOp,
        op_b: SysOp,
    ) -> ConcreteTest {
        ConcreteTest {
            id: id.into(),
            calls,
            setup: vec![],
            op_a,
            op_b,
            procs: 2,
        }
    }

    fn create_op(pid: usize, name: &str, anyfd: bool) -> SysOp {
        let mut flags = OpenFlags::create();
        if anyfd {
            flags = flags.with_anyfd();
        }
        SysOp::Open {
            pid,
            name: name.into(),
            flags,
        }
    }

    #[test]
    fn creating_different_files_scales_on_host_sv6_but_not_linuxlike() {
        let test = manual_test(
            "host_create_different",
            (CallKind::Open, CallKind::Open),
            create_op(0, "alpha", false),
            create_op(1, "bravo", false),
        );
        let sv6 = run_test_host(HostMode::Sv6, 4, &test, 2);
        assert!(sv6.conflict_free, "sv6-host shared {:?}", sv6.shared_labels);
        let linux = run_test_host(HostMode::Linuxlike, 4, &test, 1);
        assert!(!linux.conflict_free);
        assert!(
            linux.shared_labels.iter().any(|l| l == "kernel.giant_lock"),
            "the giant lock must be the recorded conflict, got {:?}",
            linux.shared_labels
        );
    }

    #[test]
    fn heat_map_agrees_with_the_outcome_conflicts() {
        let test = manual_test(
            "host_create_different_heat",
            (CallKind::Open, CallKind::Open),
            create_op(0, "alpha", false),
            create_op(1, "bravo", false),
        );
        let heat = HeatMap::new();
        let linux = run_test_host_with(HostMode::Linuxlike, 4, &test, 2, Some(&heat));
        assert!(!linux.conflict_free);
        // Every label the outcome reports as conflicting must show up hot.
        for label in &linux.shared_labels {
            let entry = heat
                .entry(label)
                .unwrap_or_else(|| panic!("label {label} conflicting but absent from heat map"));
            assert!(entry.conflict_windows > 0, "{label}: {entry:?}");
            assert!(entry.accesses() > 0);
        }
        // Two schedules were traced, so no line can be hot in more windows.
        let giant = heat.entry("kernel.giant_lock").expect("giant lock traced");
        assert!(giant.conflict_windows <= 2);
        assert!(heat
            .render_top("linux-host hottest lines", 5)
            .contains("kernel.giant_lock"));
    }

    #[test]
    fn same_process_double_create_contends_on_lowest_fd_and_anyfd_fixes_it() {
        // The paper's §1 example on real threads: two creates of different
        // names in one process conflict on the descriptor table under
        // POSIX's lowest-FD rule, and O_ANYFD removes the contention.
        let lowest = manual_test(
            "host_lowest_fd",
            (CallKind::Open, CallKind::Open),
            create_op(0, "alpha", false),
            create_op(0, "bravo", false),
        );
        let outcome = run_test_host(HostMode::Sv6, 4, &lowest, 2);
        assert!(!outcome.conflict_free);
        assert!(
            outcome.shared_labels.iter().all(|l| l.contains("].fd[")),
            "only fd slots may conflict, got {:?}",
            outcome.shared_labels
        );
        assert_eq!(
            classify_divergence(&outcome.shared_labels),
            Some(LOWEST_FD_EXCEPTION)
        );
        let anyfd = manual_test(
            "host_anyfd",
            (CallKind::Open, CallKind::Open),
            create_op(0, "alpha", true),
            create_op(0, "bravo", true),
        );
        let outcome = run_test_host(HostMode::Sv6, 4, &anyfd, 2);
        assert!(
            outcome.conflict_free,
            "O_ANYFD must remove the contention, got {:?}",
            outcome.shared_labels
        );
    }

    #[test]
    fn classification_requires_every_label_to_be_an_fd_slot() {
        assert_eq!(classify_divergence(&[]), None);
        assert_eq!(
            classify_divergence(&["proc[0].fd[3]".to_string()]),
            Some(LOWEST_FD_EXCEPTION)
        );
        assert_eq!(
            classify_divergence(&[
                "proc[0].fd[3]".to_string(),
                "scalefs.root.bucket[9].entries".to_string()
            ]),
            None
        );
    }

    #[test]
    fn ext_corpus_ids_are_unique_and_pairs_are_linearizable_on_sim() {
        let corpus = ext_corpus();
        let ids: std::collections::BTreeSet<_> = corpus.iter().map(|t| t.id.as_str()).collect();
        assert_eq!(ids.len(), corpus.len(), "duplicate test ids");
        // Sanity: every corpus entry is SIM-commutative in its observable
        // results up to pid fungibility — both sequential orders agree or
        // are each other's pid swap (the linearization check's premise).
        for test in &corpus {
            let ab = run_ext_sim(4, test, true);
            let ba = run_ext_sim(4, test, false);
            let swapped = (ba.results.1.clone(), ba.results.0.clone());
            assert!(
                ab.results == ba.results || (ab.results.0, ab.results.1) == swapped,
                "{}: orders disagree beyond fungible values",
                test.id
            );
        }
    }

    #[test]
    fn unordered_send_recv_with_local_message_is_conflict_free_everywhere() {
        let corpus = ext_corpus();
        let test = corpus
            .iter()
            .find(|t| t.id == "ext_send_recv_unordered_local")
            .unwrap();
        let sim = run_ext_sim(4, test, true);
        assert!(sim.conflict_free, "sim must scale: {:?}", sim.footprint);
        let host = run_ext_host(HostMode::Sv6, 4, test, true);
        assert!(
            host.conflict_free,
            "host must scale, shared {:?}",
            host.shared_labels
        );
        let ordered = corpus
            .iter()
            .find(|t| t.id == "ext_send_recv_ordered")
            .unwrap();
        let sim = run_ext_sim(4, ordered, true);
        assert!(!sim.conflict_free, "ordered sockets must conflict");
        let host = run_ext_host(HostMode::Sv6, 4, ordered, true);
        assert!(!host.conflict_free);
        assert!(
            host.shared_labels.iter().any(|l| l == "socket[0].queue"),
            "the shared ordered queue must be the conflict, got {:?}",
            host.shared_labels
        );
    }

    #[test]
    fn spawn_scales_beside_open_where_forks_snapshot_conflicts() {
        let corpus = ext_corpus();
        let spawn = corpus.iter().find(|t| t.id == "ext_spawn_open").unwrap();
        assert!(run_ext_sim(4, spawn, true).conflict_free);
        assert!(run_ext_host(HostMode::Sv6, 4, spawn, true).conflict_free);
        let fork = corpus.iter().find(|t| t.id == "ext_fork_open").unwrap();
        assert!(!run_ext_sim(4, fork, true).conflict_free);
        let host = run_ext_host(HostMode::Sv6, 4, fork, true);
        assert!(!host.conflict_free);
        assert!(
            host.shared_labels.iter().all(|l| l.contains("].fd[")),
            "fork ∥ open conflicts on descriptor slots, got {:?}",
            host.shared_labels
        );
    }

    #[test]
    fn ext_cross_check_passes_on_the_hand_corpus() {
        let outcomes = run_ext_corpus(4, 2, &ext_corpus());
        let failures = ext_failures(&outcomes);
        assert!(failures.is_empty(), "{}", failures.join("\n"));
    }

    #[test]
    fn generated_ext_cross_check_passes_and_covers_every_pair() {
        let outcomes = run_ext_fig6(4, 2);
        assert!(!outcomes.is_empty());
        let failures = ext_failures(&outcomes);
        assert!(failures.is_empty(), "{}", failures.join("\n"));
        let covered: std::collections::BTreeSet<(&str, &str)> = outcomes
            .iter()
            .map(|o| (o.calls.0.name(), o.calls.1.name()))
            .collect();
        for (a, b) in ext_pair_calls() {
            assert!(
                covered.contains(&(a.name(), b.name())),
                "no generated test ran for {} ∥ {}",
                a.name(),
                b.name()
            );
        }
    }

    #[test]
    fn generated_corpus_covers_every_hand_enumerated_test() {
        // The regression floor for replacing the hand corpus with the
        // generated one: every hand-enumerated scenario must appear, up to
        // isomorphism (fungible payloads/names/pids erased, socket
        // discipline and queue topology kept), among the generated tests.
        let generated: std::collections::BTreeSet<String> = generated_ext_corpus()
            .tests
            .iter()
            .map(|t| ext_signature(t, false))
            .collect();
        let mut missing = Vec::new();
        for hand in ext_corpus() {
            let fwd = ext_signature(&hand, false);
            let rev = ext_signature(&hand, true);
            if !generated.contains(&fwd) && !generated.contains(&rev) {
                missing.push(format!("{}: {}", hand.id, fwd));
            }
        }
        assert!(
            missing.is_empty(),
            "hand tests with no generated counterpart (up to isomorphism):\n{}\n\
             generated signatures:\n{}",
            missing.join("\n"),
            generated.into_iter().collect::<Vec<_>>().join("\n")
        );
    }

    #[test]
    fn parallel_sweep_reproduces_the_sequential_sim_columns() {
        // The host columns race real threads and may legitimately differ
        // between runs; the generated corpus and the *simulated* columns
        // are deterministic, so a multi-worker sweep must reproduce them
        // byte for byte.
        let config = HostFig6Config {
            schedules_per_test: 1,
            ..HostFig6Config::quick(&[CallKind::Stat, CallKind::Unlink])
        };
        let sequential = run_host_fig6(&config);
        let parallel = run_host_fig6(&HostFig6Config {
            threads: 3,
            ..config
        });
        assert_eq!(sequential.tests_run, parallel.tests_run);
        assert_eq!(sequential.sim_sv6.render(), parallel.sim_sv6.render());
        assert_eq!(sequential.sim_linux.render(), parallel.sim_linux.render());
        assert_eq!(
            sequential.host_sv6.total_tests(),
            parallel.host_sv6.total_tests()
        );
        assert!(parallel.unexplained_divergences().is_empty());
    }

    #[test]
    fn small_pipeline_cross_checks_cleanly() {
        let config = HostFig6Config {
            schedules_per_test: 1,
            ..HostFig6Config::quick(&[CallKind::Stat, CallKind::Unlink])
        };
        let results = run_host_fig6(&config);
        assert!(results.tests_run > 0);
        assert_eq!(results.dropped, 0);
        assert_eq!(
            results.sim_sv6.total_tests(),
            results.host_sv6.total_tests()
        );
        assert!(
            results.unexplained_divergences().is_empty(),
            "unexplained divergences:\n{}",
            results.describe_divergences()
        );
        results.assert_linux_collapses().unwrap();
    }
}
