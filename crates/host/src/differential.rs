//! The differential runner: TESTGEN's concrete tests replayed on real
//! threads.
//!
//! The commutativity rule's empirical leg rests on the claim that the
//! simulated kernels faithfully represent what a real implementation would
//! do. This module checks exactly that: every generated test's setup is
//! replayed on a [`HostKernel`], the two commutative operations run
//! concurrently on two real OS threads (synchronised by a barrier, so they
//! genuinely race), and every observable result is compared against the
//! simulated `Sv6Kernel`'s. Because the operations *commute*, their results
//! must be independent of how the threads interleave — so simulated and
//! host results must agree bit-for-bit, whatever schedule the hardware
//! picks.

use crate::kernel::{perform_host, HostKernel, HostMode};
use scr_core::pipeline::{bucket_distinct_names, CommuterConfig};
use scr_core::{
    analyze_pair, differential_check, enumerate_shapes, generate_tests, ConcreteReplayer,
    ConcreteTest, DifferentialOutcome, Sv6Factory,
};
use scr_kernel::api::SysResult;
use scr_model::CallKind;
use std::sync::Arc;
use std::sync::Barrier;

/// Replays generated tests on a fresh [`HostKernel`] per test, running the
/// commutative pair on two real threads.
#[derive(Clone, Copy, Debug)]
pub struct HostReplayer {
    /// Cores (thread slots) each fresh kernel is configured with.
    pub cores: usize,
}

impl Default for HostReplayer {
    fn default() -> Self {
        HostReplayer { cores: 4 }
    }
}

impl ConcreteReplayer for HostReplayer {
    fn name(&self) -> &'static str {
        "host-sv6"
    }

    fn replay(&self, test: &ConcreteTest) -> (SysResult, SysResult) {
        let kernel = Arc::new(HostKernel::new(self.cores.max(2), HostMode::Sv6));
        for _ in 0..test.procs.max(2) {
            kernel.new_process();
        }
        // Setup replays sequentially on core 0, as in the simulated driver.
        for op in &test.setup {
            perform_host(&kernel, 0, op);
        }
        // The commutative pair races on two real threads.
        let barrier = Barrier::new(2);
        let (kernel_ref, barrier_ref) = (&kernel, &barrier);
        std::thread::scope(|scope| {
            let a = scope.spawn(move || {
                barrier_ref.wait();
                perform_host(kernel_ref, 0, &test.op_a)
            });
            let b = scope.spawn(move || {
                barrier_ref.wait();
                perform_host(kernel_ref, 1, &test.op_b)
            });
            (
                a.join().expect("op_a thread"),
                b.join().expect("op_b thread"),
            )
        })
    }
}

/// Aggregated result of a differential run.
#[derive(Clone, Debug, Default)]
pub struct DifferentialReport {
    /// Number of tests replayed.
    pub tests_run: usize,
    /// Tests whose simulated and host results disagreed.
    pub mismatches: Vec<DifferentialOutcome>,
}

impl DifferentialReport {
    /// Did every test agree?
    pub fn all_agree(&self) -> bool {
        self.mismatches.is_empty()
    }

    /// One line per mismatch, for diagnostics.
    pub fn describe_mismatches(&self) -> String {
        self.mismatches
            .iter()
            .map(|m| {
                format!(
                    "{}: simulated {:?} vs host {:?}",
                    m.test_id, m.simulated, m.replayed
                )
            })
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// Generates tests for every shape of the given call pairs (bounded by
/// `max_tests`) and cross-checks the host kernel against the simulated
/// `Sv6Kernel` on each.
pub fn differential_sample(calls: &[CallKind], max_tests: usize) -> DifferentialReport {
    let config = CommuterConfig::quick(calls);
    let names = bucket_distinct_names(8);
    let mut tests = Vec::new();
    'outer: for (i, &call_a) in config.calls.iter().enumerate() {
        for &call_b in config.calls.iter().skip(i) {
            for shape in enumerate_shapes(call_a, call_b, &config.model) {
                let analysis = analyze_pair(&shape, &config.model);
                if analysis.cases.is_empty() {
                    continue;
                }
                let generated = generate_tests(
                    &shape,
                    &analysis.cases,
                    &config.model,
                    &names,
                    config.max_assignments_per_case,
                );
                for test in generated.tests {
                    tests.push(test);
                    if tests.len() >= max_tests {
                        break 'outer;
                    }
                }
            }
        }
    }
    run_differential(&tests)
}

/// Cross-checks an explicit batch of tests.
pub fn run_differential(tests: &[ConcreteTest]) -> DifferentialReport {
    let factory = Sv6Factory { cores: 4 };
    let replayer = HostReplayer { cores: 4 };
    let outcomes = differential_check(&factory, &replayer, tests);
    DifferentialReport {
        tests_run: outcomes.len(),
        mismatches: outcomes.into_iter().filter(|o| !o.agree()).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scr_kernel::api::{OpenFlags, SysOp};

    #[test]
    fn manual_commutative_pair_agrees() {
        let test = ConcreteTest {
            id: "manual_create_different".into(),
            calls: (CallKind::Open, CallKind::Open),
            setup: vec![],
            op_a: SysOp::Open {
                pid: 0,
                name: "alpha".into(),
                flags: OpenFlags::create(),
            },
            op_b: SysOp::Open {
                pid: 1,
                name: "bravo".into(),
                flags: OpenFlags::create(),
            },
            procs: 2,
        };
        let report = run_differential(std::slice::from_ref(&test));
        assert_eq!(report.tests_run, 1);
        assert!(report.all_agree(), "{}", report.describe_mismatches());
    }

    #[test]
    fn stat_unlink_sample_has_no_mismatches() {
        let report = differential_sample(&[CallKind::Stat, CallKind::Unlink], 24);
        assert!(report.tests_run > 0);
        assert!(report.all_agree(), "{}", report.describe_mismatches());
    }
}
