//! The differential runner: TESTGEN's concrete tests replayed on real
//! threads.
//!
//! The commutativity rule's empirical leg rests on the claim that the
//! simulated kernels faithfully represent what a real implementation would
//! do. This module checks exactly that: every generated test's setup is
//! replayed on a [`HostKernel`], the two commutative operations run
//! concurrently on two real OS threads (synchronised by a barrier, so they
//! genuinely race), and every observable result is compared against the
//! simulated `Sv6Kernel`'s. Because the operations *commute*, their results
//! must be independent of how the threads interleave — so simulated and
//! host results must agree bit-for-bit, whatever schedule the hardware
//! picks.

use crate::kernel::{perform_host, HostKernel, HostMode};
use scr_chaos::kernel::{FaultyKernel, ReliableKernel};
use scr_chaos::plan::ChaosPlan;
use scr_core::pipeline::{bucket_distinct_names, CommuterConfig};
use scr_core::{
    analyze_pair, claim_in_order, differential_check, effective_threads, enumerate_shapes,
    generate_tests, run_test_order, ConcreteReplayer, ConcreteTest, DifferentialOutcome,
    SkipHistogram, Sv6Factory,
};
use scr_kernel::api::SysResult;
use scr_kernel::retry::RetryPolicy;
use scr_model::{pair_config, CallKind};
use scr_obs::EventLog;
use std::sync::Arc;
use std::sync::Barrier;

/// Replays generated tests on a fresh [`HostKernel`] per test, running the
/// commutative pair on two real threads.
#[derive(Clone, Copy, Debug)]
pub struct HostReplayer {
    /// Cores (thread slots) each fresh kernel is configured with.
    pub cores: usize,
}

impl Default for HostReplayer {
    fn default() -> Self {
        HostReplayer { cores: 4 }
    }
}

impl ConcreteReplayer for HostReplayer {
    fn name(&self) -> &'static str {
        "host-sv6"
    }

    fn replay(&self, test: &ConcreteTest) -> (SysResult, SysResult) {
        let kernel = Arc::new(HostKernel::new(self.cores.max(2), HostMode::Sv6));
        for _ in 0..test.procs.max(2) {
            kernel.new_process();
        }
        // Setup replays sequentially, each op on its annotated core (socket
        // preloads must land on the owning core's queue), as in the
        // simulated driver.
        for (core, op) in &test.setup {
            perform_host(&kernel, *core, op);
        }
        // The commutative pair races on two real threads.
        let barrier = Barrier::new(2);
        let (kernel_ref, barrier_ref) = (&kernel, &barrier);
        std::thread::scope(|scope| {
            let a = scope.spawn(move || {
                barrier_ref.wait();
                perform_host(kernel_ref, 0, &test.op_a)
            });
            let b = scope.spawn(move || {
                barrier_ref.wait();
                perform_host(kernel_ref, 1, &test.op_b)
            });
            (
                a.join().expect("op_a thread"),
                b.join().expect("op_b thread"),
            )
        })
    }
}

/// Replays a generated triple test on a fresh host kernel: the setup runs
/// sequentially, then the three operations race on three real OS threads
/// released by one barrier. Returns the per-call results (`results[i]`
/// belongs to `ops[i]` whatever interleaving the hardware picked).
pub fn replay_triple_host(test: &scr_core::ConcreteTripleTest, cores: usize) -> [SysResult; 3] {
    let kernel = Arc::new(HostKernel::new(cores.max(3), HostMode::Sv6));
    for _ in 0..test.procs.max(2) {
        kernel.new_process();
    }
    for (core, op) in &test.setup {
        perform_host(&kernel, *core, op);
    }
    let barrier = Barrier::new(3);
    let (kernel_ref, barrier_ref) = (&kernel, &barrier);
    std::thread::scope(|scope| {
        let handles: [_; 3] = std::array::from_fn(|i| {
            let op = &test.ops[i];
            scope.spawn(move || {
                barrier_ref.wait();
                perform_host(kernel_ref, i, op)
            })
        });
        handles.map(|h| h.join().expect("triple op thread"))
    })
}

/// Checks a racing host replay against the simulated kernel: the result
/// triple must match at least one of the six sequential linearisations.
/// For a SIM-commutative triple all six orders agree, so any scheduling
/// the hardware picks must reproduce exactly that result vector — a
/// mismatch is a genuine host↔model divergence, not a benign reordering.
pub fn triple_linearizes(test: &scr_core::ConcreteTripleTest, host: &[SysResult; 3]) -> bool {
    let factory = Sv6Factory { cores: 3 };
    scr_core::TRIPLE_ORDERS
        .iter()
        .any(|&order| scr_core::run_triple_order(&factory, test, order).results == *host)
}

/// A [`HostReplayer`] with a fault-injecting kernel stack: every test's
/// setup and racing pair run through `ReliableKernel → FaultyKernel →
/// HostKernel`, with a *never-give-up* retry policy. Because injected
/// failures have no side effects and the reliable layer retries exactly
/// them, the stack is observationally the raw host kernel — so replays
/// under an errno storm must still linearize against the simulated
/// kernel's two sequential orders. A mismatch means an injected fault
/// leaked through the retry contract (or a genuine divergence).
#[derive(Clone, Debug)]
pub struct ChaosReplayer {
    /// Cores (thread slots) each fresh kernel is configured with.
    pub cores: usize,
    /// The fault plan each replay runs under (crash schedules are
    /// meaningless here — there are no qmans to kill — but errno and
    /// delay injection apply to every faultable call the test makes).
    pub plan: ChaosPlan,
}

impl ConcreteReplayer for ChaosReplayer {
    fn name(&self) -> &'static str {
        "host-sv6-chaos"
    }

    fn replay(&self, test: &ConcreteTest) -> (SysResult, SysResult) {
        let cores = self.cores.max(2);
        let kernel = Arc::new(HostKernel::new(cores, HostMode::Sv6));
        for _ in 0..test.procs.max(2) {
            kernel.new_process();
        }
        let faulty = FaultyKernel::new(kernel.as_ref(), self.plan.clone(), cores);
        let reliable = ReliableKernel::new(&faulty, RetryPolicy::spin().with_seed(self.plan.seed));
        for (core, op) in &test.setup {
            scr_kernel::api::perform(&reliable, *core, op);
        }
        let barrier = Barrier::new(2);
        let (api_ref, barrier_ref) = (&reliable, &barrier);
        std::thread::scope(|scope| {
            let a = scope.spawn(move || {
                barrier_ref.wait();
                scr_kernel::api::perform(api_ref, 0, &test.op_a)
            });
            let b = scope.spawn(move || {
                barrier_ref.wait();
                scr_kernel::api::perform(api_ref, 1, &test.op_b)
            });
            (
                a.join().expect("op_a thread"),
                b.join().expect("op_b thread"),
            )
        })
    }
}

/// Per-call-pair accounting of one campaign, proving the test budget was
/// spread across every pair instead of exhausted by the first few.
#[derive(Clone, Debug)]
pub struct PairOutcome {
    /// The (unordered) call pair.
    pub calls: (CallKind, CallKind),
    /// Tests TESTGEN materialised for the pair.
    pub generated: usize,
    /// Tests of the pair the budget actually replayed.
    pub replayed: usize,
    /// Representatives TESTGEN could not materialise for the pair.
    pub skipped: usize,
}

/// Aggregated result of a differential run.
#[derive(Clone, Debug, Default)]
pub struct DifferentialReport {
    /// Number of distinct tests replayed.
    pub tests_run: usize,
    /// Total replays, counting every schedule repetition.
    pub replays_run: usize,
    /// Tests whose simulated and host results disagreed (first disagreeing
    /// schedule per test).
    pub mismatches: Vec<DifferentialOutcome>,
    /// Per-pair budget accounting (campaign runs only).
    pub pairs: Vec<PairOutcome>,
    /// Aggregated TESTGEN skip reasons across every pair (campaign runs
    /// only) — coverage the oracle could not check, by cause.
    pub skip_reasons: SkipHistogram,
}

impl DifferentialReport {
    /// Did every test agree?
    pub fn all_agree(&self) -> bool {
        self.mismatches.is_empty()
    }

    /// One line per mismatch, for diagnostics.
    pub fn describe_mismatches(&self) -> String {
        self.mismatches
            .iter()
            .map(|m| {
                format!(
                    "{}: simulated {:?} vs host {:?}",
                    m.test_id, m.simulated, m.replayed
                )
            })
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// Knobs of a differential campaign.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Calls whose unordered pairs the campaign sweeps.
    pub calls: Vec<CallKind>,
    /// Total budget of distinct tests to replay, spread round-robin across
    /// the pairs so no pair is starved by earlier ones.
    pub max_tests: usize,
    /// Satisfying assignments enumerated per commutative case before
    /// isomorphism deduplication (the campaign default is higher than the
    /// quick pipeline's, widening the representative pool).
    pub max_assignments_per_case: usize,
    /// How many times each test races on real threads. Commutative results
    /// must be schedule-independent, so every repetition must agree with
    /// the simulated kernel bit-for-bit.
    pub schedules_per_test: usize,
    /// Seed for the deterministic shuffle that picks which of a pair's
    /// tests the budget covers.
    pub seed: u64,
    /// Workers claiming (pair, shape) generation units: `1` sequential,
    /// `N > 1` that many workers, `0` one per hardware thread. Pools are
    /// aggregated in pair order, so the selected corpus (and every
    /// per-pair shuffle seed) is byte-identical for every value.
    pub threads: usize,
}

impl CampaignConfig {
    /// The full-strength campaign over the given calls.
    pub fn new(calls: &[CallKind]) -> Self {
        CampaignConfig {
            calls: calls.to_vec(),
            max_tests: 256,
            max_assignments_per_case: 96,
            schedules_per_test: 3,
            seed: 0x5ca1ab1e,
            threads: 1,
        }
    }

    /// A bounded variant: single schedule, quick-pipeline assignment limit.
    pub fn quick(calls: &[CallKind], max_tests: usize) -> Self {
        CampaignConfig {
            max_tests,
            max_assignments_per_case: CommuterConfig::quick(calls).max_assignments_per_case,
            schedules_per_test: 1,
            ..CampaignConfig::new(calls)
        }
    }
}

/// Generates tests for every shape of the given call pairs (bounded by
/// `max_tests`, spread round-robin over the pairs) and cross-checks the
/// host kernel against the simulated `Sv6Kernel` on each.
pub fn differential_sample(calls: &[CallKind], max_tests: usize) -> DifferentialReport {
    differential_campaign(&CampaignConfig::quick(calls, max_tests))
}

/// xorshift64* — a tiny deterministic generator for the campaign shuffle
/// (no registry access for a real RNG crate, and reproducibility is the
/// point anyway).
fn xorshift64(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Fisher–Yates with the seeded generator.
fn shuffle<T>(items: &mut [T], seed: u64) {
    // Avoid the all-zero fixed point.
    let mut state = seed | 1;
    for i in (1..items.len()).rev() {
        let j = (xorshift64(&mut state) % (i as u64 + 1)) as usize;
        items.swap(i, j);
    }
}

/// Runs a seeded differential campaign: generates tests for every unordered
/// pair of `config.calls`, spreads the replay budget round-robin across the
/// pairs (shuffling each pair's tests deterministically), and replays every
/// selected test `schedules_per_test` times on real threads, comparing each
/// replay against the simulated kernel's results.
pub fn differential_campaign(config: &CampaignConfig) -> DifferentialReport {
    differential_campaign_observed(config, None)
}

/// [`differential_campaign`], optionally narrating itself into an
/// [`EventLog`]: one `pair-pool` event per call pair (corpus size, skips
/// and the per-pair shuffle seed), one `mismatch` event per disagreement
/// (test id plus both results), and a final `campaign-done` event carrying
/// the seed and budget. A failed run is reproducible from the exported
/// event stream alone — the seed and config knobs are all in it.
pub fn differential_campaign_observed(
    config: &CampaignConfig,
    events: Option<&EventLog>,
) -> DifferentialReport {
    differential_campaign_with(config, &HostReplayer { cores: 4 }, events)
}

/// The chaos leg of the campaign: the same seeded pair sweep replayed
/// through a [`ChaosReplayer`] under `plan`'s errno injection. Since the
/// reliable retry stack is observationally the raw kernel, every replay
/// must still linearize against the simulated sequential orders —
/// [`DifferentialReport::all_agree`] asserts the retry contract end to
/// end, on every faultable call TESTGEN reaches.
pub fn chaos_campaign(config: &CampaignConfig, plan: &ChaosPlan) -> DifferentialReport {
    let replayer = ChaosReplayer {
        cores: 4,
        plan: plan.clone(),
    };
    differential_campaign_with(config, &replayer, None)
}

/// [`differential_campaign_observed`] over an explicit replayer: the
/// generation, budgeting and linearization phases are replayer-agnostic,
/// so the plain host stack and the chaos stack share one campaign body.
pub fn differential_campaign_with(
    config: &CampaignConfig,
    replayer: &dyn ConcreteReplayer,
    events: Option<&EventLog>,
) -> DifferentialReport {
    let base_model = CommuterConfig::quick(&config.calls).model;
    let names = bucket_distinct_names(8);

    // Phase 1: generate per-pair test pools (and skip accounting). Every
    // pair's corpus is generated in full even when `max_tests` would cover
    // only a fraction — deliberately: the skip-reason histogram (which the
    // CI baseline gates on) and the seeded sampling are only meaningful
    // over the complete pool, and generation cost is paid once per pair.
    //
    // Generation work-steals over (pair, shape) units; pools are assembled
    // strictly in pair order on this thread, because each pair's shuffle
    // seed is derived from its position in `pools` — aggregation order IS
    // the determinism contract.
    struct PoolUnit {
        pair_index: usize,
        shape: scr_core::PairShape,
        model: scr_model::ModelConfig,
    }
    let mut pairs: Vec<(CallKind, CallKind)> = Vec::new();
    for (i, &call_a) in config.calls.iter().enumerate() {
        for &call_b in config.calls.iter().skip(i) {
            pairs.push((call_a, call_b));
        }
    }
    let mut units: Vec<PoolUnit> = Vec::new();
    let mut pair_ranges: Vec<std::ops::Range<usize>> = Vec::new();
    for (pair_index, &(call_a, call_b)) in pairs.iter().enumerate() {
        // Per-pair model specialisation: extension pairs get socket and
        // child-table bounds, pure-socket pairs shed the file-system
        // dimensions, fs-only pairs keep the base model unchanged.
        let model = pair_config(&base_model, call_a, call_b);
        let start = units.len();
        for shape in enumerate_shapes(call_a, call_b, &model) {
            units.push(PoolUnit {
                pair_index,
                shape,
                model,
            });
        }
        pair_ranges.push(start..units.len());
    }
    let mut pools: Vec<(CallKind, CallKind, Vec<ConcreteTest>, usize)> = Vec::new();
    let mut skip_reasons = SkipHistogram::new();
    let mut pending_pool: Vec<ConcreteTest> = Vec::new();
    let mut pending_skipped = 0usize;
    // A deterministic per-pair shuffle so the budget samples the pair's
    // shapes instead of always replaying the first ones.
    let finalize_pair = |pools: &mut Vec<(CallKind, CallKind, Vec<ConcreteTest>, usize)>,
                         mut pool: Vec<ConcreteTest>,
                         skipped: usize| {
        let (call_a, call_b) = pairs[pools.len()];
        let pair_seed = config
            .seed
            .wrapping_add((pools.len() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        shuffle(&mut pool, pair_seed);
        if let Some(events) = events {
            events.emit_kv(
                "pair-pool",
                vec![
                    ("call_a", call_a.name().into()),
                    ("call_b", call_b.name().into()),
                    ("generated", pool.len().into()),
                    ("skipped", skipped.into()),
                    ("pair_seed", pair_seed.into()),
                ],
            );
        }
        pools.push((call_a, call_b, pool, skipped));
    };
    claim_in_order(
        &units,
        effective_threads(config.threads),
        |_, unit| {
            let analysis = analyze_pair(&unit.shape, &unit.model);
            if analysis.cases.is_empty() {
                return None;
            }
            Some(generate_tests(
                &unit.shape,
                &analysis.cases,
                &unit.model,
                &names,
                config.max_assignments_per_case,
            ))
        },
        |idx, generated| {
            let pair = units[idx].pair_index;
            while pools.len() < pair {
                finalize_pair(
                    &mut pools,
                    std::mem::take(&mut pending_pool),
                    std::mem::take(&mut pending_skipped),
                );
            }
            if let Some(generated) = generated {
                pending_skipped += generated.skipped;
                for (reason, count) in &generated.skip_reasons {
                    *skip_reasons.entry(*reason).or_default() += count;
                }
                pending_pool.extend(generated.tests);
            }
            if idx + 1 == pair_ranges[pair].end {
                finalize_pair(
                    &mut pools,
                    std::mem::take(&mut pending_pool),
                    std::mem::take(&mut pending_skipped),
                );
            }
        },
    );
    // Pairs with no shapes at all (and any tail after the last unit) still
    // get their (empty) pool entries, in order.
    while pools.len() < pairs.len() {
        finalize_pair(&mut pools, Vec::new(), 0);
    }

    // Phase 2: spread the budget round-robin across the pairs.
    let mut selected: Vec<(usize, ConcreteTest)> = Vec::new();
    let mut cursors = vec![0usize; pools.len()];
    'budget: loop {
        let mut progressed = false;
        for (idx, (_, _, pool, _)) in pools.iter().enumerate() {
            if selected.len() >= config.max_tests {
                break 'budget;
            }
            if cursors[idx] < pool.len() {
                selected.push((idx, pool[cursors[idx]].clone()));
                cursors[idx] += 1;
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }

    // Phase 3: replay each selected test under several schedules.
    let factory = Sv6Factory { cores: 4 };
    let mut report = DifferentialReport {
        skip_reasons,
        ..DifferentialReport::default()
    };
    let mut replayed_per_pair = vec![0usize; pools.len()];
    for (idx, test) in &selected {
        // Both sequential orders define the legal outcomes: a racing replay
        // of a commutative pair must linearise to one of them (see
        // `DifferentialOutcome::agree`).
        let simulated = run_test_order(&factory, test, true).results;
        let simulated_ba = run_test_order(&factory, test, false).results;
        report.tests_run += 1;
        replayed_per_pair[*idx] += 1;
        for _ in 0..config.schedules_per_test.max(1) {
            let replayed = replayer.replay(test);
            report.replays_run += 1;
            if replayed != simulated && replayed != simulated_ba {
                if let Some(events) = events {
                    events.emit_kv(
                        "mismatch",
                        vec![
                            ("test_id", test.id.as_str().into()),
                            ("simulated", format!("{simulated:?}").into()),
                            ("replayed", format!("{replayed:?}").into()),
                        ],
                    );
                }
                report.mismatches.push(DifferentialOutcome {
                    test_id: test.id.clone(),
                    simulated: simulated.clone(),
                    simulated_ba: simulated_ba.clone(),
                    replayed,
                });
                break;
            }
        }
    }
    if let Some(events) = events {
        events.emit_kv(
            "campaign-done",
            vec![
                ("seed", config.seed.into()),
                ("max_tests", config.max_tests.into()),
                ("schedules_per_test", config.schedules_per_test.into()),
                (
                    "max_assignments_per_case",
                    config.max_assignments_per_case.into(),
                ),
                ("tests_run", report.tests_run.into()),
                ("replays_run", report.replays_run.into()),
                ("mismatches", report.mismatches.len().into()),
            ],
        );
    }
    report.pairs = pools
        .iter()
        .zip(&replayed_per_pair)
        .map(|((a, b, pool, skipped), replayed)| PairOutcome {
            calls: (*a, *b),
            generated: pool.len(),
            replayed: *replayed,
            skipped: *skipped,
        })
        .collect();
    report
}

/// The §4 extension leg of the campaign: the TESTGEN-generated extension
/// corpus from [`crate::fig6`] (socket queues and the process table are
/// modelled symbolically), replayed on real threads under several
/// schedules and cross-checked by linearization plus message conservation.
#[derive(Clone, Debug)]
pub struct ExtCampaignReport {
    /// Per-test verdicts.
    pub outcomes: Vec<crate::fig6::ExtOutcome>,
    /// Total racing replays performed.
    pub replays_run: usize,
    /// Human-readable failures; empty when the cross-check passed.
    pub failures: Vec<String>,
}

impl ExtCampaignReport {
    /// Did every extension test agree with the simulated kernel?
    pub fn all_agree(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Runs the extension corpus `schedules` times per test on real threads,
/// cross-checking conflicts, linearizability and message conservation
/// against the simulated sv6 kernel.
pub fn ext_campaign(cores: usize, schedules: usize) -> ExtCampaignReport {
    let outcomes = crate::fig6::run_ext_fig6(cores, schedules);
    let failures = crate::fig6::ext_failures(&outcomes);
    ExtCampaignReport {
        replays_run: outcomes.len() * schedules.max(1),
        outcomes,
        failures,
    }
}

/// Cross-checks an explicit batch of tests (single schedule each).
pub fn run_differential(tests: &[ConcreteTest]) -> DifferentialReport {
    let factory = Sv6Factory { cores: 4 };
    let replayer = HostReplayer { cores: 4 };
    let outcomes = differential_check(&factory, &replayer, tests);
    DifferentialReport {
        tests_run: outcomes.len(),
        replays_run: outcomes.len(),
        mismatches: outcomes.into_iter().filter(|o| !o.agree()).collect(),
        ..DifferentialReport::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scr_kernel::api::{OpenFlags, SysOp};
    use scr_obs::Json;

    #[test]
    fn manual_commutative_pair_agrees() {
        let test = ConcreteTest {
            id: "manual_create_different".into(),
            calls: (CallKind::Open, CallKind::Open),
            setup: vec![],
            op_a: SysOp::Open {
                pid: 0,
                name: "alpha".into(),
                flags: OpenFlags::create(),
            },
            op_b: SysOp::Open {
                pid: 1,
                name: "bravo".into(),
                flags: OpenFlags::create(),
            },
            procs: 2,
        };
        let report = run_differential(std::slice::from_ref(&test));
        assert_eq!(report.tests_run, 1);
        assert!(report.all_agree(), "{}", report.describe_mismatches());
    }

    #[test]
    fn stat_unlink_sample_has_no_mismatches() {
        let report = differential_sample(&[CallKind::Stat, CallKind::Unlink], 24);
        assert!(report.tests_run > 0);
        assert!(report.all_agree(), "{}", report.describe_mismatches());
    }

    #[test]
    fn campaign_budget_is_spread_round_robin_across_pairs() {
        // Three calls → six unordered pairs. With a budget far below the
        // total generated corpus, every pair that has tests must still get
        // replays (the old `break 'outer` filled the budget entirely from
        // the first pairs).
        let config = CampaignConfig {
            schedules_per_test: 1,
            max_tests: 18,
            ..CampaignConfig::new(&[CallKind::Stat, CallKind::Unlink, CallKind::Link])
        };
        let report = differential_campaign(&config);
        assert_eq!(report.tests_run, 18);
        assert!(report.all_agree(), "{}", report.describe_mismatches());
        for pair in &report.pairs {
            assert!(
                pair.generated == 0 || pair.replayed > 0,
                "pair {:?} generated {} tests but replayed none",
                pair.calls,
                pair.generated
            );
        }
        // The budget must not be exhausted by one pair.
        let max_per_pair = report.pairs.iter().map(|p| p.replayed).max().unwrap();
        assert!(max_per_pair < 18);
    }

    #[test]
    fn campaign_is_deterministic_for_a_seed() {
        let config = CampaignConfig {
            schedules_per_test: 1,
            max_tests: 10,
            ..CampaignConfig::new(&[CallKind::Stat, CallKind::Unlink])
        };
        let a = differential_campaign(&config);
        let b = differential_campaign(&config);
        assert_eq!(a.tests_run, b.tests_run);
        assert_eq!(
            a.pairs.iter().map(|p| p.replayed).collect::<Vec<_>>(),
            b.pairs.iter().map(|p| p.replayed).collect::<Vec<_>>()
        );
    }

    #[test]
    fn parallel_pool_generation_selects_the_same_corpus() {
        // Per-pair shuffle seeds are derived from pool order, so a
        // multi-worker phase 1 must yield the exact pools — and therefore
        // the exact budget selection — of a sequential run.
        let config = CampaignConfig {
            schedules_per_test: 1,
            max_tests: 12,
            ..CampaignConfig::new(&[CallKind::Stat, CallKind::Unlink, CallKind::Link])
        };
        let sequential = differential_campaign(&config);
        let parallel = differential_campaign(&CampaignConfig {
            threads: 3,
            ..config
        });
        assert_eq!(sequential.tests_run, parallel.tests_run);
        assert_eq!(sequential.skip_reasons, parallel.skip_reasons);
        for (s, p) in sequential.pairs.iter().zip(&parallel.pairs) {
            assert_eq!(s.calls, p.calls);
            assert_eq!(s.generated, p.generated);
            assert_eq!(s.replayed, p.replayed);
            assert_eq!(s.skipped, p.skipped);
        }
        assert!(parallel.all_agree(), "{}", parallel.describe_mismatches());
    }

    #[test]
    fn ext_campaign_agrees_under_several_schedules() {
        let report = ext_campaign(4, 2);
        assert!(!report.outcomes.is_empty());
        assert_eq!(report.replays_run, report.outcomes.len() * 2);
        assert!(report.all_agree(), "{}", report.failures.join("\n"));
    }

    #[test]
    fn observed_campaign_narrates_pools_and_summary() {
        let config = CampaignConfig {
            schedules_per_test: 1,
            max_tests: 8,
            ..CampaignConfig::new(&[CallKind::Stat, CallKind::Unlink])
        };
        let events = EventLog::new();
        let report = differential_campaign_observed(&config, Some(&events));
        assert!(report.all_agree(), "{}", report.describe_mismatches());
        // Two calls → three unordered pairs, one pool event each.
        assert_eq!(events.of_kind("pair-pool").len(), 3);
        let done = events.of_kind("campaign-done");
        assert_eq!(done.len(), 1);
        let seed = done[0]
            .fields
            .iter()
            .find(|(k, _)| k == "seed")
            .map(|(_, v)| v.clone());
        assert_eq!(seed, Some(Json::U64(config.seed)));
    }

    #[test]
    fn chaos_campaign_linearizes_under_an_errno_storm() {
        // Covers all four fault kinds: open faults in the fs pairs, send
        // and recv faults in the socket pairs.
        let config = CampaignConfig {
            schedules_per_test: 2,
            max_tests: 18,
            ..CampaignConfig::new(&[
                CallKind::Open,
                CallKind::Unlink,
                CallKind::Send,
                CallKind::Recv,
            ])
        };
        let report = chaos_campaign(&config, &ChaosPlan::errno_storm(29));
        assert!(report.tests_run > 0);
        assert!(report.all_agree(), "{}", report.describe_mismatches());
    }

    #[test]
    fn chaos_campaign_linearizes_under_delivery_delay() {
        let config = CampaignConfig {
            schedules_per_test: 1,
            max_tests: 10,
            ..CampaignConfig::new(&[CallKind::Send, CallKind::Recv])
        };
        let report = chaos_campaign(&config, &ChaosPlan::delayed_delivery(31));
        assert!(report.tests_run > 0);
        assert!(report.all_agree(), "{}", report.describe_mismatches());
    }

    #[test]
    fn chaos_replayer_with_disabled_plan_matches_host_replayer() {
        let config = CampaignConfig {
            schedules_per_test: 1,
            max_tests: 8,
            ..CampaignConfig::new(&[CallKind::Stat, CallKind::Unlink])
        };
        let plain = differential_campaign(&config);
        let chaos = chaos_campaign(&config, &ChaosPlan::none());
        assert!(plain.all_agree() && chaos.all_agree());
        assert_eq!(plain.tests_run, chaos.tests_run);
        assert_eq!(plain.replays_run, chaos.replays_run);
    }

    #[test]
    fn campaign_replays_each_test_under_every_schedule() {
        let config = CampaignConfig {
            schedules_per_test: 3,
            max_tests: 6,
            ..CampaignConfig::new(&[CallKind::Stat, CallKind::Unlink])
        };
        let report = differential_campaign(&config);
        assert!(report.all_agree(), "{}", report.describe_mismatches());
        assert_eq!(report.replays_run, report.tests_run * 3);
    }

    #[test]
    fn generated_triples_linearize_on_real_threads() {
        use scr_core::{
            analyze_triple, enumerate_triple_shapes, generate_triple_tests, triple_config,
        };
        let cfg = triple_config();
        let names: Vec<String> = (0..4).map(|i| format!("f{i}")).collect();
        let shapes =
            enumerate_triple_shapes((CallKind::Lseek, CallKind::Read, CallKind::Write), &cfg);
        let same_fd = shapes
            .iter()
            .find(|s| s.slots.iter().all(|sl| sl.fds == vec![0]))
            .expect("all-same-descriptor shape");
        let analysis = analyze_triple(same_fd, &cfg);
        let generated = generate_triple_tests(same_fd, &analysis.cases, &cfg, &names, 2);
        assert!(!generated.tests.is_empty(), "triple corpus must exist");
        for test in generated.tests.iter().take(8) {
            let host = replay_triple_host(test, 4);
            assert!(
                triple_linearizes(test, &host),
                "host triple replay of {} matches no sequential order: {host:?}",
                test.id
            );
        }
    }
}
