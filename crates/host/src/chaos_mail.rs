//! The chaos-hardened §7.3 mail pipeline: the communicating-threads
//! pipeline of [`crate::workloads::mail_pipeline`], run over a
//! fault-injecting kernel and wrapped in the recovery machinery a real
//! mail system would need — bounded retries with backoff, a dead-letter
//! mailbox for messages whose budget runs out, and a supervisor that
//! detects scheduled qman deaths, reaps their orphaned delivery helpers,
//! re-drives their in-flight envelopes, and restarts the slot.
//!
//! The accounting contract is the whole point: under **any**
//! [`ChaosPlan`] — errno storms, delivery holds, qman crashes mid-step —
//! every announced message ends up *exactly once* in either its mailbox
//! or the dead-letter box. `lost` and `duplicates` stay zero; chaos is
//! allowed to cost latency and deliveries to [`DEAD_LETTER`], never
//! messages.
//!
//! The kernel stack, innermost first:
//!
//! ```text
//! HostKernel → (ObservedKernel) → FaultyKernel → ReliableKernel
//! ```
//!
//! The observed layer sits *inside* the fault layer so the syscall
//! recorder counts only calls that actually reached the kernel — an
//! injected failure never happened as far as the ledger's syscall
//! accounting is concerned. Two [`ReliableKernel`] surfaces share the one
//! fault layer: a *bounded* one (the per-message retry budget) drives the
//! qman delivery stages, and a *never-give-up* one drives the paths that
//! must not fail — enqueue, dead-letter salvage, orphan reaping, and the
//! supervisor's re-drive — because for those, giving up *is* losing mail.

use crate::kernel::{HostKernel, HostMode};
use crate::workloads::MailTelemetry;
use scr_chaos::kernel::{ChaosTelemetry, FaultyKernel, ReliableKernel};
use scr_chaos::plan::{ChaosPlan, CrashPhase};
use scr_kernel::api::{OpenFlags, Pid, SyscallApi};
use scr_kernel::mail::{
    Envelope, MailConfig, MailServer, MailStageObserver, MailTopology, NoMailObs,
};
use scr_kernel::retry::{Backoff, RetryPolicy};
use scr_obs::ObservedKernel;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError, Sender};
use std::sync::Mutex;
use std::time::Duration;

/// Configuration of one chaos pipeline run.
#[derive(Clone, Debug)]
pub struct ChaosMailConfig {
    /// Kernel sharing mode (sv6-style or giant-locked).
    pub mode: HostMode,
    /// §7.3 API family (descriptor allocation, socket order, spawn).
    pub config: MailConfig,
    /// mail-enqueue threads, on cores `0..enqueuers`.
    pub enqueuers: usize,
    /// mail-qman threads, on cores `enqueuers..enqueuers+qmans`; the
    /// supervisor takes one extra core after them.
    pub qmans: usize,
    /// Messages each enqueuer offers.
    pub messages_per_enqueuer: usize,
    /// The fault plan (use [`ChaosPlan::none`] for a fault-free baseline).
    pub plan: ChaosPlan,
    /// The bounded per-call retry budget of the qman delivery stages;
    /// exhaustion dead-letters the message.
    pub retry: RetryPolicy,
    /// Overload shedding: an enqueuer drops (sheds) a message instead of
    /// announcing it while `announced - accounted` is at this bound.
    /// `None` queues without bound.
    pub max_backlog: Option<usize>,
}

impl ChaosMailConfig {
    /// A 2×2 pipeline, 25 messages per enqueuer, commutative APIs on the
    /// sv6-style kernel, transient retry budget, no shedding.
    pub fn new(plan: ChaosPlan) -> ChaosMailConfig {
        ChaosMailConfig {
            mode: HostMode::Sv6,
            config: MailConfig::CommutativeApis,
            enqueuers: 2,
            qmans: 2,
            messages_per_enqueuer: 25,
            plan,
            retry: RetryPolicy::transient(),
            max_backlog: None,
        }
    }
}

/// The extended exactly-once ledger of a chaos run. The plain pipeline's
/// `delivered == enqueued` splits three ways — delivered, dead-lettered,
/// shed — and the invariant becomes [`ChaosMailReport::accounted`].
#[derive(Clone, Debug)]
pub struct ChaosMailReport {
    /// Messages the enqueuers were asked to send.
    pub offered: usize,
    /// Messages actually announced (offered minus shed).
    pub enqueued: usize,
    /// Messages that reached their addressed mailbox.
    pub delivered: usize,
    /// Messages that reached the dead-letter mailbox instead.
    pub dead_lettered: usize,
    /// Messages dropped at admission by the backlog bound.
    pub shed: usize,
    /// Announced bodies found in *neither* mailbox. Zero under any plan.
    pub lost: usize,
    /// Bodies found more times than announced. Zero under any plan.
    pub duplicates: usize,
    /// Mailbox files whose body was never announced. Zero under any plan.
    pub corrupt: usize,
    /// Scheduled qman deaths that fired.
    pub crashes: usize,
    /// Qman incarnations the supervisor started after a death.
    pub restarts: usize,
    /// In-flight envelopes the supervisor re-announced.
    pub redriven: usize,
    /// Orphaned delivery helpers the supervisor reaped.
    pub orphans_reaped: usize,
    /// Transient errnos the fault layer injected.
    pub injected_faults: u64,
    /// `recv` polls eaten by delivery holds.
    pub delayed_polls: u64,
    /// Descriptors still open in any process table after teardown.
    pub leaked_fds: usize,
}

impl ChaosMailReport {
    /// The chaos exactly-once contract: every announced message landed in
    /// exactly one of {its mailbox, dead-letter}, nothing was lost,
    /// duplicated, corrupted, or leaked, and shedding accounts for the
    /// rest of the offer.
    pub fn accounted(&self) -> bool {
        self.delivered + self.dead_lettered == self.enqueued
            && self.enqueued + self.shed == self.offered
            && self.lost == 0
            && self.duplicates == 0
            && self.corrupt == 0
            && self.leaked_fds == 0
    }
}

/// Everything a dying qman hands the supervisor about its in-flight step.
/// Fields are progressively populated along the step: a crash after recv
/// has only the envelope name; after spawn it holds the parsed envelope
/// and the helper pid; after deliver also the mailbox file.
struct QmanWreck {
    qman: usize,
    generation: u32,
    shard: usize,
    env_name: Option<String>,
    envelope: Option<Envelope>,
    helper: Option<Pid>,
    delivered: Option<String>,
}

/// Shared run state: the counters every thread updates and the shard
/// ownership map the supervisor rewrites when a qman dies.
struct Ledger {
    announced: AtomicUsize,
    accounted: AtomicUsize,
    enq_done: AtomicUsize,
    shed: AtomicUsize,
    crashes: AtomicUsize,
    restarts: AtomicUsize,
    redriven: AtomicUsize,
    orphans: AtomicUsize,
    announced_bodies: Mutex<Vec<String>>,
    delivered_names: Mutex<Vec<String>>,
    dead_letter_names: Mutex<Vec<String>>,
    shard_owner: Vec<AtomicUsize>,
}

impl Ledger {
    fn new(topology: &MailTopology) -> Ledger {
        Ledger {
            announced: AtomicUsize::new(0),
            accounted: AtomicUsize::new(0),
            enq_done: AtomicUsize::new(0),
            shed: AtomicUsize::new(0),
            crashes: AtomicUsize::new(0),
            restarts: AtomicUsize::new(0),
            redriven: AtomicUsize::new(0),
            orphans: AtomicUsize::new(0),
            announced_bodies: Mutex::new(Vec::new()),
            delivered_names: Mutex::new(Vec::new()),
            dead_letter_names: Mutex::new(Vec::new()),
            shard_owner: (0..topology.notify_shards)
                .map(|s| AtomicUsize::new(topology.qman_of_shard(s)))
                .collect(),
        }
    }

    /// The run is over: every enqueuer finished and every announced
    /// message is accounted (delivered or dead-lettered). Announcement
    /// *precedes* the spool write, so `accounted` can never outrun
    /// `announced` and observe a spurious finish.
    fn done(&self, enqueuers: usize) -> bool {
        self.enq_done.load(Ordering::Acquire) == enqueuers
            && self.accounted.load(Ordering::Acquire) >= self.announced.load(Ordering::Acquire)
    }

    fn account_delivery(&self, file: String) {
        self.delivered_names.lock().unwrap().push(file);
        self.accounted.fetch_add(1, Ordering::Release);
    }

    fn account_dead_letter(&self, file: String) {
        self.dead_letter_names.lock().unwrap().push(file);
        self.accounted.fetch_add(1, Ordering::Release);
    }

    /// A crash fired: count it and hand the wreck to the supervisor. The
    /// wrecked envelope is announced but unaccounted, so the supervisor
    /// cannot have observed `done` and exited before this send.
    fn wreck(&self, tx: &Mutex<Sender<QmanWreck>>, wreck: QmanWreck) {
        self.crashes.fetch_add(1, Ordering::Relaxed);
        tx.lock()
            .unwrap()
            .send(wreck)
            .expect("supervisor outlives every qman incarnation");
    }
}

/// Runs the full chaos pipeline under `cfg` and returns the extended
/// ledger. With `Some(telemetry)` every real syscall is recorded, stages
/// become trace spans, and the chaos layer's own counters
/// (`chaos.injected.*`, `chaos.retries`, `chaos.backoff_sleep_ns`, ...)
/// are registered on the same registry; the registry must be sized for
/// `cfg.enqueuers + cfg.qmans + 1` cores (the supervisor works too).
pub fn mail_pipeline_chaos(
    cfg: &ChaosMailConfig,
    telemetry: Option<&MailTelemetry>,
) -> ChaosMailReport {
    let enqueuers = cfg.enqueuers.max(1);
    let qmans = cfg.qmans.max(1);
    let sup_core = enqueuers + qmans;
    let cores = sup_core + 1;
    let offered = enqueuers * cfg.messages_per_enqueuer;

    let kernel = HostKernel::new(cores, cfg.mode);
    let client = kernel.new_process();
    let qman_pid = kernel.new_process();

    let observed = telemetry.map(|t| ObservedKernel::new(&kernel, t.syscalls.clone()));
    let base: &(dyn SyscallApi + Sync) = match observed.as_ref() {
        Some(o) => o,
        None => &kernel,
    };
    let stages: &(dyn MailStageObserver + Sync) = match telemetry {
        Some(t) => t,
        None => &NoMailObs,
    };
    let mut faulty = FaultyKernel::new(base, cfg.plan.clone(), cores);
    if let Some(t) = telemetry {
        faulty = faulty.with_telemetry(ChaosTelemetry::new(&t.registry));
    }
    let bounded = ReliableKernel::new(&faulty, cfg.retry.with_seed(cfg.plan.seed));
    let persistent = ReliableKernel::new(&faulty, RetryPolicy::spin().with_seed(cfg.plan.seed ^ 1));

    let topology = MailTopology::new(enqueuers, qmans);
    let shards = topology.notify_shards;
    let server = MailServer::with_topology(&bounded, cfg.config, topology, cores)
        .expect("socket creation is unfaultable");
    // The never-give-up surface over the same sockets and spool.
    let safe = server.view(&persistent);

    let ledger = Ledger::new(&topology);
    let (tx, rx) = mpsc::channel::<QmanWreck>();
    let tx = Mutex::new(tx);

    let plan = &cfg.plan;
    let (ledger_ref, tx_ref) = (&ledger, &tx);
    let (server_ref, safe_ref, persistent_ref) = (&server, &safe, &persistent);
    let poll_policy = RetryPolicy::spin().with_seed(plan.seed ^ 2);

    // Budget exhaustion on a delivery stage: the spool is intact (injected
    // failures have no side effects), so salvage through the
    // never-give-up view and account the message to the dead-letter box.
    let dead_letter = move |core: usize, envelope: &Envelope| {
        let file = safe_ref
            .dead_letter(core, qman_pid, envelope)
            .expect("dead-letter delivery never gives up");
        safe_ref
            .cleanup_spool(core, qman_pid, envelope, stages)
            .expect("close/unlink are unfaultable");
        ledger_ref.account_dead_letter(file);
    };

    // One qman incarnation. Runs on the slot's core, polls the shards the
    // ownership map currently assigns it, and dies where the plan says.
    let qman_body = move |q: usize, generation: u32| {
        let core = enqueuers + q;
        let crash = plan.crash_for(q, generation);
        let fires = |phase: CrashPhase, steps: u64| {
            crash.is_some_and(|c| c.phase == phase && steps >= c.after_steps)
        };
        let mut steps: u64 = 0;
        let mut idle = Backoff::new(poll_policy, ((q as u64) << 32) | u64::from(generation));
        'run: loop {
            if ledger_ref.done(enqueuers) {
                return;
            }
            for shard in 0..shards {
                if ledger_ref.shard_owner[shard].load(Ordering::Relaxed) != q {
                    continue;
                }
                let env_name = match server_ref.recv_notification(core, shard) {
                    Ok(name) => name,
                    // Genuinely empty, or an injected storm outlasted the
                    // bounded budget — nothing was dequeued either way, so
                    // the shard is simply polled again next round.
                    Err(_) => continue,
                };
                if fires(CrashPhase::AfterRecv, steps) {
                    ledger_ref.wreck(
                        tx_ref,
                        QmanWreck {
                            qman: q,
                            generation,
                            shard,
                            env_name: Some(env_name),
                            envelope: None,
                            helper: None,
                            delivered: None,
                        },
                    );
                    return;
                }
                let envelope =
                    match server_ref.read_envelope(core, qman_pid, &env_name, shard, stages) {
                        Ok(env) => env,
                        Err(_) => {
                            let env = safe_ref
                                .read_envelope(core, qman_pid, &env_name, shard, stages)
                                .expect("spool re-read never gives up");
                            dead_letter(core, &env);
                            steps += 1;
                            idle.reset();
                            continue 'run;
                        }
                    };
                let helper = match server_ref.spawn_helper(core, qman_pid, &envelope, stages) {
                    Ok(h) => h,
                    Err(_) => {
                        dead_letter(core, &envelope);
                        steps += 1;
                        idle.reset();
                        continue 'run;
                    }
                };
                if fires(CrashPhase::AfterSpawn, steps) {
                    ledger_ref.wreck(
                        tx_ref,
                        QmanWreck {
                            qman: q,
                            generation,
                            shard,
                            env_name: None,
                            envelope: Some(envelope),
                            helper: Some(helper),
                            delivered: None,
                        },
                    );
                    return;
                }
                let file = match server_ref.deliver_as_helper(core, helper, &envelope, stages) {
                    Ok(f) => f,
                    Err(_) => {
                        safe_ref
                            .reap_helper(core, qman_pid, helper, stages)
                            .expect("wait is unfaultable");
                        dead_letter(core, &envelope);
                        steps += 1;
                        idle.reset();
                        continue 'run;
                    }
                };
                if fires(CrashPhase::AfterDeliver, steps) {
                    ledger_ref.wreck(
                        tx_ref,
                        QmanWreck {
                            qman: q,
                            generation,
                            shard,
                            env_name: None,
                            envelope: Some(envelope),
                            helper: Some(helper),
                            delivered: Some(file),
                        },
                    );
                    return;
                }
                server_ref
                    .reap_helper(core, qman_pid, helper, stages)
                    .expect("wait is unfaultable");
                server_ref
                    .cleanup_spool(core, qman_pid, &envelope, stages)
                    .expect("close/unlink are unfaultable");
                if let Some(t) = telemetry {
                    t.delivered.inc(core);
                }
                ledger_ref.account_delivery(file);
                steps += 1;
                idle.reset();
                continue 'run;
            }
            // Every owned shard came up empty: back off instead of
            // hammering the sockets.
            if let Some(t) = telemetry {
                t.eagain_retries.inc(core);
                t.yield_spins.inc(core);
            }
            idle.wait();
        }
    };

    std::thread::scope(|scope| {
        for e in 0..enqueuers {
            scope.spawn(move || {
                for i in 0..cfg.messages_per_enqueuer {
                    let mailbox = format!("box{e}");
                    let body = format!("body-{e}-{i}");
                    if let Some(bound) = cfg.max_backlog {
                        let backlog = ledger_ref
                            .announced
                            .load(Ordering::Acquire)
                            .saturating_sub(ledger_ref.accounted.load(Ordering::Acquire));
                        if backlog >= bound {
                            ledger_ref.shed.fetch_add(1, Ordering::Relaxed);
                            continue;
                        }
                    }
                    // Announce before spooling so `accounted >= announced`
                    // can never be observed with this message in flight.
                    ledger_ref
                        .announced_bodies
                        .lock()
                        .unwrap()
                        .push(body.clone());
                    ledger_ref.announced.fetch_add(1, Ordering::Release);
                    safe_ref
                        .enqueue_observed(e, client, &mailbox, body.as_bytes(), stages)
                        .expect("enqueue never gives up");
                    if let Some(t) = telemetry {
                        t.enqueued.inc(e);
                    }
                }
                ledger_ref.enq_done.fetch_add(1, Ordering::Release);
            });
        }
        for q in 0..qmans {
            scope.spawn(move || qman_body(q, 0));
        }
        // The supervisor: drains wrecks, salvages their in-flight state,
        // reassigns the dead slot's shards, and restarts the slot.
        scope.spawn(move || loop {
            match rx.recv_timeout(Duration::from_millis(1)) {
                Ok(w) => {
                    // Hand the dead incarnation's shards to the survivors
                    // until the restarted incarnation reclaims its own.
                    if qmans > 1 {
                        let mut next = (w.qman + 1) % qmans;
                        for owner in &ledger_ref.shard_owner {
                            if owner.load(Ordering::Relaxed) == w.qman {
                                owner.store(next, Ordering::Relaxed);
                                next = (next + 1) % qmans;
                                if next == w.qman {
                                    next = (next + 1) % qmans;
                                }
                            }
                        }
                    }
                    // Reap the orphaned delivery helper before anything
                    // else — an unreaped helper is a descriptor-table leak
                    // (the teardown leak check would catch it).
                    if let Some(helper) = w.helper {
                        safe_ref
                            .reap_helper(sup_core, qman_pid, helper, stages)
                            .expect("orphan reap never gives up");
                        ledger_ref.orphans.fetch_add(1, Ordering::Relaxed);
                    }
                    match (w.delivered, w.envelope) {
                        // Crashed after delivery: the mailbox file exists,
                        // so finish cleanup and account it — re-driving
                        // would duplicate.
                        (Some(file), Some(env)) => {
                            safe_ref
                                .cleanup_spool(sup_core, qman_pid, &env, stages)
                                .expect("close/unlink are unfaultable");
                            if let Some(t) = telemetry {
                                t.delivered.inc(sup_core);
                            }
                            ledger_ref.account_delivery(file);
                        }
                        // Crashed with the envelope parsed but the message
                        // undelivered: drop the wreck's descriptor and
                        // re-announce the envelope on its shard.
                        (None, Some(env)) => {
                            persistent_ref
                                .close(sup_core, qman_pid, env.msg_fd)
                                .expect("close is unfaultable");
                            persistent_ref
                                .send(
                                    sup_core,
                                    safe_ref.shard_socket(env.shard),
                                    env.env_name.as_bytes(),
                                )
                                .expect("re-drive send never gives up");
                            ledger_ref.redriven.fetch_add(1, Ordering::Relaxed);
                        }
                        // Crashed holding only the notification: put it
                        // back on the wire.
                        (None, None) => {
                            let name = w.env_name.expect("recv-phase wreck carries the name");
                            persistent_ref
                                .send(sup_core, safe_ref.shard_socket(w.shard), name.as_bytes())
                                .expect("re-drive send never gives up");
                            ledger_ref.redriven.fetch_add(1, Ordering::Relaxed);
                        }
                        (Some(_), None) => unreachable!("a delivered wreck holds its envelope"),
                    }
                    // Restart the slot: the next incarnation owns the
                    // slot's topology shards again.
                    for shard in topology.shards_of_qman(w.qman) {
                        ledger_ref.shard_owner[shard].store(w.qman, Ordering::Relaxed);
                    }
                    ledger_ref.restarts.fetch_add(1, Ordering::Relaxed);
                    let (q, generation) = (w.qman, w.generation + 1);
                    scope.spawn(move || qman_body(q, generation));
                }
                Err(RecvTimeoutError::Timeout) => {
                    if ledger_ref.done(enqueuers) {
                        return;
                    }
                }
                Err(RecvTimeoutError::Disconnected) => return,
            }
        });
    });

    // Verification reads everything back through the *raw* kernel: the
    // ledger below reflects what is actually on disk, not what the chaos
    // layer believes happened.
    let read_back = |names: &[String]| -> Vec<String> {
        names
            .iter()
            .map(|name| {
                let fd = kernel
                    .open(0, qman_pid, name, OpenFlags::plain())
                    .expect("accounted file must exist");
                let body = kernel.pread(0, qman_pid, fd, 4096, 0).expect("read body");
                kernel.close(0, qman_pid, fd).expect("close");
                String::from_utf8_lossy(&body).into_owned()
            })
            .collect()
    };
    let delivered_names = ledger.delivered_names.into_inner().unwrap();
    let dead_letter_names = ledger.dead_letter_names.into_inner().unwrap();
    let mut got = read_back(&delivered_names);
    got.extend(read_back(&dead_letter_names));
    let want = ledger.announced_bodies.into_inner().unwrap();
    let count = |items: &[String]| {
        let mut map = std::collections::BTreeMap::new();
        for item in items {
            *map.entry(item.clone()).or_insert(0usize) += 1;
        }
        map
    };
    let (got_counts, want_counts) = (count(&got), count(&want));
    let duplicates = got_counts
        .iter()
        .filter(|(body, _)| want_counts.contains_key(*body))
        .map(|(body, n)| n.saturating_sub(want_counts[body]))
        .sum();
    let lost = want_counts
        .iter()
        .map(|(body, n)| n.saturating_sub(*got_counts.get(body).unwrap_or(&0)))
        .sum();
    let corrupt = got
        .iter()
        .filter(|body| !want_counts.contains_key(*body))
        .count();

    // Teardown leak check: after the run (and the read-back above, which
    // closes what it opens) no process — client, qman, or any helper the
    // run ever spawned — may still hold a descriptor.
    let leaked_fds = (0..kernel.process_count())
        .map(|pid| kernel.open_fd_count(pid).unwrap_or(0))
        .sum();

    ChaosMailReport {
        offered,
        enqueued: want.len(),
        delivered: delivered_names.len(),
        dead_lettered: dead_letter_names.len(),
        shed: ledger.shed.into_inner(),
        lost,
        duplicates,
        corrupt,
        crashes: ledger.crashes.into_inner(),
        restarts: ledger.restarts.into_inner(),
        redriven: ledger.redriven.into_inner(),
        orphans_reaped: ledger.orphans.into_inner(),
        injected_faults: faulty.injected_total(),
        delayed_polls: faulty.delayed_polls_total(),
        leaked_fds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_plan_delivers_everything_normally() {
        let report = mail_pipeline_chaos(&ChaosMailConfig::new(ChaosPlan::none()), None);
        assert!(report.accounted(), "{report:?}");
        assert_eq!(report.delivered, report.offered);
        assert_eq!(report.dead_lettered, 0);
        assert_eq!(report.crashes, 0);
        assert_eq!(report.injected_faults, 0);
    }

    #[test]
    fn errno_storm_loses_nothing_in_either_api_family() {
        for config in [MailConfig::CommutativeApis, MailConfig::RegularApis] {
            let mut cfg = ChaosMailConfig::new(ChaosPlan::errno_storm(11));
            cfg.config = config;
            let report = mail_pipeline_chaos(&cfg, None);
            assert!(report.accounted(), "{config:?}: {report:?}");
            assert!(report.injected_faults > 0, "{config:?}: storm must inject");
        }
    }

    #[test]
    fn delayed_delivery_holds_messages_but_loses_none() {
        let report =
            mail_pipeline_chaos(&ChaosMailConfig::new(ChaosPlan::delayed_delivery(7)), None);
        assert!(report.accounted(), "{report:?}");
        assert!(
            report.delayed_polls > 0,
            "plan must start holds: {report:?}"
        );
    }

    #[test]
    fn qman_crashes_recover_through_all_three_phases() {
        // One qman slot so the crash schedule (which targets slot 0) is
        // guaranteed to see enough traffic to fire all three deaths.
        let mut cfg = ChaosMailConfig::new(ChaosPlan::qman_crash(3));
        cfg.qmans = 1;
        cfg.messages_per_enqueuer = 30;
        let report = mail_pipeline_chaos(&cfg, None);
        assert!(report.accounted(), "{report:?}");
        assert_eq!(report.crashes, 3, "{report:?}");
        assert_eq!(report.restarts, 3, "{report:?}");
        // AfterRecv and AfterSpawn re-drive; AfterSpawn and AfterDeliver
        // orphan a helper.
        assert_eq!(report.redriven, 2, "{report:?}");
        assert_eq!(report.orphans_reaped, 2, "{report:?}");
    }

    #[test]
    fn crash_reassignment_keeps_multi_qman_runs_accounted() {
        let mut cfg = ChaosMailConfig::new(ChaosPlan::qman_crash(5));
        cfg.enqueuers = 3;
        cfg.qmans = 3;
        cfg.messages_per_enqueuer = 20;
        let report = mail_pipeline_chaos(&cfg, None);
        assert!(report.accounted(), "{report:?}");
        assert_eq!(report.restarts, report.crashes, "{report:?}");
    }

    #[test]
    fn zero_backlog_bound_sheds_the_whole_offer() {
        let mut cfg = ChaosMailConfig::new(ChaosPlan::none());
        cfg.max_backlog = Some(0);
        let report = mail_pipeline_chaos(&cfg, None);
        assert!(report.accounted(), "{report:?}");
        assert_eq!(report.shed, report.offered);
        assert_eq!(report.enqueued, 0);
        assert_eq!(report.delivered, 0);
    }

    #[test]
    fn storm_with_tiny_budget_dead_letters_rather_than_loses() {
        // A harsh storm against a one-attempt budget: many stages exhaust
        // immediately, so the dead-letter path must carry the load.
        let mut cfg = ChaosMailConfig::new(ChaosPlan::new(
            13,
            scr_chaos::plan::FaultSpec::uniform(400_000),
            scr_chaos::plan::DelaySpec::default(),
            vec![],
        ));
        cfg.retry = RetryPolicy::transient().with_max_retries(1);
        let report = mail_pipeline_chaos(&cfg, None);
        assert!(report.accounted(), "{report:?}");
        assert!(
            report.dead_lettered > 0,
            "a 40% storm against one retry must dead-letter: {report:?}"
        );
    }
}
