//! # scr-host — the real-threads execution backend
//!
//! Everything else in this workspace runs on the *simulated* machine of
//! `scr-mtrace`, where "cores" are labels and conflicts are counted, not
//! paid for. This crate reproduces the paper's hardware-validation leg
//! (§7, Figure 7): the same kernel design patterns, assembled from the
//! host-atomics twins in `scr_scalable::real`, executed by actual OS
//! threads, timed with a wall clock.
//!
//! * [`kernel::HostKernel`] is a thread-safe implementation of the whole
//!   `scr_kernel::api::SyscallApi` surface — the 18 modelled `SysOp` calls
//!   plus the §4 extensions (datagram sockets in both orderings,
//!   `fork`/`posix_spawn`/`wait`). It comes in two configurations:
//!   [`kernel::HostMode::Sv6`] uses the lock-striped directory, per-core
//!   inode allocation, Refcache-style link counts, per-core socket queues
//!   and a lock-free process table; [`kernel::HostMode::Linuxlike`] runs
//!   the same code under one global kernel lock, the collapsing baseline.
//! * [`harness::LoadHarness`] spawns N OS threads, partitions work per
//!   thread ("core"), and measures real operations per second per core.
//! * [`workloads`] ports the Figure-7 workloads — statbench, openbench and
//!   the §7.3 mail server (driven through the real
//!   `scr_kernel::mail::MailServer`, as communicating enqueue/qman
//!   threads) — to run against [`kernel::HostKernel`].
//! * [`differential`] replays TESTGEN's `ConcreteTest`s on real threads and
//!   cross-checks every return value against the simulated `Sv6Kernel`,
//!   closing the loop between the symbolic pipeline and real execution;
//!   the §4 extension corpus rides along with a linearization +
//!   message-conservation cross-check.
//! * [`chaos_mail`] runs the same pipeline behind `scr_chaos`'s
//!   `FaultyKernel` — seeded transient errnos, delayed delivery,
//!   scheduled qman crashes — with bounded retries, a dead-letter
//!   mailbox, overload shedding and supervised qman restart; its
//!   extended exactly-once ledger (and an fd/process leak check) must
//!   close under every `ChaosPlan`, and [`differential::chaos_campaign`]
//!   replays the differential corpus through the same fault layer.
//! * [`fig6`] replays the same tests with a `scr-hostmtrace` tracing window
//!   around the concurrent pair and aggregates host-side Figure 6 heatmaps
//!   (`sv6-host` / `linux-host`), cross-checking every conflict verdict
//!   against the simulated heatmap (lowest-FD contention excepted, and
//!   recorded explicitly).

pub mod chaos_mail;
pub mod differential;
pub mod fig6;
pub mod harness;
pub mod kernel;
pub mod workloads;

pub use chaos_mail::{mail_pipeline_chaos, ChaosMailConfig, ChaosMailReport};
pub use differential::{
    chaos_campaign, differential_campaign, differential_campaign_observed,
    differential_campaign_with, differential_sample, ext_campaign, run_differential,
    CampaignConfig, ChaosReplayer, DifferentialReport, ExtCampaignReport, HostReplayer,
    PairOutcome,
};
pub use fig6::{
    budget_corpus, build_ext_corpus, classify_divergence, created_sockets, ext_calls, ext_corpus,
    ext_failures, ext_pair_calls, ext_signature, generated_ext_corpus, normalize_pipe_label,
    replay_traced, replay_traced_with_sink, run_ext_corpus, run_ext_fig6, run_ext_host,
    run_ext_sim, run_host_fig6, run_test_host, run_test_host_with, sent_messages, socket_ids,
    ExtCorpus, ExtOutcome, Fig6Divergence, HostExtRun, HostFig6Config, HostFig6Results,
    HostTestOutcome, SimExtRun, EXT_CORPUS_BUDGET, EXT_MAX_ASSIGNMENTS_PER_CASE,
    LOWEST_FD_EXCEPTION,
};
pub use harness::{available_threads, LoadHarness};
pub use kernel::{perform_host, perform_host_observed, HostKernel, HostMode, HostOptions};
pub use workloads::{
    mail_pipeline, mail_pipeline_observed, mailbench, mailbench_observed, openbench, statbench,
    statbench_observed, HostStatMode, MailPipelineReport, MailTelemetry,
};
