//! # scr-host — the real-threads execution backend
//!
//! Everything else in this workspace runs on the *simulated* machine of
//! `scr-mtrace`, where "cores" are labels and conflicts are counted, not
//! paid for. This crate reproduces the paper's hardware-validation leg
//! (§7, Figure 7): the same kernel design patterns, assembled from the
//! host-atomics twins in `scr_scalable::real`, executed by actual OS
//! threads, timed with a wall clock.
//!
//! * [`kernel::HostKernel`] is a thread-safe implementation of the hot
//!   subset of `scr_kernel::api` (the 18 `SysOp` calls). It comes in two
//!   configurations: [`kernel::HostMode::Sv6`] uses the lock-striped
//!   directory, per-core inode allocation and Refcache-style link counts;
//!   [`kernel::HostMode::Linuxlike`] runs the same code under one global
//!   kernel lock, the collapsing baseline.
//! * [`harness::LoadHarness`] spawns N OS threads, partitions work per
//!   thread ("core"), and measures real operations per second per core.
//! * [`workloads`] ports the Figure-7 workloads — statbench, openbench and
//!   the mail-delivery loop — to run against [`kernel::HostKernel`].
//! * [`differential`] replays TESTGEN's `ConcreteTest`s on real threads and
//!   cross-checks every return value against the simulated `Sv6Kernel`,
//!   closing the loop between the symbolic pipeline and real execution.
//! * [`fig6`] replays the same tests with a `scr-hostmtrace` tracing window
//!   around the concurrent pair and aggregates host-side Figure 6 heatmaps
//!   (`sv6-host` / `linux-host`), cross-checking every conflict verdict
//!   against the simulated heatmap (lowest-FD contention excepted, and
//!   recorded explicitly).

pub mod differential;
pub mod fig6;
pub mod harness;
pub mod kernel;
pub mod workloads;

pub use differential::{
    differential_campaign, differential_sample, run_differential, CampaignConfig,
    DifferentialReport, HostReplayer, PairOutcome,
};
pub use fig6::{
    classify_divergence, normalize_pipe_label, replay_traced, replay_traced_with_sink,
    run_host_fig6, run_test_host, Fig6Divergence, HostFig6Config, HostFig6Results, HostTestOutcome,
    LOWEST_FD_EXCEPTION,
};
pub use harness::{available_threads, LoadHarness};
pub use kernel::{perform_host, HostKernel, HostMode, HostOptions};
