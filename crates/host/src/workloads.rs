//! The Figure-7 workloads ported to real threads against [`HostKernel`].
//!
//! Each workload reproduces the shape of its simulated counterpart in
//! `scr_bench` but is driven by the [`LoadHarness`]: real threads, real
//! atomics, wall-clock ops/sec/core. The interesting comparison is always
//! the same one the paper makes — a configuration whose commutative
//! operations are conflict-free (per-core / striped structures) against
//! one that serialises them (a shared lock or a shared cache line).

use crate::harness::LoadHarness;
use crate::kernel::{HostKernel, HostMode, HostOptions};
use scr_kernel::api::{Errno, OpenFlags, StatMask};
use scr_kernel::mail::{MailConfig, MailServer};
use scr_mtrace::ScalingPoint;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Which statbench variant to run (mirrors `scr_bench::statbench::StatMode`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HostStatMode {
    /// `fstat` with per-core (Refcache-style) link counts.
    FstatRefcache,
    /// `fstat` with a single shared link count.
    FstatSharedCount,
    /// `fstatx` without `st_nlink` (the §4 commutative variant).
    FstatxNoNlink,
}

impl HostStatMode {
    /// Legend label.
    pub fn label(&self) -> &'static str {
        match self {
            HostStatMode::FstatRefcache => "fstat (Refcache st_nlink)",
            HostStatMode::FstatSharedCount => "fstat (shared st_nlink)",
            HostStatMode::FstatxNoNlink => "fstatx (without st_nlink)",
        }
    }
}

/// statbench on real threads: half the threads `fstat`/`fstatx` one shared
/// file while the other half `link`/`unlink` it under fresh names.
pub fn statbench(
    mode: HostMode,
    stat_mode: HostStatMode,
    threads: usize,
    ops_per_thread: u64,
) -> ScalingPoint {
    let options = HostOptions {
        shared_link_counts: matches!(stat_mode, HostStatMode::FstatSharedCount),
    };
    let kernel = Arc::new(HostKernel::with_options(threads, mode, options));
    let pid = kernel.new_process();
    let fd = kernel
        .open(0, pid, "statfile", OpenFlags::create())
        .expect("create statfile");
    let stat_threads = (threads / 2).max(1);
    let kernel_ref = &kernel;
    LoadHarness::new(ops_per_thread).run(threads, move |core, op| {
        if core < stat_threads {
            match stat_mode {
                HostStatMode::FstatxNoNlink => {
                    kernel_ref
                        .fstatx(core, pid, fd, StatMask::all_but_nlink())
                        .expect("fstatx");
                }
                _ => {
                    kernel_ref.fstat(core, pid, fd).expect("fstat");
                }
            }
        } else {
            let scratch = format!("statlink-{core}-{op}");
            kernel_ref
                .link(core, pid, "statfile", &scratch)
                .expect("link");
            kernel_ref.unlink(core, pid, &scratch).expect("unlink");
            // Periodic epoch pass, as a per-core timer tick would run it.
            if op % 256 == 255 {
                kernel_ref.reclaim_core(core);
            }
        }
    })
}

/// openbench on real threads: every thread opens and closes its own
/// pre-created file, with lowest-FD or `O_ANYFD` allocation.
pub fn openbench(mode: HostMode, anyfd: bool, threads: usize, ops_per_thread: u64) -> ScalingPoint {
    let kernel = Arc::new(HostKernel::new(threads, mode));
    let pid = kernel.new_process();
    for core in 0..threads {
        let fd = kernel
            .open(core, pid, &format!("openbench-{core}"), OpenFlags::create())
            .expect("create per-core file");
        kernel.close(core, pid, fd).expect("close");
    }
    let kernel_ref = &kernel;
    LoadHarness::new(ops_per_thread).run(threads, move |core, _op| {
        let flags = if anyfd {
            OpenFlags::plain().with_anyfd()
        } else {
            OpenFlags::plain()
        };
        let fd = kernel_ref
            .open(core, pid, &format!("openbench-{core}"), flags)
            .expect("open");
        kernel_ref.close(core, pid, fd).expect("close");
    })
}

/// The §7.3 mail pipeline's hot loop on real threads, driven through the
/// *real* `scr_kernel::mail::MailServer` — notification socket, spawn,
/// wait and all — instead of a file-system-only approximation. Each
/// thread's operation enqueues one message (spool files + a datagram on
/// the notification socket) and then runs queue-manager steps until one
/// message is delivered: with the unordered socket that is usually its own
/// (taken conflict-free from the core's local queue), with the ordered one
/// every notification funnels through the single shared queue.
///
/// The [`MailConfig`] selects the whole §7.3 API family: descriptor
/// allocation (lowest-FD vs `O_ANYFD`), socket ordering, and helper
/// creation (`fork`'s table snapshot vs `posix_spawn`).
pub fn mailbench(
    mode: HostMode,
    config: MailConfig,
    threads: usize,
    ops_per_thread: u64,
) -> ScalingPoint {
    let kernel = HostKernel::new(threads, mode);
    let client = kernel.new_process();
    let qman = kernel.new_process();
    let server = MailServer::new(&kernel, config, threads).expect("mail server");
    let (server_ref, kernel_ref) = (&server, &kernel);
    LoadHarness::new(ops_per_thread).run(threads, move |core, op| {
        let mailbox = format!("user{core}");
        server_ref
            .enqueue(core, client, &mailbox, format!("m-{core}-{op}").as_bytes())
            .expect("enqueue");
        // Deliver one message (not necessarily this thread's: another
        // core's qman step may have stolen ours first — globally the
        // counts balance, so this loop cannot starve).
        loop {
            match server_ref.qman_step(core, qman) {
                Ok(_) => break,
                // Yield rather than spin: under oversubscription the
                // thread holding progress may need this core.
                Err(Errno::EAGAIN) => std::thread::yield_now(),
                Err(e) => panic!("qman step failed: {e}"),
            }
        }
        // Periodic epoch pass so the spool's unlinked inodes (and their
        // page caches) are actually freed during long sweeps.
        if op % 64 == 63 {
            kernel_ref.reclaim_core(core);
        }
    })
}

/// Outcome of a dedicated-threads [`mail_pipeline`] run: the ledger the
/// exactly-once assertions (tests, the CI smoke gate) check.
#[derive(Clone, Debug)]
pub struct MailPipelineReport {
    /// Messages the enqueuer threads spooled and announced.
    pub enqueued: usize,
    /// Messages the queue-manager threads delivered.
    pub delivered: usize,
    /// Delivered bodies that appeared more than once.
    pub duplicates: usize,
    /// Enqueued bodies that never reached a mailbox.
    pub lost: usize,
    /// Delivered mailbox files whose contents did not match any enqueued
    /// body (0 in any healthy run).
    pub corrupt: usize,
}

impl MailPipelineReport {
    /// Every message delivered exactly once, bit-intact.
    pub fn exactly_once(&self) -> bool {
        self.delivered == self.enqueued
            && self.duplicates == 0
            && self.lost == 0
            && self.corrupt == 0
    }
}

/// The full §7.3 pipeline as *actual communicating threads*: `enqueuers`
/// threads run mail-enqueue, `qmans` threads run mail-qman (receiving
/// notifications, spawning a delivery helper per message, waiting for it,
/// cleaning the spool) — the two stages talk only through the kernel, via
/// the notification socket and the spool files, exactly as the paper's
/// processes do. Returns the exactly-once ledger, verified by reading
/// every delivered mailbox file back.
pub fn mail_pipeline(
    mode: HostMode,
    config: MailConfig,
    enqueuers: usize,
    qmans: usize,
    messages_per_enqueuer: usize,
) -> MailPipelineReport {
    let enqueuers = enqueuers.max(1);
    let qmans = qmans.max(1);
    let cores = enqueuers + qmans;
    let total = enqueuers * messages_per_enqueuer;
    let kernel = HostKernel::new(cores, mode);
    let client = kernel.new_process();
    let qman_pid = kernel.new_process();
    let server = MailServer::new(&kernel, config, cores).expect("mail server");
    let delivered_names = Mutex::new(Vec::with_capacity(total));
    let delivered_count = AtomicUsize::new(0);
    let (server_ref, names_ref, count_ref) = (&server, &delivered_names, &delivered_count);
    std::thread::scope(|scope| {
        for e in 0..enqueuers {
            scope.spawn(move || {
                for i in 0..messages_per_enqueuer {
                    let mailbox = format!("box{e}");
                    let body = format!("body-{e}-{i}");
                    server_ref
                        .enqueue(e, client, &mailbox, body.as_bytes())
                        .expect("enqueue");
                }
            });
        }
        for q in 0..qmans {
            let core = enqueuers + q;
            scope.spawn(move || loop {
                if count_ref.load(Ordering::Acquire) >= total {
                    break;
                }
                match server_ref.qman_step(core, qman_pid) {
                    Ok(name) => {
                        count_ref.fetch_add(1, Ordering::AcqRel);
                        names_ref.lock().unwrap().push(name);
                    }
                    // Empty queue: either the enqueuers are still filling
                    // it or another qman won the race for the last one;
                    // yield so they get this core under oversubscription.
                    Err(Errno::EAGAIN) => std::thread::yield_now(),
                    Err(e) => panic!("qman step failed: {e}"),
                }
            });
        }
    });
    // Verify by reading every mailbox file back through the kernel.
    let names = delivered_names.into_inner().unwrap();
    let mut got: Vec<String> = names
        .iter()
        .map(|name| {
            let fd = kernel
                .open(0, qman_pid, name, OpenFlags::plain())
                .expect("delivered file must exist");
            let body = kernel.pread(0, qman_pid, fd, 4096, 0).expect("read body");
            kernel.close(0, qman_pid, fd).expect("close");
            String::from_utf8_lossy(&body).into_owned()
        })
        .collect();
    got.sort();
    let mut want: Vec<String> = (0..enqueuers)
        .flat_map(|e| (0..messages_per_enqueuer).map(move |i| format!("body-{e}-{i}")))
        .collect();
    want.sort();
    let count = |items: &[String]| {
        let mut map = std::collections::BTreeMap::new();
        for item in items {
            *map.entry(item.clone()).or_insert(0usize) += 1;
        }
        map
    };
    let (got_counts, want_counts) = (count(&got), count(&want));
    // A body that was never enqueued is *corrupt*, not a duplicate: only
    // over-delivery of known bodies counts here, so each failure mode is
    // attributed exactly once.
    let duplicates = got_counts
        .iter()
        .filter(|(body, _)| want_counts.contains_key(*body))
        .map(|(body, n)| n.saturating_sub(want_counts[body]))
        .sum();
    let lost = want_counts
        .iter()
        .map(|(body, n)| n.saturating_sub(*got_counts.get(body).unwrap_or(&0)))
        .sum();
    let corrupt = got
        .iter()
        .filter(|body| !want_counts.contains_key(*body))
        .count();
    MailPipelineReport {
        enqueued: total,
        delivered: names.len(),
        duplicates,
        lost,
        corrupt,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statbench_runs_all_modes_on_two_threads() {
        for stat_mode in [
            HostStatMode::FstatRefcache,
            HostStatMode::FstatSharedCount,
            HostStatMode::FstatxNoNlink,
        ] {
            let point = statbench(HostMode::Sv6, stat_mode, 2, 50);
            assert_eq!(point.total_ops, 100);
            assert!(point.ops_per_sec_per_core > 0.0);
        }
    }

    #[test]
    fn openbench_runs_in_both_modes() {
        for mode in [HostMode::Sv6, HostMode::Linuxlike] {
            for anyfd in [false, true] {
                let point = openbench(mode, anyfd, 2, 50);
                assert_eq!(point.cores, 2);
                assert!(point.ops_per_sec_per_core > 0.0);
            }
        }
    }

    #[test]
    fn mailbench_runs_both_configs_on_both_modes() {
        for mode in [HostMode::Sv6, HostMode::Linuxlike] {
            for config in [MailConfig::CommutativeApis, MailConfig::RegularApis] {
                let point = mailbench(mode, config, 2, 20);
                assert_eq!(point.total_ops, 40, "{mode:?}/{config:?}");
                assert!(point.ops_per_sec_per_core > 0.0);
            }
        }
    }

    #[test]
    fn mail_pipeline_delivers_exactly_once_in_every_configuration() {
        for mode in [HostMode::Sv6, HostMode::Linuxlike] {
            for config in [MailConfig::CommutativeApis, MailConfig::RegularApis] {
                let report = mail_pipeline(mode, config, 2, 2, 25);
                assert!(
                    report.exactly_once(),
                    "{mode:?}/{config:?}: {report:?} must deliver exactly once"
                );
                assert_eq!(report.delivered, 50);
            }
        }
    }

    #[test]
    fn stat_mode_labels_are_distinct() {
        let labels: std::collections::BTreeSet<_> = [
            HostStatMode::FstatRefcache,
            HostStatMode::FstatSharedCount,
            HostStatMode::FstatxNoNlink,
        ]
        .iter()
        .map(|m| m.label())
        .collect();
        assert_eq!(labels.len(), 3);
    }
}
