//! The Figure-7 workloads ported to real threads against [`HostKernel`].
//!
//! Each workload reproduces the shape of its simulated counterpart in
//! `scr_bench` but is driven by the [`LoadHarness`]: real threads, real
//! atomics, wall-clock ops/sec/core. The interesting comparison is always
//! the same one the paper makes — a configuration whose commutative
//! operations are conflict-free (per-core / striped structures) against
//! one that serialises them (a shared lock or a shared cache line).

use crate::harness::LoadHarness;
use crate::kernel::{HostKernel, HostMode, HostOptions};
use scr_kernel::api::{Errno, Fd, OpenFlags, Pid, StatMask, SyscallApi};
use scr_kernel::mail::{MailConfig, MailServer, MailStage, MailStageObserver, NoMailObs};
use scr_kernel::retry::{Backoff, RetryPolicy};
use scr_mtrace::{CoreId, ScalingPoint};
use scr_obs::{
    Counter, Histogram, MetricsRegistry, ObservedKernel, SpanName, SyscallRecorder, TraceLog,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// The telemetry bundle the observed mail workloads feed: one
/// [`MetricsRegistry`] (per-core counters + latency histograms), one
/// [`SyscallRecorder`] wired through [`ObservedKernel`], and one
/// [`TraceLog`] receiving a span per pipeline stage (it implements
/// [`MailStageObserver`]). Everything follows the per-core sharding
/// discipline, so observing the pipeline cannot introduce a shared cache
/// line the pipeline itself avoids.
pub struct MailTelemetry {
    /// The registry every counter below lives in; snapshot after the run.
    pub registry: Arc<MetricsRegistry>,
    /// Per-syscall counts / errnos / latency, fed by [`ObservedKernel`].
    pub syscalls: Arc<SyscallRecorder>,
    /// Pipeline stage spans (enqueue → notify → … → cleanup), exportable
    /// as Chrome trace-event JSON.
    pub trace: Arc<TraceLog>,
    /// Messages the enqueuer side spooled and announced.
    pub enqueued: Counter,
    /// Messages the queue-manager side delivered.
    pub delivered: Counter,
    /// `qman_step` polls that found the queue empty (`EAGAIN`).
    pub eagain_retries: Counter,
    /// Backoff waits (yields or short sleeps, per the shared
    /// [`RetryPolicy`]) taken on an empty queue — exactly one per counted
    /// `EAGAIN` retry.
    pub yield_spins: Counter,
    /// End-to-end message latency in ns, under the same histogram name
    /// (`mail.latency_ns`) the open-loop load generator records, so
    /// closed-loop and open-loop snapshots are directly comparable. Here
    /// the clock starts when the operation starts — a closed-loop number,
    /// which is exactly the coordinated-omission contrast the open-loop
    /// path exists to expose.
    pub latency: Histogram,
    stage_names: [SpanName; MailStage::ALL.len()],
}

impl MailTelemetry {
    /// A fresh registry + trace log sized for `cores`.
    pub fn new(cores: usize) -> MailTelemetry {
        MailTelemetry::over(MetricsRegistry::new(cores))
    }

    /// Telemetry over an existing registry (so an example can mix mail
    /// counters with its own sections in one snapshot).
    pub fn over(registry: Arc<MetricsRegistry>) -> MailTelemetry {
        let syscalls = SyscallRecorder::new(&registry);
        let trace = TraceLog::new(registry.cores());
        let stage_names =
            MailStage::ALL.map(|stage| trace.intern(&format!("mail.{}", stage.name())));
        MailTelemetry {
            enqueued: registry.counter("mail.enqueued"),
            delivered: registry.counter("mail.delivered"),
            eagain_retries: registry.counter("mail.eagain_retries"),
            yield_spins: registry.counter("mail.yield_spins"),
            latency: registry.histogram("mail.latency_ns"),
            syscalls,
            trace,
            registry,
            stage_names,
        }
    }
}

impl MailStageObserver for MailTelemetry {
    fn stage_enabled(&self) -> bool {
        self.trace.is_enabled()
    }

    fn observe_stage(&self, core: CoreId, stage: MailStage, started: Instant, ended: Instant) {
        let index = MailStage::ALL
            .iter()
            .position(|&s| s == stage)
            .expect("stage listed in ALL");
        self.trace
            .record(core, self.stage_names[index], started, ended);
    }
}

/// Which statbench variant to run (mirrors `scr_bench::statbench::StatMode`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HostStatMode {
    /// `fstat` with per-core (Refcache-style) link counts.
    FstatRefcache,
    /// `fstat` with a single shared link count.
    FstatSharedCount,
    /// `fstatx` without `st_nlink` (the §4 commutative variant).
    FstatxNoNlink,
}

impl HostStatMode {
    /// Legend label.
    pub fn label(&self) -> &'static str {
        match self {
            HostStatMode::FstatRefcache => "fstat (Refcache st_nlink)",
            HostStatMode::FstatSharedCount => "fstat (shared st_nlink)",
            HostStatMode::FstatxNoNlink => "fstatx (without st_nlink)",
        }
    }
}

/// statbench on real threads: half the threads `fstat`/`fstatx` one shared
/// file while the other half `link`/`unlink` it under fresh names.
pub fn statbench(
    mode: HostMode,
    stat_mode: HostStatMode,
    threads: usize,
    ops_per_thread: u64,
) -> ScalingPoint {
    statbench_observed(mode, stat_mode, threads, ops_per_thread, None)
}

/// [`statbench`] with optional per-syscall recording. The hot loop is the
/// same generic code whether the calls go straight to the [`HostKernel`]
/// or through an [`ObservedKernel`] — so the `obs_overhead` example can
/// compare the two paths (recorder disabled) and gate the wrapper's cost.
pub fn statbench_observed(
    mode: HostMode,
    stat_mode: HostStatMode,
    threads: usize,
    ops_per_thread: u64,
    recorder: Option<&Arc<SyscallRecorder>>,
) -> ScalingPoint {
    let options = HostOptions {
        shared_link_counts: matches!(stat_mode, HostStatMode::FstatSharedCount),
    };
    let kernel = Arc::new(HostKernel::with_options(threads, mode, options));
    let pid = kernel.new_process();
    let fd = kernel
        .open(0, pid, "statfile", OpenFlags::create())
        .expect("create statfile");
    match recorder {
        Some(recorder) => {
            let observed = ObservedKernel::new(kernel.as_ref(), recorder.clone());
            statbench_loop(
                &observed,
                &kernel,
                stat_mode,
                threads,
                ops_per_thread,
                pid,
                fd,
            )
        }
        None => statbench_loop(
            kernel.as_ref(),
            &kernel,
            stat_mode,
            threads,
            ops_per_thread,
            pid,
            fd,
        ),
    }
}

/// The statbench hot loop, generic over the syscall surface it drives.
/// `host` is the concrete kernel, needed only for the periodic epoch pass
/// (`reclaim_core` is not part of [`SyscallApi`]).
fn statbench_loop<K: SyscallApi + Sync + ?Sized>(
    api: &K,
    host: &HostKernel,
    stat_mode: HostStatMode,
    threads: usize,
    ops_per_thread: u64,
    pid: Pid,
    fd: Fd,
) -> ScalingPoint {
    let stat_threads = (threads / 2).max(1);
    LoadHarness::new(ops_per_thread).run(threads, move |core, op| {
        if core < stat_threads {
            match stat_mode {
                HostStatMode::FstatxNoNlink => {
                    api.fstatx(core, pid, fd, StatMask::all_but_nlink())
                        .expect("fstatx");
                }
                _ => {
                    api.fstat(core, pid, fd).expect("fstat");
                }
            }
        } else {
            let scratch = format!("statlink-{core}-{op}");
            api.link(core, pid, "statfile", &scratch).expect("link");
            api.unlink(core, pid, &scratch).expect("unlink");
            // Periodic epoch pass, as a per-core timer tick would run it.
            if op % 256 == 255 {
                host.reclaim_core(core);
            }
        }
    })
}

/// openbench on real threads: every thread opens and closes its own
/// pre-created file, with lowest-FD or `O_ANYFD` allocation.
pub fn openbench(mode: HostMode, anyfd: bool, threads: usize, ops_per_thread: u64) -> ScalingPoint {
    let kernel = Arc::new(HostKernel::new(threads, mode));
    let pid = kernel.new_process();
    for core in 0..threads {
        let fd = kernel
            .open(core, pid, &format!("openbench-{core}"), OpenFlags::create())
            .expect("create per-core file");
        kernel.close(core, pid, fd).expect("close");
    }
    let kernel_ref = &kernel;
    LoadHarness::new(ops_per_thread).run(threads, move |core, _op| {
        let flags = if anyfd {
            OpenFlags::plain().with_anyfd()
        } else {
            OpenFlags::plain()
        };
        let fd = kernel_ref
            .open(core, pid, &format!("openbench-{core}"), flags)
            .expect("open");
        kernel_ref.close(core, pid, fd).expect("close");
    })
}

/// The §7.3 mail pipeline's hot loop on real threads, driven through the
/// *real* `scr_kernel::mail::MailServer` — notification socket, spawn,
/// wait and all — instead of a file-system-only approximation. Each
/// thread's operation enqueues one message (spool files + a datagram on
/// the notification socket) and then runs queue-manager steps until one
/// message is delivered: with the unordered socket that is usually its own
/// (taken conflict-free from the core's local queue), with the ordered one
/// every notification funnels through the single shared queue.
///
/// The [`MailConfig`] selects the whole §7.3 API family: descriptor
/// allocation (lowest-FD vs `O_ANYFD`), socket ordering, and helper
/// creation (`fork`'s table snapshot vs `posix_spawn`).
pub fn mailbench(
    mode: HostMode,
    config: MailConfig,
    threads: usize,
    ops_per_thread: u64,
) -> ScalingPoint {
    mailbench_observed(mode, config, threads, ops_per_thread, None)
}

/// [`mailbench`] with optional telemetry: syscalls route through an
/// [`ObservedKernel`], pipeline stages become trace spans, and the
/// empty-queue backoff is counted per core.
pub fn mailbench_observed(
    mode: HostMode,
    config: MailConfig,
    threads: usize,
    ops_per_thread: u64,
    telemetry: Option<&MailTelemetry>,
) -> ScalingPoint {
    let kernel = HostKernel::new(threads, mode);
    let client = kernel.new_process();
    let qman = kernel.new_process();
    let observed = telemetry.map(|t| ObservedKernel::new(&kernel, t.syscalls.clone()));
    let api: &(dyn SyscallApi + Sync) = match observed.as_ref() {
        Some(o) => o,
        None => &kernel,
    };
    let stages: &(dyn MailStageObserver + Sync) = match telemetry {
        Some(t) => t,
        None => &NoMailObs,
    };
    let server = MailServer::new(api, config, threads).expect("mail server");
    let (server_ref, kernel_ref) = (&server, &kernel);
    LoadHarness::new(ops_per_thread).run(threads, move |core, op| {
        let op_start = telemetry.map(|_| Instant::now());
        let mailbox = format!("user{core}");
        server_ref
            .enqueue_observed(
                core,
                client,
                &mailbox,
                format!("m-{core}-{op}").as_bytes(),
                stages,
            )
            .expect("enqueue");
        if let Some(t) = telemetry {
            t.enqueued.inc(core);
        }
        // Deliver one message (not necessarily this thread's: another
        // core's qman step may have stolen ours first — globally the
        // counts balance, so this loop cannot starve).
        let mut backoff = Backoff::new(RetryPolicy::spin(), core as u64);
        loop {
            match server_ref.qman_step_observed(core, qman, stages) {
                Ok(_) => {
                    if let Some(t) = telemetry {
                        t.delivered.inc(core);
                    }
                    break;
                }
                // Back off rather than spin: a few yields first (under
                // oversubscription the thread holding progress may need
                // this core), then short sleeps up to the ceiling.
                Err(Errno::EAGAIN) => {
                    if let Some(t) = telemetry {
                        t.eagain_retries.inc(core);
                        t.yield_spins.inc(core);
                    }
                    backoff.wait();
                }
                Err(e) => panic!("qman step failed: {e}"),
            }
        }
        if let (Some(t), Some(start)) = (telemetry, op_start) {
            t.latency.record(
                core,
                start.elapsed().as_nanos().min(u64::MAX as u128) as u64,
            );
        }
        // Periodic epoch pass so the spool's unlinked inodes (and their
        // page caches) are actually freed during long sweeps.
        if op % 64 == 63 {
            kernel_ref.reclaim_core(core);
        }
    })
}

/// Outcome of a dedicated-threads [`mail_pipeline`] run: the ledger the
/// exactly-once assertions (tests, the CI smoke gate) check.
#[derive(Clone, Debug)]
pub struct MailPipelineReport {
    /// Messages the enqueuer threads spooled and announced.
    pub enqueued: usize,
    /// Messages the queue-manager threads delivered.
    pub delivered: usize,
    /// Delivered bodies that appeared more than once.
    pub duplicates: usize,
    /// Enqueued bodies that never reached a mailbox.
    pub lost: usize,
    /// Delivered mailbox files whose contents did not match any enqueued
    /// body (0 in any healthy run).
    pub corrupt: usize,
}

impl MailPipelineReport {
    /// Every message delivered exactly once, bit-intact.
    pub fn exactly_once(&self) -> bool {
        self.delivered == self.enqueued
            && self.duplicates == 0
            && self.lost == 0
            && self.corrupt == 0
    }
}

/// The full §7.3 pipeline as *actual communicating threads*: `enqueuers`
/// threads run mail-enqueue, `qmans` threads run mail-qman (receiving
/// notifications, spawning a delivery helper per message, waiting for it,
/// cleaning the spool) — the two stages talk only through the kernel, via
/// the notification socket and the spool files, exactly as the paper's
/// processes do. Returns the exactly-once ledger, verified by reading
/// every delivered mailbox file back.
pub fn mail_pipeline(
    mode: HostMode,
    config: MailConfig,
    enqueuers: usize,
    qmans: usize,
    messages_per_enqueuer: usize,
) -> MailPipelineReport {
    mail_pipeline_observed(mode, config, enqueuers, qmans, messages_per_enqueuer, None)
}

/// [`mail_pipeline`] with optional telemetry. With `Some(telemetry)`:
/// every syscall the pipeline makes is counted and timed per core, each
/// stage (enqueue → notify → receive → spawn → deliver → reap → cleanup)
/// becomes a trace span on its worker's core, and the qman polling loop
/// counts its `EAGAIN` retries and yields. The exactly-once verification
/// pass at the end reads mailboxes back through the *raw* kernel, so the
/// recorded ledger is exactly what the pipeline itself did — which is what
/// makes the retry-tail invariant (`recv.calls == delivered +
/// eagain_retries`) checkable from the snapshot alone.
pub fn mail_pipeline_observed(
    mode: HostMode,
    config: MailConfig,
    enqueuers: usize,
    qmans: usize,
    messages_per_enqueuer: usize,
    telemetry: Option<&MailTelemetry>,
) -> MailPipelineReport {
    let enqueuers = enqueuers.max(1);
    let qmans = qmans.max(1);
    let cores = enqueuers + qmans;
    let total = enqueuers * messages_per_enqueuer;
    let kernel = HostKernel::new(cores, mode);
    let client = kernel.new_process();
    let qman_pid = kernel.new_process();
    let observed = telemetry.map(|t| ObservedKernel::new(&kernel, t.syscalls.clone()));
    let api: &(dyn SyscallApi + Sync) = match observed.as_ref() {
        Some(o) => o,
        None => &kernel,
    };
    let stages: &(dyn MailStageObserver + Sync) = match telemetry {
        Some(t) => t,
        None => &NoMailObs,
    };
    let server = MailServer::new(api, config, cores).expect("mail server");
    let delivered_names = Mutex::new(Vec::with_capacity(total));
    let delivered_count = AtomicUsize::new(0);
    let (server_ref, names_ref, count_ref) = (&server, &delivered_names, &delivered_count);
    std::thread::scope(|scope| {
        for e in 0..enqueuers {
            scope.spawn(move || {
                for i in 0..messages_per_enqueuer {
                    let mailbox = format!("box{e}");
                    let body = format!("body-{e}-{i}");
                    server_ref
                        .enqueue_observed(e, client, &mailbox, body.as_bytes(), stages)
                        .expect("enqueue");
                    if let Some(t) = telemetry {
                        t.enqueued.inc(e);
                    }
                }
            });
        }
        for q in 0..qmans {
            let core = enqueuers + q;
            scope.spawn(move || {
                let mut backoff = Backoff::new(RetryPolicy::spin(), core as u64);
                loop {
                    if count_ref.load(Ordering::Acquire) >= total {
                        break;
                    }
                    match server_ref.qman_step_observed(core, qman_pid, stages) {
                        Ok(name) => {
                            if let Some(t) = telemetry {
                                t.delivered.inc(core);
                            }
                            count_ref.fetch_add(1, Ordering::AcqRel);
                            names_ref.lock().unwrap().push(name);
                            backoff.reset();
                        }
                        // Empty queue: either the enqueuers are still
                        // filling it or another qman won the race for the
                        // last one; back off so they get this core under
                        // oversubscription.
                        Err(Errno::EAGAIN) => {
                            if let Some(t) = telemetry {
                                t.eagain_retries.inc(core);
                                t.yield_spins.inc(core);
                            }
                            backoff.wait();
                        }
                        Err(e) => panic!("qman step failed: {e}"),
                    }
                }
            });
        }
    });
    // Teardown leak check: every delivery helper was reaped and every
    // spool descriptor closed, so no process — client, qman, or any of
    // the helpers the run spawned — may still hold a descriptor.
    for pid in 0..kernel.process_count() {
        assert_eq!(
            kernel.open_fd_count(pid),
            Ok(0),
            "pid {pid} leaked descriptors past pipeline teardown"
        );
    }
    // Verify by reading every mailbox file back through the kernel.
    let names = delivered_names.into_inner().unwrap();
    let mut got: Vec<String> = names
        .iter()
        .map(|name| {
            let fd = kernel
                .open(0, qman_pid, name, OpenFlags::plain())
                .expect("delivered file must exist");
            let body = kernel.pread(0, qman_pid, fd, 4096, 0).expect("read body");
            kernel.close(0, qman_pid, fd).expect("close");
            String::from_utf8_lossy(&body).into_owned()
        })
        .collect();
    got.sort();
    let mut want: Vec<String> = (0..enqueuers)
        .flat_map(|e| (0..messages_per_enqueuer).map(move |i| format!("body-{e}-{i}")))
        .collect();
    want.sort();
    let count = |items: &[String]| {
        let mut map = std::collections::BTreeMap::new();
        for item in items {
            *map.entry(item.clone()).or_insert(0usize) += 1;
        }
        map
    };
    let (got_counts, want_counts) = (count(&got), count(&want));
    // A body that was never enqueued is *corrupt*, not a duplicate: only
    // over-delivery of known bodies counts here, so each failure mode is
    // attributed exactly once.
    let duplicates = got_counts
        .iter()
        .filter(|(body, _)| want_counts.contains_key(*body))
        .map(|(body, n)| n.saturating_sub(want_counts[body]))
        .sum();
    let lost = want_counts
        .iter()
        .map(|(body, n)| n.saturating_sub(*got_counts.get(body).unwrap_or(&0)))
        .sum();
    let corrupt = got
        .iter()
        .filter(|body| !want_counts.contains_key(*body))
        .count();
    MailPipelineReport {
        enqueued: total,
        delivered: names.len(),
        duplicates,
        lost,
        corrupt,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statbench_runs_all_modes_on_two_threads() {
        for stat_mode in [
            HostStatMode::FstatRefcache,
            HostStatMode::FstatSharedCount,
            HostStatMode::FstatxNoNlink,
        ] {
            let point = statbench(HostMode::Sv6, stat_mode, 2, 50);
            assert_eq!(point.total_ops, 100);
            assert!(point.ops_per_sec_per_core > 0.0);
        }
    }

    #[test]
    fn openbench_runs_in_both_modes() {
        for mode in [HostMode::Sv6, HostMode::Linuxlike] {
            for anyfd in [false, true] {
                let point = openbench(mode, anyfd, 2, 50);
                assert_eq!(point.cores, 2);
                assert!(point.ops_per_sec_per_core > 0.0);
            }
        }
    }

    #[test]
    fn mailbench_runs_both_configs_on_both_modes() {
        for mode in [HostMode::Sv6, HostMode::Linuxlike] {
            for config in [MailConfig::CommutativeApis, MailConfig::RegularApis] {
                let point = mailbench(mode, config, 2, 20);
                assert_eq!(point.total_ops, 40, "{mode:?}/{config:?}");
                assert!(point.ops_per_sec_per_core > 0.0);
            }
        }
    }

    #[test]
    fn mail_pipeline_delivers_exactly_once_in_every_configuration() {
        for mode in [HostMode::Sv6, HostMode::Linuxlike] {
            for config in [MailConfig::CommutativeApis, MailConfig::RegularApis] {
                let report = mail_pipeline(mode, config, 2, 2, 25);
                assert!(
                    report.exactly_once(),
                    "{mode:?}/{config:?}: {report:?} must deliver exactly once"
                );
                assert_eq!(report.delivered, 50);
            }
        }
    }

    #[test]
    fn statbench_observed_counts_every_hot_loop_call() {
        let registry = MetricsRegistry::new(2);
        let recorder = SyscallRecorder::new(&registry);
        let point = statbench_observed(
            HostMode::Sv6,
            HostStatMode::FstatRefcache,
            2,
            50,
            Some(&recorder),
        );
        assert_eq!(point.total_ops, 100);
        // Two threads split one stat / one link-unlink worker.
        use scr_obs::SyscallKind;
        assert_eq!(recorder.count_of(SyscallKind::Fstat), 50);
        assert_eq!(recorder.count_of(SyscallKind::Link), 50);
        assert_eq!(recorder.count_of(SyscallKind::Unlink), 50);
        assert_eq!(recorder.latency(SyscallKind::Fstat).count, 50);
    }

    #[test]
    fn observed_mail_pipeline_records_ledger_spans_and_retries() {
        use scr_obs::SyscallKind;
        let telemetry = MailTelemetry::new(4);
        let report = mail_pipeline_observed(
            HostMode::Sv6,
            MailConfig::CommutativeApis,
            2,
            2,
            10,
            Some(&telemetry),
        );
        assert!(report.exactly_once(), "{report:?}");
        assert_eq!(telemetry.enqueued.total(), 20);
        assert_eq!(telemetry.delivered.total(), 20);
        // Every qman_step makes exactly one recv: it either delivers or
        // reports an empty queue, so the recv count decomposes exactly.
        assert_eq!(
            telemetry.syscalls.count_of(SyscallKind::Recv),
            telemetry.delivered.total() + telemetry.eagain_retries.total()
        );
        assert_eq!(
            telemetry
                .syscalls
                .errno_count(SyscallKind::Recv, Errno::EAGAIN),
            telemetry.eagain_retries.total()
        );
        // Seven pipeline stages per message, and EAGAIN polls record none.
        assert_eq!(telemetry.trace.len(), 7 * 20);
    }

    #[test]
    fn mailbench_observed_records_per_op_latency() {
        let telemetry = MailTelemetry::new(2);
        let point = mailbench_observed(
            HostMode::Sv6,
            MailConfig::CommutativeApis,
            2,
            20,
            Some(&telemetry),
        );
        assert_eq!(point.total_ops, 40);
        let latency = telemetry.latency.merged();
        assert_eq!(latency.count, 40, "one latency sample per operation");
        assert!(latency.max > 0);
        assert!(latency.p50() <= latency.p999());
        // Exported under the same name the open-loop observatory uses.
        let json = telemetry.registry.snapshot().to_json();
        assert!(json.contains("\"mail.latency_ns\""));
    }

    #[test]
    fn stat_mode_labels_are_distinct() {
        let labels: std::collections::BTreeSet<_> = [
            HostStatMode::FstatRefcache,
            HostStatMode::FstatSharedCount,
            HostStatMode::FstatxNoNlink,
        ]
        .iter()
        .map(|m| m.label())
        .collect();
        assert_eq!(labels.len(), 3);
    }
}
