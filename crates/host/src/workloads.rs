//! The Figure-7 workloads ported to real threads against [`HostKernel`].
//!
//! Each workload reproduces the shape of its simulated counterpart in
//! `scr_bench` but is driven by the [`LoadHarness`]: real threads, real
//! atomics, wall-clock ops/sec/core. The interesting comparison is always
//! the same one the paper makes — a configuration whose commutative
//! operations are conflict-free (per-core / striped structures) against
//! one that serialises them (a shared lock or a shared cache line).

use crate::harness::LoadHarness;
use crate::kernel::{HostKernel, HostMode, HostOptions};
use scr_kernel::api::{OpenFlags, StatMask};
use scr_mtrace::ScalingPoint;
use std::sync::Arc;

/// Which statbench variant to run (mirrors `scr_bench::statbench::StatMode`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HostStatMode {
    /// `fstat` with per-core (Refcache-style) link counts.
    FstatRefcache,
    /// `fstat` with a single shared link count.
    FstatSharedCount,
    /// `fstatx` without `st_nlink` (the §4 commutative variant).
    FstatxNoNlink,
}

impl HostStatMode {
    /// Legend label.
    pub fn label(&self) -> &'static str {
        match self {
            HostStatMode::FstatRefcache => "fstat (Refcache st_nlink)",
            HostStatMode::FstatSharedCount => "fstat (shared st_nlink)",
            HostStatMode::FstatxNoNlink => "fstatx (without st_nlink)",
        }
    }
}

/// statbench on real threads: half the threads `fstat`/`fstatx` one shared
/// file while the other half `link`/`unlink` it under fresh names.
pub fn statbench(
    mode: HostMode,
    stat_mode: HostStatMode,
    threads: usize,
    ops_per_thread: u64,
) -> ScalingPoint {
    let options = HostOptions {
        shared_link_counts: matches!(stat_mode, HostStatMode::FstatSharedCount),
    };
    let kernel = Arc::new(HostKernel::with_options(threads, mode, options));
    let pid = kernel.new_process();
    let fd = kernel
        .open(0, pid, "statfile", OpenFlags::create())
        .expect("create statfile");
    let stat_threads = (threads / 2).max(1);
    let kernel_ref = &kernel;
    LoadHarness::new(ops_per_thread).run(threads, move |core, op| {
        if core < stat_threads {
            match stat_mode {
                HostStatMode::FstatxNoNlink => {
                    kernel_ref
                        .fstatx(core, pid, fd, StatMask::all_but_nlink())
                        .expect("fstatx");
                }
                _ => {
                    kernel_ref.fstat(core, pid, fd).expect("fstat");
                }
            }
        } else {
            let scratch = format!("statlink-{core}-{op}");
            kernel_ref
                .link(core, pid, "statfile", &scratch)
                .expect("link");
            kernel_ref.unlink(core, pid, &scratch).expect("unlink");
            // Periodic epoch pass, as a per-core timer tick would run it.
            if op % 256 == 255 {
                kernel_ref.reclaim_core(core);
            }
        }
    })
}

/// openbench on real threads: every thread opens and closes its own
/// pre-created file, with lowest-FD or `O_ANYFD` allocation.
pub fn openbench(mode: HostMode, anyfd: bool, threads: usize, ops_per_thread: u64) -> ScalingPoint {
    let kernel = Arc::new(HostKernel::new(threads, mode));
    let pid = kernel.new_process();
    for core in 0..threads {
        let fd = kernel
            .open(core, pid, &format!("openbench-{core}"), OpenFlags::create())
            .expect("create per-core file");
        kernel.close(core, pid, fd).expect("close");
    }
    let kernel_ref = &kernel;
    LoadHarness::new(ops_per_thread).run(threads, move |core, _op| {
        let flags = if anyfd {
            OpenFlags::plain().with_anyfd()
        } else {
            OpenFlags::plain()
        };
        let fd = kernel_ref
            .open(core, pid, &format!("openbench-{core}"), flags)
            .expect("open");
        kernel_ref.close(core, pid, fd).expect("close");
    })
}

/// The mail-delivery hot loop on real threads: every thread enqueues a
/// message (spool file + envelope), delivers it into a per-mailbox file,
/// and cleans up the spool — the file-system half of the §7.3 pipeline.
/// The commutative configuration uses `O_ANYFD`; the regular one uses
/// lowest-FD allocation from the shared client/qman descriptor tables.
pub fn mailbench(mode: HostMode, anyfd: bool, threads: usize, ops_per_thread: u64) -> ScalingPoint {
    let kernel = Arc::new(HostKernel::new(threads, mode));
    let client = kernel.new_process();
    let qman = kernel.new_process();
    let kernel_ref = &kernel;
    LoadHarness::new(ops_per_thread).run(threads, move |core, op| {
        let flags = if anyfd {
            OpenFlags::create().with_anyfd()
        } else {
            OpenFlags::create()
        };
        let msg_name = format!("queue/msg-{core}-{op}");
        let env_name = format!("queue/env-{core}-{op}");
        let mailbox = format!("user{core}");
        let body = b"message body";

        // mail-enqueue: spool the message and its envelope.
        let msg_fd = kernel_ref
            .open(core, client, &msg_name, flags)
            .expect("msg open");
        kernel_ref
            .write(core, client, msg_fd, body)
            .expect("msg write");
        kernel_ref.close(core, client, msg_fd).expect("msg close");
        let env_fd = kernel_ref
            .open(core, client, &env_name, flags)
            .expect("env open");
        kernel_ref
            .write(
                core,
                client,
                env_fd,
                format!("{mailbox}\n{msg_name}").as_bytes(),
            )
            .expect("env write");
        kernel_ref.close(core, client, env_fd).expect("env close");

        // mail-qman + mail-deliver: read the spool, write the mailbox file,
        // clean up the queue.
        let msg_fd = kernel_ref
            .open(
                core,
                qman,
                &msg_name,
                if anyfd {
                    OpenFlags::plain().with_anyfd()
                } else {
                    OpenFlags::plain()
                },
            )
            .expect("qman open");
        let data = kernel_ref
            .pread(core, qman, msg_fd, 4096, 0)
            .expect("qman read");
        let delivered = format!("mail/{mailbox}/new-{core}-{op}");
        let out_fd = kernel_ref
            .open(core, qman, &delivered, flags)
            .expect("deliver open");
        kernel_ref
            .write(core, qman, out_fd, &data)
            .expect("deliver write");
        kernel_ref.close(core, qman, out_fd).expect("deliver close");
        kernel_ref.close(core, qman, msg_fd).expect("qman close");
        kernel_ref
            .unlink(core, qman, &msg_name)
            .expect("unlink msg");
        kernel_ref
            .unlink(core, qman, &env_name)
            .expect("unlink env");
        // Periodic epoch pass so the spool's unlinked inodes (and their
        // page caches) are actually freed during long sweeps.
        if op % 64 == 63 {
            kernel_ref.reclaim_core(core);
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statbench_runs_all_modes_on_two_threads() {
        for stat_mode in [
            HostStatMode::FstatRefcache,
            HostStatMode::FstatSharedCount,
            HostStatMode::FstatxNoNlink,
        ] {
            let point = statbench(HostMode::Sv6, stat_mode, 2, 50);
            assert_eq!(point.total_ops, 100);
            assert!(point.ops_per_sec_per_core > 0.0);
        }
    }

    #[test]
    fn openbench_runs_in_both_modes() {
        for mode in [HostMode::Sv6, HostMode::Linuxlike] {
            for anyfd in [false, true] {
                let point = openbench(mode, anyfd, 2, 50);
                assert_eq!(point.cores, 2);
                assert!(point.ops_per_sec_per_core > 0.0);
            }
        }
    }

    #[test]
    fn mailbench_delivers_every_message() {
        let point = mailbench(HostMode::Sv6, true, 2, 20);
        assert_eq!(point.total_ops, 40);
    }

    #[test]
    fn stat_mode_labels_are_distinct() {
        let labels: std::collections::BTreeSet<_> = [
            HostStatMode::FstatRefcache,
            HostStatMode::FstatSharedCount,
            HostStatMode::FstatxNoNlink,
        ]
        .iter()
        .map(|m| m.label())
        .collect();
        assert_eq!(labels.len(), 3);
    }
}
