//! Property tests for the shared retry/backoff policy.
//!
//! Three claims every user of [`RetryPolicy`] leans on:
//!
//! 1. **Determinism** — a schedule is a pure function of
//!    `(policy, stream)`: no shared RNG state, so replaying a chaos plan
//!    replays its backoff sequences exactly, regardless of interleaving.
//! 2. **Ceiling** — no single sleep ever exceeds `ceiling_ns`, however
//!    deep the exponential ladder runs (including shift overflow).
//! 3. **Deadline** — the cumulative sleep of one operation never exceeds
//!    `deadline_ns`, and the attempt count never exceeds `max_retries`;
//!    a `reset()` starts a fresh budget.

use proptest::prelude::*;
use scr_kernel::retry::{Backoff, RetryPolicy};

/// An arbitrary but sane policy: every field ranges over the regimes the
/// real policies (`spin`, `transient`) and their builders produce.
fn policy_strategy() -> impl Strategy<Value = RetryPolicy> {
    (
        1u32..200,        // max_retries
        0u32..20,         // yield_spins
        1u64..1 << 20,    // base_ns
        1u64..1 << 24,    // ceiling_ns
        1u64..10_000_000, // deadline_ns
        any::<u64>(),     // seed
    )
        .prop_map(
            |(max_retries, yield_spins, base_ns, ceiling_ns, deadline_ns, seed)| RetryPolicy {
                max_retries,
                yield_spins,
                base_ns,
                ceiling_ns,
                deadline_ns,
                seed,
            },
        )
}

/// Enumerates the whole schedule without sleeping.
fn full_schedule(policy: RetryPolicy, stream: u64) -> Vec<u64> {
    let mut backoff = Backoff::new(policy, stream);
    let mut delays = Vec::new();
    while let Some(d) = backoff.step() {
        delays.push(d);
    }
    delays
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn schedules_are_deterministic_per_policy_and_stream(
        policy in policy_strategy(),
        stream in any::<u64>(),
    ) {
        let a = full_schedule(policy, stream);
        prop_assert_eq!(&a, &full_schedule(policy, stream));
        // A different seed re-draws the jitter: across 64 ladder attempts
        // with per-sleep ranges of at least 33 values, at least one delay
        // must differ (all-collide odds are below 33^-64).
        if policy.base_ns.min(policy.ceiling_ns) >= 64 {
            let reseeded = policy.with_seed(policy.seed ^ 0x5EED);
            let diverged = (policy.yield_spins..policy.yield_spins + 64)
                .any(|attempt| policy.delay_ns(stream, attempt) != reseeded.delay_ns(stream, attempt));
            prop_assert!(diverged, "reseeding changed no jitter draw");
        }
    }

    #[test]
    fn single_sleeps_never_exceed_the_ceiling(
        policy in policy_strategy(),
        stream in any::<u64>(),
        attempt in 0u32..1_000,
    ) {
        prop_assert!(policy.delay_ns(stream, attempt) <= policy.ceiling_ns);
        for delay in full_schedule(policy, stream) {
            prop_assert!(delay <= policy.ceiling_ns);
        }
    }

    #[test]
    fn total_delay_respects_deadline_and_retry_budget(
        policy in policy_strategy(),
        stream in any::<u64>(),
    ) {
        let mut backoff = Backoff::new(policy, stream);
        let mut total = 0u64;
        let mut waits = 0u32;
        while let Some(d) = backoff.step() {
            total += d;
            waits += 1;
            prop_assert!(total <= policy.deadline_ns);
        }
        prop_assert!(waits <= policy.max_retries);
        prop_assert_eq!(backoff.slept_ns(), total);
        prop_assert_eq!(backoff.attempts(), waits);
        // The budget is per operation: reset() re-arms it in full.
        backoff.reset();
        prop_assert_eq!(backoff.slept_ns(), 0);
        let again: u64 = std::iter::from_fn(|| backoff.step()).sum();
        prop_assert!(again <= policy.deadline_ns);
    }

    /// The yield phase really is free: the first `yield_spins` waits cost
    /// zero scheduled sleep on any stream.
    #[test]
    fn yield_phase_sleeps_zero(
        policy in policy_strategy(),
        stream in any::<u64>(),
    ) {
        let mut backoff = Backoff::new(policy, stream);
        for _ in 0..policy.yield_spins.min(policy.max_retries) {
            prop_assert_eq!(backoff.step(), Some(0));
        }
        prop_assert_eq!(backoff.slept_ns(), 0);
    }
}
