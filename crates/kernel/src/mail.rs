//! The qmail-style mail server of §7.3.
//!
//! The benchmark application is a pipeline of separate, communicating
//! processes:
//!
//! * **mail-enqueue** writes the message and its envelope to two files in a
//!   queue directory and notifies the queue manager over a Unix-domain
//!   datagram socket.
//! * **mail-qman** receives a notification, reads the envelope, opens the
//!   queued message, spawns a delivery process, waits for it, and deletes
//!   the queued files.
//! * **mail-deliver** writes the message into the recipient's mailbox.
//!
//! Each stage runs in one of two configurations, mirroring the paper's
//! "regular APIs" versus "commutative APIs" comparison:
//!
//! | | regular | commutative |
//! |---|---|---|
//! | descriptor allocation | lowest FD | `O_ANYFD` |
//! | queue notification socket | ordered | unordered |
//! | helper process creation | `fork` (snapshot) | `posix_spawn` |
//!
//! The server is written purely against [`KernelApi`], so it runs unchanged
//! over the sv6 kernel or the Linux-like baseline.

use crate::api::{Errno, KResult, OpenFlags, Pid, SockId, SocketOrder, SyscallApi};
use crossbeam::utils::CachePadded;
use scr_mtrace::CoreId;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// The pipeline stages a message passes through, in order. Used by
/// [`MailStageObserver`] to attribute wall time to pipeline phases
/// (rendered as trace spans by `scr-obs`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MailStage {
    /// `mail-enqueue` spooling the message and envelope files.
    Enqueue,
    /// `mail-enqueue` announcing the envelope on the notification socket.
    Notify,
    /// `mail-qman` reading the envelope and opening the queued message.
    Receive,
    /// `mail-qman` creating the delivery helper (`fork`/`posix_spawn`).
    Spawn,
    /// `mail-deliver` writing the mailbox file.
    Deliver,
    /// `mail-qman` waiting for (reaping) the helper.
    Reap,
    /// `mail-qman` closing and unlinking the queue files.
    Cleanup,
}

impl MailStage {
    /// Every stage, in pipeline order.
    pub const ALL: [MailStage; 7] = [
        MailStage::Enqueue,
        MailStage::Notify,
        MailStage::Receive,
        MailStage::Spawn,
        MailStage::Deliver,
        MailStage::Reap,
        MailStage::Cleanup,
    ];

    /// The stage's span name.
    pub fn name(self) -> &'static str {
        match self {
            MailStage::Enqueue => "enqueue",
            MailStage::Notify => "notify",
            MailStage::Receive => "receive",
            MailStage::Spawn => "spawn",
            MailStage::Deliver => "deliver",
            MailStage::Reap => "reap",
            MailStage::Cleanup => "cleanup",
        }
    }
}

/// Observer for mail-pipeline stages. Like
/// [`PerformObserver`](crate::api::PerformObserver), the trait lives in the
/// kernel crate so the server stays dependency-free; the telemetry crate
/// adapts it onto its per-core trace log. Callbacks run on the worker
/// thread and must only touch core-local state.
pub trait MailStageObserver {
    /// When `false`, the observed entry points skip every clock read.
    fn stage_enabled(&self) -> bool {
        true
    }

    /// One completed stage on `core`, from `started` to `ended`.
    fn observe_stage(&self, core: CoreId, stage: MailStage, started: Instant, ended: Instant);
}

/// The no-op stage observer: observed entry points behave like the plain
/// ones.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoMailObs;

impl MailStageObserver for NoMailObs {
    fn stage_enabled(&self) -> bool {
        false
    }

    fn observe_stage(&self, _: CoreId, _: MailStage, _: Instant, _: Instant) {}
}

fn timed<O, T>(
    obs: &O,
    core: CoreId,
    stage: MailStage,
    f: impl FnOnce() -> KResult<T>,
) -> KResult<T>
where
    O: MailStageObserver + ?Sized,
{
    if !obs.stage_enabled() {
        return f();
    }
    let started = Instant::now();
    let result = f();
    obs.observe_stage(core, stage, started, Instant::now());
    result
}

/// The pipeline's thread/shard topology: how many enqueuer threads feed how
/// many queue-manager threads, over how many notification-socket shards.
///
/// A mailbox is assigned to a shard by the **same FNV-1a hash** the striped
/// directory uses for bucket placement (`scr_scalable::hash_dir::fnv1a`),
/// so "hot shard" means the same thing to the load generator's attribution
/// tables and to the kernel's own fan-out. Each shard is one notification
/// socket; shard *s* is served by qman *s mod qmans*. With one shard and
/// one socket this degenerates to the original single-queue pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MailTopology {
    /// Enqueuer (mail-enqueue) threads, running on cores `0..enqueuers`.
    pub enqueuers: usize,
    /// Queue-manager (mail-qman) threads, on cores `enqueuers..cores()`.
    pub qmans: usize,
    /// Notification-socket shards the mailbox namespace fans out over.
    pub notify_shards: usize,
}

impl MailTopology {
    /// The original 1×1 pipeline over a single notification socket.
    pub fn single() -> MailTopology {
        MailTopology {
            enqueuers: 1,
            qmans: 1,
            notify_shards: 1,
        }
    }

    /// N enqueuers × M qmans with one notification-socket shard per qman.
    pub fn new(enqueuers: usize, qmans: usize) -> MailTopology {
        let qmans = qmans.max(1);
        MailTopology {
            enqueuers: enqueuers.max(1),
            qmans,
            notify_shards: qmans,
        }
    }

    /// Override the shard count (must be ≥ 1; more shards than qmans gives
    /// each qman several queues, fewer leaves some qmans polling shared
    /// shards).
    pub fn with_shards(mut self, shards: usize) -> MailTopology {
        self.notify_shards = shards.max(1);
        self
    }

    /// Total worker threads (cores) the topology occupies.
    pub fn cores(&self) -> usize {
        self.enqueuers + self.qmans
    }

    /// The core enqueuer `e` runs on.
    pub fn enqueuer_core(&self, e: usize) -> usize {
        e % self.enqueuers
    }

    /// The core qman `q` runs on.
    pub fn qman_core(&self, q: usize) -> usize {
        self.enqueuers + (q % self.qmans)
    }

    /// The shard a mailbox name fans out to (FNV-1a, like the directory).
    pub fn shard_of(&self, mailbox: &str) -> usize {
        (scr_scalable::hash_dir::fnv1a(mailbox) % self.notify_shards as u64) as usize
    }

    /// The qman index that owns a shard.
    pub fn qman_of_shard(&self, shard: usize) -> usize {
        shard % self.qmans
    }

    /// The shards qman `q` owns, in polling order.
    pub fn shards_of_qman(&self, q: usize) -> impl Iterator<Item = usize> + '_ {
        let qmans = self.qmans;
        (0..self.notify_shards).filter(move |s| s % qmans == q % qmans)
    }
}

/// Which API family the mail server uses (§7.3's two configurations).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MailConfig {
    /// Lowest-FD `open`, ordered notification socket, `fork`-based helpers.
    RegularApis,
    /// `O_ANYFD` opens, unordered notification socket, `posix_spawn`.
    CommutativeApis,
}

impl MailConfig {
    fn open_flags(self) -> OpenFlags {
        match self {
            MailConfig::RegularApis => OpenFlags::create(),
            MailConfig::CommutativeApis => OpenFlags::create().with_anyfd(),
        }
    }

    fn socket_order(self) -> SocketOrder {
        match self {
            MailConfig::RegularApis => SocketOrder::Ordered,
            MailConfig::CommutativeApis => SocketOrder::Unordered,
        }
    }
}

/// A running mail server instance bound to a kernel.
///
/// The server is generic over [`SyscallApi`], so the same code drives the
/// simulated kernels (single-threaded, traced) and `scr-host`'s real
/// kernel. With a `Sync` kernel the server is `Sync` too: the per-core
/// sequence counters are cache-padded atomics, so concurrent enqueuers on
/// different cores never share a line through the server itself.
pub struct MailServer<'k, K: SyscallApi + ?Sized> {
    kernel: &'k K,
    config: MailConfig,
    topology: MailTopology,
    /// One notification socket per shard; `topology.shard_of(mailbox)`
    /// picks the socket an enqueue announces on.
    notify: Vec<SockId>,
    /// Per-core message sequence numbers, used to build unique queue file
    /// names without shared state.
    next_seq: Vec<CachePadded<AtomicU64>>,
}

/// The mailbox that collects messages whose delivery budget ran out.
///
/// The dead-letter box is an ordinary Maildir under `mail/` — the
/// exactly-once ledger reads it back like any other mailbox, so a
/// dead-lettered message is *accounted*, not lost. Client mailbox names
/// never collide with it (workloads use `user*`/`alice`-style names).
pub const DEAD_LETTER: &str = "dead-letter";

/// An in-flight qman work item: everything [`MailServer::read_envelope`]
/// learned about one queued message. Holding one of these is holding the
/// message — a crash-interrupted step hands its `Envelope` to the
/// supervisor, which can finish delivery or dead-letter it without
/// re-parsing the spool.
#[derive(Clone, Debug)]
pub struct Envelope {
    /// The envelope spool file name (also the notification payload).
    pub env_name: String,
    /// The recipient mailbox (first envelope line).
    pub mailbox: String,
    /// The message spool file name (second envelope line).
    pub msg_name: String,
    /// The open descriptor on the message spool file (owned by the qman
    /// pid; [`MailServer::cleanup_spool`] closes it).
    pub msg_fd: crate::api::Fd,
    /// The message body.
    pub body: Vec<u8>,
    /// The notification-socket shard the envelope arrived on.
    pub shard: usize,
}

impl Envelope {
    /// The [`Delivered`] record for this envelope landing in `file`.
    pub fn into_delivered(self, file: String) -> Delivered {
        Delivered {
            file,
            mailbox: self.mailbox,
            shard: self.shard,
            body: self.body,
        }
    }
}

/// One message delivered by a qman step: the mailbox file it landed in,
/// the mailbox it was addressed to, the shard it travelled through, and the
/// message body. The body is what the open-loop load generator stamps its
/// intended-arrival time into, so handing it back costs nothing extra — the
/// qman had it in hand to deliver it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Delivered {
    /// The Maildir file the message was written to.
    pub file: String,
    /// The recipient mailbox name (first envelope line).
    pub mailbox: String,
    /// The notification-socket shard the message arrived on.
    pub shard: usize,
    /// The message body, bit-for-bit as enqueued.
    pub body: Vec<u8>,
}

impl<'k, K: SyscallApi + ?Sized> MailServer<'k, K> {
    /// Creates a mail server over `kernel` using the given API configuration
    /// and supporting up to `cores` enqueueing cores, with the original
    /// single-socket topology.
    pub fn new(kernel: &'k K, config: MailConfig, cores: usize) -> KResult<Self> {
        let topology = MailTopology {
            enqueuers: cores.max(1),
            qmans: 1,
            notify_shards: 1,
        };
        MailServer::with_topology(kernel, config, topology, cores)
    }

    /// Creates a mail server with an explicit N×M×shards topology. `cores`
    /// bounds the per-core sequence counters (any core may enqueue or
    /// deliver); the notification sockets are created eagerly, one per
    /// shard, so socket ids are dense from the server's first socket.
    pub fn with_topology(
        kernel: &'k K,
        config: MailConfig,
        topology: MailTopology,
        cores: usize,
    ) -> KResult<Self> {
        let notify = (0..topology.notify_shards)
            .map(|_| kernel.socket(0, config.socket_order()))
            .collect::<KResult<Vec<_>>>()?;
        Ok(MailServer {
            kernel,
            config,
            topology,
            notify,
            next_seq: (0..cores.max(1).max(topology.cores()))
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
        })
    }

    /// A view of the same logical server over a different syscall surface:
    /// shares the topology and the notification sockets (socket ids pass
    /// through any `SyscallApi` wrapper unchanged), so a robust driver can
    /// run its enqueuers, qmans, and supervisor through differently
    /// wrapped kernels — bounded retries here, never-give-up retries there
    /// — against one pipeline. Sequence counters are fresh per view; names
    /// stay unique because they embed the generating core and no core
    /// drives two views' name-generating calls into the same directory
    /// (enqueuers spool, qmans deliver to recipient Maildirs, the
    /// dead-letter path writes only [`DEAD_LETTER`]).
    pub fn view<'k2, K2: SyscallApi + ?Sized>(&self, kernel: &'k2 K2) -> MailServer<'k2, K2> {
        MailServer {
            kernel,
            config: self.config,
            topology: self.topology,
            notify: self.notify.clone(),
            next_seq: (0..self.next_seq.len())
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
        }
    }

    /// The API configuration in use.
    pub fn config(&self) -> MailConfig {
        self.config
    }

    /// The thread/shard topology in use.
    pub fn topology(&self) -> MailTopology {
        self.topology
    }

    /// The notification socket connecting mail-enqueue to mail-qman (shard
    /// 0 when sharded).
    pub fn notify_socket(&self) -> SockId {
        self.notify[0]
    }

    /// The notification socket for one shard.
    pub fn shard_socket(&self, shard: usize) -> SockId {
        self.notify[shard % self.notify.len()]
    }

    fn fresh_seq(&self, core: CoreId) -> u64 {
        self.next_seq[core % self.next_seq.len()].fetch_add(1, Ordering::Relaxed)
    }

    /// `mail-enqueue`: writes the message and envelope to the queue and
    /// notifies the queue manager. Returns the envelope file name.
    pub fn enqueue(&self, core: CoreId, pid: Pid, mailbox: &str, body: &[u8]) -> KResult<String> {
        self.enqueue_observed(core, pid, mailbox, body, &NoMailObs)
    }

    /// [`MailServer::enqueue`] with stage observation: the spool writes are
    /// reported as [`MailStage::Enqueue`], the socket send as
    /// [`MailStage::Notify`].
    pub fn enqueue_observed<O>(
        &self,
        core: CoreId,
        pid: Pid,
        mailbox: &str,
        body: &[u8],
        obs: &O,
    ) -> KResult<String>
    where
        O: MailStageObserver + ?Sized,
    {
        let seq = self.fresh_seq(core);
        let msg_name = format!("queue/msg-{core}-{seq}");
        let env_name = format!("queue/env-{core}-{seq}");
        let flags = self.config.open_flags();

        timed(obs, core, MailStage::Enqueue, || {
            let msg_fd = self.kernel.open(core, pid, &msg_name, flags)?;
            self.kernel.write(core, pid, msg_fd, body)?;
            self.kernel.close(core, pid, msg_fd)?;

            let env_fd = self.kernel.open(core, pid, &env_name, flags)?;
            let envelope = format!("{mailbox}\n{msg_name}");
            self.kernel.write(core, pid, env_fd, envelope.as_bytes())?;
            self.kernel.close(core, pid, env_fd)
        })?;

        timed(obs, core, MailStage::Notify, || {
            self.kernel.send(
                core,
                self.shard_socket(self.topology.shard_of(mailbox)),
                env_name.as_bytes(),
            )
        })?;
        Ok(env_name)
    }

    /// One step of `mail-qman`: receive a notification, read the envelope,
    /// spawn a delivery helper, deliver the message, and clean up the queue.
    /// Returns the mailbox file the message was delivered to, or
    /// `Err(EAGAIN)` when no notification is pending.
    pub fn qman_step(&self, core: CoreId, pid: Pid) -> KResult<String> {
        self.qman_step_observed(core, pid, &NoMailObs)
    }

    /// [`MailServer::qman_step`] with stage observation. An empty queue
    /// (`Err(EAGAIN)`) records no stage, so polling loops don't flood the
    /// observer; a received message reports one span per pipeline stage.
    /// Polls every shard (starting from `core`'s rotation) — with the
    /// default single-shard topology this makes exactly one `recv` per
    /// step, preserving the retry-tail invariant the telemetry tests pin.
    pub fn qman_step_observed<O>(&self, core: CoreId, pid: Pid, obs: &O) -> KResult<String>
    where
        O: MailStageObserver + ?Sized,
    {
        let shards = self.notify.len();
        for probe in 0..shards {
            let shard = (core + probe) % shards;
            match self.qman_step_shard(core, pid, shard, obs) {
                Err(Errno::EAGAIN) => continue,
                other => return other.map(|d| d.file),
            }
        }
        Err(Errno::EAGAIN)
    }

    /// One step of `mail-qman` serving qman index `q`: polls only the
    /// shards `q` owns under the topology, returning the full
    /// [`Delivered`] record (body included) of the first message found, or
    /// `Err(EAGAIN)` when all owned shards are empty.
    pub fn qman_step_for<O>(&self, core: CoreId, pid: Pid, q: usize, obs: &O) -> KResult<Delivered>
    where
        O: MailStageObserver + ?Sized,
    {
        let owned: Vec<usize> = self.topology.shards_of_qman(q).collect();
        for (i, _) in owned.iter().enumerate() {
            // Rotate the polling origin by core so co-owned shards are not
            // always drained in the same order.
            let shard = owned[(i + core) % owned.len()];
            match self.qman_step_shard(core, pid, shard, obs) {
                Err(Errno::EAGAIN) => continue,
                other => return other,
            }
        }
        Err(Errno::EAGAIN)
    }

    /// The single-shard qman step: receive from `shard`'s socket, read the
    /// envelope, spawn/deliver/reap, clean the spool.
    ///
    /// Composed from the public stage methods below so robust drivers
    /// (the chaos pipeline's supervised qmans) can run the same stages
    /// individually, pause between them, and resume an interrupted
    /// [`Envelope`] from exactly where it stopped.
    pub fn qman_step_shard<O>(
        &self,
        core: CoreId,
        pid: Pid,
        shard: usize,
        obs: &O,
    ) -> KResult<Delivered>
    where
        O: MailStageObserver + ?Sized,
    {
        let env_name = self.recv_notification(core, shard)?;
        let envelope = self.read_envelope(core, pid, &env_name, shard, obs)?;
        let helper = self.spawn_helper(core, pid, &envelope, obs)?;
        let file = self.deliver_as_helper(core, helper, &envelope, obs)?;
        self.reap_helper(core, pid, helper, obs)?;
        self.cleanup_spool(core, pid, &envelope, obs)?;
        Ok(envelope.into_delivered(file))
    }

    /// Stage 0 of the qman step: one `recv` on `shard`'s notification
    /// socket, returning the envelope file name (`Err(EAGAIN)` when the
    /// shard is idle). Deliberately unobserved — polling loops would flood
    /// the stage trace; the retry-tail invariant counts these recvs via
    /// the syscall recorder instead.
    pub fn recv_notification(&self, core: CoreId, shard: usize) -> KResult<String> {
        let notification = self.kernel.recv(core, self.shard_socket(shard))?;
        Ok(String::from_utf8_lossy(&notification).to_string())
    }

    /// Stage [`MailStage::Receive`]: read the envelope spool file and open
    /// the queued message, returning the in-flight [`Envelope`].
    pub fn read_envelope<O>(
        &self,
        core: CoreId,
        pid: Pid,
        env_name: &str,
        shard: usize,
        obs: &O,
    ) -> KResult<Envelope>
    where
        O: MailStageObserver + ?Sized,
    {
        let flags = self.config.open_flags();
        timed(obs, core, MailStage::Receive, || {
            let env_fd = self.kernel.open(core, pid, env_name, flags)?;
            let envelope = self.kernel.pread(core, pid, env_fd, 4096, 0)?;
            self.kernel.close(core, pid, env_fd)?;
            let envelope = String::from_utf8_lossy(&envelope).to_string();
            let mut lines = envelope.lines();
            let mailbox = lines.next().ok_or(Errno::EINVAL)?.to_string();
            let msg_name = lines.next().ok_or(Errno::EINVAL)?.to_string();

            let msg_fd = self.kernel.open(core, pid, &msg_name, flags)?;
            let body = self.kernel.pread(core, pid, msg_fd, 65536, 0)?;
            Ok(Envelope {
                env_name: env_name.to_string(),
                mailbox,
                msg_name,
                msg_fd,
                body,
                shard,
            })
        })
    }

    /// Stage [`MailStage::Spawn`]: create the delivery helper. In the
    /// regular configuration this is a fork (snapshotting the whole
    /// descriptor table); in the commutative configuration `posix_spawn`
    /// builds the child image directly.
    pub fn spawn_helper<O>(
        &self,
        core: CoreId,
        pid: Pid,
        envelope: &Envelope,
        obs: &O,
    ) -> KResult<Pid>
    where
        O: MailStageObserver + ?Sized,
    {
        timed(obs, core, MailStage::Spawn, || match self.config {
            MailConfig::RegularApis => self.kernel.fork(core, pid),
            MailConfig::CommutativeApis => self.kernel.posix_spawn(core, pid, &[envelope.msg_fd]),
        })
    }

    /// Stage [`MailStage::Deliver`]: mail-deliver, running as the helper
    /// process, writes the message into the recipient's mailbox. Returns
    /// the mailbox file name.
    pub fn deliver_as_helper<O>(
        &self,
        core: CoreId,
        helper: Pid,
        envelope: &Envelope,
        obs: &O,
    ) -> KResult<String>
    where
        O: MailStageObserver + ?Sized,
    {
        timed(obs, core, MailStage::Deliver, || {
            self.deliver(core, helper, &envelope.mailbox, &envelope.body)
        })
    }

    /// Stage [`MailStage::Reap`]: wait for (reap) the helper. Under fork
    /// this releases the full descriptor-table snapshot; under
    /// `posix_spawn` only the explicitly duplicated descriptors were ever
    /// there.
    pub fn reap_helper<O>(&self, core: CoreId, pid: Pid, helper: Pid, obs: &O) -> KResult<()>
    where
        O: MailStageObserver + ?Sized,
    {
        timed(obs, core, MailStage::Reap, || {
            self.kernel.wait(core, pid, helper)
        })
    }

    /// Stage [`MailStage::Cleanup`]: close the message descriptor and
    /// unlink both spool files.
    pub fn cleanup_spool<O>(
        &self,
        core: CoreId,
        pid: Pid,
        envelope: &Envelope,
        obs: &O,
    ) -> KResult<()>
    where
        O: MailStageObserver + ?Sized,
    {
        timed(obs, core, MailStage::Cleanup, || {
            self.kernel.close(core, pid, envelope.msg_fd)?;
            self.kernel.unlink(core, pid, &envelope.msg_name)?;
            self.kernel.unlink(core, pid, &envelope.env_name)
        })
    }

    /// Delivers an [`Envelope`] whose retry budget ran out into the
    /// dead-letter mailbox ([`DEAD_LETTER`]), as `pid` (no helper spawn —
    /// the budget-exhausted path must not depend on the faultable spawn
    /// call succeeding). The caller still owns spool cleanup.
    pub fn dead_letter(&self, core: CoreId, pid: Pid, envelope: &Envelope) -> KResult<String> {
        self.deliver(core, pid, DEAD_LETTER, &envelope.body)
    }

    /// `mail-deliver`: writes `body` into a fresh file in `mailbox`'s
    /// Maildir. Returns the delivered file name.
    pub fn deliver(&self, core: CoreId, pid: Pid, mailbox: &str, body: &[u8]) -> KResult<String> {
        let seq = self.fresh_seq(core);
        let name = format!("mail/{mailbox}/new-{core}-{seq}");
        let fd = self
            .kernel
            .open(core, pid, &name, self.config.open_flags())?;
        self.kernel.write(core, pid, fd, body)?;
        self.kernel.close(core, pid, fd)?;
        Ok(name)
    }

    /// End-to-end convenience used by the benchmarks: enqueue a message and
    /// immediately run one queue-manager step on the same core.
    pub fn deliver_one(
        &self,
        core: CoreId,
        client_pid: Pid,
        qman_pid: Pid,
        mailbox: &str,
        body: &[u8],
    ) -> KResult<String> {
        self.enqueue(core, client_pid, mailbox, body)?;
        self.qman_step(core, qman_pid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linuxlike::LinuxLikeKernel;
    use crate::sv6::Sv6Kernel;

    fn run_end_to_end(kernel: &dyn SyscallApi, config: MailConfig) {
        let client = kernel.new_process();
        let qman = kernel.new_process();
        let server = MailServer::new(kernel, config, 4).unwrap();
        let env = server.enqueue(0, client, "alice", b"hello alice").unwrap();
        assert!(env.starts_with("queue/env-"));
        let delivered = server.qman_step(1, qman).unwrap();
        assert!(delivered.starts_with("mail/alice/"));
        // The queue files are gone; the mailbox file holds the message.
        assert_eq!(
            kernel.stat(0, qman, &env).unwrap_err(),
            Errno::ENOENT,
            "envelope must be unlinked after delivery"
        );
        let fd = kernel
            .open(0, qman, &delivered, OpenFlags::plain())
            .unwrap();
        assert_eq!(kernel.pread(0, qman, fd, 64, 0).unwrap(), b"hello alice");
    }

    #[test]
    fn mail_pipeline_works_on_sv6_with_commutative_apis() {
        let k = Sv6Kernel::new(4);
        run_end_to_end(&k, MailConfig::CommutativeApis);
    }

    #[test]
    fn mail_pipeline_works_on_sv6_with_regular_apis() {
        let k = Sv6Kernel::new(4);
        run_end_to_end(&k, MailConfig::RegularApis);
    }

    #[test]
    fn mail_pipeline_works_on_the_linux_like_baseline() {
        let k = LinuxLikeKernel::new(4);
        run_end_to_end(&k, MailConfig::RegularApis);
    }

    #[test]
    fn qman_reports_eagain_when_queue_is_empty() {
        let k = Sv6Kernel::new(2);
        let qman = k.new_process();
        let server = MailServer::new(&k, MailConfig::CommutativeApis, 2).unwrap();
        assert_eq!(server.qman_step(0, qman), Err(Errno::EAGAIN));
    }

    #[test]
    fn commutative_config_selects_anyfd_and_unordered() {
        assert!(MailConfig::CommutativeApis.open_flags().anyfd);
        assert_eq!(
            MailConfig::CommutativeApis.socket_order(),
            SocketOrder::Unordered
        );
        assert!(!MailConfig::RegularApis.open_flags().anyfd);
        assert_eq!(MailConfig::RegularApis.socket_order(), SocketOrder::Ordered);
    }

    #[test]
    fn stage_observer_sees_every_stage_once_per_message() {
        use std::sync::Mutex;
        struct Collect(Mutex<Vec<MailStage>>);
        impl MailStageObserver for Collect {
            fn observe_stage(&self, _: CoreId, stage: MailStage, started: Instant, ended: Instant) {
                assert!(started <= ended);
                self.0.lock().unwrap().push(stage);
            }
        }
        let k = Sv6Kernel::new(2);
        let client = k.new_process();
        let qman = k.new_process();
        let server = MailServer::new(&k, MailConfig::CommutativeApis, 2).unwrap();
        let obs = Collect(Mutex::new(Vec::new()));
        server
            .enqueue_observed(0, client, "alice", b"hi", &obs)
            .unwrap();
        server.qman_step_observed(1, qman, &obs).unwrap();
        assert_eq!(obs.0.lock().unwrap().as_slice(), &MailStage::ALL);
        // An empty queue reports EAGAIN without recording a stage.
        assert_eq!(server.qman_step_observed(1, qman, &obs), Err(Errno::EAGAIN));
        assert_eq!(obs.0.lock().unwrap().len(), MailStage::ALL.len());
    }

    #[test]
    fn topology_partitions_shards_across_qmans() {
        let t = MailTopology::new(2, 3).with_shards(6);
        assert_eq!(t.cores(), 5);
        assert_eq!(t.qman_core(0), 2);
        assert_eq!(t.qman_core(2), 4);
        // Every shard is owned by exactly one qman.
        let mut owned = vec![0usize; t.notify_shards];
        for q in 0..t.qmans {
            for s in t.shards_of_qman(q) {
                assert_eq!(t.qman_of_shard(s), q);
                owned[s] += 1;
            }
        }
        assert!(owned.iter().all(|&n| n == 1), "{owned:?}");
        // Mailbox shard assignment is deterministic and in range.
        for m in 0..100 {
            let name = format!("user{m}");
            assert_eq!(t.shard_of(&name), t.shard_of(&name));
            assert!(t.shard_of(&name) < t.notify_shards);
        }
    }

    #[test]
    fn sharded_server_routes_mailboxes_to_owned_qmans_only() {
        let k = Sv6Kernel::new(6);
        let client = k.new_process();
        let qman = k.new_process();
        let topology = MailTopology::new(2, 2).with_shards(4);
        let server =
            MailServer::with_topology(&k, MailConfig::CommutativeApis, topology, 6).unwrap();
        // Enqueue to mailboxes covering several shards.
        let mut shard_count = vec![0usize; topology.notify_shards];
        for m in 0..16 {
            let mailbox = format!("user{m}");
            shard_count[topology.shard_of(&mailbox)] += 1;
            server.enqueue(0, client, &mailbox, b"x").unwrap();
        }
        assert!(shard_count.iter().filter(|&&n| n > 0).count() >= 2);
        // Each qman drains exactly the shards it owns; together they drain
        // everything, and every Delivered record names its shard.
        let mut total = 0;
        for q in 0..topology.qmans {
            let mut expect: usize = topology.shards_of_qman(q).map(|s| shard_count[s]).sum();
            while let Ok(d) = server.qman_step_for(topology.qman_core(q), qman, q, &NoMailObs) {
                assert_eq!(topology.qman_of_shard(d.shard), q);
                assert_eq!(topology.shard_of(&d.mailbox), d.shard);
                assert_eq!(d.body, b"x");
                expect -= 1;
                total += 1;
            }
            assert_eq!(expect, 0, "qman {q} left owned messages behind");
        }
        assert_eq!(total, 16);
    }

    #[test]
    fn single_shard_compat_path_is_unchanged() {
        let k = Sv6Kernel::new(2);
        let server = MailServer::new(&k, MailConfig::RegularApis, 2).unwrap();
        assert_eq!(server.topology().notify_shards, 1);
        assert_eq!(server.notify_socket(), server.shard_socket(0));
    }

    #[test]
    fn many_messages_from_multiple_cores_all_deliver() {
        let k = Sv6Kernel::new(4);
        let client = k.new_process();
        let qman = k.new_process();
        let server = MailServer::new(&k, MailConfig::CommutativeApis, 4).unwrap();
        for round in 0..3 {
            for core in 0..4 {
                server
                    .enqueue(core, client, "bob", format!("m{round}-{core}").as_bytes())
                    .unwrap();
            }
        }
        let mut delivered = 0;
        for core in 0..4 {
            while server.qman_step(core, qman).is_ok() {
                delivered += 1;
            }
        }
        assert_eq!(delivered, 12);
    }
}
