//! The Linux-like baseline kernel.
//!
//! This implementation deliberately reproduces the sharing structure §6.2
//! identifies as the sources of conflicts in Linux 3.8's ramfs and virtual
//! memory system:
//!
//! * **dentry reference counts** — every successful name lookup bumps (and
//!   then drops) the target dentry's reference count, so any two path
//!   operations on the same name conflict even when they commute.
//! * **`struct file` reference counts** — every descriptor operation does an
//!   `fget`/`fput` pair on the open file's shared count, so two `fstat`s of
//!   the same descriptor conflict.
//! * **parent directory lock** — any operation that creates or removes a
//!   name takes the parent directory's mutex, so creating *different* files
//!   in one directory conflicts.
//! * **lowest-FD allocation** under a process-wide descriptor-table lock.
//! * **a global inode number counter** shared by all creations.
//! * **`mmap_sem`** — address-space changes serialise on one per-process
//!   lock and rewrite a single VMA-table cell, so `mmap`/`munmap`/`mprotect`
//!   conflict with each other and with page faults walking the table.
//!
//! Everything else (page-granular file contents, per-page anonymous memory)
//! uses per-page storage, because Linux's page cache does scale for accesses
//! to different pages — the point of Figure 6-left is that Linux already
//! scales for many commutative cases, just not for all of them.

use crate::api::{
    Errno, Fd, Ino, KResult, KernelApi, MmapBacking, OpenFlags, Pid, Prot, SockId, SocketOrder,
    Stat, StatMask, SyscallApi, Whence, PAGE_SIZE,
};
use crate::socket::SocketTable;
use scr_mtrace::{CoreId, SimMachine, TracedCell};
use scr_scalable::{RadixArray, TracedLock};
use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::rc::Rc;

/// Maximum descriptors per process.
const FD_TABLE_SIZE: usize = 64;

/// A directory entry cache entry: the name's inode and its reference count.
struct Dentry {
    refcount: TracedCell<i64>,
    ino: TracedCell<Option<Ino>>,
}

/// An in-memory inode with conventional (non-scalable) metadata.
struct Inode {
    ino: Ino,
    /// Plain shared link count.
    nlink: TracedCell<i64>,
    /// Plain shared size (bytes).
    size: TracedCell<u64>,
    /// Inode mutex guarding metadata updates.
    lock: TracedLock,
    /// Page contents (the buffer cache does scale per page).
    pages: RadixArray<Vec<u8>>,
}

struct Pipe {
    buffer: TracedCell<VecDeque<u8>>,
    readers: TracedCell<i64>,
    writers: TracedCell<i64>,
}

#[derive(Clone)]
enum FileObj {
    File(Rc<Inode>),
    PipeRead(Rc<Pipe>),
    PipeWrite(Rc<Pipe>),
}

/// An open file description with the shared `f_count`.
struct OpenFile {
    obj: FileObj,
    offset: TracedCell<u64>,
    refcount: TracedCell<i64>,
}

/// One page of a mapping.
#[derive(Clone)]
enum PageBacking {
    Anon(TracedCell<u8>),
    File { ino: Ino, file_page: u64 },
}

/// A VMA-table entry (per page, stored in one shared table cell).
#[derive(Clone)]
struct MappedPage {
    prot: Prot,
    backing: PageBacking,
}

struct Process {
    /// The descriptor table: a single cell, guarded by `files_lock`.
    fd_table: TracedCell<Vec<Option<Rc<OpenFile>>>>,
    files_lock: TracedLock,
    /// The VMA table: one cell mapping virtual page number → mapping.
    vma_table: TracedCell<BTreeMap<u64, MappedPage>>,
    mmap_sem: TracedLock,
    /// Shared bump allocator for hint-less mmap placement.
    next_vpn: TracedCell<u64>,
}

/// The Linux-like baseline kernel.
pub struct LinuxLikeKernel {
    machine: SimMachine,
    /// Root directory: entries map plus the parent-directory mutex.
    root_entries: TracedCell<BTreeMap<String, Ino>>,
    root_lock: TracedLock,
    dentries: Rc<RefCell<HashMap<String, Rc<Dentry>>>>,
    inodes: Rc<RefCell<HashMap<Ino, Rc<Inode>>>>,
    next_ino: TracedCell<u64>,
    procs: Rc<RefCell<Vec<Rc<Process>>>>,
    sockets: SocketTable,
}

impl LinuxLikeKernel {
    /// Builds a baseline kernel on a fresh simulated machine.
    pub fn new(cores: usize) -> Self {
        let machine = SimMachine::new();
        Self::on_machine(&machine, cores)
    }

    /// Builds a baseline kernel on an existing machine.
    pub fn on_machine(machine: &SimMachine, cores: usize) -> Self {
        LinuxLikeKernel {
            machine: machine.clone(),
            root_entries: machine.cell("root.entries", BTreeMap::new()),
            root_lock: TracedLock::new(machine, "root.i_mutex"),
            dentries: Rc::new(RefCell::new(HashMap::new())),
            inodes: Rc::new(RefCell::new(HashMap::new())),
            next_ino: machine.cell("sb.next_ino", 1u64),
            procs: Rc::new(RefCell::new(Vec::new())),
            sockets: SocketTable::new(machine, cores),
        }
    }

    fn proc(&self, pid: Pid) -> KResult<Rc<Process>> {
        self.procs.borrow().get(pid).cloned().ok_or(Errno::EINVAL)
    }

    fn inode(&self, ino: Ino) -> Option<Rc<Inode>> {
        self.inodes.borrow().get(&ino).cloned()
    }

    fn dentry(&self, name: &str) -> Rc<Dentry> {
        let mut dentries = self.dentries.borrow_mut();
        if let Some(d) = dentries.get(name) {
            return Rc::clone(d);
        }
        let d = Rc::new(Dentry {
            refcount: self.machine.cell(format!("dentry[{name}].d_count"), 0i64),
            ino: self.machine.cell(format!("dentry[{name}].d_inode"), None),
        });
        dentries.insert(name.to_string(), Rc::clone(&d));
        d
    }

    /// Path lookup with dcache semantics: bump and drop the dentry reference
    /// count (a write), then read the cached inode pointer. A negative or
    /// missing dentry falls back to the directory entries map.
    fn lookup(&self, name: &str) -> Option<Ino> {
        let dentry = self.dentry(name);
        dentry.refcount.update(|c| *c += 1);
        let cached = dentry.ino.get();
        dentry.refcount.update(|c| *c -= 1);
        match cached {
            Some(ino) => Some(ino),
            None => {
                let ino = self.root_entries.with(|m| m.get(name).copied());
                if let Some(ino) = ino {
                    dentry.ino.set(Some(ino));
                }
                ino
            }
        }
    }

    fn new_inode(&self) -> Rc<Inode> {
        // Global inode number allocation: a shared counter.
        let ino = self.next_ino.fetch_update(|v| v + 1);
        let inode = Rc::new(Inode {
            ino,
            nlink: self.machine.cell(format!("inode[{ino}].i_nlink"), 0i64),
            size: self.machine.cell(format!("inode[{ino}].i_size"), 0u64),
            lock: TracedLock::new(&self.machine, format!("inode[{ino}].i_mutex")),
            pages: RadixArray::new(&self.machine, &format!("inode[{ino}].pagecache")),
        });
        self.inodes.borrow_mut().insert(ino, Rc::clone(&inode));
        inode
    }

    /// `fget`: look up the descriptor and bump the open file's reference
    /// count.
    fn fget(&self, proc_: &Process, fd: Fd) -> KResult<Rc<OpenFile>> {
        let file = proc_
            .fd_table
            .with(|table| table.get(fd as usize).cloned().flatten())
            .ok_or(Errno::EBADF)?;
        file.refcount.update(|c| *c += 1);
        Ok(file)
    }

    /// `fput`: drop the reference taken by [`Self::fget`].
    fn fput(&self, file: &OpenFile) {
        file.refcount.update(|c| *c -= 1);
    }

    fn install_fd(&self, proc_: &Process, file: Rc<OpenFile>) -> KResult<Fd> {
        // Lowest available descriptor under the process-wide table lock.
        proc_.files_lock.with(|| {
            proc_.fd_table.update(|table| {
                let slot = table
                    .iter()
                    .position(|f| f.is_none())
                    .ok_or(Errno::EMFILE)?;
                table[slot] = Some(file.clone());
                Ok(slot as Fd)
            })
        })
    }

    fn file_stat(&self, inode: &Inode) -> Stat {
        Stat {
            ino: inode.ino,
            size: inode.size.get(),
            nlink: inode.nlink.get(),
            is_pipe: false,
        }
    }

    fn file_read_at(&self, inode: &Inode, offset: u64, len: u64) -> Vec<u8> {
        let size = inode.size.get();
        if offset >= size || len == 0 {
            return Vec::new();
        }
        let len = len.min(size - offset);
        let mut out = Vec::new();
        let first_page = offset / PAGE_SIZE;
        let last_page = (offset + len - 1) / PAGE_SIZE;
        for page in first_page..=last_page {
            let data = inode.pages.get(page as usize).unwrap_or_default();
            let page_start = page * PAGE_SIZE;
            let begin = (offset.max(page_start) - page_start) as usize;
            let end = (((offset + len).min(page_start + PAGE_SIZE)) - page_start) as usize;
            let end = end.min(data.len().max(begin));
            if begin < data.len() {
                out.extend_from_slice(&data[begin..end.min(data.len())]);
            } else {
                out.extend(std::iter::repeat_n(0, end - begin));
            }
        }
        out
    }

    fn file_write_at(&self, inode: &Inode, offset: u64, data: &[u8]) -> u64 {
        if data.is_empty() {
            return 0;
        }
        let mut written = 0u64;
        let mut cursor = offset;
        while written < data.len() as u64 {
            let page = cursor / PAGE_SIZE;
            let in_page = (cursor % PAGE_SIZE) as usize;
            let chunk = ((PAGE_SIZE as usize) - in_page).min(data.len() - written as usize);
            let mut page_data = inode.pages.get(page as usize).unwrap_or_default();
            if page_data.len() < in_page + chunk {
                page_data.resize(in_page + chunk, 0);
            }
            page_data[in_page..in_page + chunk]
                .copy_from_slice(&data[written as usize..written as usize + chunk]);
            inode.pages.set(page as usize, page_data);
            written += chunk as u64;
            cursor += chunk as u64;
        }
        // i_size update under the inode mutex (the conventional protocol).
        let end = offset + written;
        inode.lock.with(|| {
            if inode.size.get() < end {
                inode.size.set(end);
            }
        });
        written
    }
}

/// Adjusts a descriptor's pipe-endpoint count: duplication (fork's
/// snapshot) takes a reference (`+1`); close, exec-close and wait drop
/// one (`-1`). The per-file `f_count` is handled separately by callers.
fn adjust_pipe_endpoint(file: &OpenFile, delta: i64) {
    match &file.obj {
        FileObj::File(_) => {}
        FileObj::PipeRead(pipe) => {
            pipe.readers.update(|r| *r += delta);
        }
        FileObj::PipeWrite(pipe) => {
            pipe.writers.update(|w| *w += delta);
        }
    }
}

impl KernelApi for LinuxLikeKernel {
    fn machine(&self) -> &SimMachine {
        &self.machine
    }
}

impl SyscallApi for LinuxLikeKernel {
    fn new_process(&self) -> Pid {
        let pid = self.procs.borrow().len();
        let proc_ = Rc::new(Process {
            fd_table: self.machine.cell(
                format!("proc[{pid}].files.fd_array"),
                vec![None; FD_TABLE_SIZE],
            ),
            files_lock: TracedLock::new(&self.machine, format!("proc[{pid}].files.file_lock")),
            vma_table: self
                .machine
                .cell(format!("proc[{pid}].mm.vma_table"), BTreeMap::new()),
            mmap_sem: TracedLock::new(&self.machine, format!("proc[{pid}].mm.mmap_sem")),
            next_vpn: self.machine.cell(format!("proc[{pid}].mm.next_vpn"), 1u64),
        });
        self.procs.borrow_mut().push(proc_);
        pid
    }

    fn open(&self, _core: CoreId, pid: Pid, name: &str, flags: OpenFlags) -> KResult<Fd> {
        let proc_ = self.proc(pid)?;
        let ino = match self.lookup(name) {
            Some(ino) => {
                if flags.create && flags.excl {
                    return Err(Errno::EEXIST);
                }
                ino
            }
            None => {
                if !flags.create {
                    return Err(Errno::ENOENT);
                }
                // Creation takes the parent directory lock and writes the
                // shared entries map and the global inode counter.
                self.root_lock.with(|| {
                    let existing = self.root_entries.with(|m| m.get(name).copied());
                    match existing {
                        Some(ino) => {
                            if flags.excl {
                                Err(Errno::EEXIST)
                            } else {
                                Ok(ino)
                            }
                        }
                        None => {
                            let inode = self.new_inode();
                            inode.nlink.update(|n| *n += 1);
                            self.root_entries
                                .update(|m| m.insert(name.to_string(), inode.ino));
                            self.dentry(name).ino.set(Some(inode.ino));
                            Ok(inode.ino)
                        }
                    }
                })?
            }
        };
        let inode = self.inode(ino).ok_or(Errno::ENOENT)?;
        if flags.truncate {
            inode.lock.with(|| {
                inode.size.set(0);
                for page in inode.pages.indices_untraced() {
                    inode.pages.take(page);
                }
            });
        }
        let file = Rc::new(OpenFile {
            obj: FileObj::File(inode),
            offset: self
                .machine
                .cell(format!("proc[{pid}].file[{name}].f_pos"), 0u64),
            refcount: self
                .machine
                .cell(format!("proc[{pid}].file[{name}].f_count"), 1i64),
        });
        self.install_fd(&proc_, file)
    }

    fn link(&self, _core: CoreId, pid: Pid, old: &str, new: &str) -> KResult<()> {
        let _ = self.proc(pid)?;
        let ino = self.lookup(old).ok_or(Errno::ENOENT)?;
        let inode = self.inode(ino).ok_or(Errno::ENOENT)?;
        self.root_lock.with(|| {
            if self.root_entries.with(|m| m.contains_key(new)) {
                return Err(Errno::EEXIST);
            }
            self.root_entries.update(|m| m.insert(new.to_string(), ino));
            self.dentry(new).ino.set(Some(ino));
            inode.nlink.update(|n| *n += 1);
            Ok(())
        })
    }

    fn unlink(&self, _core: CoreId, pid: Pid, name: &str) -> KResult<()> {
        let _ = self.proc(pid)?;
        // The lookup bumps the dentry refcount even when we are about to
        // remove the name.
        let ino = self.lookup(name).ok_or(Errno::ENOENT)?;
        self.root_lock.with(|| {
            self.root_entries.update(|m| m.remove(name));
            self.dentry(name).ino.set(None);
            if let Some(inode) = self.inode(ino) {
                inode.nlink.update(|n| *n -= 1);
                if inode.nlink.with(|n| *n) <= 0 {
                    self.inodes.borrow_mut().remove(&ino);
                }
            }
            Ok(())
        })
    }

    fn rename(&self, _core: CoreId, pid: Pid, src: &str, dst: &str) -> KResult<()> {
        let _ = self.proc(pid)?;
        let src_ino = self.lookup(src).ok_or(Errno::ENOENT)?;
        if src == dst {
            return Ok(());
        }
        self.root_lock.with(|| {
            let displaced = self.root_entries.with(|m| m.get(dst).copied());
            self.root_entries.update(|m| {
                m.remove(src);
                m.insert(dst.to_string(), src_ino);
            });
            self.dentry(src).ino.set(None);
            self.dentry(dst).ino.set(Some(src_ino));
            if let Some(old_ino) = displaced {
                if old_ino != src_ino {
                    if let Some(old) = self.inode(old_ino) {
                        old.nlink.update(|n| *n -= 1);
                        if old.nlink.with(|n| *n) <= 0 {
                            self.inodes.borrow_mut().remove(&old_ino);
                        }
                    }
                } else {
                    // Renaming onto a hard link of the same inode: the name
                    // count drops by one.
                    if let Some(inode) = self.inode(src_ino) {
                        inode.nlink.update(|n| *n -= 1);
                    }
                }
            }
            Ok(())
        })
    }

    fn stat(&self, _core: CoreId, pid: Pid, name: &str) -> KResult<Stat> {
        let _ = self.proc(pid)?;
        let ino = self.lookup(name).ok_or(Errno::ENOENT)?;
        let inode = self.inode(ino).ok_or(Errno::ENOENT)?;
        Ok(self.file_stat(&inode))
    }

    fn fstat(&self, _core: CoreId, pid: Pid, fd: Fd) -> KResult<Stat> {
        let proc_ = self.proc(pid)?;
        let file = self.fget(&proc_, fd)?;
        let result = match &file.obj {
            FileObj::File(inode) => Ok(self.file_stat(inode)),
            FileObj::PipeRead(_) | FileObj::PipeWrite(_) => Ok(Stat {
                ino: 0,
                size: 0,
                nlink: 0,
                is_pipe: true,
            }),
        };
        self.fput(&file);
        result
    }

    fn fstatx(&self, core: CoreId, pid: Pid, fd: Fd, mask: StatMask) -> KResult<Stat> {
        // Linux has no field-selective stat: gather everything, then mask.
        let full = self.fstat(core, pid, fd)?;
        Ok(Stat {
            ino: if mask.want_ino { full.ino } else { 0 },
            size: if mask.want_size { full.size } else { 0 },
            nlink: if mask.want_nlink { full.nlink } else { 0 },
            is_pipe: full.is_pipe,
        })
    }

    fn lseek(&self, _core: CoreId, pid: Pid, fd: Fd, offset: i64, whence: Whence) -> KResult<u64> {
        let proc_ = self.proc(pid)?;
        let file = self.fget(&proc_, fd)?;
        let result = (|| {
            let inode = match &file.obj {
                FileObj::File(inode) => inode,
                _ => return Err(Errno::ESPIPE),
            };
            let base = match whence {
                Whence::Set => 0i64,
                Whence::Cur => file.offset.get() as i64,
                Whence::End => inode.size.get() as i64,
            };
            let target = base + offset;
            if target < 0 {
                return Err(Errno::EINVAL);
            }
            // Unconditional update of the shared file position.
            file.offset.set(target as u64);
            Ok(target as u64)
        })();
        self.fput(&file);
        result
    }

    fn close(&self, _core: CoreId, pid: Pid, fd: Fd) -> KResult<()> {
        let proc_ = self.proc(pid)?;
        let file = proc_.files_lock.with(|| {
            proc_.fd_table.update(|table| {
                table
                    .get_mut(fd as usize)
                    .and_then(|slot| slot.take())
                    .ok_or(Errno::EBADF)
            })
        })?;
        file.refcount.update(|c| *c -= 1);
        adjust_pipe_endpoint(&file, -1);
        Ok(())
    }

    fn pipe(&self, _core: CoreId, pid: Pid) -> KResult<(Fd, Fd)> {
        let proc_ = self.proc(pid)?;
        let id = self.machine.access_count();
        let pipe = Rc::new(Pipe {
            buffer: self
                .machine
                .cell(format!("pipe[{pid}:{id}].buffer"), VecDeque::new()),
            readers: self.machine.cell(format!("pipe[{pid}:{id}].readers"), 1i64),
            writers: self.machine.cell(format!("pipe[{pid}:{id}].writers"), 1i64),
        });
        let read_end = Rc::new(OpenFile {
            obj: FileObj::PipeRead(Rc::clone(&pipe)),
            offset: self.machine.cell(format!("pipe[{pid}:{id}].roff"), 0u64),
            refcount: self.machine.cell(format!("pipe[{pid}:{id}].rcount"), 1i64),
        });
        let write_end = Rc::new(OpenFile {
            obj: FileObj::PipeWrite(pipe),
            offset: self.machine.cell(format!("pipe[{pid}:{id}].woff"), 0u64),
            refcount: self.machine.cell(format!("pipe[{pid}:{id}].wcount"), 1i64),
        });
        let rfd = self.install_fd(&proc_, read_end)?;
        let wfd = self.install_fd(&proc_, write_end)?;
        Ok((rfd, wfd))
    }

    fn read(&self, _core: CoreId, pid: Pid, fd: Fd, len: u64) -> KResult<Vec<u8>> {
        let proc_ = self.proc(pid)?;
        let file = self.fget(&proc_, fd)?;
        let result = (|| match &file.obj {
            FileObj::File(inode) => {
                let offset = file.offset.get();
                let data = self.file_read_at(inode, offset, len);
                if !data.is_empty() {
                    file.offset.set(offset + data.len() as u64);
                }
                Ok(data)
            }
            FileObj::PipeRead(pipe) => {
                let data = pipe.buffer.update(|buf| {
                    let take = (len as usize).min(buf.len());
                    buf.drain(..take).collect::<Vec<u8>>()
                });
                if data.is_empty() {
                    if pipe.writers.get() > 0 {
                        return Err(Errno::EAGAIN);
                    }
                    return Ok(Vec::new());
                }
                Ok(data)
            }
            FileObj::PipeWrite(_) => Err(Errno::EBADF),
        })();
        self.fput(&file);
        result
    }

    fn write(&self, _core: CoreId, pid: Pid, fd: Fd, data: &[u8]) -> KResult<u64> {
        let proc_ = self.proc(pid)?;
        let file = self.fget(&proc_, fd)?;
        let result = (|| match &file.obj {
            FileObj::File(inode) => {
                let offset = file.offset.get();
                let written = self.file_write_at(inode, offset, data);
                file.offset.set(offset + written);
                Ok(written)
            }
            FileObj::PipeWrite(pipe) => {
                if pipe.readers.get() == 0 {
                    return Err(Errno::EPIPE);
                }
                pipe.buffer.update(|buf| buf.extend(data.iter().copied()));
                Ok(data.len() as u64)
            }
            FileObj::PipeRead(_) => Err(Errno::EBADF),
        })();
        self.fput(&file);
        result
    }

    fn pread(&self, _core: CoreId, pid: Pid, fd: Fd, len: u64, offset: u64) -> KResult<Vec<u8>> {
        let proc_ = self.proc(pid)?;
        let file = self.fget(&proc_, fd)?;
        let result = match &file.obj {
            FileObj::File(inode) => Ok(self.file_read_at(inode, offset, len)),
            _ => Err(Errno::ESPIPE),
        };
        self.fput(&file);
        result
    }

    fn pwrite(&self, _core: CoreId, pid: Pid, fd: Fd, data: &[u8], offset: u64) -> KResult<u64> {
        let proc_ = self.proc(pid)?;
        let file = self.fget(&proc_, fd)?;
        let result = match &file.obj {
            FileObj::File(inode) => Ok(self.file_write_at(inode, offset, data)),
            _ => Err(Errno::ESPIPE),
        };
        self.fput(&file);
        result
    }

    fn mmap(
        &self,
        _core: CoreId,
        pid: Pid,
        addr_hint: Option<u64>,
        pages: u64,
        prot: Prot,
        backing: MmapBacking,
    ) -> KResult<u64> {
        if pages == 0 {
            return Err(Errno::EINVAL);
        }
        let proc_ = self.proc(pid)?;
        let file_ino = match backing {
            MmapBacking::Anon => None,
            MmapBacking::File(fd) => {
                let file = self.fget(&proc_, fd)?;
                let ino = match &file.obj {
                    FileObj::File(inode) => Some(inode.ino),
                    _ => None,
                };
                self.fput(&file);
                match ino {
                    Some(ino) => Some(ino),
                    None => return Err(Errno::EBADF),
                }
            }
        };
        // All address-space changes serialise on mmap_sem and rewrite the
        // shared VMA table.
        proc_.mmap_sem.with(|| {
            let base_vpn = match addr_hint {
                Some(addr) => {
                    if addr % PAGE_SIZE != 0 {
                        return Err(Errno::EINVAL);
                    }
                    addr / PAGE_SIZE
                }
                None => proc_.next_vpn.fetch_update(|v| v + pages) - pages,
            };
            proc_.vma_table.update(|table| {
                for i in 0..pages {
                    let vpn = base_vpn + i;
                    let backing = match file_ino {
                        None => PageBacking::Anon(
                            self.machine
                                .cell(format!("proc[{pid}].anon_page[{vpn}]"), 0u8),
                        ),
                        Some(ino) => PageBacking::File { ino, file_page: i },
                    };
                    table.insert(vpn, MappedPage { prot, backing });
                }
            });
            Ok(base_vpn * PAGE_SIZE)
        })
    }

    fn munmap(&self, _core: CoreId, pid: Pid, addr: u64, pages: u64) -> KResult<()> {
        if !addr.is_multiple_of(PAGE_SIZE) {
            return Err(Errno::EINVAL);
        }
        let proc_ = self.proc(pid)?;
        proc_.mmap_sem.with(|| {
            proc_.vma_table.update(|table| {
                for i in 0..pages {
                    table.remove(&(addr / PAGE_SIZE + i));
                }
            });
            Ok(())
        })
    }

    fn mprotect(&self, _core: CoreId, pid: Pid, addr: u64, pages: u64, prot: Prot) -> KResult<()> {
        if !addr.is_multiple_of(PAGE_SIZE) {
            return Err(Errno::EINVAL);
        }
        let proc_ = self.proc(pid)?;
        proc_.mmap_sem.with(|| {
            proc_.vma_table.update(|table| {
                for i in 0..pages {
                    match table.get_mut(&(addr / PAGE_SIZE + i)) {
                        Some(page) => page.prot = prot,
                        None => return Err(Errno::ENOMEM),
                    }
                }
                Ok(())
            })
        })
    }

    fn memread(&self, _core: CoreId, pid: Pid, addr: u64) -> KResult<u8> {
        let proc_ = self.proc(pid)?;
        let vpn = addr / PAGE_SIZE;
        let in_page = addr % PAGE_SIZE;
        // The page walk reads the shared VMA table (conflicting with any
        // concurrent address-space change).
        let page = proc_
            .vma_table
            .with(|table| table.get(&vpn).cloned())
            .ok_or(Errno::EFAULT)?;
        if !page.prot.read {
            return Err(Errno::EFAULT);
        }
        match &page.backing {
            PageBacking::Anon(cell) => Ok(cell.get()),
            PageBacking::File { ino, file_page } => {
                let inode = self.inode(*ino).ok_or(Errno::EFAULT)?;
                let data = self.file_read_at(&inode, file_page * PAGE_SIZE + in_page, 1);
                Ok(data.first().copied().unwrap_or(0))
            }
        }
    }

    fn memwrite(&self, _core: CoreId, pid: Pid, addr: u64, value: u8) -> KResult<()> {
        let proc_ = self.proc(pid)?;
        let vpn = addr / PAGE_SIZE;
        let in_page = addr % PAGE_SIZE;
        let page = proc_
            .vma_table
            .with(|table| table.get(&vpn).cloned())
            .ok_or(Errno::EFAULT)?;
        if !page.prot.write {
            return Err(Errno::EFAULT);
        }
        match &page.backing {
            PageBacking::Anon(cell) => {
                cell.set(value);
                Ok(())
            }
            PageBacking::File { ino, file_page } => {
                let inode = self.inode(*ino).ok_or(Errno::EFAULT)?;
                self.file_write_at(&inode, file_page * PAGE_SIZE + in_page, &[value]);
                Ok(())
            }
        }
    }

    fn fork(&self, _core: CoreId, pid: Pid) -> KResult<Pid> {
        let parent = self.proc(pid)?;
        let child_pid = self.new_process();
        let child = self.proc(child_pid)?;
        // Snapshot the descriptor table, bumping every open file's count —
        // and every duplicated pipe endpoint's count, so a child exit
        // cannot strand the parent's still-open end (EPIPE/EOF stay
        // exact).
        let files = parent.files_lock.with(|| parent.fd_table.get());
        for file in files.iter().flatten() {
            file.refcount.update(|c| *c += 1);
            adjust_pipe_endpoint(file, 1);
        }
        child.fd_table.set(files);
        Ok(child_pid)
    }

    fn posix_spawn(&self, _core: CoreId, pid: Pid, dup_fds: &[Fd]) -> KResult<Pid> {
        // Validate the dup list first (POSIX fails the spawn on a bad
        // file action), so both kernels agree that a failed spawn leaves
        // no child behind.
        let parent = self.proc(pid)?;
        let missing = parent.fd_table.with(|table| {
            dup_fds
                .iter()
                .any(|&fd| table.get(fd as usize).is_none_or(|slot| slot.is_none()))
        });
        if missing {
            return Err(Errno::EBADF);
        }
        // Linux implements posix_spawn in terms of fork/exec; model the cost
        // as a fork followed by closing everything not in `dup_fds` — with
        // close's full semantics, so the fork-taken references are dropped
        // again.
        let child_pid = self.fork(_core, pid)?;
        let child = self.proc(child_pid)?;
        let dropped = child.fd_table.update(|table| {
            let mut dropped = Vec::new();
            for (fd, slot) in table.iter_mut().enumerate() {
                if slot.is_some() && !dup_fds.contains(&(fd as Fd)) {
                    dropped.extend(slot.take());
                }
            }
            dropped
        });
        for file in dropped {
            file.refcount.update(|c| *c -= 1);
            adjust_pipe_endpoint(&file, -1);
        }
        Ok(child_pid)
    }

    fn wait(&self, _core: CoreId, _pid: Pid, child: Pid) -> KResult<()> {
        // Reap under the process-wide table lock, dropping each file's
        // f_count and pipe endpoint counts exactly as close does.
        let proc_ = self.proc(child)?;
        let files = proc_.files_lock.with(|| {
            proc_.fd_table.update(|table| {
                let taken: Vec<_> = table.iter_mut().filter_map(|slot| slot.take()).collect();
                taken
            })
        });
        for file in files {
            file.refcount.update(|c| *c -= 1);
            adjust_pipe_endpoint(&file, -1);
        }
        Ok(())
    }

    fn socket(&self, _core: CoreId, order: SocketOrder) -> KResult<SockId> {
        // The baseline always enforces datagram ordering (§4: "most systems
        // order all messages sent via a local Unix domain socket").
        let _ = order;
        Ok(self.sockets.create(SocketOrder::Ordered))
    }

    fn send(&self, core: CoreId, sock: SockId, msg: &[u8]) -> KResult<()> {
        self.sockets.send(core, sock, msg)
    }

    fn recv(&self, core: CoreId, sock: SockId) -> KResult<Vec<u8>> {
        self.sockets.recv(core, sock)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel_with_proc() -> (LinuxLikeKernel, Pid) {
        let k = LinuxLikeKernel::new(4);
        let pid = k.new_process();
        (k, pid)
    }

    #[test]
    fn create_write_read_roundtrip() {
        let (k, pid) = kernel_with_proc();
        let fd = k.open(0, pid, "hello", OpenFlags::create()).unwrap();
        assert_eq!(fd, 0, "lowest-FD rule");
        assert_eq!(k.write(0, pid, fd, b"hi").unwrap(), 2);
        assert_eq!(k.lseek(0, pid, fd, 0, Whence::Set).unwrap(), 0);
        assert_eq!(k.read(0, pid, fd, 2).unwrap(), b"hi");
        let st = k.fstat(0, pid, fd).unwrap();
        assert_eq!(st.nlink, 1);
        assert_eq!(st.size, 2);
        k.close(0, pid, fd).unwrap();
    }

    #[test]
    fn lowest_fd_is_reused_after_close() {
        let (k, pid) = kernel_with_proc();
        let a = k.open(0, pid, "a", OpenFlags::create()).unwrap();
        let b = k.open(0, pid, "b", OpenFlags::create()).unwrap();
        assert_eq!((a, b), (0, 1));
        k.close(0, pid, a).unwrap();
        let c = k.open(0, pid, "c", OpenFlags::create()).unwrap();
        assert_eq!(c, 0, "POSIX requires the lowest available descriptor");
    }

    #[test]
    fn link_unlink_rename_roundtrip() {
        let (k, pid) = kernel_with_proc();
        k.open(0, pid, "a", OpenFlags::create()).unwrap();
        k.link(0, pid, "a", "b").unwrap();
        assert_eq!(k.stat(0, pid, "a").unwrap().nlink, 2);
        assert_eq!(k.link(0, pid, "a", "b"), Err(Errno::EEXIST));
        k.rename(0, pid, "b", "c").unwrap();
        assert_eq!(k.stat(0, pid, "b"), Err(Errno::ENOENT));
        assert_eq!(k.stat(0, pid, "c").unwrap().nlink, 2);
        k.unlink(0, pid, "a").unwrap();
        k.unlink(0, pid, "c").unwrap();
        assert_eq!(k.stat(0, pid, "c"), Err(Errno::ENOENT));
    }

    #[test]
    fn mmap_memrw_roundtrip() {
        let (k, pid) = kernel_with_proc();
        let addr = k
            .mmap(0, pid, None, 2, Prot::rw(), MmapBacking::Anon)
            .unwrap();
        k.memwrite(0, pid, addr + PAGE_SIZE, 9).unwrap();
        assert_eq!(k.memread(0, pid, addr + PAGE_SIZE).unwrap(), 9);
        k.mprotect(0, pid, addr, 2, Prot::ro()).unwrap();
        assert_eq!(k.memwrite(0, pid, addr, 1), Err(Errno::EFAULT));
        k.munmap(0, pid, addr, 2).unwrap();
        assert_eq!(k.memread(0, pid, addr), Err(Errno::EFAULT));
    }

    #[test]
    fn pipe_roundtrip() {
        let (k, pid) = kernel_with_proc();
        let (r, w) = k.pipe(0, pid).unwrap();
        k.write(0, pid, w, b"msg").unwrap();
        assert_eq!(k.read(0, pid, r, 3).unwrap(), b"msg");
        k.close(0, pid, r).unwrap();
        assert_eq!(k.write(0, pid, w, b"x"), Err(Errno::EPIPE));
    }

    // --- the §6.2 conflict sources -----------------------------------------

    #[test]
    fn creating_different_files_conflicts_on_parent_lock() {
        let (k, pid) = kernel_with_proc();
        let pid2 = k.new_process();
        let m = k.machine().clone();
        m.start_tracing();
        m.on_core(0, || {
            k.open(0, pid, "alpha", OpenFlags::create()).unwrap();
        });
        m.on_core(1, || {
            k.open(1, pid2, "beta", OpenFlags::create()).unwrap();
        });
        let report = m.conflict_report();
        assert!(!report.is_conflict_free());
        let labels = report.conflicting_labels().join(",");
        assert!(
            labels.contains("i_mutex") || labels.contains("next_ino") || labels.contains("entries"),
            "expected the parent lock / inode counter to conflict, got {labels}"
        );
    }

    #[test]
    fn two_fstats_on_same_fd_conflict_on_f_count() {
        let (k, pid) = kernel_with_proc();
        let fd = k.open(0, pid, "f", OpenFlags::create()).unwrap();
        let m = k.machine().clone();
        m.start_tracing();
        m.on_core(0, || {
            k.fstat(0, pid, fd).unwrap();
        });
        m.on_core(1, || {
            k.fstat(1, pid, fd).unwrap();
        });
        let report = m.conflict_report();
        assert!(!report.is_conflict_free());
        assert!(report.conflicting_labels().join(",").contains("f_count"));
    }

    #[test]
    fn stats_of_same_name_conflict_on_dentry_refcount() {
        let (k, pid) = kernel_with_proc();
        k.open(0, pid, "shared", OpenFlags::create()).unwrap();
        let m = k.machine().clone();
        m.start_tracing();
        m.on_core(0, || {
            k.stat(0, pid, "shared").unwrap();
        });
        m.on_core(1, || {
            k.stat(1, pid, "shared").unwrap();
        });
        let report = m.conflict_report();
        assert!(!report.is_conflict_free());
        assert!(report.conflicting_labels().join(",").contains("d_count"));
    }

    #[test]
    fn stats_of_different_names_are_conflict_free() {
        // Linux does scale for many commutative cases (§6.2): operations on
        // different files that already exist are conflict-free here too.
        let (k, pid) = kernel_with_proc();
        k.open(0, pid, "one", OpenFlags::create()).unwrap();
        k.open(0, pid, "two", OpenFlags::create()).unwrap();
        let m = k.machine().clone();
        m.start_tracing();
        m.on_core(0, || {
            k.stat(0, pid, "one").unwrap();
        });
        m.on_core(1, || {
            k.stat(1, pid, "two").unwrap();
        });
        assert!(m.conflict_report().is_conflict_free());
    }

    #[test]
    fn preads_of_different_pages_same_fd_conflict_on_f_count() {
        let (k, pid) = kernel_with_proc();
        let fd = k.open(0, pid, "data", OpenFlags::create()).unwrap();
        k.pwrite(0, pid, fd, b"a", 0).unwrap();
        k.pwrite(0, pid, fd, b"b", PAGE_SIZE).unwrap();
        let m = k.machine().clone();
        m.start_tracing();
        m.on_core(0, || {
            k.pread(0, pid, fd, 1, 0).unwrap();
        });
        m.on_core(1, || {
            k.pread(1, pid, fd, 1, PAGE_SIZE).unwrap();
        });
        assert!(!m.conflict_report().is_conflict_free());
    }

    #[test]
    fn mmap_conflicts_with_memread_in_same_process() {
        let (k, pid) = kernel_with_proc();
        let addr = k
            .mmap(0, pid, None, 1, Prot::rw(), MmapBacking::Anon)
            .unwrap();
        let m = k.machine().clone();
        m.start_tracing();
        m.on_core(0, || {
            k.mmap(0, pid, None, 1, Prot::rw(), MmapBacking::Anon)
                .unwrap();
        });
        m.on_core(1, || {
            k.memread(1, pid, addr).unwrap();
        });
        let report = m.conflict_report();
        assert!(!report.is_conflict_free());
        let labels = report.conflicting_labels().join(",");
        assert!(labels.contains("vma_table") || labels.contains("mmap_sem"));
    }

    #[test]
    fn mmaps_in_different_processes_are_conflict_free() {
        let k = LinuxLikeKernel::new(4);
        let p1 = k.new_process();
        let p2 = k.new_process();
        let m = k.machine().clone();
        m.start_tracing();
        m.on_core(0, || {
            k.mmap(0, p1, None, 1, Prot::rw(), MmapBacking::Anon)
                .unwrap();
        });
        m.on_core(1, || {
            k.mmap(1, p2, None, 1, Prot::rw(), MmapBacking::Anon)
                .unwrap();
        });
        assert!(m.conflict_report().is_conflict_free());
    }

    #[test]
    fn fork_conflicts_with_descriptor_operations() {
        let (k, pid) = kernel_with_proc();
        let fd = k.open(0, pid, "f", OpenFlags::create()).unwrap();
        let m = k.machine().clone();
        m.start_tracing();
        m.on_core(0, || {
            k.fork(0, pid).unwrap();
        });
        m.on_core(1, || {
            k.fstat(1, pid, fd).unwrap();
        });
        assert!(!m.conflict_report().is_conflict_free());
    }

    #[test]
    fn posix_spawn_keeps_only_requested_fds() {
        let (k, pid) = kernel_with_proc();
        let fd = k.open(0, pid, "keep", OpenFlags::create()).unwrap();
        let fd2 = k.open(0, pid, "drop", OpenFlags::create()).unwrap();
        let child = k.posix_spawn(0, pid, &[fd]).unwrap();
        assert!(k.fstat(0, child, fd).is_ok());
        assert_eq!(k.fstat(0, child, fd2), Err(Errno::EBADF));
    }

    #[test]
    fn unlink_of_last_link_reclaims_inode() {
        let (k, pid) = kernel_with_proc();
        k.open(0, pid, "gone", OpenFlags::create()).unwrap();
        let ino = k.stat(0, pid, "gone").unwrap().ino;
        k.unlink(0, pid, "gone").unwrap();
        assert!(k.inode(ino).is_none());
    }
}
