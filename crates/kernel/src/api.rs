//! The kernel interface: types, error codes, the [`SyscallApi`] /
//! [`KernelApi`] traits, and a reified system-call representation
//! ([`SysOp`]) used by generated test cases.
//!
//! [`SyscallApi`] is the substrate-neutral system-call surface — the
//! simulated kernels *and* `scr-host`'s real-threads kernel implement it,
//! so applications like the §7.3 mail server run on either. [`KernelApi`]
//! extends it with access to the simulated machine, which only the traced
//! implementations can offer.
//!
//! The interface covers the 18 calls modelled in §6.1 — `open`, `link`,
//! `unlink`, `rename`, `stat`, `fstat`, `lseek`, `close`, `pipe`, `read`,
//! `write`, `pread`, `pwrite`, `mmap`, `munmap`, `mprotect`, `memread`,
//! `memwrite` — plus the §4 commutativity-friendly extensions: `fstatx`
//! (field-selective stat), `O_ANYFD` open, `posix_spawn`, and datagram
//! sockets with optional ordering.
//!
//! Every call names the *core* it runs on (so the simulated machine can
//! attribute memory accesses) and the *process* it runs in.

use scr_mtrace::{CoreId, SimMachine};
use std::fmt;

/// File-descriptor number.
pub type Fd = u32;
/// Inode number.
pub type Ino = u64;
/// Process identifier.
pub type Pid = usize;
/// Socket identifier (Unix-domain datagram socket).
pub type SockId = usize;

/// Page size used throughout the model and kernels. Offsets and lengths are
/// page-granular, as in the paper's model (§6.1).
pub const PAGE_SIZE: u64 = 4096;

/// POSIX-style error numbers used by the kernels.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Errno {
    /// No such file or directory.
    ENOENT,
    /// File exists.
    EEXIST,
    /// Bad file descriptor.
    EBADF,
    /// Invalid argument.
    EINVAL,
    /// Too many open files.
    EMFILE,
    /// No space / table full.
    ENOSPC,
    /// Not enough memory / address space exhausted.
    ENOMEM,
    /// Broken pipe.
    EPIPE,
    /// Illegal seek.
    ESPIPE,
    /// Bad address (unmapped memory access).
    EFAULT,
    /// Resource temporarily unavailable (empty pipe / socket).
    EAGAIN,
    /// Operation not permitted (e.g. linking a pipe).
    EPERM,
    /// Interrupted system call. No real code path raises it — it exists so
    /// `scr-chaos` can inject the transient failures a production substrate
    /// would produce, and so retry logic has a second transient errno to
    /// classify besides `EAGAIN`.
    EINTR,
}

impl fmt::Display for Errno {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Result type used by every kernel call.
pub type KResult<T> = Result<T, Errno>;

/// Flags accepted by `open`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpenFlags {
    /// Create the file if it does not exist (`O_CREAT`).
    pub create: bool,
    /// With `create`: fail if the file already exists (`O_EXCL`).
    pub excl: bool,
    /// Truncate the file to zero length (`O_TRUNC`).
    pub truncate: bool,
    /// Allow the kernel to return *any* unused descriptor instead of the
    /// lowest (`O_ANYFD`, the §4/§7.2 extension).
    pub anyfd: bool,
}

impl OpenFlags {
    /// Plain `open` of an existing file.
    pub fn plain() -> Self {
        OpenFlags::default()
    }

    /// `O_CREAT`.
    pub fn create() -> Self {
        OpenFlags {
            create: true,
            ..Default::default()
        }
    }

    /// `O_CREAT | O_EXCL`.
    pub fn create_excl() -> Self {
        OpenFlags {
            create: true,
            excl: true,
            ..Default::default()
        }
    }

    /// Adds `O_ANYFD` to the flags.
    pub fn with_anyfd(mut self) -> Self {
        self.anyfd = true;
        self
    }
}

/// The metadata returned by `stat`/`fstat`/`fstatx`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Stat {
    /// Inode number (0 when masked out by `fstatx`).
    pub ino: Ino,
    /// File size in bytes (page-granular).
    pub size: u64,
    /// Link count (0 when masked out by `fstatx`).
    pub nlink: i64,
    /// True when the object is a pipe endpoint.
    pub is_pipe: bool,
}

/// Field-selection mask for `fstatx` (§4 "decompose compound operations",
/// §7.2 statbench). A cleared field is not computed and returned as zero.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StatMask {
    /// Return the inode number.
    pub want_ino: bool,
    /// Return the size.
    pub want_size: bool,
    /// Return the link count (the expensive field: it forces reconciliation
    /// of the scalable link counter).
    pub want_nlink: bool,
}

impl StatMask {
    /// Request every field (equivalent to plain `fstat`).
    pub fn all() -> Self {
        StatMask {
            want_ino: true,
            want_size: true,
            want_nlink: true,
        }
    }

    /// Request every field except the link count (the commutative variant
    /// used by statbench).
    pub fn all_but_nlink() -> Self {
        StatMask {
            want_ino: true,
            want_size: true,
            want_nlink: false,
        }
    }
}

/// `lseek` origins.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Whence {
    /// Absolute offset.
    Set,
    /// Relative to the current offset.
    Cur,
    /// Relative to the end of the file.
    End,
}

/// Page protection bits for the VM calls.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Prot {
    /// Readable.
    pub read: bool,
    /// Writable.
    pub write: bool,
}

impl Prot {
    /// Read/write protection.
    pub fn rw() -> Self {
        Prot {
            read: true,
            write: true,
        }
    }

    /// Read-only protection.
    pub fn ro() -> Self {
        Prot {
            read: true,
            write: false,
        }
    }
}

/// What backs an `mmap` region.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MmapBacking {
    /// Anonymous memory.
    Anon,
    /// A file mapping starting at page 0 of the file referenced by the
    /// descriptor.
    File(Fd),
}

/// Whether a socket preserves FIFO ordering of datagrams (§4 "permit weak
/// ordering").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SocketOrder {
    /// All messages pass through one ordered queue.
    Ordered,
    /// Messages may be delivered in any order; the implementation may use
    /// per-core queues.
    Unordered,
}

/// The system-call surface shared by every kernel in the workspace — the
/// simulated sv6 and Linux-like kernels *and* the real-threads
/// `HostKernel` of `scr-host`.
///
/// Every method takes the core the call runs on (a simulated core label,
/// or the calling OS thread's slot on the host) and the calling process.
/// Methods correspond 1:1 to the calls analysed by COMMUTER plus the §4
/// extensions. Applications written against this trait — the §7.3 mail
/// server in [`crate::mail`] — run unchanged on either substrate.
pub trait SyscallApi {
    /// Creates a new process with an empty descriptor table and address
    /// space, returning its pid.
    fn new_process(&self) -> Pid;

    // --- file-name operations -------------------------------------------

    /// Opens (and possibly creates) `name`, returning a descriptor.
    fn open(&self, core: CoreId, pid: Pid, name: &str, flags: OpenFlags) -> KResult<Fd>;
    /// Creates a new hard link `new` to the file `old`.
    fn link(&self, core: CoreId, pid: Pid, old: &str, new: &str) -> KResult<()>;
    /// Removes the name `name` (the inode is reclaimed when the last link
    /// and descriptor are gone).
    fn unlink(&self, core: CoreId, pid: Pid, name: &str) -> KResult<()>;
    /// Renames `src` to `dst`.
    fn rename(&self, core: CoreId, pid: Pid, src: &str, dst: &str) -> KResult<()>;
    /// Returns the metadata of `name`.
    fn stat(&self, core: CoreId, pid: Pid, name: &str) -> KResult<Stat>;

    // --- descriptor operations ------------------------------------------

    /// Returns the metadata of the open file `fd`.
    fn fstat(&self, core: CoreId, pid: Pid, fd: Fd) -> KResult<Stat>;
    /// Field-selective `fstat` (§4). The default forwards to `fstat` and
    /// masks afterwards, which is correct but no more scalable; sv6
    /// overrides it to avoid touching the link count when not requested.
    fn fstatx(&self, core: CoreId, pid: Pid, fd: Fd, mask: StatMask) -> KResult<Stat> {
        let full = self.fstat(core, pid, fd)?;
        Ok(Stat {
            ino: if mask.want_ino { full.ino } else { 0 },
            size: if mask.want_size { full.size } else { 0 },
            nlink: if mask.want_nlink { full.nlink } else { 0 },
            is_pipe: full.is_pipe,
        })
    }
    /// Repositions the offset of `fd`.
    fn lseek(&self, core: CoreId, pid: Pid, fd: Fd, offset: i64, whence: Whence) -> KResult<u64>;
    /// Closes `fd`.
    fn close(&self, core: CoreId, pid: Pid, fd: Fd) -> KResult<()>;
    /// Creates a pipe, returning `(read_fd, write_fd)`.
    fn pipe(&self, core: CoreId, pid: Pid) -> KResult<(Fd, Fd)>;
    /// Reads up to `len` bytes at the current offset.
    fn read(&self, core: CoreId, pid: Pid, fd: Fd, len: u64) -> KResult<Vec<u8>>;
    /// Writes `data` at the current offset, returning the number of bytes
    /// written.
    fn write(&self, core: CoreId, pid: Pid, fd: Fd, data: &[u8]) -> KResult<u64>;
    /// Reads up to `len` bytes at absolute offset `offset` (no offset
    /// update).
    fn pread(&self, core: CoreId, pid: Pid, fd: Fd, len: u64, offset: u64) -> KResult<Vec<u8>>;
    /// Writes `data` at absolute offset `offset` (no offset update).
    fn pwrite(&self, core: CoreId, pid: Pid, fd: Fd, data: &[u8], offset: u64) -> KResult<u64>;

    // --- virtual memory ---------------------------------------------------

    /// Maps `pages` pages (optionally at the hinted page-aligned address),
    /// returning the mapped address.
    fn mmap(
        &self,
        core: CoreId,
        pid: Pid,
        addr_hint: Option<u64>,
        pages: u64,
        prot: Prot,
        backing: MmapBacking,
    ) -> KResult<u64>;
    /// Unmaps `pages` pages starting at `addr`.
    fn munmap(&self, core: CoreId, pid: Pid, addr: u64, pages: u64) -> KResult<()>;
    /// Changes the protection of `pages` pages starting at `addr`.
    fn mprotect(&self, core: CoreId, pid: Pid, addr: u64, pages: u64, prot: Prot) -> KResult<()>;
    /// Reads one byte from mapped memory at `addr`.
    fn memread(&self, core: CoreId, pid: Pid, addr: u64) -> KResult<u8>;
    /// Writes one byte to mapped memory at `addr`.
    fn memwrite(&self, core: CoreId, pid: Pid, addr: u64, value: u8) -> KResult<()>;

    // --- processes and sockets (§4 / §7.3) --------------------------------

    /// Creates a child process by duplicating the parent's descriptor table
    /// (the `fork` half of fork/exec; the snapshot is what limits its
    /// commutativity).
    fn fork(&self, core: CoreId, pid: Pid) -> KResult<Pid>;
    /// Creates a child process with a fresh descriptor table, duplicating
    /// only the listed descriptors (`posix_spawn`, §4 "decompose compound
    /// operations").
    fn posix_spawn(&self, core: CoreId, pid: Pid, dup_fds: &[Fd]) -> KResult<Pid>;
    /// Reaps a finished child process: closes every descriptor the child
    /// still holds (releasing pipe endpoints) and empties its table. The
    /// `wait` half of the spawn/wait protocol — the child's pid stays
    /// valid but refers to an empty (zombie-reaped) process afterwards.
    fn wait(&self, core: CoreId, pid: Pid, child: Pid) -> KResult<()>;
    /// Creates a Unix-domain datagram socket with the given ordering
    /// guarantee.
    fn socket(&self, core: CoreId, order: SocketOrder) -> KResult<SockId>;
    /// Sends a datagram on a socket.
    fn send(&self, core: CoreId, sock: SockId, msg: &[u8]) -> KResult<()>;
    /// Receives a datagram from a socket (EAGAIN when empty).
    fn recv(&self, core: CoreId, sock: SockId) -> KResult<Vec<u8>>;
}

/// A [`SyscallApi`] implementation living on the simulated machine of
/// `scr-mtrace`, whose traced cells are what the MTRACE driver inspects.
/// The real-threads host kernel implements only [`SyscallApi`]; everything
/// that needs conflict *tracing* (rather than just execution) asks for a
/// `KernelApi`.
pub trait KernelApi: SyscallApi {
    /// The simulated machine this kernel's state lives on.
    fn machine(&self) -> &SimMachine;
}

/// A reified system-call invocation, as emitted by TESTGEN.
///
/// Each variant mirrors one `KernelApi` method; string and numeric arguments
/// are concrete values chosen by the test generator.
#[derive(Clone, Debug, PartialEq)]
pub enum SysOp {
    /// `open(name, flags)`.
    Open {
        /// Process performing the call.
        pid: Pid,
        /// File name.
        name: String,
        /// Open flags.
        flags: OpenFlags,
    },
    /// `link(old, new)`.
    Link {
        /// Process performing the call.
        pid: Pid,
        /// Existing name.
        old: String,
        /// New name.
        new: String,
    },
    /// `unlink(name)`.
    Unlink {
        /// Process performing the call.
        pid: Pid,
        /// Name to remove.
        name: String,
    },
    /// `rename(src, dst)`.
    Rename {
        /// Process performing the call.
        pid: Pid,
        /// Source name.
        src: String,
        /// Destination name.
        dst: String,
    },
    /// `stat(name)`.
    StatPath {
        /// Process performing the call.
        pid: Pid,
        /// Name to stat.
        name: String,
    },
    /// `fstat(fd)`.
    Fstat {
        /// Process performing the call.
        pid: Pid,
        /// Descriptor to stat.
        fd: Fd,
    },
    /// `lseek(fd, offset, whence)`.
    Lseek {
        /// Process performing the call.
        pid: Pid,
        /// Descriptor.
        fd: Fd,
        /// Target offset.
        offset: i64,
        /// Origin.
        whence: Whence,
    },
    /// `close(fd)`.
    Close {
        /// Process performing the call.
        pid: Pid,
        /// Descriptor to close.
        fd: Fd,
    },
    /// `pipe()`.
    Pipe {
        /// Process performing the call.
        pid: Pid,
    },
    /// `read(fd, len)`.
    Read {
        /// Process performing the call.
        pid: Pid,
        /// Descriptor.
        fd: Fd,
        /// Bytes to read.
        len: u64,
    },
    /// `write(fd, data)`.
    Write {
        /// Process performing the call.
        pid: Pid,
        /// Descriptor.
        fd: Fd,
        /// Data to write.
        data: Vec<u8>,
    },
    /// `pread(fd, len, offset)`.
    Pread {
        /// Process performing the call.
        pid: Pid,
        /// Descriptor.
        fd: Fd,
        /// Bytes to read.
        len: u64,
        /// Absolute offset.
        offset: u64,
    },
    /// `pwrite(fd, data, offset)`.
    Pwrite {
        /// Process performing the call.
        pid: Pid,
        /// Descriptor.
        fd: Fd,
        /// Data to write.
        data: Vec<u8>,
        /// Absolute offset.
        offset: u64,
    },
    /// `mmap(addr_hint, pages, prot, backing)`.
    Mmap {
        /// Process performing the call.
        pid: Pid,
        /// Optional fixed address (page aligned).
        addr_hint: Option<u64>,
        /// Number of pages.
        pages: u64,
        /// Protection.
        prot: Prot,
        /// Backing object.
        backing: MmapBacking,
    },
    /// `munmap(addr, pages)`.
    Munmap {
        /// Process performing the call.
        pid: Pid,
        /// Start address.
        addr: u64,
        /// Number of pages.
        pages: u64,
    },
    /// `mprotect(addr, pages, prot)`.
    Mprotect {
        /// Process performing the call.
        pid: Pid,
        /// Start address.
        addr: u64,
        /// Number of pages.
        pages: u64,
        /// New protection.
        prot: Prot,
    },
    /// `memread(addr)`.
    Memread {
        /// Process performing the call.
        pid: Pid,
        /// Address to read.
        addr: u64,
    },
    /// `memwrite(addr, value)`.
    Memwrite {
        /// Process performing the call.
        pid: Pid,
        /// Address to write.
        addr: u64,
        /// Byte value to store.
        value: u8,
    },
    /// `socket(order)` (§4).
    Socket {
        /// Ordering guarantee of the new socket.
        order: SocketOrder,
    },
    /// `send(sock, msg)` (§4).
    Send {
        /// Socket to send on.
        sock: SockId,
        /// Datagram payload.
        msg: Vec<u8>,
    },
    /// `recv(sock)` (§4).
    Recv {
        /// Socket to receive from.
        sock: SockId,
    },
    /// `fork()` (§4).
    Fork {
        /// Parent process.
        pid: Pid,
    },
    /// `posix_spawn(dup_fds)` (§4).
    Spawn {
        /// Parent process.
        pid: Pid,
        /// Descriptors the child inherits (at the same numbers).
        dup_fds: Vec<Fd>,
    },
    /// `wait(child)` (§4).
    Wait {
        /// Reaping (parent) process.
        pid: Pid,
        /// Child to reap.
        child: Pid,
    },
}

impl SysOp {
    /// The system-call family name (used for the Figure 6 row/column
    /// labels).
    pub fn call_name(&self) -> &'static str {
        match self {
            SysOp::Open { .. } => "open",
            SysOp::Link { .. } => "link",
            SysOp::Unlink { .. } => "unlink",
            SysOp::Rename { .. } => "rename",
            SysOp::StatPath { .. } => "stat",
            SysOp::Fstat { .. } => "fstat",
            SysOp::Lseek { .. } => "lseek",
            SysOp::Close { .. } => "close",
            SysOp::Pipe { .. } => "pipe",
            SysOp::Read { .. } => "read",
            SysOp::Write { .. } => "write",
            SysOp::Pread { .. } => "pread",
            SysOp::Pwrite { .. } => "pwrite",
            SysOp::Mmap { .. } => "mmap",
            SysOp::Munmap { .. } => "munmap",
            SysOp::Mprotect { .. } => "mprotect",
            SysOp::Memread { .. } => "memread",
            SysOp::Memwrite { .. } => "memwrite",
            SysOp::Socket { .. } => "socket",
            SysOp::Send { .. } => "send",
            SysOp::Recv { .. } => "recv",
            SysOp::Fork { .. } => "fork",
            SysOp::Spawn { .. } => "posix_spawn",
            SysOp::Wait { .. } => "wait",
        }
    }

    /// The process the operation runs in. Socket operations are
    /// process-free (sockets are kernel-global objects); they report
    /// process 0.
    pub fn pid(&self) -> Pid {
        match self {
            SysOp::Socket { .. } | SysOp::Send { .. } | SysOp::Recv { .. } => 0,
            SysOp::Open { pid, .. }
            | SysOp::Link { pid, .. }
            | SysOp::Unlink { pid, .. }
            | SysOp::Rename { pid, .. }
            | SysOp::StatPath { pid, .. }
            | SysOp::Fstat { pid, .. }
            | SysOp::Lseek { pid, .. }
            | SysOp::Close { pid, .. }
            | SysOp::Pipe { pid, .. }
            | SysOp::Read { pid, .. }
            | SysOp::Write { pid, .. }
            | SysOp::Pread { pid, .. }
            | SysOp::Pwrite { pid, .. }
            | SysOp::Mmap { pid, .. }
            | SysOp::Munmap { pid, .. }
            | SysOp::Mprotect { pid, .. }
            | SysOp::Memread { pid, .. }
            | SysOp::Memwrite { pid, .. }
            | SysOp::Fork { pid, .. }
            | SysOp::Spawn { pid, .. }
            | SysOp::Wait { pid, .. } => *pid,
        }
    }
}

/// The observable outcome of performing a [`SysOp`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SysResult {
    /// The call succeeded with a numeric result (fd, offset, address,
    /// byte count…).
    Value(i64),
    /// The call succeeded and returned data.
    Data(Vec<u8>),
    /// The call succeeded and returned file metadata.
    Meta(Stat),
    /// The call succeeded with no interesting return value.
    Unit,
    /// The call failed.
    Err(Errno),
}

impl SysResult {
    /// `true` when the call did not fail.
    pub fn is_ok(&self) -> bool {
        !matches!(self, SysResult::Err(_))
    }

    /// The error number when the call failed.
    pub fn errno(&self) -> Option<Errno> {
        match self {
            SysResult::Err(e) => Some(*e),
            _ => None,
        }
    }
}

/// Observer for `perform`-level dispatch: a telemetry hook that sees every
/// reified call's name, outcome and wall latency.
///
/// The trait lives here (rather than in the telemetry crate) so the kernels
/// stay dependency-free; `scr-obs` implements it for its per-core syscall
/// recorder. Implementations must follow the commutativity discipline:
/// `observe_call` runs on the calling core's thread and must only touch
/// core-local state.
pub trait PerformObserver {
    /// When `false`, [`perform_observed`] skips the clock reads and the
    /// observation entirely — the cost of a disabled observer is this one
    /// call (for `scr-obs`, a single relaxed load).
    fn observer_enabled(&self) -> bool {
        true
    }

    /// One completed call: the core it ran on, its family name (as in
    /// [`SysOp::call_name`]), the errno if it failed, and its wall latency.
    fn observe_call(&self, core: CoreId, call: &'static str, errno: Option<Errno>, nanos: u64);
}

/// The no-op observer: [`perform_observed`] with `NoObserver` is `perform`.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoObserver;

impl PerformObserver for NoObserver {
    fn observer_enabled(&self) -> bool {
        false
    }

    fn observe_call(&self, _core: CoreId, _call: &'static str, _errno: Option<Errno>, _nanos: u64) {
    }
}

/// Performs a reified operation against a kernel on the given core. The
/// kernel may be any [`SyscallApi`] implementation — a simulated kernel or
/// the real-threads host kernel.
pub fn perform<K: SyscallApi + ?Sized>(kernel: &K, core: CoreId, op: &SysOp) -> SysResult {
    match op {
        SysOp::Open { pid, name, flags } => match kernel.open(core, *pid, name, *flags) {
            Ok(fd) => SysResult::Value(fd as i64),
            Err(e) => SysResult::Err(e),
        },
        SysOp::Link { pid, old, new } => match kernel.link(core, *pid, old, new) {
            Ok(()) => SysResult::Unit,
            Err(e) => SysResult::Err(e),
        },
        SysOp::Unlink { pid, name } => match kernel.unlink(core, *pid, name) {
            Ok(()) => SysResult::Unit,
            Err(e) => SysResult::Err(e),
        },
        SysOp::Rename { pid, src, dst } => match kernel.rename(core, *pid, src, dst) {
            Ok(()) => SysResult::Unit,
            Err(e) => SysResult::Err(e),
        },
        SysOp::StatPath { pid, name } => match kernel.stat(core, *pid, name) {
            Ok(s) => SysResult::Meta(s),
            Err(e) => SysResult::Err(e),
        },
        SysOp::Fstat { pid, fd } => match kernel.fstat(core, *pid, *fd) {
            Ok(s) => SysResult::Meta(s),
            Err(e) => SysResult::Err(e),
        },
        SysOp::Lseek {
            pid,
            fd,
            offset,
            whence,
        } => match kernel.lseek(core, *pid, *fd, *offset, *whence) {
            Ok(off) => SysResult::Value(off as i64),
            Err(e) => SysResult::Err(e),
        },
        SysOp::Close { pid, fd } => match kernel.close(core, *pid, *fd) {
            Ok(()) => SysResult::Unit,
            Err(e) => SysResult::Err(e),
        },
        SysOp::Pipe { pid } => match kernel.pipe(core, *pid) {
            Ok((r, w)) => SysResult::Value(((w as i64) << 32) | r as i64),
            Err(e) => SysResult::Err(e),
        },
        SysOp::Read { pid, fd, len } => match kernel.read(core, *pid, *fd, *len) {
            Ok(data) => SysResult::Data(data),
            Err(e) => SysResult::Err(e),
        },
        SysOp::Write { pid, fd, data } => match kernel.write(core, *pid, *fd, data) {
            Ok(n) => SysResult::Value(n as i64),
            Err(e) => SysResult::Err(e),
        },
        SysOp::Pread {
            pid,
            fd,
            len,
            offset,
        } => match kernel.pread(core, *pid, *fd, *len, *offset) {
            Ok(data) => SysResult::Data(data),
            Err(e) => SysResult::Err(e),
        },
        SysOp::Pwrite {
            pid,
            fd,
            data,
            offset,
        } => match kernel.pwrite(core, *pid, *fd, data, *offset) {
            Ok(n) => SysResult::Value(n as i64),
            Err(e) => SysResult::Err(e),
        },
        SysOp::Mmap {
            pid,
            addr_hint,
            pages,
            prot,
            backing,
        } => match kernel.mmap(core, *pid, *addr_hint, *pages, *prot, *backing) {
            Ok(addr) => SysResult::Value(addr as i64),
            Err(e) => SysResult::Err(e),
        },
        SysOp::Munmap { pid, addr, pages } => match kernel.munmap(core, *pid, *addr, *pages) {
            Ok(()) => SysResult::Unit,
            Err(e) => SysResult::Err(e),
        },
        SysOp::Mprotect {
            pid,
            addr,
            pages,
            prot,
        } => match kernel.mprotect(core, *pid, *addr, *pages, *prot) {
            Ok(()) => SysResult::Unit,
            Err(e) => SysResult::Err(e),
        },
        SysOp::Memread { pid, addr } => match kernel.memread(core, *pid, *addr) {
            Ok(b) => SysResult::Value(b as i64),
            Err(e) => SysResult::Err(e),
        },
        SysOp::Memwrite { pid, addr, value } => match kernel.memwrite(core, *pid, *addr, *value) {
            Ok(()) => SysResult::Unit,
            Err(e) => SysResult::Err(e),
        },
        SysOp::Socket { order } => match kernel.socket(core, *order) {
            Ok(sock) => SysResult::Value(sock as i64),
            Err(e) => SysResult::Err(e),
        },
        SysOp::Send { sock, msg } => match kernel.send(core, *sock, msg) {
            Ok(()) => SysResult::Unit,
            Err(e) => SysResult::Err(e),
        },
        SysOp::Recv { sock } => match kernel.recv(core, *sock) {
            Ok(data) => SysResult::Data(data),
            Err(e) => SysResult::Err(e),
        },
        SysOp::Fork { pid } => match kernel.fork(core, *pid) {
            Ok(child) => SysResult::Value(child as i64),
            Err(e) => SysResult::Err(e),
        },
        SysOp::Spawn { pid, dup_fds } => match kernel.posix_spawn(core, *pid, dup_fds) {
            Ok(child) => SysResult::Value(child as i64),
            Err(e) => SysResult::Err(e),
        },
        SysOp::Wait { pid, child } => match kernel.wait(core, *pid, *child) {
            Ok(()) => SysResult::Unit,
            Err(e) => SysResult::Err(e),
        },
    }
}

/// [`perform`] with an observation hook: times the call and reports its
/// outcome to `observer`. When the observer is disabled this is `perform`
/// plus one virtual call — no clock reads.
pub fn perform_observed<K, O>(kernel: &K, core: CoreId, op: &SysOp, observer: &O) -> SysResult
where
    K: SyscallApi + ?Sized,
    O: PerformObserver + ?Sized,
{
    if !observer.observer_enabled() {
        return perform(kernel, core, op);
    }
    let started = std::time::Instant::now();
    let result = perform(kernel, core, op);
    let nanos = started.elapsed().as_nanos() as u64;
    observer.observe_call(core, op.call_name(), result.errno(), nanos);
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_flags_constructors() {
        assert!(OpenFlags::create().create);
        assert!(!OpenFlags::create().excl);
        assert!(OpenFlags::create_excl().excl);
        assert!(OpenFlags::plain().with_anyfd().anyfd);
    }

    #[test]
    fn stat_mask_selects_fields() {
        assert!(StatMask::all().want_nlink);
        assert!(!StatMask::all_but_nlink().want_nlink);
        assert!(StatMask::all_but_nlink().want_size);
    }

    #[test]
    fn sysop_exposes_call_name_and_pid() {
        let op = SysOp::Rename {
            pid: 3,
            src: "a".into(),
            dst: "b".into(),
        };
        assert_eq!(op.call_name(), "rename");
        assert_eq!(op.pid(), 3);
        let op = SysOp::Memwrite {
            pid: 1,
            addr: PAGE_SIZE,
            value: 7,
        };
        assert_eq!(op.call_name(), "memwrite");
    }

    #[test]
    fn sysresult_classifies_errors() {
        assert!(SysResult::Value(3).is_ok());
        assert!(SysResult::Unit.is_ok());
        assert!(!SysResult::Err(Errno::ENOENT).is_ok());
        assert_eq!(SysResult::Err(Errno::EAGAIN).errno(), Some(Errno::EAGAIN));
        assert_eq!(SysResult::Unit.errno(), None);
    }

    #[test]
    fn no_observer_is_disabled() {
        assert!(!NoObserver.observer_enabled());
    }
}
